#!/usr/bin/env python3
"""Validate observability artifacts written by the sweep drivers.

Usage:
    validate_trace.py --trace FILE      # chrome trace-event file
    validate_trace.py --manifest FILE   # tlc-run-manifest-v1 file
    validate_trace.py --sim-trace FILE  # binary "TLCT" simulation trace

Checks structure only, with the stdlib: the trace must be a
{"traceEvents": [...]} document of well-formed M/X events (in
isolate mode the supervisor emits one process_name track per worker
attempt next to the usual thread_name records), the manifest must
carry every schema key plus embedded metrics/phases objects (and a
well-formed "supervisor" timeline object when the run was isolated),
and a simulation trace must decode end to end — for the version-3
compressed format that means re-running the varint/zigzag delta
decode and matching the CRC-32 footer computed over the DECODED
records in canonical 5-byte form, exactly as src/trace/io.cc does.
Exit status 0 on success, 1 with a message on stderr otherwise.
tools/check.sh runs all three checks on smoke artifacts.
"""

import json
import struct
import sys
import zlib

MANIFEST_KEYS = (
    "schema", "tool", "command", "workload", "trace_refs", "seed",
    "threads", "hardware_concurrency", "points_priced", "failures",
    "wall_seconds", "metrics", "phases",
)

SUPERVISOR_KEYS = (
    "shards_resolved", "worker_launches", "retries", "crashes",
    "timeouts", "exits", "protocol_errors", "bisections",
    "quarantined", "backoff_waits", "backoff_seconds",
    "metric_frames", "phase_frames", "event_frames", "flight_frames",
    "shards",
)

ATTEMPT_KEYS = (
    "worker", "outcome", "detail", "start_seconds",
    "duration_seconds", "results", "backoff_seconds",
    "flight_reason", "flight_point", "flight_phase",
)

TRACE_MAGIC = b"TLCT"
TRACE_V_RAW = 1
TRACE_V_COMPRESSED = 2
TRACE_V_COMPRESSED_CRC = 3


def fail(msg):
    print(f"validate_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path):
    doc = load(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")
    slices = 0
    process_tracks = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"{path}: event {i} has no phase")
        if ev["ph"] == "M":
            if ev.get("name") not in ("thread_name", "process_name"):
                fail(f"{path}: event {i}: unexpected metadata event")
            if ev["name"] == "process_name":
                process_tracks += 1
                if "pid" not in ev:
                    fail(f"{path}: event {i}: process_name without pid")
        elif ev["ph"] == "X":
            slices += 1
            for key in ("pid", "tid", "ts", "dur", "name"):
                if key not in ev:
                    fail(f"{path}: event {i} lacks '{key}'")
            if ev["ts"] < 0 or ev["dur"] < 0:
                fail(f"{path}: event {i} has negative time")
        else:
            fail(f"{path}: event {i}: unexpected phase '{ev['ph']}'")
    print(f"{path}: ok ({slices} slices, {len(events) - slices} "
          f"metadata events, {process_tracks} process tracks)")


def check_supervisor(path, sup):
    """The "supervisor" object isolated runs embed in the manifest."""
    if not isinstance(sup, dict):
        fail(f"{path}: 'supervisor' is not an object")
    for key in SUPERVISOR_KEYS:
        if key not in sup:
            fail(f"{path}: supervisor lacks '{key}'")
    shards = sup["shards"]
    if not isinstance(shards, list):
        fail(f"{path}: supervisor 'shards' is not an array")
    attempts = 0
    for i, shard in enumerate(shards):
        for key in ("first_index", "count", "resolution", "attempts"):
            if key not in shard:
                fail(f"{path}: supervisor shard {i} lacks '{key}'")
        if shard["resolution"] not in ("ok", "bisected", "quarantined"):
            fail(f"{path}: supervisor shard {i}: resolution "
                 f"{shard['resolution']!r}")
        for j, at in enumerate(shard["attempts"]):
            attempts += 1
            for key in ATTEMPT_KEYS:
                if key not in at:
                    fail(f"{path}: supervisor shard {i} attempt {j} "
                         f"lacks '{key}'")
            if at["duration_seconds"] < 0 or at["start_seconds"] < 0:
                fail(f"{path}: supervisor shard {i} attempt {j} has "
                     "negative time")
    if attempts < sup["shards_resolved"]:
        fail(f"{path}: supervisor records {attempts} attempts for "
             f"{sup['shards_resolved']} resolved shards")
    return len(shards), attempts


def check_manifest(path):
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: not a JSON object")
    if doc.get("schema") != "tlc-run-manifest-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, expected "
             "'tlc-run-manifest-v1'")
    for key in MANIFEST_KEYS:
        if key not in doc:
            fail(f"{path}: missing key '{key}'")
    for key in ("metrics", "phases"):
        if not isinstance(doc[key], dict):
            fail(f"{path}: '{key}' is not an object")
    if doc["points_priced"] < 0 or doc["wall_seconds"] < 0:
        fail(f"{path}: negative counters")
    supervised = ""
    if "supervisor" in doc:
        shards, attempts = check_supervisor(path, doc["supervisor"])
        supervised = f", {shards} shards / {attempts} attempts"
    print(f"{path}: ok ({doc['points_priced']} points, "
          f"{len(doc['metrics'])} metrics, "
          f"{len(doc['phases'])} phases{supervised})")


def read_varint(data, pos):
    """LSB-first 7-bit varint, mirroring src/trace/io.cc getVarint."""
    value = 0
    shift = 0
    for nbytes in range(1, 11):
        if pos >= len(data):
            fail("sim trace ends inside a varint")
        b = data[pos]
        pos += 1
        if shift == 63 and b & 0x7E:
            fail(f"varint overflows 64 bits at byte {nbytes}")
        value |= (b & 0x7F) << shift
        if not b & 0x80:
            return value, pos
        shift += 7
    fail("varint continues past 10 bytes")


def unzigzag(v):
    return (v >> 1) ^ -(v & 1)


def check_sim_trace(path):
    """Decode a binary simulation trace end to end.

    Version 1 is raw 5-byte records; versions 2/3 are per-type
    delta + zigzag varints, and version 3 closes with a CRC-32
    footer over the decoded records in canonical 5-byte form.
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as e:
        fail(f"{path}: {e}")
    if len(data) < 16:
        fail(f"{path}: shorter than the 16-byte header")
    if data[:4] != TRACE_MAGIC:
        fail(f"{path}: magic {data[:4]!r} is not {TRACE_MAGIC!r}")
    version, = struct.unpack_from("<I", data, 4)
    count, = struct.unpack_from("<Q", data, 8)
    pos = 16

    if version == TRACE_V_RAW:
        need = pos + 5 * count
        if len(data) != need:
            fail(f"{path}: {len(data)} bytes where {count} raw records "
                 f"need exactly {need}")
        for i in range(count):
            ty = data[pos + 4]
            if ty > 2:
                fail(f"{path}: record {i} has reference type {ty}")
            pos += 5
        print(f"{path}: ok (v1, {count} records)")
        return

    if version not in (TRACE_V_COMPRESSED, TRACE_V_COMPRESSED_CRC):
        fail(f"{path}: unsupported trace version {version}")
    has_footer = version == TRACE_V_COMPRESSED_CRC
    last = [0, 0, 0]
    crc = 0
    for i in range(count):
        word, pos = read_varint(data, pos)
        ty = word & 3
        if ty > 2:
            fail(f"{path}: record {i} has reference type {ty}")
        addr = (last[ty] + unzigzag(word >> 2)) & 0xFFFFFFFF
        last[ty] = addr
        if has_footer:
            crc = zlib.crc32(struct.pack("<IB", addr, ty), crc)
    if has_footer:
        if pos + 4 > len(data):
            fail(f"{path}: stream ends inside the CRC footer")
        want, = struct.unpack_from("<I", data, pos)
        if want != crc:
            fail(f"{path}: CRC footer 0x{want:08x} does not match "
                 f"0x{crc:08x} over the {count} decoded records")
        pos += 4
    if pos != len(data):
        fail(f"{path}: {len(data) - pos} trailing bytes after the "
             "last record")
    print(f"{path}: ok (v{version}, {count} records"
          f"{', CRC footer verified' if has_footer else ''})")


def main(argv):
    modes = ("--trace", "--manifest", "--sim-trace")
    if len(argv) != 3 or argv[1] not in modes:
        fail("usage: validate_trace.py "
             "--trace|--manifest|--sim-trace FILE")
    if argv[1] == "--trace":
        check_trace(argv[2])
    elif argv[1] == "--manifest":
        check_manifest(argv[2])
    else:
        check_sim_trace(argv[2])


if __name__ == "__main__":
    main(sys.argv)
