#!/usr/bin/env python3
"""Validate observability artifacts written by the sweep drivers.

Usage:
    validate_trace.py --trace FILE      # chrome trace-event file
    validate_trace.py --manifest FILE   # tlc-run-manifest-v1 file

Checks structure only, with the stdlib json module: the trace must be
a {"traceEvents": [...]} document of well-formed M/X events, and the
manifest must carry every schema key plus embedded metrics/phases
objects. Exit status 0 on success, 1 with a message on stderr
otherwise. tools/check.sh runs both checks on a smoke sweep.
"""

import json
import sys

MANIFEST_KEYS = (
    "schema", "tool", "command", "workload", "trace_refs", "seed",
    "threads", "hardware_concurrency", "points_priced", "failures",
    "wall_seconds", "metrics", "phases",
)


def fail(msg):
    print(f"validate_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path):
    doc = load(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")
    slices = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"{path}: event {i} has no phase")
        if ev["ph"] == "M":
            if ev.get("name") != "thread_name":
                fail(f"{path}: event {i}: unexpected metadata event")
        elif ev["ph"] == "X":
            slices += 1
            for key in ("pid", "tid", "ts", "dur", "name"):
                if key not in ev:
                    fail(f"{path}: event {i} lacks '{key}'")
            if ev["ts"] < 0 or ev["dur"] < 0:
                fail(f"{path}: event {i} has negative time")
        else:
            fail(f"{path}: event {i}: unexpected phase '{ev['ph']}'")
    print(f"{path}: ok ({slices} slices, {len(events) - slices} "
          "metadata events)")


def check_manifest(path):
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: not a JSON object")
    if doc.get("schema") != "tlc-run-manifest-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, expected "
             "'tlc-run-manifest-v1'")
    for key in MANIFEST_KEYS:
        if key not in doc:
            fail(f"{path}: missing key '{key}'")
    for key in ("metrics", "phases"):
        if not isinstance(doc[key], dict):
            fail(f"{path}: '{key}' is not an object")
    if doc["points_priced"] < 0 or doc["wall_seconds"] < 0:
        fail(f"{path}: negative counters")
    print(f"{path}: ok ({doc['points_priced']} points, "
          f"{len(doc['metrics'])} metrics, "
          f"{len(doc['phases'])} phases)")


def main(argv):
    if len(argv) != 3 or argv[1] not in ("--trace", "--manifest"):
        fail("usage: validate_trace.py --trace|--manifest FILE")
    if argv[1] == "--trace":
        check_trace(argv[2])
    else:
        check_manifest(argv[2])


if __name__ == "__main__":
    main(sys.argv)
