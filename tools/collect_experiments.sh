#!/bin/sh
# Regenerate results/ from every benchmark driver. Run from the
# repository root after building into ./build. EXPERIMENTS.md quotes
# the numbers these runs produce.
set -e
mkdir -p results
for b in build/bench/*; do
    name=$(basename "$b")
    echo "running $name ..."
    "$b" > "results/$name.txt" 2>&1
done
echo "done; outputs in results/"
