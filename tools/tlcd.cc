/**
 * @file
 * tlcd: the sweep-as-a-service explorer daemon. Owns a trace pool
 * and (optionally) a persistent result store, listens on a
 * Unix-domain socket, and serves canonical "tlc-sweep-request-v1"
 * documents to any number of clients — tlc_client, the CLI drivers'
 * request files, tests. See docs/service.md for the protocol.
 *
 * Usage:
 *   tlcd --socket=PATH [--result-store=FILE] [--store-fsync]
 *        [--metrics-out=FILE] [--threads=N]
 *        [--quiet|--verbose] [--profile]
 *
 * Lifecycle: runs until SIGTERM or SIGINT, then drains — in-flight
 * requests finish, connection threads join, the socket is unlinked —
 * and exits 0. --metrics-out writes the registry dump (including
 * service.* and sweep_cache.*) at shutdown.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>

#include "service/daemon.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

using namespace tlc;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);

    std::string socketPath = args.getString("socket");
    if (socketPath.empty())
        fatal("--socket=PATH is required");

    service::SweepServiceOptions sopts;
    sopts.resultStorePath = args.getString("result-store");
    sopts.storeFsync = args.getBool("store-fsync", false);
    service::SweepService svc(sopts);
    Status s = svc.init();
    if (!s.ok())
        fatal("result store: %s", s.message().c_str());
    if (svc.store()) {
        inform("tlcd: result store '%s' (%zu cached points)",
               svc.store()->path().c_str(), svc.store()->entries());
    }

    service::SweepDaemon daemon(svc, socketPath);
    s = daemon.start();
    if (!s.ok())
        fatal("%s", s.message().c_str());

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    while (!g_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    inform("tlcd: shutting down (draining in-flight requests)");
    daemon.stop();

    std::string metricsOut = args.getString("metrics-out");
    if (!metricsOut.empty()) {
        Status ms = writeMetricsFile(metricsOut);
        if (!ms.ok())
            warn("%s", ms.message().c_str());
        else
            inform("wrote metrics dump to '%s'", metricsOut.c_str());
    }
    return 0;
}
