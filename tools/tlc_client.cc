/**
 * @file
 * tlc_client: thin client for the tlcd sweep daemon. Submits one
 * canonical "tlc-sweep-request-v1" document — read from a file or
 * built from flags — and writes the canonical response document,
 * byte-identical to what design_explorer --request=FILE prints for
 * the same request (docs/service.md pins that contract).
 *
 * Usage:
 *   tlc_client --socket=PATH [--request=FILE] [--out=FILE]
 *              [--stats-out=FILE] [--progress] [--timeout=SECS]
 *   tlc_client --print-request [request-building flags]
 *
 * Request-building flags (used when --request is absent):
 *   --bench=a,b,c   benchmarks to sweep (default gcc1)
 *   --refs=N        trace length (0 = default)
 *   --backend=NAME  exact | analytic | analytic-prune
 *   --offchip=NS    off-chip service time
 *   --l2-assoc=N    L2 ways
 *   --policy=NAME   inclusive | strict-inclusive | exclusive
 *   --single-only / --two-only   restrict the enumerated space
 *   --energy        also price per-reference energy + envelope
 *   --tag=LABEL     client label echoed in the response
 *   --threads=N     daemon-side worker width for this request
 *
 * --print-request writes the built request document to stdout and
 * exits without contacting a daemon — the canonical way to author a
 * request file (check.sh uses it for the daemon drill).
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "service/client.hh"
#include "service/sweep_codec.hh"
#include "util/args.hh"
#include "util/logging.hh"

using namespace tlc;

namespace {

service::SweepRequestSpec
specFromFlags(const ArgParser &args)
{
    service::SweepRequestSpec spec;
    spec.tag = args.getString("tag");

    std::string benches = args.getString("bench", "gcc1");
    std::stringstream ss(benches);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (name.empty())
            continue;
        Expected<Benchmark> b = Workloads::tryByName(name);
        if (!b.ok())
            fatal("--bench: %s", b.status().message().c_str());
        spec.benchmarks.push_back(b.value());
    }
    if (spec.benchmarks.empty())
        fatal("--bench: no benchmarks given");

    spec.traceRefs =
        static_cast<std::uint64_t>(args.getInt("refs", 0));
    std::string backend = args.getString("backend", "exact");
    if (!missBackendFromName(backend, spec.backend))
        fatal("--backend=%s: unknown backend (exact, analytic, "
              "analytic-prune)", backend.c_str());
    spec.assume.offchipNs = args.getDouble("offchip", 50.0);
    spec.assume.l2Assoc =
        static_cast<std::uint32_t>(args.getInt("l2-assoc", 4));
    std::string policy = args.getString("policy", "inclusive");
    bool known = false;
    for (TwoLevelPolicy p :
         {TwoLevelPolicy::Inclusive, TwoLevelPolicy::StrictInclusive,
          TwoLevelPolicy::Exclusive}) {
        if (policy == twoLevelPolicyName(p)) {
            spec.assume.policy = p;
            known = true;
        }
    }
    if (!known)
        fatal("--policy=%s: unknown policy (inclusive, "
              "strict-inclusive, exclusive)", policy.c_str());
    if (args.getBool("single-only", false))
        spec.spaceTwoLevel = false;
    if (args.getBool("two-only", false))
        spec.spaceSingleLevel = false;
    spec.energy = args.getBool("energy", false);
    spec.threads =
        static_cast<unsigned>(args.getInt("threads", 0));
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    // NOT applyStandardFlags: --threads here means the request's
    // daemon-side width, not this client's worker team.
    if (args.getBool("quiet", false))
        setLogLevel(LogLevel::Quiet);
    else if (args.getBool("verbose", false))
        setLogLevel(LogLevel::Verbose);

    std::string requestText;
    std::string requestFile = args.getString("request");
    if (!requestFile.empty()) {
        std::ifstream in(requestFile, std::ios::binary);
        if (!in)
            fatal("--request: cannot open '%s'", requestFile.c_str());
        std::ostringstream text;
        text << in.rdbuf();
        requestText = text.str();
    } else {
        requestText = service::sweepRequestToJson(specFromFlags(args));
    }

    if (args.getBool("print-request", false)) {
        std::fwrite(requestText.data(), 1, requestText.size(), stdout);
        std::fputc('\n', stdout);
        return 0;
    }

    std::string socketPath = args.getString("socket");
    if (socketPath.empty())
        fatal("--socket=PATH is required (or --print-request)");

    std::function<void(const SweepProgress &)> progress;
    if (args.getBool("progress", false))
        progress = stderrProgressPrinter("tlcd");

    Expected<service::ServiceReply> reply =
        service::submitSweepRequest(
            socketPath, requestText, progress,
            args.getDouble("timeout", 600.0));
    if (!reply.ok())
        fatal("%s", reply.status().toString().c_str());

    std::string outPath = args.getString("out");
    const std::string &response = reply.value().responseJson;
    if (outPath.empty()) {
        std::fwrite(response.data(), 1, response.size(), stdout);
        std::fputc('\n', stdout);
    } else {
        std::ofstream out(outPath,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("--out: cannot open '%s'", outPath.c_str());
        out << response << "\n";
    }
    std::string statsPath = args.getString("stats-out");
    if (!statsPath.empty()) {
        std::ofstream out(statsPath,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("--stats-out: cannot open '%s'", statsPath.c_str());
        out << reply.value().statsJson << "\n";
    }
    return 0;
}
