/**
 * @file
 * Calibration aid (developer tool, not part of the benchmark set):
 * prints the miss-rate-vs-size curve of every workload model, plus
 * the timing and area anchors, so model constants can be tuned
 * against the figures the paper quotes (see DESIGN.md §2).
 */

#include <cstdio>
#include <iostream>

#include "core/explorer.hh"
#include "util/args.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    std::uint64_t refs =
        static_cast<std::uint64_t>(args.getInt("refs", 2000000));
    MissRateEvaluator ev(refs);
    Explorer ex(ev);

    std::printf("== L1 miss rate (overall, split DM L1s) vs size ==\n");
    Table t({"bench", "1K", "2K", "4K", "8K", "16K", "32K", "64K",
             "128K", "256K"});
    for (Benchmark b : Workloads::all()) {
        t.beginRow();
        t.cell(Workloads::info(b).name);
        for (std::uint64_t s : DesignSpace::l1Sizes()) {
            SystemConfig c;
            c.l1Bytes = s;
            c.l2Bytes = 0;
            t.cell(ev.tryMissStats(b, c).value().l1MissRate(), 4);
        }
    }
    t.printAscii(std::cout);

    std::printf("\n== L1 timing (DM, 16B lines) ==\n");
    Table tt({"size", "access_ns", "cycle_ns", "area_rbe_one",
              "area_rbe_pair"});
    AreaModel am;
    for (std::uint64_t s : DesignSpace::l1Sizes()) {
        const TimingResult &tr = ex.timingOf(s, 1, 16);
        SramGeometry g{s, 16, 1, 32, 64};
        double a = am.area(g, tr.dataOrg, tr.tagOrg);
        tt.beginRow();
        tt.cell(formatSize(s));
        tt.cell(tr.accessNs, 3);
        tt.cell(tr.cycleNs, 3);
        tt.cell(a, 0);
        tt.cell(2 * a, 0);
    }
    tt.printAscii(std::cout);
    const TimingResult &c1 = ex.timingOf(1_KiB, 1, 16);
    const TimingResult &c256 = ex.timingOf(256_KiB, 1, 16);
    std::printf("cycle spread 1K->256K: %.2fx (paper: ~1.8x)\n",
                c256.cycleNs / c1.cycleNs);

    std::printf("\n== L2 timing (4-way) in CPU cycles for 4K L1 ==\n");
    double l1cyc = ex.timingOf(4_KiB, 1, 16).cycleNs;
    Table t2({"l2_size", "access_ns", "cycle_ns", "cpu_cycles"});
    for (std::uint64_t s = 8_KiB; s <= 256_KiB; s *= 2) {
        const TimingResult &tr = ex.timingOf(s, 4, 16);
        t2.beginRow();
        t2.cell(formatSize(s));
        t2.cell(tr.accessNs, 3);
        t2.cell(tr.cycleNs, 3);
        t2.cell(cyclesCeil(tr.cycleNs, l1cyc));
    }
    t2.printAscii(std::cout);
    std::printf("(paper Fig.2: mostly 2 CPU cycles; 5-cycle L2-hit "
                "penalty example)\n");
    return 0;
}
