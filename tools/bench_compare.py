#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against its committed baseline.

Usage:
    bench_compare.py BASELINE FRESH [--tolerance=0.25]

The comparison knows three classes of field and walks the two
documents together (stdlib json only):

  exact     integers and booleans — deterministic simulation counts
            (design points, metric counters, per-phase call counts).
            Any difference is a regression or an intentional change
            that must come with a baseline update. Keys named in
            EXACT_KEYS are pinned to this class whatever their type
            or suffix — recovery-drill outcomes (quarantined points,
            worker crash counts) must never be loosened into a
            ratio or skipped by a rename that picks up an ignored
            suffix.

  ratio     floats named "speedup" or ending in "_rate" — quality
            ratios that are meaningful across machines. Checked
            one-sided: the fresh value may exceed the baseline freely
            but must not fall below baseline * (1 - tolerance).
            A zero baseline is skipped (nothing to regress from).

  ignored   absolute wall-clock fields ("*_seconds", "*_ms", "*_us"),
            "hardware_concurrency", and free-text fields ("note") —
            machine-dependent by nature. Other strings (benchmark and
            workload names) still compare exactly so a swapped file
            is caught.

A key present in the baseline but missing from the fresh document is
an error unless it is ignored-class; extra ignored-class keys in the
fresh document are fine. Exit status 0 when every checked field
passes, 1 with one line per failure otherwise.
"""

import json
import sys

# "simd_backend" is whichever vector ISA the measuring host runs
# (scalar on a CI runner without AVX2), and "reps" is the best-of-N
# sampling depth — both describe the machine/methodology of one run,
# not the result, so like wall-clock they never gate.
IGNORED_KEYS = ("hardware_concurrency", "note", "simd_backend", "reps")
IGNORED_SUFFIXES = ("_seconds", "_ms", "_us")
RATIO_SUFFIXES = ("_rate",)
RATIO_KEYS = ("speedup", "warm_speedup", "strict_speedup",
              "speedup_vs_prior_batched")
# Fields that must match the baseline exactly no matter what their
# type or name suffix suggests: the supervisor recovery drill's
# outcome counts and the analytic-prune sweep's point accounting are
# correctness claims, not performance numbers. In particular
# "prune_rate" would otherwise be loosened into a one-sided ratio by
# its suffix, but it is pruned_points/design_points — a deterministic
# consequence of the analytic ranking that must never drift without
# a baseline update.
EXACT_KEYS = (
    "quarantined_points",
    "worker_launches",
    "worker_crashes",
    "shards_resolved",
    "shard_retries",
    "shard_bisections",
    "points_priced",
    "healthy_points_identical",
    "design_points",
    "exact_simulated",
    "pruned_points",
    "prune_rate",
    "envelopes_identical",
    # The cross-process telemetry snapshot: supervised shard/frame
    # accounting and the rollup-parity verdict are correctness
    # claims ("every worker counter streamed back and merged once"),
    # so they may never be loosened or silently dropped.
    "supervised_points",
    "supervised_shards",
    "supervised_worker_launches",
    "telemetry_metric_frames",
    "telemetry_phase_frames",
    "telemetry_flight_frames",
    "worker_namespace_counters",
    "rollup_counters_compared",
    "rollups_match_inprocess",
    # The sweep-service drill: every response byte-identical and the
    # warm re-sweep resolving entirely from the shared result store
    # are the service's contract (docs/service.md), not performance
    # numbers — pinned so no rename or suffix ever loosens them.
    "requests",
    "points_per_response",
    "responses_identical",
    "cold_store_appends",
    "warm_store_hits",
    "warm_store_misses",
)


def is_exact(key):
    return key in EXACT_KEYS


def is_ignored(key):
    return not is_exact(key) and (key in IGNORED_KEYS or
                                  key.endswith(IGNORED_SUFFIXES))


def is_ratio(key):
    return not is_exact(key) and (key in RATIO_KEYS or
                                  key.endswith(RATIO_SUFFIXES))


def compare(base, fresh, tolerance, path, failures, counts):
    """Walk baseline-led; append failure strings, tally field classes."""
    if isinstance(base, dict):
        if not isinstance(fresh, dict):
            failures.append(f"{path}: object in baseline, "
                            f"{type(fresh).__name__} in fresh run")
            return
        for key, bval in sorted(base.items()):
            sub = f"{path}.{key}" if path else key
            if is_ignored(key):
                counts["ignored"] += 1
                continue
            if key not in fresh:
                if isinstance(bval, str):
                    counts["ignored"] += 1
                else:
                    failures.append(f"{sub}: missing from fresh run")
                continue
            compare(bval, fresh[key], tolerance, sub, failures, counts)
        for key in sorted(set(fresh) - set(base)):
            sub = f"{path}.{key}" if path else key
            if is_ignored(key) or isinstance(fresh[key], str):
                counts["ignored"] += 1
            else:
                failures.append(f"{sub}: not in the baseline "
                                "(new field? update the baseline)")
        return

    key = path.rsplit(".", 1)[-1]
    if isinstance(base, bool) or isinstance(base, str):
        counts["exact"] += 1
        if base != fresh:
            failures.append(f"{path}: '{fresh}' != baseline '{base}'")
    elif isinstance(base, int) and isinstance(fresh, int):
        counts["exact"] += 1
        if base != fresh:
            failures.append(f"{path}: {fresh} != baseline {base} "
                            f"({fresh - base:+d})")
    elif isinstance(base, (int, float)) and isinstance(fresh, (int, float)):
        if is_exact(key):
            counts["exact"] += 1
            if base != fresh:
                failures.append(f"{path}: {fresh} != baseline {base} "
                                "(exact-match field)")
        elif not is_ratio(key):
            # A float that is neither a ratio nor wall-clock: compare
            # symmetrically so schema drift does not slip through.
            counts["exact"] += 1
            limit = tolerance * max(abs(base), 1e-12)
            if abs(fresh - base) > limit:
                failures.append(f"{path}: {fresh} deviates from "
                                f"baseline {base} by more than "
                                f"{tolerance:.0%}")
        elif base == 0:
            counts["ignored"] += 1
        else:
            counts["ratio"] += 1
            floor = base * (1.0 - tolerance)
            if fresh < floor:
                failures.append(
                    f"{path}: {fresh:.3f} regressed below "
                    f"{floor:.3f} (baseline {base:.3f}, "
                    f"tolerance {tolerance:.0%})")
    else:
        failures.append(f"{path}: baseline {type(base).__name__} vs "
                        f"fresh {type(fresh).__name__}")


def main(argv):
    tolerance = 0.25
    files = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            files.append(arg)
    if len(files) != 2:
        print("usage: bench_compare.py BASELINE FRESH "
              "[--tolerance=0.25]", file=sys.stderr)
        return 2

    docs = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_compare: {path}: {e}", file=sys.stderr)
            return 2

    failures = []
    counts = {"exact": 0, "ratio": 0, "ignored": 0}
    compare(docs[0], docs[1], tolerance, "", failures, counts)
    if failures:
        for line in failures:
            print(f"bench_compare: {files[0]}: {line}", file=sys.stderr)
        print(f"bench_compare: FAIL ({len(failures)} field(s))",
              file=sys.stderr)
        return 1
    print(f"bench_compare: {files[0]}: OK ({counts['exact']} exact, "
          f"{counts['ratio']} ratio-gated, {counts['ignored']} "
          "machine-dependent fields skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
