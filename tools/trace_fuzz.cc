/**
 * @file
 * Trace-format fuzz / round-trip checker.
 *
 * Serializes synthetic benchmark traces in all three formats, feeds
 * them through the seeded fault injector (bit flips, drops, dups,
 * hard truncation), and checks the readers' robustness contract on
 * every sample:
 *
 *   1. no crash, hang, or sanitizer report (run under
 *      -DTLC_SANITIZE=ON in CI);
 *   2. a failed read leaves the destination buffer exactly as it
 *      was on entry (transactional reads);
 *   3. a clean (uncorrupted) round trip reproduces the original
 *      records bit-for-bit.
 *
 * Exit status 0 means every invariant held; any violation prints
 * the offending (format, seed) pair so it can be replayed.
 *
 * Deterministic misbehaviour modes (for drilling the process
 * supervisor and any watchdog/timeout tooling around this binary):
 *
 *   --mode=crash --at=N   raise SIGSEGV right before processing
 *                         record N of the first trace
 *   --mode=hang  --at=N   ignore SIGTERM and sleep forever at
 *                         record N (only SIGKILL ends it)
 *
 * Usage:
 *   trace_fuzz [--mode=fuzz|crash|hang] [--at=N]
 *              [--rounds=200] [--refs=2000] [--rate=0.001] [--seed=1]
 */

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include <signal.h>
#include <unistd.h>

#include "trace/io.hh"
#include "trace/workload.hh"
#include "util/args.hh"
#include "util/faultio.hh"

using namespace tlc;

namespace {

enum class Format { Compressed, RawBinary, Text };

const char *
formatName(Format f)
{
    switch (f) {
      case Format::Compressed:
        return "compressed";
      case Format::RawBinary:
        return "raw-binary";
      case Format::Text:
        return "text";
    }
    return "?";
}

std::string
serialize(const TraceBuffer &buf, Format f)
{
    std::ostringstream os;
    switch (f) {
      case Format::Compressed:
        writeCompressedTrace(os, buf);
        break;
      case Format::RawBinary:
        writeBinaryTrace(os, buf);
        break;
      case Format::Text:
        writeTextTrace(os, buf);
        break;
    }
    return os.str();
}

Status
deserialize(const std::string &bytes, Format f, TraceBuffer &buf)
{
    std::istringstream is(bytes);
    switch (f) {
      case Format::Compressed:
        return readCompressedTrace(is, buf);
      case Format::RawBinary:
        return readBinaryTrace(is, buf);
      case Format::Text:
        return readTextTrace(is, buf);
    }
    return statusf(StatusCode::InternalError, "unknown format");
}

struct Tally
{
    std::uint64_t samples = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t faults = 0;
    std::uint64_t violations = 0;
};

/**
 * Feed one corrupted image to the matching reader and check the
 * transactional-read contract. The buffer is pre-seeded so a sloppy
 * rollback (truncate-to-zero) would also be caught.
 */
void
checkSample(const std::string &image, Format f, std::uint64_t seed,
            Tally &tally)
{
    ++tally.samples;
    TraceBuffer buf;
    buf.append(0xdead0000u, RefType::Instr);
    buf.append(0xdead0010u, RefType::Load);
    const std::size_t entry = buf.size();
    const std::uint64_t entry_instr = buf.instrRefs();
    const std::uint64_t entry_loads = buf.loadRefs();

    Status s = deserialize(image, f, buf);
    if (s.ok()) {
        ++tally.accepted;
        return;
    }
    ++tally.rejected;
    if (buf.size() != entry || buf.instrRefs() != entry_instr ||
        buf.loadRefs() != entry_loads) {
        ++tally.violations;
        std::fprintf(stderr,
                     "VIOLATION [%s seed=%llu]: failed read left %zu "
                     "records (entry %zu); status was: %s\n",
                     formatName(f),
                     static_cast<unsigned long long>(seed), buf.size(),
                     entry, s.toString().c_str());
    }
}

/**
 * Walk the first trace record by record and misbehave exactly at
 * record @p at: deterministic, so a supervising harness can assert
 * on "crashes while processing record N" rather than "crashes
 * sometimes". Never returns once the fault fires.
 */
int
runInjectionMode(const std::string &mode, std::uint64_t refs,
                 std::uint64_t at)
{
    TraceBuffer trace = Workloads::generate(Workloads::all()[0], refs, 0);
    std::uint64_t n = 0;
    for (const auto &ref : trace) {
        (void)ref;
        if (n++ < at)
            continue;
        if (mode == "crash") {
            std::fprintf(stderr,
                         "trace_fuzz: injecting SIGSEGV at record "
                         "%llu\n",
                         static_cast<unsigned long long>(at));
            raise(SIGSEGV);
        }
        std::fprintf(stderr,
                     "trace_fuzz: hanging at record %llu (SIGTERM "
                     "ignored; SIGKILL to end)\n",
                     static_cast<unsigned long long>(at));
        signal(SIGTERM, SIG_IGN);
        for (;;)
            pause();
    }
    std::fprintf(stderr,
                 "trace_fuzz: --at=%llu beyond the trace's %llu "
                 "records; fault never fired\n",
                 static_cast<unsigned long long>(at),
                 static_cast<unsigned long long>(n));
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    const std::string mode = args.getString("mode", "fuzz");
    if (mode == "crash" || mode == "hang") {
        return runInjectionMode(
            mode, static_cast<std::uint64_t>(args.getInt("refs", 2000)),
            static_cast<std::uint64_t>(args.getInt("at", 0)));
    }
    if (mode != "fuzz")
        fatal("--mode must be fuzz, crash or hang (got '%s')",
              mode.c_str());
    const std::uint64_t rounds =
        static_cast<std::uint64_t>(args.getInt("rounds", 200));
    const std::uint64_t refs =
        static_cast<std::uint64_t>(args.getInt("refs", 2000));
    const double rate = args.getDouble("rate", 0.001);
    const std::uint64_t seed0 =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    const Format formats[] = {Format::Compressed, Format::RawBinary,
                              Format::Text};
    Tally tally;
    std::uint64_t clean_failures = 0;

    for (std::uint64_t r = 0; r < rounds; ++r) {
        const auto &benches = Workloads::all();
        Benchmark b = benches[r % benches.size()];
        TraceBuffer orig =
            Workloads::generate(b, refs, static_cast<unsigned>(r % 5));

        for (Format f : formats) {
            const std::string bytes = serialize(orig, f);
            const std::uint64_t seed = seed0 + r * 1000;

            // Clean round trip must reproduce the records exactly.
            TraceBuffer copy;
            Status s = deserialize(bytes, f, copy);
            if (!s.ok() || copy.size() != orig.size() ||
                !std::equal(orig.begin(), orig.end(), copy.begin())) {
                ++clean_failures;
                std::fprintf(stderr,
                             "VIOLATION [%s round=%llu]: clean round "
                             "trip failed: %s\n", formatName(f),
                             static_cast<unsigned long long>(r),
                             s.toString().c_str());
            }

            // Random byte-level faults at the requested rate.
            FaultSpec spec;
            spec.bitFlipRate = rate;
            spec.dropRate = rate / 4;
            spec.dupRate = rate / 4;
            spec.seed = seed;
            {
                std::istringstream src(bytes);
                CorruptingStreamBuf cb(*src.rdbuf(), spec);
                std::string corrupted;
                std::streambuf::int_type c;
                while (!std::streambuf::traits_type::eq_int_type(
                           c = cb.sbumpc(),
                           std::streambuf::traits_type::eof())) {
                    corrupted.push_back(static_cast<char>(c));
                }
                tally.faults += cb.faultsInjected();
                checkSample(corrupted, f, seed, tally);
            }

            // Hard truncation at a seed-derived offset.
            FaultSpec cut;
            cut.seed = seed + 7;
            Pcg32 where(seed + 7, 0xC07);
            cut.truncateAfter = where.nextBounded(
                static_cast<std::uint32_t>(bytes.size()) + 1);
            checkSample(corruptCopy(bytes, cut), f, cut.seed, tally);
        }
    }

    std::printf("trace_fuzz: %llu samples (3 formats x %llu rounds "
                "x 2 fault modes), %llu faults injected\n",
                static_cast<unsigned long long>(tally.samples),
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(tally.faults));
    std::printf("  accepted (benign corruption): %llu\n",
                static_cast<unsigned long long>(tally.accepted));
    std::printf("  rejected with Status        : %llu\n",
                static_cast<unsigned long long>(tally.rejected));
    std::printf("  rollback violations         : %llu\n",
                static_cast<unsigned long long>(tally.violations));
    std::printf("  clean round-trip failures   : %llu\n",
                static_cast<unsigned long long>(clean_failures));

    if (tally.violations || clean_failures) {
        std::fprintf(stderr, "trace_fuzz: FAILED\n");
        return 1;
    }
    std::printf("trace_fuzz: all invariants held\n");
    return 0;
}
