#!/bin/sh
# Tiered verification driver. Every tier is self-contained (it
# configures and builds what it needs), so CI can fan the tiers out
# as independent jobs while `sh tools/check.sh` with no arguments
# still runs everything, exactly as before the tiers existed.
#
# Usage:
#   tools/check.sh                  # full: every tier below, in order
#   tools/check.sh --tier=fast      # configure + build + ctest, then
#                                   # the supervised-sweep recovery
#                                   # drills (crash/hang/kill/resume
#                                   # differentials) and the SIMD
#                                   # dispatch drill (scalar==native)
#   tools/check.sh --tier=asan      # robustness suites under ASan+UBSan
#   tools/check.sh --tier=tsan      # parallel suites under TSan
#   tools/check.sh --tier=smoke     # bench/example smoke runs, the
#                                   # observability and result-store
#                                   # round trips, and the benchmark
#                                   # regression gate (bench_compare.py)
#   tools/check.sh --simd=BACKEND   # force the lane-kernel backend
#                                   # (scalar|avx2|neon|native) for
#                                   # every test and bench in the tier
#                                   # by exporting TLC_SIMD; a pre-set
#                                   # TLC_SIMD in the environment is
#                                   # honoured the same way
#   tools/check.sh --artifacts=DIR  # keep the smoke tier's regenerated
#                                   # BENCH_*.json and the telemetry
#                                   # --metrics-out dump in DIR for CI
#                                   # artifact upload
#
# Ninja is used when available and CMake's default generator
# otherwise; ccache is picked up automatically when installed (CI
# caches its directory across runs).
set -e
cd "$(dirname "$0")/.."

usage="usage: tools/check.sh [--tier=fast|asan|tsan|smoke|full] [--simd=scalar|avx2|neon|native] [--artifacts=DIR]"
tier=full
simd=
artifacts=
for arg in "$@"; do
    case "$arg" in
      --tier=*) tier="${arg#--tier=}" ;;
      --simd=*) simd="${arg#--simd=}" ;;
      --artifacts=*) artifacts="${arg#--artifacts=}" ;;
      *)
        echo "check.sh: unknown argument '$arg'" >&2
        echo "$usage" >&2
        exit 2
        ;;
    esac
done
case "$tier" in
  fast|asan|tsan|smoke|full) ;;
  *)
    echo "check.sh: unknown tier '$tier'" >&2
    echo "$usage" >&2
    exit 2
    ;;
esac
# Validate the backend here, before a tier burns minutes building
# only for the first simulation to panic on a typo. The exported
# TLC_SIMD reaches every ctest case, drill, and bench below (the
# runtime resolves it in activeSimdBackend, util/simd.hh).
case "$simd" in
  ""|scalar|avx2|neon|native) ;;
  *)
    echo "check.sh: unknown --simd backend '$simd'" >&2
    echo "$usage" >&2
    exit 2
    ;;
esac
if [ -n "$simd" ]; then
    TLC_SIMD="$simd"
    export TLC_SIMD
fi
if [ -n "${TLC_SIMD:-}" ]; then
    echo "== SIMD backend forced: TLC_SIMD=$TLC_SIMD =="
fi
if [ -n "$artifacts" ]; then
    mkdir -p "$artifacts"
    # Resolve now: the smoke tier cd's nowhere, but mktemp subshells
    # copy into it and a relative path would be fragile.
    artifacts=$(cd "$artifacts" && pwd)
fi

# The hard Ninja requirement is gone: fall back to CMake's default
# generator (usually Unix Makefiles) when ninja is not on PATH.
GEN=
if command -v ninja >/dev/null 2>&1; then
    GEN="-G Ninja"
fi
LAUNCHER=
if command -v ccache >/dev/null 2>&1; then
    LAUNCHER="-DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

# configure <build-dir> [extra cmake flags...]
#
# `set -e` would abort on a configure failure anyway, but the bare
# CMake error scrolls past in CI logs and the next person chases a
# phantom build or test failure; fail fast with an explicit verdict
# instead.
configure() {
    dir="$1"
    shift
    # $GEN/$LAUNCHER intentionally unquoted: empty means no argument.
    cmake -B "$dir" $GEN $LAUNCHER "$@" || {
        echo "check.sh: FATAL: cmake configure failed for '$dir'" >&2
        echo "check.sh: fix the toolchain/generator errors above;" \
             "nothing was built or tested" >&2
        exit 1
    }
}

build_main() {
    configure build
    cmake --build build
}

run_fast() {
    echo "== tier fast: configure + build + ctest =="
    build_main
    ctest --test-dir build --output-on-failure
    run_dispatch
    run_recovery
}

run_dispatch() {
    # The SIMD dispatch drill: one real explorer sweep forced onto
    # the scalar kernels and one left to runtime cpuid dispatch must
    # print byte-identical reports — scalar==vector is the batched
    # engine's contract (docs/parallelism.md), and this proves it
    # end to end through the Explorer/tryMissStatsBatch path rather
    # than only in the unit differentials. On a host without vector
    # units both runs resolve to scalar and the drill degenerates to
    # a determinism check, which is still worth one cmp.
    echo "== dispatch drill: TLC_SIMD=scalar vs native sweep =="
    dd_dir=$(mktemp -d)
    TLC_SIMD=scalar build/examples/design_explorer --refs=50000 \
        --quiet > "$dd_dir/scalar.txt"
    TLC_SIMD=native build/examples/design_explorer --refs=50000 \
        --quiet > "$dd_dir/native.txt"
    cmp "$dd_dir/scalar.txt" "$dd_dir/native.txt" || {
        echo "TLC_SIMD=scalar sweep differs from native dispatch" >&2
        exit 1
    }
    rm -rf "$dd_dir"
}

run_recovery() {
    # Recovery drills for the fault-isolated sweep supervisor. Every
    # drill is a differential against the plain in-process sweep: the
    # supervisor's whole contract is "same bytes out, whatever the
    # workers do", so any divergence — including a fault that was
    # supposed to be absorbed by retry — fails the tier.
    echo "== recovery drills: supervised sweep differentials =="
    rec_dir=$(mktemp -d)
    build/examples/design_explorer --refs=50000 --quiet \
        > "$rec_dir/inproc.txt"

    # Fault-free isolation must be invisible in the output.
    build/examples/design_explorer --refs=50000 --quiet \
        --isolate=process > "$rec_dir/isolate.txt"
    cmp "$rec_dir/inproc.txt" "$rec_dir/isolate.txt" || {
        echo "isolated sweep output differs from in-process" >&2
        exit 1
    }

    # A worker that crashes once is retried; the sweep self-heals.
    build/examples/design_explorer --refs=50000 --quiet \
        --isolate=process --inject-crash-at=12 --inject-times=1 \
        > "$rec_dir/crash.txt"
    cmp "$rec_dir/inproc.txt" "$rec_dir/crash.txt" || {
        echo "transient worker crash leaked into sweep output" >&2
        exit 1
    }

    # A worker that hangs once (ignoring SIGTERM) is killed by the
    # watchdog and retried; the sweep self-heals.
    build/examples/design_explorer --refs=50000 --quiet \
        --isolate=process --inject-hang-at=12 --inject-times=1 \
        --shard-timeout=2 > "$rec_dir/hang.txt"
    cmp "$rec_dir/inproc.txt" "$rec_dir/hang.txt" || {
        echo "transient worker hang leaked into sweep output" >&2
        exit 1
    }

    # SIGKILL the supervisor mid-sweep, then --resume against the
    # store the workers were appending to: the finished run must be
    # byte-identical. (If the first run wins the race and completes,
    # the resume differential still has to hold.)
    build/examples/design_explorer --refs=50000 --quiet \
        --isolate=process --result-store="$rec_dir/sweep.tlrs" \
        > /dev/null 2>&1 &
    victim=$!
    sleep 1
    kill -KILL "$victim" 2>/dev/null || true
    wait "$victim" 2>/dev/null || true
    sleep 1   # let any orphaned worker drain its final append
    build/examples/design_explorer --refs=50000 --quiet \
        --isolate=process --result-store="$rec_dir/sweep.tlrs" \
        --resume > "$rec_dir/resumed.txt"
    cmp "$rec_dir/inproc.txt" "$rec_dir/resumed.txt" || {
        echo "--resume after SIGKILLed supervisor diverged" >&2
        exit 1
    }

    # The deterministic misbehaviour modes the drills above rely on:
    # --mode=crash must die by signal, --mode=hang must survive
    # SIGTERM and only yield to SIGKILL (rc 137 from timeout -s KILL).
    rc=0
    build/tools/trace_fuzz --mode=crash --at=5 >/dev/null 2>&1 || rc=$?
    [ "$rc" -ge 128 ] || {
        echo "trace_fuzz --mode=crash exited $rc, expected a signal" >&2
        exit 1
    }
    rc=0
    timeout -s KILL 2 build/tools/trace_fuzz --mode=hang --at=5 \
        >/dev/null 2>&1 || rc=$?
    [ "$rc" -eq 137 ] || {
        echo "trace_fuzz --mode=hang exited $rc, expected 137" >&2
        exit 1
    }
    rm -rf "$rec_dir"
}

run_asan() {
    # The fault-injection and store-corruption tests only prove "no
    # memory error on corrupt input" when the memory errors would
    # actually be reported, so build those suites again with the
    # sanitizers on and run a longer fuzz pass.
    echo "== tier asan: robustness suites under ASan+UBSan =="
    configure build-asan -DTLC_SANITIZE=ON
    cmake --build build-asan --target test_robustness \
        test_result_store trace_fuzz
    build-asan/tests/test_robustness
    build-asan/tests/test_result_store
    build-asan/tools/trace_fuzz --rounds=100 --refs=2000
}

run_tsan() {
    # The parallel differential only proves "parallel == serial" when
    # data races would actually be reported, so build the parallel
    # suite (thread pool, differential, golden figures) and the
    # batched-engine differential under ThreadSanitizer and run them
    # with a multi-thread worker team.
    echo "== tier tsan: parallel suites under TSan =="
    configure build-tsan -DTLC_TSAN=ON
    cmake --build build-tsan --target test_parallel test_batch
    TLC_THREADS=4 build-tsan/tests/test_parallel
    TLC_THREADS=4 build-tsan/tests/test_batch
}

run_smoke() {
    echo "== tier smoke: build =="
    build_main

    echo "== smoke-running bench drivers at TLC_TRACE_SCALE=0.05 =="
    for b in build/bench/*; do
        echo "-- $(basename "$b")"
        TLC_TRACE_SCALE=0.05 "$b" > /dev/null
    done

    # Observability end to end: a tiny sweep with progress reporting,
    # a chrome trace, and a run manifest, each validated structurally.
    echo "== smoke-running observability surface =="
    obs_dir=$(mktemp -d)
    build/examples/design_explorer --refs=20000 --budget=500000 \
        --threads=2 --progress --trace-out="$obs_dir/trace.json" \
        --manifest="$obs_dir/manifest.json" \
        > /dev/null 2> "$obs_dir/stderr.txt"
    grep -q "^progress: " "$obs_dir/stderr.txt" || {
        echo "no progress lines on stderr" >&2
        exit 1
    }
    python3 tools/validate_trace.py --trace "$obs_dir/trace.json"
    python3 tools/validate_trace.py --manifest "$obs_dir/manifest.json"
    rm -rf "$obs_dir"

    # Cross-process telemetry end to end: the same sweep under
    # --isolate=process must stream worker metrics back (worker.<id>.*
    # namespaces in the --metrics-out dump), merge trace slices into
    # per-attempt pid tracks, and embed the per-shard attempt
    # timelines in the manifest's "supervisor" object — all validated
    # structurally (docs/observability.md).
    echo "== smoke-running isolated-mode telemetry surface =="
    iso_dir=$(mktemp -d)
    build/examples/design_explorer --refs=20000 --budget=500000 \
        --isolate=process --shard-points=16 --progress \
        --trace-out="$iso_dir/trace.json" \
        --manifest="$iso_dir/manifest.json" \
        --metrics-out="$iso_dir/metrics.json" \
        > /dev/null 2> "$iso_dir/stderr.txt"
    grep -q "^progress: " "$iso_dir/stderr.txt" || {
        echo "no streamed progress lines under --isolate=process" >&2
        exit 1
    }
    python3 tools/validate_trace.py --trace "$iso_dir/trace.json"
    python3 tools/validate_trace.py --manifest "$iso_dir/manifest.json"
    grep -q '"supervisor"' "$iso_dir/manifest.json" || {
        echo "isolated manifest lacks the supervisor timelines" >&2
        exit 1
    }
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" \
        "$iso_dir/metrics.json"
    grep -q '"worker\.' "$iso_dir/metrics.json" || {
        echo "metrics dump lacks worker.<id>.* namespaces" >&2
        exit 1
    }
    if [ -n "$artifacts" ]; then
        cp "$iso_dir/metrics.json" "$artifacts/metrics.json"
        cp "$iso_dir/manifest.json" "$artifacts/manifest.json"
    fi
    rm -rf "$iso_dir"

    # The simulation-trace container round trip: trace_tool writes
    # the version-3 delta/zigzag format with a CRC-32 footer over the
    # decoded records, and the validator re-decodes it independently.
    echo "== smoke-running sim-trace container round trip =="
    sim_dir=$(mktemp -d)
    build/examples/trace_tool generate --bench=gcc1 --refs=30000 \
        --out="$sim_dir/gcc1.trace" > /dev/null
    python3 tools/validate_trace.py --sim-trace "$sim_dir/gcc1.trace"
    rm -rf "$sim_dir"

    # The persistent result store end to end: a cold sweep fills the
    # store, the warm --resume rerun must print byte-identical output,
    # and --resume against a store that does not exist must refuse.
    echo "== smoke-running result store / resume round trip =="
    store_dir=$(mktemp -d)
    build/examples/design_explorer --refs=20000 \
        --result-store="$store_dir/sweep.tlrs" > "$store_dir/cold.txt"
    build/examples/design_explorer --refs=20000 \
        --result-store="$store_dir/sweep.tlrs" --resume \
        > "$store_dir/warm.txt"
    cmp "$store_dir/cold.txt" "$store_dir/warm.txt" || {
        echo "warm --resume sweep output differs from cold" >&2
        exit 1
    }
    if build/examples/design_explorer --refs=20000 \
        --result-store="$store_dir/nonexistent.tlrs" --resume \
        > /dev/null 2>&1; then
        echo "--resume accepted a store file that does not exist" >&2
        exit 1
    fi
    rm -rf "$store_dir"

    # The sweep service end to end (docs/service.md): author a
    # request file with tlc_client --print-request, serve it twice
    # through a live tlcd (cold then warm), once through the CLI
    # --request path, and require all three responses byte-identical
    # — with the warm client's stats proving every point came from
    # the shared result store. SIGTERM must drain and exit 0.
    echo "== smoke-running sweep-service daemon drill =="
    svc_dir=$(mktemp -d)
    build/tools/tlc_client --print-request --bench=gcc1 \
        --refs=20000 --tag=drill > "$svc_dir/request.json"
    build/tools/tlcd --socket="$svc_dir/tlcd.sock" \
        --result-store="$svc_dir/store.tlcr" \
        > "$svc_dir/tlcd.log" 2>&1 &
    svc_pid=$!
    for _ in $(seq 1 100); do
        [ -S "$svc_dir/tlcd.sock" ] && break
        sleep 0.1
    done
    [ -S "$svc_dir/tlcd.sock" ] || {
        echo "tlcd never bound its socket" >&2
        cat "$svc_dir/tlcd.log" >&2
        exit 1
    }
    build/tools/tlc_client --socket="$svc_dir/tlcd.sock" \
        --request="$svc_dir/request.json" \
        --out="$svc_dir/cold.json"
    build/tools/tlc_client --socket="$svc_dir/tlcd.sock" \
        --request="$svc_dir/request.json" \
        --out="$svc_dir/warm.json" \
        --stats-out="$svc_dir/warm_stats.json"
    build/examples/design_explorer \
        --request="$svc_dir/request.json" > "$svc_dir/cli.json"
    cmp "$svc_dir/cold.json" "$svc_dir/warm.json" || {
        echo "warm daemon response differs from cold" >&2
        exit 1
    }
    cmp "$svc_dir/cold.json" "$svc_dir/cli.json" || {
        echo "daemon response differs from --request CLI" >&2
        exit 1
    }
    python3 - "$svc_dir/warm_stats.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["schema"] == "tlc-sweep-stats-v1", s
assert s["store_hits"] > 0 and s["store_misses"] == 0, s
EOF
    kill -TERM "$svc_pid"
    wait "$svc_pid" || {
        echo "tlcd did not exit 0 on SIGTERM" >&2
        cat "$svc_dir/tlcd.log" >&2
        exit 1
    }
    rm -rf "$svc_dir"

    # The batched engine's speedup claim is only worth checking in if
    # the equivalence self-check passes (the bench fatals on any
    # counter mismatch) and the JSON it emits is well-formed.
    echo "== smoke-running batched sweep timing =="
    batch_json=$(mktemp)
    TLC_TRACE_SCALE=0.05 build/bench/bench_batch_sweep_timing \
        > "$batch_json"
    python3 -c "import json, sys; json.load(open(sys.argv[1]))" \
        "$batch_json"
    rm -f "$batch_json"

    # The analytic backend's accuracy contract, re-proven on the
    # smoke machine: the differential suite pins the analytic
    # reuse-distance model bit-exact against the simulator on the
    # paper's reference space and within per-workload error bounds
    # off it, and exercises the corrupt-corpus fail-soft parity
    # (same tlc::Status codes and FailureReport entries from either
    # backend). See docs/analytic_model.md for the bounds.
    echo "== smoke-running analytic differential bounds =="
    build/tests/test_analytic \
        --gtest_filter='AnalyticDifferential.*' > /dev/null

    # The benchmark regression gate: regenerate the five checked-in
    # BENCH_*.json documents at their reference settings and compare
    # against the committed baselines. Counts must match exactly
    # (the recovery drill's quarantine/retry/bisection counts are
    # pinned exact by name in bench_compare.py); ratios (speedup, hit
    # rates) may not regress past the tolerance; absolute seconds are
    # machine-dependent and ignored. One worker keeps the cache-memo
    # counters deterministic.
    echo "== benchmark regression gate (bench_compare.py) =="
    gate_dir=$(mktemp -d)
    TLC_THREADS=1 build/bench/bench_sweep_timing \
        > "$gate_dir/sweep.json"
    TLC_THREADS=1 build/bench/bench_batch_sweep_timing \
        > "$gate_dir/batch.json"
    TLC_THREADS=1 build/bench/bench_observability_snapshot \
        > "$gate_dir/observability.json"
    TLC_THREADS=1 build/bench/bench_supervisor_recovery \
        > "$gate_dir/recovery.json" 2>/dev/null
    TLC_THREADS=1 build/bench/bench_analytic_sweep \
        > "$gate_dir/analytic.json"
    TLC_THREADS=1 build/bench/bench_service_throughput \
        > "$gate_dir/service.json" 2>/dev/null
    python3 tools/bench_compare.py BENCH_sweep.json \
        "$gate_dir/sweep.json"
    python3 tools/bench_compare.py BENCH_batch.json \
        "$gate_dir/batch.json"
    python3 tools/bench_compare.py BENCH_observability.json \
        "$gate_dir/observability.json"
    python3 tools/bench_compare.py BENCH_recovery.json \
        "$gate_dir/recovery.json"
    python3 tools/bench_compare.py BENCH_analytic.json \
        "$gate_dir/analytic.json"
    python3 tools/bench_compare.py BENCH_service.json \
        "$gate_dir/service.json"
    if [ -n "$artifacts" ]; then
        # Keep the regenerated documents under their committed names
        # so a CI artifact download drops straight onto the repo when
        # a baseline update is intentional.
        for doc in sweep batch observability recovery analytic \
                   service; do
            cp "$gate_dir/$doc.json" "$artifacts/BENCH_$doc.json"
        done
    fi
    rm -rf "$gate_dir"
}

case "$tier" in
  fast)  run_fast ;;
  asan)  run_asan ;;
  tsan)  run_tsan ;;
  smoke) run_smoke ;;
  full)
    run_fast
    run_smoke
    run_asan
    run_tsan
    ;;
esac

echo "== tier '$tier' passed =="
