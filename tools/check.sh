#!/bin/sh
# One-shot verification: configure, build, run the full test suite,
# then smoke-run every bench driver and example at reduced trace
# scale, then re-run the robustness suite and a longer fuzz pass
# under ASan+UBSan. This is the CI entry point.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== smoke-running bench drivers at TLC_TRACE_SCALE=0.05 =="
for b in build/bench/*; do
    echo "-- $(basename "$b")"
    TLC_TRACE_SCALE=0.05 "$b" > /dev/null
done

# Observability end to end: a tiny sweep with progress reporting, a
# chrome trace, and a run manifest, each validated structurally.
echo "== smoke-running observability surface =="
obs_dir=$(mktemp -d)
build/examples/design_explorer --refs=20000 --budget=500000 \
    --threads=2 --progress --trace-out="$obs_dir/trace.json" \
    --manifest="$obs_dir/manifest.json" \
    > /dev/null 2> "$obs_dir/stderr.txt"
grep -q "^progress: " "$obs_dir/stderr.txt" || {
    echo "no progress lines on stderr" >&2
    exit 1
}
python3 tools/validate_trace.py --trace "$obs_dir/trace.json"
python3 tools/validate_trace.py --manifest "$obs_dir/manifest.json"
rm -rf "$obs_dir"

# The fault-injection tests only prove "no memory error on corrupt
# input" when the memory errors would actually be reported, so build
# them again with the sanitizers on and run a longer fuzz pass.
echo "== rebuilding fault-injection suite with ASan+UBSan =="
cmake -B build-asan -G Ninja -DTLC_SANITIZE=ON
cmake --build build-asan --target test_robustness trace_fuzz

echo "== running sanitized robustness tests =="
build-asan/tests/test_robustness
build-asan/tools/trace_fuzz --rounds=100 --refs=2000

# The batched engine's speedup claim is only worth checking in if
# the equivalence self-check passes (the bench fatals on any counter
# mismatch) and the JSON it emits is well-formed.
echo "== smoke-running batched sweep timing =="
batch_json=$(mktemp)
TLC_TRACE_SCALE=0.05 build/bench/bench_batch_sweep_timing \
    > "$batch_json"
python3 -c "import json, sys; json.load(open(sys.argv[1]))" \
    "$batch_json"
rm -f "$batch_json"

# The parallel differential only proves "parallel == serial" when
# data races would actually be reported, so build the parallel suite
# (thread pool, differential, golden figures) and the batched-engine
# differential again under ThreadSanitizer and run them with a
# multi-thread worker team.
echo "== rebuilding parallel suite with ThreadSanitizer =="
cmake -B build-tsan -G Ninja -DTLC_TSAN=ON
cmake --build build-tsan --target test_parallel test_batch

echo "== running parallel + differential tests under TSan =="
TLC_THREADS=4 build-tsan/tests/test_parallel
TLC_THREADS=4 build-tsan/tests/test_batch

echo "== all checks passed =="
