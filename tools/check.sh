#!/bin/sh
# One-shot verification: configure, build, run the full test suite,
# then smoke-run every bench driver and example at reduced trace
# scale. This is the CI entry point.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== smoke-running bench drivers at TLC_TRACE_SCALE=0.05 =="
for b in build/bench/*; do
    echo "-- $(basename "$b")"
    TLC_TRACE_SCALE=0.05 "$b" > /dev/null
done

echo "== all checks passed =="
