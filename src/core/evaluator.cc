/**
 * @file
 * Miss-rate evaluator implementation.
 */

#include "evaluator.hh"

#include <sstream>

#include "cache/single_level.hh"
#include "trace/io.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/profiler.hh"

namespace tlc {

namespace {

/** Evaluator metrics, registered once and shared by all sites. */
struct EvalMetrics
{
    MetricCounter &memoHits;
    MetricCounter &memoMisses;
    MetricCounter &tracesGenerated;
    MetricCounter &syntheticRecords;

    static EvalMetrics &get()
    {
        static EvalMetrics m{
            MetricsRegistry::global().counter(
                "explore.missrate_cache.hits"),
            MetricsRegistry::global().counter(
                "explore.missrate_cache.misses"),
            MetricsRegistry::global().counter(
                "trace.synthetic.generated"),
            MetricsRegistry::global().counter(
                "trace.synthetic.records"),
        };
        return m;
    }
};

} // namespace

MissRateEvaluator::MissRateEvaluator(std::uint64_t trace_refs,
                                     double warmup_fraction)
    : traceRefs_(trace_refs ? trace_refs : Workloads::defaultTraceLength()),
      warmupFraction_(warmup_fraction)
{
    tlc_assert(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
               "warmup fraction %f out of range", warmup_fraction);
}

std::uint64_t
MissRateEvaluator::warmupRefs() const
{
    return static_cast<std::uint64_t>(
        warmupFraction_ * static_cast<double>(traceRefs_));
}

void
MissRateEvaluator::setTraceFile(Benchmark b, std::string path)
{
    std::lock_guard<std::mutex> lock(mu_);
    traceFiles_[b] = std::move(path);
    traces_.erase(b);
}

Expected<const TraceBuffer *>
MissRateEvaluator::tryTrace(Benchmark b)
{
    // The whole load runs under the lock: it happens once per
    // benchmark (evaluateAll preloads before fanning out), and a
    // half-inserted TraceBuffer must never be visible to a worker.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = traces_.find(b);
    if (it != traces_.end())
        return static_cast<const TraceBuffer *>(&it->second);

    ScopedTimer timer(phase::kTraceLoad);
    auto fit = traceFiles_.find(b);
    if (fit != traceFiles_.end()) {
        TraceBuffer buf;
        Status s = loadTraceFile(fit->second, buf);
        if (!s.ok()) {
            return s.withContext(std::string("benchmark '") +
                                 Workloads::info(b).name + "'");
        }
        if (buf.empty()) {
            return statusf(StatusCode::IoError,
                           "benchmark '%s': trace file '%s' holds no "
                           "records", Workloads::info(b).name,
                           fit->second.c_str());
        }
        it = traces_.emplace(b, std::move(buf)).first;
        return static_cast<const TraceBuffer *>(&it->second);
    }

    it = traces_.emplace(b, Workloads::generate(b, traceRefs_)).first;
    EvalMetrics::get().tracesGenerated.inc();
    EvalMetrics::get().syntheticRecords.inc(it->second.size());
    return static_cast<const TraceBuffer *>(&it->second);
}

const TraceBuffer &
MissRateEvaluator::trace(Benchmark b)
{
    Expected<const TraceBuffer *> t = tryTrace(b);
    tlc_assert(t.ok(), "trace unavailable: %s",
               t.status().message().c_str());
    return *t.value();
}

std::string
MissRateEvaluator::key(Benchmark b, const SystemConfig &c) const
{
    std::ostringstream os;
    os << static_cast<int>(b) << ":" << c.l1Bytes << ":" << c.l2Bytes
       << ":" << c.assume.lineBytes << ":" << c.assume.l1Assoc;
    if (c.hasL2()) {
        os << ":" << c.assume.l2Assoc << ":"
           << static_cast<int>(c.assume.policy) << ":"
           << static_cast<int>(c.assume.l2Repl);
    }
    return os.str();
}

std::unique_ptr<Hierarchy>
MissRateEvaluator::makeHierarchy(const SystemConfig &config)
{
    if (config.hasL2()) {
        return std::make_unique<TwoLevelHierarchy>(
            config.l1Params(), config.l2Params(), config.assume.policy);
    }
    return std::make_unique<SingleLevelHierarchy>(config.l1Params());
}

Expected<HierarchyStats>
MissRateEvaluator::tryMissStats(Benchmark b, const SystemConfig &config)
{
    Status cs = config.check();
    if (!cs.ok())
        return cs;

    std::string k = key(b, config);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = results_.find(k);
        if (it != results_.end()) {
            EvalMetrics::get().memoHits.inc();
            return it->second;
        }
    }
    EvalMetrics::get().memoMisses.inc();

    Expected<const TraceBuffer *> t = tryTrace(b);
    if (!t.ok())
        return t.status();

    // Simulate outside the lock on a per-call hierarchy; the trace
    // buffer is read-only and its map node is never erased, so the
    // pointer stays valid while workers share it.
    std::unique_ptr<Hierarchy> h = makeHierarchy(config);
    {
        ScopedTimer timer(config.hasL2() ? phase::kSimL2
                                         : phase::kSimL1);
        h->simulate(*t.value(), warmupRefs());
    }
    recordHierarchyMetrics(h->stats());

    std::lock_guard<std::mutex> lock(mu_);
    return results_.emplace(k, h->stats()).first->second;
}

const HierarchyStats &
MissRateEvaluator::missStats(Benchmark b, const SystemConfig &config)
{
    std::string k = key(b, config);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = results_.find(k);
        if (it != results_.end()) {
            EvalMetrics::get().memoHits.inc();
            return it->second;
        }
    }
    EvalMetrics::get().memoMisses.inc();

    std::unique_ptr<Hierarchy> h = makeHierarchy(config);
    {
        ScopedTimer timer(config.hasL2() ? phase::kSimL2
                                         : phase::kSimL1);
        simulate(b, *h);
    }
    recordHierarchyMetrics(h->stats());

    // std::map node addresses are stable, so the returned reference
    // survives later insertions by other workers.
    std::lock_guard<std::mutex> lock(mu_);
    return results_.emplace(k, h->stats()).first->second;
}

void
MissRateEvaluator::simulate(Benchmark b, Hierarchy &h)
{
    h.simulate(trace(b), warmupRefs());
}

} // namespace tlc
