/**
 * @file
 * Miss-rate evaluator implementation.
 */

#include "evaluator.hh"

#include <sstream>

#include "cache/single_level.hh"
#include "util/logging.hh"

namespace tlc {

MissRateEvaluator::MissRateEvaluator(std::uint64_t trace_refs,
                                     double warmup_fraction)
    : traceRefs_(trace_refs ? trace_refs : Workloads::defaultTraceLength()),
      warmupFraction_(warmup_fraction)
{
    tlc_assert(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
               "warmup fraction %f out of range", warmup_fraction);
}

std::uint64_t
MissRateEvaluator::warmupRefs() const
{
    return static_cast<std::uint64_t>(
        warmupFraction_ * static_cast<double>(traceRefs_));
}

const TraceBuffer &
MissRateEvaluator::trace(Benchmark b)
{
    auto it = traces_.find(b);
    if (it == traces_.end()) {
        it = traces_.emplace(b, Workloads::generate(b, traceRefs_)).first;
    }
    return it->second;
}

std::string
MissRateEvaluator::key(Benchmark b, const SystemConfig &c) const
{
    std::ostringstream os;
    os << static_cast<int>(b) << ":" << c.l1Bytes << ":" << c.l2Bytes
       << ":" << c.assume.lineBytes << ":" << c.assume.l1Assoc;
    if (c.hasL2()) {
        os << ":" << c.assume.l2Assoc << ":"
           << static_cast<int>(c.assume.policy) << ":"
           << static_cast<int>(c.assume.l2Repl);
    }
    return os.str();
}

const HierarchyStats &
MissRateEvaluator::missStats(Benchmark b, const SystemConfig &config)
{
    std::string k = key(b, config);
    auto it = results_.find(k);
    if (it != results_.end())
        return it->second;

    std::unique_ptr<Hierarchy> h;
    if (config.hasL2()) {
        h = std::make_unique<TwoLevelHierarchy>(
            config.l1Params(), config.l2Params(), config.assume.policy);
    } else {
        h = std::make_unique<SingleLevelHierarchy>(config.l1Params());
    }
    simulate(b, *h);
    return results_.emplace(k, h->stats()).first->second;
}

void
MissRateEvaluator::simulate(Benchmark b, Hierarchy &h) const
{
    // trace() is non-const only for lazy generation.
    const TraceBuffer &t =
        const_cast<MissRateEvaluator *>(this)->trace(b);
    h.simulate(t, warmupRefs());
}

} // namespace tlc
