/**
 * @file
 * Miss-rate evaluator implementation.
 */

#include "evaluator.hh"

#include <optional>
#include <sstream>

#include "cache/single_level.hh"
#include "core/batch_engine.hh"
#include "trace/io.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/profiler.hh"

namespace tlc {

namespace {

/** Evaluator metrics, registered once and shared by all sites. */
struct EvalMetrics
{
    MetricCounter &memoHits;
    MetricCounter &memoMisses;
    MetricCounter &tracesGenerated;
    MetricCounter &syntheticRecords;
    MetricCounter &analyticPoints;

    static EvalMetrics &get()
    {
        static EvalMetrics m{
            MetricsRegistry::global().counter(
                "explore.missrate_cache.hits"),
            MetricsRegistry::global().counter(
                "explore.missrate_cache.misses"),
            MetricsRegistry::global().counter(
                "trace.synthetic.generated"),
            MetricsRegistry::global().counter(
                "trace.synthetic.records"),
            MetricsRegistry::global().counter(
                "explore.analytic.points"),
        };
        return m;
    }
};

/**
 * Versioned persistent-store tag of the analytic model. Bump when
 * the reuse-distance model changes meaning, so stale analytic
 * entries stop matching without touching exact entries (whose key
 * texts must stay byte-compatible with stores written before
 * backends existed).
 */
constexpr const char *kAnalyticStoreTag = "analytic1";

} // namespace

Expected<const TraceBuffer *>
TracePool::acquire(const std::string &key,
                   const std::function<Expected<TraceBuffer>()> &loader)
{
    // Held across the load on purpose: one load, many readers.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = traces_.find(key);
    if (it != traces_.end())
        return static_cast<const TraceBuffer *>(it->second.get());

    Expected<TraceBuffer> loaded = loader();
    if (!loaded.ok())
        return loaded.status();
    it = traces_
             .emplace(key, std::make_unique<TraceBuffer>(
                               std::move(loaded.value())))
             .first;
    return static_cast<const TraceBuffer *>(it->second.get());
}

std::size_t
TracePool::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return traces_.size();
}

const char *
missBackendName(MissBackend b)
{
    switch (b) {
      case MissBackend::Exact:
        return "exact";
      case MissBackend::Analytic:
        return "analytic";
      case MissBackend::AnalyticPrune:
        return "analytic-prune";
    }
    return "unknown";
}

bool
missBackendFromName(const std::string &name, MissBackend &out)
{
    std::string canon = name;
    for (char &c : canon) {
        if (c == '_')
            c = '-';
    }
    if (canon == "exact") {
        out = MissBackend::Exact;
        return true;
    }
    if (canon == "analytic") {
        out = MissBackend::Analytic;
        return true;
    }
    if (canon == "analytic-prune" || canon == "prune") {
        out = MissBackend::AnalyticPrune;
        return true;
    }
    return false;
}

MissRateEvaluator::MissRateEvaluator(EvaluatorOptions options)
    : traceRefs_(options.traceRefs ? options.traceRefs
                                   : Workloads::defaultTraceLength()),
      warmupFraction_(options.warmupFraction),
      backend_(options.backend),
      pruneMargin_(options.pruneMargin),
      store_(std::move(options.resultStore)),
      pool_(std::move(options.tracePool)),
      traceFiles_(std::move(options.traceFiles))
{
    tlc_assert(warmupFraction_ >= 0.0 && warmupFraction_ < 1.0,
               "warmup fraction %f out of range", warmupFraction_);
    tlc_assert(pruneMargin_ >= 0.0, "prune margin %f negative",
               pruneMargin_);
}

MissRateEvaluator::MissRateEvaluator(std::uint64_t trace_refs,
                                     double warmup_fraction)
    : MissRateEvaluator(EvaluatorOptions{trace_refs, warmup_fraction, {}})
{
}

std::uint64_t
MissRateEvaluator::warmupRefs() const
{
    return static_cast<std::uint64_t>(
        warmupFraction_ * static_cast<double>(traceRefs_));
}

std::size_t
MissRateEvaluator::memoSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return results_.size();
}

Expected<TraceBuffer>
MissRateEvaluator::loadTrace(Benchmark b, const std::string &trace_file)
{
    ScopedTimer timer(phase::kTraceLoad);
    if (!trace_file.empty()) {
        TraceBuffer buf;
        Status s = loadTraceFile(trace_file, buf);
        if (!s.ok()) {
            return s.withContext(std::string("benchmark '") +
                                 Workloads::info(b).name + "'");
        }
        if (buf.empty()) {
            return statusf(StatusCode::IoError,
                           "benchmark '%s': trace file '%s' holds no "
                           "records", Workloads::info(b).name,
                           trace_file.c_str());
        }
        return buf;
    }

    TraceBuffer buf = Workloads::generate(b, traceRefs_);
    EvalMetrics::get().tracesGenerated.inc();
    EvalMetrics::get().syntheticRecords.inc(buf.size());
    return buf;
}

Expected<const TraceBuffer *>
MissRateEvaluator::tryTrace(Benchmark b)
{
    std::string traceFile;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto fit = traceFiles_.find(b);
        if (fit != traceFiles_.end())
            traceFile = fit->second;
    }

    // Pooled path: short-lived evaluators (one per served sweep
    // request) resolve traces in the shared process-wide pool keyed
    // by trace identity, so a fresh evaluator never re-generates a
    // trace a previous request already paid for. The pool's own
    // mutex serializes loads.
    if (pool_) {
        return pool_->acquire(
            SweepCache::traceIdentity(b, traceRefs_, traceFile),
            [&] { return loadTrace(b, traceFile); });
    }

    // The whole load runs under the lock: it happens once per
    // benchmark (evaluateAll preloads before fanning out), and a
    // half-inserted TraceBuffer must never be visible to a worker.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = traces_.find(b);
    if (it != traces_.end())
        return static_cast<const TraceBuffer *>(&it->second);

    Expected<TraceBuffer> loaded = loadTrace(b, traceFile);
    if (!loaded.ok())
        return loaded.status();
    it = traces_.emplace(b, std::move(loaded.value())).first;
    return static_cast<const TraceBuffer *>(&it->second);
}

std::string
MissRateEvaluator::key(Benchmark b, const SystemConfig &c) const
{
    std::ostringstream os;
    os << static_cast<int>(b) << ":" << c.missKeyString();
    return os.str();
}

std::string
MissRateEvaluator::storeKeyText(Benchmark b, const SystemConfig &c,
                                MissBackend backend)
{
    std::string traceId;
    {
        // The trace identity (a stat of the trace file at most) is
        // computed once per benchmark and cached; it deliberately
        // does NOT load the trace, so a fully warm sweep never
        // touches trace bytes.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = traceIds_.find(b);
        if (it == traceIds_.end()) {
            auto fit = traceFiles_.find(b);
            it = traceIds_
                     .emplace(b, SweepCache::traceIdentity(
                                     b, traceRefs_,
                                     fit == traceFiles_.end()
                                         ? std::string()
                                         : fit->second))
                     .first;
        }
        traceId = it->second;
    }
    // Exact results keep the legacy (tag-free) key text so stores
    // written before backends existed stay warm; analytic estimates
    // get a versioned tag and can never alias them.
    return SweepCache::keyText(traceId, warmupRefs(), c,
                               backend == MissBackend::Analytic
                                   ? kAnalyticStoreTag
                                   : std::string());
}

std::unique_ptr<Hierarchy>
MissRateEvaluator::makeHierarchy(const SystemConfig &config)
{
    if (config.hasL2()) {
        return std::make_unique<TwoLevelHierarchy>(
            config.l1Params(), config.l2Params(), config.assume.policy);
    }
    return std::make_unique<SingleLevelHierarchy>(config.l1Params());
}

Expected<const ReuseProfile *>
MissRateEvaluator::tryProfile(Benchmark b, std::uint32_t line_bytes,
                              std::uint32_t l2_ways, ReplPolicy l2_repl)
{
    const std::tuple<int, std::uint32_t, std::uint32_t, int> pk{
        static_cast<int>(b), line_bytes, l2_ways,
        static_cast<int>(l2_repl)};
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = profiles_.find(pk);
        if (it != profiles_.end())
            return static_cast<const ReuseProfile *>(it->second.get());
    }

    Expected<const TraceBuffer *> t = tryTrace(b);
    if (!t.ok())
        return t.status();

    // Profile outside the lock — it is one full trace pass. Two
    // workers racing on the same key compute identical (deterministic)
    // profiles and the first insert wins; the loser's copy is freed.
    auto prof = std::make_unique<ReuseProfile>(
        ReuseProfile::profile(*t.value(), line_bytes, warmupRefs(),
                              l2_ways, l2_repl));

    std::lock_guard<std::mutex> lock(mu_);
    auto it = profiles_.emplace(pk, std::move(prof)).first;
    return static_cast<const ReuseProfile *>(it->second.get());
}

Expected<HierarchyStats>
MissRateEvaluator::tryAnalyticStats(Benchmark b,
                                    const SystemConfig &config)
{
    Status cs = config.check();
    if (!cs.ok())
        return cs;

    // Backend-distinct memo key: exact keys start with a digit, so
    // the prefix can never collide with them.
    std::string k = "analytic:" + key(b, config);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = results_.find(k);
        if (it != results_.end()) {
            EvalMetrics::get().memoHits.inc();
            return it->second;
        }
    }
    EvalMetrics::get().memoMisses.inc();

    std::string text;
    if (hasResultStore()) {
        text = storeKeyText(b, config, MissBackend::Analytic);
        if (std::optional<HierarchyStats> cached = store_->lookup(text)) {
            std::lock_guard<std::mutex> lock(mu_);
            return results_.emplace(k, *cached).first->second;
        }
    }

    Expected<const ReuseProfile *> prof =
        tryProfile(b, config.assume.lineBytes, config.assume.l2Assoc,
                   config.assume.l2Repl);
    if (!prof.ok())
        return prof.status();

    // Deliberately NOT recordHierarchyMetrics: the cache.* counters
    // audit what was actually simulated, and analytic estimates
    // would contaminate them.
    HierarchyStats s = prof.value()->statsFor(config);
    EvalMetrics::get().analyticPoints.inc();
    if (hasResultStore())
        store_->store(text, s);

    std::lock_guard<std::mutex> lock(mu_);
    return results_.emplace(k, s).first->second;
}

Expected<HierarchyStats>
MissRateEvaluator::tryMissStats(Benchmark b, const SystemConfig &config)
{
    if (backend_ == MissBackend::Analytic)
        return tryAnalyticStats(b, config);

    Status cs = config.check();
    if (!cs.ok())
        return cs;

    std::string k = key(b, config);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = results_.find(k);
        if (it != results_.end()) {
            EvalMetrics::get().memoHits.inc();
            return it->second;
        }
    }
    EvalMetrics::get().memoMisses.inc();

    // Second cache level: the persistent store. A hit skips the
    // trace load and the simulation entirely.
    if (hasResultStore()) {
        std::string text = storeKeyText(b, config);
        if (std::optional<HierarchyStats> cached = store_->lookup(text)) {
            std::lock_guard<std::mutex> lock(mu_);
            return results_.emplace(k, *cached).first->second;
        }
    }

    Expected<const TraceBuffer *> t = tryTrace(b);
    if (!t.ok())
        return t.status();

    // Simulate outside the lock on a per-call hierarchy; the trace
    // buffer is read-only and its map node is never erased, so the
    // pointer stays valid while workers share it.
    std::unique_ptr<Hierarchy> h = makeHierarchy(config);
    {
        ScopedTimer timer(config.hasL2() ? phase::kSimL2
                                         : phase::kSimL1);
        h->simulate(*t.value(), warmupRefs());
    }
    recordHierarchyMetrics(h->stats());
    if (hasResultStore())
        store_->store(storeKeyText(b, config), h->stats());

    std::lock_guard<std::mutex> lock(mu_);
    return results_.emplace(k, h->stats()).first->second;
}

std::vector<Expected<HierarchyStats>>
MissRateEvaluator::tryMissStatsBatch(Benchmark b,
                                     std::span<const SystemConfig> configs)
{
    if (backend_ == MissBackend::Analytic) {
        // No trace pass to share: every slot is answered from the
        // (one-time) profile, with the same per-slot fail-soft
        // semantics as the exact batch — an invalid config fails its
        // own slot, an unobtainable trace fails every slot with the
        // identical Status the exact path would report.
        std::vector<Expected<HierarchyStats>> out;
        out.reserve(configs.size());
        for (const SystemConfig &c : configs)
            out.push_back(tryAnalyticStats(b, c));
        return out;
    }

    // Placeholder status for slots resolved later; every slot is
    // overwritten before the function returns.
    const Status pending =
        statusf(StatusCode::InternalError, "batch slot not resolved");

    std::vector<Expected<HierarchyStats>> out;
    out.reserve(configs.size());
    std::vector<std::size_t> missing;   ///< slot index -> configs index
    std::vector<std::size_t> missingLane; ///< slot index -> lane index
    std::vector<SystemConfig> laneConfigs; ///< one per unique memo key
    std::vector<std::string> laneKeys;
    std::map<std::string, std::size_t> laneOf;

    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            Status cs = configs[i].check();
            if (!cs.ok()) {
                out.emplace_back(std::move(cs));
                continue;
            }
            std::string k = key(b, configs[i]);
            auto it = results_.find(k);
            if (it != results_.end()) {
                EvalMetrics::get().memoHits.inc();
                out.emplace_back(it->second);
                continue;
            }
            out.emplace_back(pending);
            missing.push_back(i);
            auto [lit, inserted] =
                laneOf.emplace(std::move(k), laneConfigs.size());
            if (inserted) {
                laneConfigs.push_back(configs[i]);
                laneKeys.push_back(lit->first);
            }
            missingLane.push_back(lit->second);
        }
    }
    if (missing.empty())
        return out;
    EvalMetrics::get().memoMisses.inc(laneConfigs.size());

    // Second cache level: resolve lanes from the persistent store
    // before touching the trace. laneStats[lane] ends up holding
    // each lane's statistics however they were obtained; only the
    // lanes the store could not answer simulate, and when that set
    // is empty the trace is never loaded or generated at all.
    std::vector<std::optional<HierarchyStats>> laneStats(
        laneConfigs.size());
    std::vector<std::string> laneText(laneConfigs.size());
    std::vector<std::size_t> simLanes;
    if (hasResultStore()) {
        for (std::size_t lane = 0; lane < laneConfigs.size(); ++lane) {
            laneText[lane] = storeKeyText(b, laneConfigs[lane]);
            laneStats[lane] = store_->lookup(laneText[lane]);
            if (!laneStats[lane])
                simLanes.push_back(lane);
        }
    } else {
        for (std::size_t lane = 0; lane < laneConfigs.size(); ++lane)
            simLanes.push_back(lane);
    }

    // Timing-only knobs collapse onto one memo key, so each unique
    // key simulates exactly once — one lane — and the whole group
    // shares a single pass over the trace.
    Status traceFailure;
    if (!simLanes.empty()) {
        Expected<const TraceBuffer *> t = tryTrace(b);
        if (!t.ok()) {
            traceFailure = t.status();
        } else {
            std::vector<SystemConfig> simConfigs;
            simConfigs.reserve(simLanes.size());
            for (std::size_t lane : simLanes)
                simConfigs.push_back(laneConfigs[lane]);
            BatchEngine::Result batch = BatchEngine::simulateConfigs(
                *t.value(), warmupRefs(), simConfigs);
            for (std::size_t j = 0; j < simLanes.size(); ++j) {
                laneStats[simLanes[j]] = batch.stats[j];
                recordHierarchyMetrics(batch.stats[j]);
                if (hasResultStore())
                    store_->store(laneText[simLanes[j]],
                                  batch.stats[j]);
            }
        }
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        for (std::size_t lane = 0; lane < laneKeys.size(); ++lane) {
            if (laneStats[lane])
                results_.emplace(laneKeys[lane], *laneStats[lane]);
        }
    }
    for (std::size_t j = 0; j < missing.size(); ++j) {
        const std::optional<HierarchyStats> &s =
            laneStats[missingLane[j]];
        out[missing[j]] = s ? Expected<HierarchyStats>(*s)
                            : Expected<HierarchyStats>(traceFailure);
    }
    return out;
}

void
MissRateEvaluator::simulate(Benchmark b, Hierarchy &h)
{
    Expected<const TraceBuffer *> t = tryTrace(b);
    tlc_assert(t.ok(), "trace unavailable: %s",
               t.status().message().c_str());
    h.simulate(*t.value(), warmupRefs());
}

} // namespace tlc
