/**
 * @file
 * Explorer implementation.
 */

#include "explorer.hh"

#include <optional>
#include <sstream>

#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/table.hh"

namespace tlc {

// ---------------------------------------------------------------------
// FailureReport
// ---------------------------------------------------------------------

void
FailureReport::add(std::string subject, Status status)
{
    tlc_assert(!status.ok(), "recording an OK status for '%s'",
               subject.c_str());
    std::lock_guard<std::mutex> lock(mu_);
    failures_.push_back({std::move(subject), std::move(status)});
}

bool
FailureReport::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_.empty();
}

std::size_t
FailureReport::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_.size();
}

const std::vector<SweepFailure> &
FailureReport::failures() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
}

bool
FailureReport::mentions(const std::string &needle) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &f : failures_) {
        if (f.subject.find(needle) != std::string::npos ||
            f.status.message().find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

std::string
FailureReport::summary() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    if (failures_.empty()) {
        os << "sweep completed with no failures\n";
        return os.str();
    }
    os << "sweep skipped " << failures_.size() << " point"
       << (failures_.size() == 1 ? "" : "s") << ":\n";
    Table t({"subject", "error", "detail"});
    for (const auto &f : failures_) {
        t.beginRow();
        t.cell(f.subject);
        t.cell(statusCodeName(f.status.code()));
        t.cell(f.status.message());
    }
    t.printAscii(os);
    return os.str();
}

// ---------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------

Explorer::Explorer(MissRateEvaluator &evaluator,
                   const AccessTimeModel &timing, const AreaModel &area)
    : evaluator_(evaluator), timing_(timing), area_(area)
{
}

const TimingResult &
Explorer::timingOf(std::uint64_t size_bytes, std::uint32_t assoc,
                   std::uint32_t line_bytes)
{
    TimingKey key = timingKey(size_bytes, assoc, line_bytes);
    {
        std::lock_guard<std::mutex> lock(timingMu_);
        auto it = timingCache_.find(key);
        if (it != timingCache_.end())
            return it->second;
    }

    // Run the organization search outside the lock — it is the
    // expensive part, and two workers racing to price the same
    // geometry compute identical results (emplace keeps the first).
    SramGeometry g;
    g.sizeBytes = size_bytes;
    g.blockBytes = line_bytes;
    g.assoc = assoc;
    TimingResult r = timing_.optimize(g);

    std::lock_guard<std::mutex> lock(timingMu_);
    // std::map node addresses are stable, so the reference survives
    // later insertions by other workers.
    return timingCache_.emplace(key, std::move(r)).first->second;
}

std::size_t
Explorer::timingCacheSize() const
{
    std::lock_guard<std::mutex> lock(timingMu_);
    return timingCache_.size();
}

double
Explorer::areaOf(const SystemConfig &config)
{
    const std::uint32_t line = config.assume.lineBytes;
    const TimingResult &l1t =
        timingOf(config.l1Bytes, config.assume.l1Assoc, line);

    SramGeometry l1g;
    l1g.sizeBytes = config.l1Bytes;
    l1g.blockBytes = line;
    l1g.assoc = config.assume.l1Assoc;
    CellType l1cell = config.assume.dualPortedL1 ? CellType::DualPorted
                                                 : CellType::SinglePorted6T;
    double total = 2.0 * area_.area(l1g, l1t.dataOrg, l1t.tagOrg, l1cell);

    if (config.hasL2()) {
        const TimingResult &l2t =
            timingOf(config.l2Bytes, config.assume.l2Assoc, line);
        SramGeometry l2g;
        l2g.sizeBytes = config.l2Bytes;
        l2g.blockBytes = line;
        l2g.assoc = config.assume.l2Assoc;
        total += area_.area(l2g, l2t.dataOrg, l2t.tagOrg,
                            CellType::SinglePorted6T);
    }
    return total;
}

DesignPoint
Explorer::evaluate(Benchmark b, const SystemConfig &config)
{
    DesignPoint p;
    p.config = config;
    p.l1Timing = timingOf(config.l1Bytes, config.assume.l1Assoc,
                          config.assume.lineBytes);
    if (config.hasL2()) {
        p.l2Timing = timingOf(config.l2Bytes, config.assume.l2Assoc,
                              config.assume.lineBytes);
    }
    p.areaRbe = areaOf(config);
    p.miss = evaluator_.missStats(b, config);

    TpiParams tp;
    tp.l1CycleNs = p.l1Timing.cycleNs;
    tp.l2CycleNsRaw = config.hasL2() ? p.l2Timing.cycleNs : 0.0;
    tp.offchipNs = config.assume.offchipNs;
    tp.issuePerCycle = config.assume.dualPortedL1 ? 2.0 : 1.0;
    tp.hasL2 = config.hasL2();
    p.tpi = computeTpi(p.miss, tp);
    return p;
}

Expected<DesignPoint>
Explorer::tryEvaluate(Benchmark b, const SystemConfig &config)
{
    // Validate the geometry before pricing: both the cache model
    // and the timing model panic on degenerate shapes, and a sweep
    // must survive those as skipped points.
    Status cs = config.check();
    if (!cs.ok())
        return cs;

    Expected<HierarchyStats> miss = evaluator_.tryMissStats(b, config);
    if (!miss.ok())
        return miss.status();

    DesignPoint p;
    p.config = config;
    p.l1Timing = timingOf(config.l1Bytes, config.assume.l1Assoc,
                          config.assume.lineBytes);
    if (config.hasL2()) {
        p.l2Timing = timingOf(config.l2Bytes, config.assume.l2Assoc,
                              config.assume.lineBytes);
    }
    p.areaRbe = areaOf(config);
    p.miss = miss.value();

    TpiParams tp;
    tp.l1CycleNs = p.l1Timing.cycleNs;
    tp.l2CycleNsRaw = config.hasL2() ? p.l2Timing.cycleNs : 0.0;
    tp.offchipNs = config.assume.offchipNs;
    tp.issuePerCycle = config.assume.dualPortedL1 ? 2.0 : 1.0;
    tp.hasL2 = config.hasL2();
    p.tpi = computeTpi(p.miss, tp);
    return p;
}

std::vector<DesignPoint>
Explorer::evaluateAll(Benchmark b, const std::vector<SystemConfig> &configs,
                      FailureReport *report)
{
    std::vector<DesignPoint> out;
    if (configs.empty())
        return out;

    // An unloadable benchmark trace fails every point the same way;
    // detect it once and report the benchmark, not every config.
    Expected<const TraceBuffer *> t = evaluator_.tryTrace(b);
    if (!t.ok()) {
        if (!report) {
            fatal("benchmark '%s': %s", Workloads::info(b).name,
                  t.status().message().c_str());
        }
        report->add(std::string("benchmark ") + Workloads::info(b).name,
                    t.status());
        return out;
    }

    // Price the points across the worker team. Each index writes
    // only its own slot; the trace is shared read-only, simulation
    // state lives inside tryEvaluate's per-call hierarchy, and the
    // memo caches are internally locked. Collecting results and
    // failures after the join, in input-index order, makes a
    // parallel sweep byte-identical to a serial one.
    std::vector<std::optional<Expected<DesignPoint>>> slots(configs.size());
    parallelFor(configs.size(), [&](std::size_t i) {
        slots[i].emplace(tryEvaluate(b, configs[i]));
    });

    out.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        Expected<DesignPoint> &p = *slots[i];
        if (p.ok()) {
            out.push_back(std::move(p.value()));
        } else if (report) {
            report->add(configs[i].label(), p.status());
        } else {
            fatal("design point %s: %s", configs[i].label().c_str(),
                  p.status().message().c_str());
        }
    }
    return out;
}

std::vector<DesignPoint>
Explorer::sweep(Benchmark b, const SystemAssumptions &assume,
                bool include_single_level, bool include_two_level,
                FailureReport *report)
{
    return evaluateAll(b,
                       DesignSpace::enumerate(assume, include_single_level,
                                              include_two_level),
                       report);
}

Envelope
Explorer::envelopeOf(const std::vector<DesignPoint> &points)
{
    std::vector<EnvelopePoint> eps;
    eps.reserve(points.size());
    for (const auto &p : points)
        eps.push_back(p.toEnvelopePoint());
    return Envelope::of(std::move(eps));
}

} // namespace tlc
