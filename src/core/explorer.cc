/**
 * @file
 * Explorer implementation.
 */

#include "explorer.hh"

#include "util/logging.hh"

namespace tlc {

Explorer::Explorer(MissRateEvaluator &evaluator,
                   const AccessTimeModel &timing, const AreaModel &area)
    : evaluator_(evaluator), timing_(timing), area_(area)
{
}

const TimingResult &
Explorer::timingOf(std::uint64_t size_bytes, std::uint32_t assoc,
                   std::uint32_t line_bytes)
{
    std::uint64_t key = size_bytes * 1024 + assoc * 256 + line_bytes;
    auto it = timingCache_.find(key);
    if (it == timingCache_.end()) {
        SramGeometry g;
        g.sizeBytes = size_bytes;
        g.blockBytes = line_bytes;
        g.assoc = assoc;
        it = timingCache_.emplace(key, timing_.optimize(g)).first;
    }
    return it->second;
}

double
Explorer::areaOf(const SystemConfig &config)
{
    const std::uint32_t line = config.assume.lineBytes;
    const TimingResult &l1t =
        timingOf(config.l1Bytes, config.assume.l1Assoc, line);

    SramGeometry l1g;
    l1g.sizeBytes = config.l1Bytes;
    l1g.blockBytes = line;
    l1g.assoc = config.assume.l1Assoc;
    CellType l1cell = config.assume.dualPortedL1 ? CellType::DualPorted
                                                 : CellType::SinglePorted6T;
    double total = 2.0 * area_.area(l1g, l1t.dataOrg, l1t.tagOrg, l1cell);

    if (config.hasL2()) {
        const TimingResult &l2t =
            timingOf(config.l2Bytes, config.assume.l2Assoc, line);
        SramGeometry l2g;
        l2g.sizeBytes = config.l2Bytes;
        l2g.blockBytes = line;
        l2g.assoc = config.assume.l2Assoc;
        total += area_.area(l2g, l2t.dataOrg, l2t.tagOrg,
                            CellType::SinglePorted6T);
    }
    return total;
}

DesignPoint
Explorer::evaluate(Benchmark b, const SystemConfig &config)
{
    DesignPoint p;
    p.config = config;
    p.l1Timing = timingOf(config.l1Bytes, config.assume.l1Assoc,
                          config.assume.lineBytes);
    if (config.hasL2()) {
        p.l2Timing = timingOf(config.l2Bytes, config.assume.l2Assoc,
                              config.assume.lineBytes);
    }
    p.areaRbe = areaOf(config);
    p.miss = evaluator_.missStats(b, config);

    TpiParams tp;
    tp.l1CycleNs = p.l1Timing.cycleNs;
    tp.l2CycleNsRaw = config.hasL2() ? p.l2Timing.cycleNs : 0.0;
    tp.offchipNs = config.assume.offchipNs;
    tp.issuePerCycle = config.assume.dualPortedL1 ? 2.0 : 1.0;
    tp.hasL2 = config.hasL2();
    p.tpi = computeTpi(p.miss, tp);
    return p;
}

std::vector<DesignPoint>
Explorer::sweep(Benchmark b, const SystemAssumptions &assume,
                bool include_single_level, bool include_two_level)
{
    std::vector<DesignPoint> out;
    for (const SystemConfig &c :
         DesignSpace::enumerate(assume, include_single_level,
                                include_two_level)) {
        out.push_back(evaluate(b, c));
    }
    return out;
}

Envelope
Explorer::envelopeOf(const std::vector<DesignPoint> &points)
{
    std::vector<EnvelopePoint> eps;
    eps.reserve(points.size());
    for (const auto &p : points)
        eps.push_back(p.toEnvelopePoint());
    return Envelope::of(std::move(eps));
}

} // namespace tlc
