/**
 * @file
 * Explorer implementation.
 */

#include "explorer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <optional>
#include <span>
#include <sstream>

#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"
#include "util/profiler.hh"
#include "util/table.hh"
#include "util/trace_event.hh"

namespace tlc {

namespace {

/** Sweep-engine metrics, registered once and shared by all sites. */
struct ExploreMetrics
{
    MetricCounter &priced;
    MetricCounter &failed;
    MetricCounter &timingHits;
    MetricCounter &timingMisses;
    MetricCounter &sweeps;
    MetricCounter &analyticRanked;
    MetricCounter &analyticPruned;
    MetricCounter &analyticSurvivors;

    static ExploreMetrics &get()
    {
        static ExploreMetrics m{
            MetricsRegistry::global().counter("explore.points.priced"),
            MetricsRegistry::global().counter("explore.points.failed"),
            MetricsRegistry::global().counter(
                "explore.timing_cache.hits"),
            MetricsRegistry::global().counter(
                "explore.timing_cache.misses"),
            MetricsRegistry::global().counter("explore.sweeps"),
            MetricsRegistry::global().counter(
                "explore.analytic.ranked"),
            MetricsRegistry::global().counter(
                "explore.analytic.pruned"),
            MetricsRegistry::global().counter(
                "explore.analytic.survivors"),
        };
        return m;
    }
};

/**
 * Configurations per worker batch. Each batch's memo-missing
 * configs simulate as lanes of one trace pass; capping the batch
 * bounds the lane state resident at once and leaves enough batches
 * to keep the worker team fed.
 */
constexpr std::size_t kMaxBatchConfigs = 32;

} // namespace

std::function<void(const SweepProgress &)>
stderrProgressPrinter(std::string label)
{
    return [label = std::move(label)](const SweepProgress &p) {
        char line[256];
        int n = std::snprintf(
            line, sizeof(line),
            "progress: %s %zu/%zu (%.1f%%) %zu failed, %.1fs elapsed, "
            "eta %.1fs\n",
            label.c_str(), p.done, p.total,
            p.total ? 100.0 * static_cast<double>(p.done) /
                          static_cast<double>(p.total)
                    : 100.0,
            p.failed, p.elapsedSeconds, p.etaSeconds);
        if (n > 0) {
            std::fwrite(line, 1,
                        std::min(static_cast<std::size_t>(n),
                                 sizeof(line) - 1),
                        stderr);
        }
    };
}

// ---------------------------------------------------------------------
// FailureReport
// ---------------------------------------------------------------------

void
FailureReport::add(std::string subject, Status status)
{
    tlc_assert(!status.ok(), "recording an OK status for '%s'",
               subject.c_str());
    MetricsRegistry::global().counter("explore.failures.recorded").inc();
    std::lock_guard<std::mutex> lock(mu_);
    failures_.push_back({std::move(subject), std::move(status)});
}

bool
FailureReport::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_.empty();
}

std::size_t
FailureReport::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_.size();
}

std::vector<SweepFailure>
FailureReport::failures() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
}

bool
FailureReport::mentions(const std::string &needle) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &f : failures_) {
        if (f.subject.find(needle) != std::string::npos ||
            f.status.message().find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

std::string
FailureReport::summary() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    if (failures_.empty()) {
        os << "sweep completed with no failures\n";
        return os.str();
    }
    os << "sweep skipped " << failures_.size() << " point"
       << (failures_.size() == 1 ? "" : "s") << ":\n";
    Table t({"subject", "error", "detail"});
    for (const auto &f : failures_) {
        t.beginRow();
        t.cell(f.subject);
        t.cell(statusCodeName(f.status.code()));
        t.cell(f.status.message());
    }
    t.printAscii(os);
    return os.str();
}

// ---------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------

Explorer::Explorer(MissRateEvaluator &evaluator,
                   const AccessTimeModel &timing, const AreaModel &area)
    : evaluator_(evaluator), timing_(timing), area_(area)
{
}

const TimingResult &
Explorer::timingOf(std::uint64_t size_bytes, std::uint32_t assoc,
                   std::uint32_t line_bytes)
{
    TimingKey key = timingKey(size_bytes, assoc, line_bytes);
    {
        std::lock_guard<std::mutex> lock(timingMu_);
        auto it = timingCache_.find(key);
        if (it != timingCache_.end()) {
            ExploreMetrics::get().timingHits.inc();
            return it->second;
        }
    }
    ExploreMetrics::get().timingMisses.inc();

    // Run the organization search outside the lock — it is the
    // expensive part, and two workers racing to price the same
    // geometry compute identical results (emplace keeps the first).
    SramGeometry g;
    g.sizeBytes = size_bytes;
    g.blockBytes = line_bytes;
    g.assoc = assoc;
    TimingResult r = [&] {
        ScopedTimer t(phase::kModelTiming);
        return timing_.optimize(g);
    }();

    std::lock_guard<std::mutex> lock(timingMu_);
    // std::map node addresses are stable, so the reference survives
    // later insertions by other workers.
    return timingCache_.emplace(key, std::move(r)).first->second;
}

std::size_t
Explorer::timingCacheSize() const
{
    std::lock_guard<std::mutex> lock(timingMu_);
    return timingCache_.size();
}

double
Explorer::areaOf(const SystemConfig &config)
{
    // Resolve the timing memo first so the area phase timer below
    // measures the area model alone, not a first-touch organization
    // search charged to the wrong phase.
    const std::uint32_t line = config.assume.lineBytes;
    const TimingResult &l1t =
        timingOf(config.l1Bytes, config.assume.l1Assoc, line);
    const TimingResult *l2t =
        config.hasL2()
            ? &timingOf(config.l2Bytes, config.assume.l2Assoc, line)
            : nullptr;

    ScopedTimer timer(phase::kModelArea);
    SramGeometry l1g;
    l1g.sizeBytes = config.l1Bytes;
    l1g.blockBytes = line;
    l1g.assoc = config.assume.l1Assoc;
    CellType l1cell = config.assume.dualPortedL1 ? CellType::DualPorted
                                                 : CellType::SinglePorted6T;
    double total = 2.0 * area_.area(l1g, l1t.dataOrg, l1t.tagOrg, l1cell);

    if (l2t) {
        SramGeometry l2g;
        l2g.sizeBytes = config.l2Bytes;
        l2g.blockBytes = line;
        l2g.assoc = config.assume.l2Assoc;
        total += area_.area(l2g, l2t->dataOrg, l2t->tagOrg,
                            CellType::SinglePorted6T);
    }
    return total;
}

DesignPoint
Explorer::pricePoint(const SystemConfig &config,
                     const HierarchyStats &miss)
{
    DesignPoint p;
    p.config = config;
    p.l1Timing = timingOf(config.l1Bytes, config.assume.l1Assoc,
                          config.assume.lineBytes);
    if (config.hasL2()) {
        p.l2Timing = timingOf(config.l2Bytes, config.assume.l2Assoc,
                              config.assume.lineBytes);
    }
    p.areaRbe = areaOf(config);
    p.miss = miss;

    TpiParams tp;
    tp.l1CycleNs = p.l1Timing.cycleNs;
    tp.l2CycleNsRaw = config.hasL2() ? p.l2Timing.cycleNs : 0.0;
    tp.offchipNs = config.assume.offchipNs;
    tp.issuePerCycle = config.assume.dualPortedL1 ? 2.0 : 1.0;
    tp.hasL2 = config.hasL2();
    {
        ScopedTimer t(phase::kModelTpi);
        p.tpi = computeTpi(p.miss, tp);
    }
    ExploreMetrics::get().priced.inc();
    return p;
}

DesignPoint
Explorer::evaluate(Benchmark b, const SystemConfig &config)
{
    Expected<DesignPoint> p = tryEvaluate(b, config);
    if (!p.ok()) {
        fatal("design point %s: %s", config.label().c_str(),
              p.status().message().c_str());
    }
    return std::move(p.value());
}

Expected<DesignPoint>
Explorer::tryEvaluate(Benchmark b, const SystemConfig &config)
{
    // Validate the geometry before pricing: both the cache model
    // and the timing model panic on degenerate shapes, and a sweep
    // must survive those as skipped points.
    Status cs = config.check();
    if (!cs.ok())
        return cs;

    Expected<HierarchyStats> miss = evaluator_.tryMissStats(b, config);
    if (!miss.ok())
        return miss.status();

    return pricePoint(config, miss.value());
}

void
Explorer::setProgressCallback(ProgressCallback cb,
                              double min_interval_seconds)
{
    progress_ = std::move(cb);
    progressIntervalSeconds_ =
        min_interval_seconds < 0.0 ? 0.0 : min_interval_seconds;
}

std::vector<DesignPoint>
Explorer::evaluateAll(Benchmark b, const std::vector<SystemConfig> &configs,
                      FailureReport *report)
{
    if (evaluator_.backend() == MissBackend::AnalyticPrune)
        return evaluateAllPruned(b, configs, report);
    return evaluateAllImpl(b, configs, report);
}

std::vector<DesignPoint>
Explorer::evaluateAllPruned(Benchmark b,
                            const std::vector<SystemConfig> &configs,
                            FailureReport *report)
{
    std::vector<DesignPoint> out;
    if (configs.empty())
        return out;
    const char *benchName = Workloads::info(b).name;

    // Rank the whole space analytically — one profiling pass, no
    // simulation. The loop is serial and in input order, so the
    // ranking (and with it the survivor set) is deterministic
    // whatever the worker-team width. Failures mirror the exact
    // path exactly: an invalid configuration is recorded per point,
    // an unobtainable trace once per benchmark, and without a report
    // the lowest-index failure is fatal.
    struct Rank
    {
        std::size_t index;
        double area;
        double tpi;
    };
    std::vector<Rank> ranked;
    ranked.reserve(configs.size());
    std::string benchFailure;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const SystemConfig &c = configs[i];
        Status cs = c.check();
        if (!cs.ok()) {
            if (!report) {
                fatal("design point %s: %s", c.label().c_str(),
                      cs.message().c_str());
            }
            ExploreMetrics::get().failed.inc();
            report->add(c.label(), cs);
            continue;
        }
        Expected<HierarchyStats> est =
            evaluator_.tryAnalyticStats(b, c);
        if (!est.ok()) {
            if (!report) {
                fatal("benchmark '%s': %s", benchName,
                      est.status().message().c_str());
            }
            std::string repr = est.status().toString();
            if (repr != benchFailure) {
                benchFailure = std::move(repr);
                report->add(std::string("benchmark ") + benchName,
                            est.status());
            }
            continue;
        }
        // Analytic pricing reuses the memoized timing/area models
        // directly instead of pricePoint(), which would count these
        // estimates in explore.points.priced — that counter means
        // "fully priced points" and must match the exact path's.
        const TimingResult &l1t = timingOf(
            c.l1Bytes, c.assume.l1Assoc, c.assume.lineBytes);
        TpiParams tp;
        tp.l1CycleNs = l1t.cycleNs;
        tp.l2CycleNsRaw =
            c.hasL2() ? timingOf(c.l2Bytes, c.assume.l2Assoc,
                                 c.assume.lineBytes)
                            .cycleNs
                      : 0.0;
        tp.offchipNs = c.assume.offchipNs;
        tp.issuePerCycle = c.assume.dualPortedL1 ? 2.0 : 1.0;
        tp.hasL2 = c.hasL2();
        ranked.push_back(
            {i, areaOf(c), computeTpi(est.value(), tp).tpi});
    }
    ExploreMetrics::get().analyticRanked.inc(ranked.size());

    // Survivor selection: walk by increasing area (ties by analytic
    // TPI, then input index, so the order is total and stable) with
    // the running best analytic TPI; a point more than
    // (1 + margin) above the best achievable at its area cannot be
    // on the envelope unless the model misranked it by more than
    // the margin. Keeping near-best points errs on the side of
    // simulating a few extra candidates, never on dropping a true
    // envelope point.
    std::vector<std::size_t> order(ranked.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b2) {
                  if (ranked[a].area != ranked[b2].area)
                      return ranked[a].area < ranked[b2].area;
                  if (ranked[a].tpi != ranked[b2].tpi)
                      return ranked[a].tpi < ranked[b2].tpi;
                  return ranked[a].index < ranked[b2].index;
              });
    const double slack = 1.0 + evaluator_.pruneMargin();
    std::vector<char> survive(configs.size(), 0);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t oi : order) {
        const Rank &r = ranked[oi];
        if (r.tpi < best)
            best = r.tpi;
        if (r.tpi <= best * slack)
            survive[r.index] = 1;
    }

    std::vector<SystemConfig> survivors;
    survivors.reserve(ranked.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (survive[i])
            survivors.push_back(configs[i]);
    }
    ExploreMetrics::get().analyticSurvivors.inc(survivors.size());
    ExploreMetrics::get().analyticPruned.inc(ranked.size() -
                                             survivors.size());

    // Only the survivors are simulated exactly; their points (and
    // any late failures) flow through the standard batched path, so
    // ordering, reporting and persistence behave as usual.
    return evaluateAllImpl(b, survivors, report);
}

std::vector<DesignPoint>
Explorer::evaluateAllImpl(Benchmark b,
                          const std::vector<SystemConfig> &configs,
                          FailureReport *report)
{
    std::vector<DesignPoint> out;
    if (configs.empty())
        return out;

    // An unloadable benchmark trace fails every point the same way;
    // detect it once up front and report the benchmark, not every
    // config. With a persistent result store attached the preflight
    // is skipped — a fully warm sweep must not load or generate the
    // trace at all — and the same trace failure, should it surface
    // from the lanes that do simulate, is collapsed to one report
    // entry in the collection loop below.
    if (!evaluator_.hasResultStore()) {
        Expected<const TraceBuffer *> t = evaluator_.tryTrace(b);
        if (!t.ok()) {
            if (!report) {
                fatal("benchmark '%s': %s", Workloads::info(b).name,
                      t.status().message().c_str());
            }
            report->add(std::string("benchmark ") +
                            Workloads::info(b).name,
                        t.status());
            return out;
        }
    }

    ExploreMetrics::get().sweeps.inc();

    // Observability plumbing, all inert unless switched on: the
    // trace-event recorder adds one slice per simulation batch plus
    // one per design point on the pricing worker's track, and the
    // progress callback fires on a throttle as points complete.
    // Neither affects results — the output/report ordering below
    // stays byte-identical to serial.
    TraceEventRecorder *recorder = TraceEventRecorder::active();
    const char *benchName = Workloads::info(b).name;
    using ProgressClock = std::chrono::steady_clock;
    ProgressClock::time_point sweepStart = ProgressClock::now();
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> failedSoFar{0};
    std::atomic<std::int64_t> lastFireUs{-1};
    const std::int64_t intervalUs = static_cast<std::int64_t>(
        progressIntervalSeconds_ * 1e6);

    auto fireProgress = [&](std::size_t done_now, bool final) {
        if (!progress_)
            return;
        std::int64_t nowUs =
            std::chrono::duration_cast<std::chrono::microseconds>(
                ProgressClock::now() - sweepStart)
                .count();
        if (!final) {
            // One worker wins the CAS per throttle window; the rest
            // skip. The final update never skips, so a consumer
            // always sees done == total.
            std::int64_t last =
                lastFireUs.load(std::memory_order_relaxed);
            if (last >= 0 && nowUs - last < intervalUs)
                return;
            if (!lastFireUs.compare_exchange_strong(
                    last, nowUs, std::memory_order_relaxed)) {
                return;
            }
        }
        SweepProgress sp;
        sp.done = done_now;
        sp.total = configs.size();
        sp.failed = failedSoFar.load(std::memory_order_relaxed);
        sp.elapsedSeconds = static_cast<double>(nowUs) * 1e-6;
        sp.etaSeconds =
            done_now ? sp.elapsedSeconds *
                           static_cast<double>(sp.total - done_now) /
                           static_cast<double>(done_now)
                     : 0.0;
        progress_(sp);
    };

    // Benchmark-major batching: the configuration list is split into
    // contiguous batches, each batch's memo-missing configs simulate
    // as lanes of one trace pass, and batches distribute across the
    // worker team. Batch shape cannot affect results — every lane
    // carries its own tag state and replacement RNG stream, exactly
    // as a standalone Hierarchy would — so the sweep stays
    // byte-identical to the point-major path whatever the worker
    // count. Each index writes only its own slots; collecting
    // results and failures after the join, in input-index order,
    // keeps the output deterministic.
    const std::size_t n = configs.size();
    std::size_t batchSize = (n + parallelWorkerCount() - 1) /
                            parallelWorkerCount();
    batchSize = std::clamp<std::size_t>(batchSize, 1, kMaxBatchConfigs);
    const std::size_t numBatches = (n + batchSize - 1) / batchSize;

    std::vector<std::optional<Expected<DesignPoint>>> slots(n);
    parallelFor(numBatches, [&](std::size_t bi) {
        const std::size_t lo = bi * batchSize;
        const std::size_t hi = std::min(lo + batchSize, n);
        auto bbegin = recorder ? TraceEventRecorder::Clock::now()
                               : TraceEventRecorder::Clock::time_point{};
        std::vector<Expected<HierarchyStats>> miss =
            evaluator_.tryMissStatsBatch(
                b, std::span<const SystemConfig>(configs).subspan(
                       lo, hi - lo));
        if (recorder) {
            recorder->complete(
                std::string(benchName) + " batch " + std::to_string(bi),
                "sim-batch", bbegin, TraceEventRecorder::Clock::now(),
                parallelWorkerId(),
                std::string("{\"benchmark\": \"") + benchName +
                    "\", \"first\": " + std::to_string(lo) +
                    ", \"count\": " + std::to_string(hi - lo) + "}");
        }
        for (std::size_t i = lo; i < hi; ++i) {
            auto begin = recorder
                             ? TraceEventRecorder::Clock::now()
                             : TraceEventRecorder::Clock::time_point{};
            if (miss[i - lo].ok()) {
                slots[i].emplace(
                    pricePoint(configs[i], miss[i - lo].value()));
            } else {
                slots[i].emplace(
                    Expected<DesignPoint>(miss[i - lo].status()));
            }
            if (recorder) {
                recorder->complete(
                    configs[i].label(), "design-point", begin,
                    TraceEventRecorder::Clock::now(), parallelWorkerId(),
                    std::string("{\"benchmark\": \"") + benchName +
                        "\", \"index\": " + std::to_string(i) + "}");
            }
            if (!slots[i]->ok())
                failedSoFar.fetch_add(1, std::memory_order_relaxed);
            std::size_t d =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            fireProgress(d, /*final=*/false);
        }
    });
    fireProgress(n, /*final=*/true);

    out.reserve(n);
    // With the preflight skipped (result store attached), a trace
    // that turns out to be unloadable fails every simulated point
    // with the same non-config status; collapse those to a single
    // "benchmark <name>" entry so the report matches the preflight
    // path's shape.
    std::string benchFailure;
    for (std::size_t i = 0; i < n; ++i) {
        Expected<DesignPoint> &p = *slots[i];
        if (p.ok()) {
            out.push_back(std::move(p.value()));
        } else if (report) {
            if (p.status().code() != StatusCode::InvalidConfig) {
                std::string repr = p.status().toString();
                if (repr != benchFailure) {
                    benchFailure = std::move(repr);
                    report->add(std::string("benchmark ") + benchName,
                                p.status());
                }
                continue;
            }
            ExploreMetrics::get().failed.inc();
            report->add(configs[i].label(), p.status());
        } else {
            fatal("design point %s: %s", configs[i].label().c_str(),
                  p.status().message().c_str());
        }
    }
    return out;
}

std::vector<BenchmarkSweep>
Explorer::evaluateAll(const SweepRequest &request)
{
    // Scoped overrides: the request's thread width and progress
    // callback are in effect for this call only, restored even when
    // a body throws.
    struct Scope
    {
        Explorer &ex;
        const bool restoreWorkers;
        const unsigned prevWorkers;
        const bool restoreProgress;
        ProgressCallback prevProgress;
        double prevInterval;

        Scope(Explorer &e, const SweepRequest &req)
            : ex(e), restoreWorkers(req.threads != 0),
              prevWorkers(parallelWorkerOverride()),
              restoreProgress(static_cast<bool>(req.progress)),
              prevProgress(e.progress_),
              prevInterval(e.progressIntervalSeconds_)
        {
            if (restoreWorkers)
                setParallelWorkerCount(req.threads);
            if (restoreProgress) {
                e.setProgressCallback(req.progress,
                                      req.progressIntervalSeconds);
            }
        }

        ~Scope()
        {
            if (restoreWorkers)
                setParallelWorkerCount(prevWorkers);
            if (restoreProgress) {
                ex.progress_ = std::move(prevProgress);
                ex.progressIntervalSeconds_ = prevInterval;
            }
        }
    } scope(*this, request);

    std::vector<BenchmarkSweep> out;
    out.reserve(request.benchmarks.size());
    for (Benchmark b : request.benchmarks) {
        out.push_back(
            {b, evaluateAll(b, request.configs, request.report)});
    }
    return out;
}

std::vector<DesignPoint>
Explorer::sweep(Benchmark b, const SystemAssumptions &assume,
                bool include_single_level, bool include_two_level,
                FailureReport *report)
{
    return evaluateAll(b,
                       DesignSpace::enumerate(assume, include_single_level,
                                              include_two_level),
                       report);
}

Envelope
Explorer::envelopeOf(const std::vector<DesignPoint> &points)
{
    std::vector<EnvelopePoint> eps;
    eps.reserve(points.size());
    for (const auto &p : points)
        eps.push_back(p.toEnvelopePoint());
    return Envelope::of(std::move(eps));
}

} // namespace tlc
