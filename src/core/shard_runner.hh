/**
 * @file
 * Fault-isolated sweep execution: shard a configuration list across
 * forked worker subprocesses, survive worker crashes/hangs, and
 * quarantine the specific design points that keep killing workers.
 *
 * The in-process engine (Explorer::evaluateAll) is fast but shares
 * its fate with every design point it simulates: one wild pointer in
 * a simulation lane, one pathological configuration that loops
 * forever, and the whole multi-hour sweep dies. This layer trades a
 * fork() per shard for blast-radius containment:
 *
 *   run ──▶ worker simulates a shard out of process
 *    │          │ crash / hang / torn stream
 *    ▼          ▼
 *   ok      retry (bounded, deterministic backoff with jitter)
 *    │          │ still failing
 *    │          ▼
 *    │      bisect the shard, recurse on each half
 *    │          │ a single point still fails
 *    ▼          ▼
 *   price   quarantine that point into the FailureReport
 *
 * Healthy points are completely unaffected: workers return bit-exact
 * HierarchyStats over a CRC-framed pipe (util/supervisor.hh), the
 * parent re-prices them through Explorer::pricePoint (memoized pure
 * functions of the configuration), and results, envelopes and
 * failure-report ordering are byte-identical to an in-process run —
 * the differential tests in tests/test_supervisor.cc enforce this.
 *
 * Crash-safe resume: each worker opens its own SweepCache at
 * SupervisorOptions::resultStorePath and appends every simulated
 * batch before reporting, so even a SIGKILLed *supervisor* resumes
 * warm — re-running with the same store answers finished shards from
 * disk. Shards run sequentially (one store writer, no append races).
 *
 * Fault injection: ShardFaultPlan deterministically makes a worker
 * crash, hang, exit early, or tear its result stream when its shard
 * contains a chosen design-point index — the hooks behind the
 * differential tests, tools/check.sh's recovery step, and the
 * --inject-* flags on design_explorer/figure_runner.
 *
 * Observability: shard attempts run under the "supervisor.shard"
 * profiler phase, backoff sleeps under "supervisor.backoff", and
 * sweeps tick supervisor.{sweeps,shards,retries,bisections,
 * quarantined,backoff_waits} next to the per-worker
 * supervisor.worker.* counters.
 *
 * Cross-process telemetry (docs/observability.md): before its Done
 * frame a worker streams its metrics-registry deltas, profiler phase
 * stats and trace-event slices back over the same frame pipe. The
 * parent folds counters into the global registry twice — once under
 * the worker's own "worker.<id>." namespace and once into the plain
 * name as an aggregated rollup — merges phases into the global
 * profiler, and imports trace slices under a per-attempt pid so the
 * chrome://tracing export shows one named track per worker attempt.
 * Every worker also keeps a crash flight recorder
 * (util/flight_recorder.hh): a bounded ring of recent events
 * (current design point, phase, notes) flushed as a final frame on
 * clean exit or from a signal handler on crash/SIGTERM, so
 * quarantine entries in the FailureReport say *what the worker was
 * doing* when it died, and the per-shard attempt timeline
 * (ShardTimeline) records it for the run manifest.
 */

#ifndef TLC_CORE_SHARD_RUNNER_HH
#define TLC_CORE_SHARD_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/explorer.hh"
#include "util/args.hh"
#include "util/supervisor.hh"

namespace tlc {

/**
 * One deterministic injected fault: when a worker's shard contains
 * design-point index @p atIndex, the worker misbehaves as @p kind
 * says. @p times bounds how many workers fire the fault (-1 =
 * every one), which is how tests model transient vs. permanent
 * failures: times=1 crashes the first attempt and lets the retry
 * succeed; times=-1 is a poisoned point that must end up
 * quarantined.
 */
struct ShardFault
{
    enum class Kind {
        None,
        Crash,        ///< raise SIGSEGV when reporting point atIndex
        Hang,         ///< ignore SIGTERM and pause at point atIndex
        PartialWrite, ///< report indices < atIndex, tear, then die
        ExitEarly     ///< _exit(3) on entry, without reporting
    };

    Kind kind = Kind::None;
    std::uint32_t atIndex = 0; ///< global design-point index
    int times = -1;            ///< firings before the fault disarms
};

/** All faults armed for one supervised sweep. */
struct ShardFaultPlan
{
    std::vector<ShardFault> faults;

    bool empty() const { return faults.empty(); }
};

/** How a supervised sweep should run. */
struct SupervisorOptions
{
    /** Design points per worker subprocess before bisection. */
    std::size_t pointsPerShard = 32;
    /** Per-attempt watchdog (timeout => SIGTERM => SIGKILL). */
    WatchdogSpec watchdog;
    /** Retry budget and backoff pacing per shard. */
    RetryPolicy retry;
    /** Evaluator settings workers rebuild in their own process
     *  (trace length, warmup, trace files). Its resultStore member
     *  is ignored — workers open their own from resultStorePath. */
    EvaluatorOptions evaluator;
    /** Sweep-cache path each worker appends to ("" = uncached). */
    std::string resultStorePath;
    /** fsync the store on every commit (durability over speed). */
    bool storeFsync = false;
    /** Deterministic fault injection (tests and recovery drills). */
    ShardFaultPlan faults;
    /** Progress callback; fires (throttled) as worker results
     *  stream in, and unthrottled when a shard resolves. */
    std::function<void(const SweepProgress &)> progress;
    /** Minimum seconds between streamed progress updates. */
    double progressIntervalSeconds = 0.25;
};

/** What it took to finish one supervised sweep. */
struct SupervisionStats
{
    std::uint64_t shards = 0;      ///< shards resolved (incl. splits)
    std::uint64_t attempts = 0;    ///< worker processes launched
    std::uint64_t retries = 0;     ///< same-shard re-runs
    std::uint64_t crashes = 0;     ///< signal deaths observed
    std::uint64_t timeouts = 0;    ///< watchdog kills
    std::uint64_t exits = 0;       ///< nonzero worker exits
    std::uint64_t protocolErrors = 0; ///< torn/corrupt streams
    std::uint64_t bisections = 0;  ///< shard splits
    std::uint64_t quarantined = 0; ///< points given up on
    std::uint64_t backoffWaits = 0;
    double backoffSeconds = 0.0;   ///< total time asleep in backoff
    std::uint64_t metricFrames = 0; ///< worker metric deltas merged
    std::uint64_t phaseFrames = 0;  ///< worker phase stats merged
    std::uint64_t eventFrames = 0;  ///< worker trace-slice frames
    std::uint64_t flightFrames = 0; ///< flight-recorder frames

    /** Fold another sweep's stats in (drivers aggregate scenarios). */
    void accumulate(const SupervisionStats &other);
};

/**
 * One worker launch in a shard's timeline: who ran, how it ended,
 * when, and what its flight recorder last saw. "worker" here is the
 * sweep-unique serial the telemetry namespace (worker.<id>.*) and
 * the trace export's pid tracks use for the same attempt.
 */
struct ShardAttempt
{
    std::uint32_t workerId = 0;
    std::string outcome;          ///< workerOutcomeKindName()
    std::string detail;           ///< human phrase of the outcome
    double startSeconds = 0.0;    ///< offset from sweep start
    double durationSeconds = 0.0;
    std::uint32_t resultsDelivered = 0; ///< intact result frames
    double backoffSeconds = 0.0;  ///< sleep after this attempt (0 if none)
    std::string flightReason;     ///< "clean", "signal", "hang", ...
    std::string flightPoint;      ///< last design point seen working
    std::string flightPhase;      ///< last phase seen working
};

/** Every attempt it took to resolve one shard (or sub-shard). */
struct ShardTimeline
{
    std::uint32_t firstIndex = 0; ///< lowest design-point index
    std::uint32_t count = 0;      ///< points in this (sub-)shard
    std::string resolution;       ///< "ok", "bisected", "quarantined"
    std::vector<ShardAttempt> attempts;
};

/** A supervised sweep's priced points plus its war story. */
struct SupervisedSweep
{
    std::vector<DesignPoint> points;
    SupervisionStats stats;
    /** Per-shard attempt history, in resolution order (a bisected
     *  shard appears before its halves). */
    std::vector<ShardTimeline> timeline;
};

/**
 * Render supervision stats plus per-shard attempt timelines as the
 * JSON object the run manifest embeds under "supervisor"
 * (RunManifest::supervisorJson; schema documented in
 * docs/observability.md).
 */
std::string
supervisorTimelinesJson(const SupervisionStats &stats,
                        const std::vector<ShardTimeline> &timeline);

/**
 * Price @p configs on @p b like Explorer::evaluateAll, but simulate
 * every shard in a forked worker subprocess under @p opts. Failed
 * points land in @p report exactly as the in-process engine would
 * record them, plus quarantined points (repeated worker death) as
 * WorkerCrash/WorkerTimeout entries. @p report is required: a
 * supervisor exists to keep going, which only makes sense fail-soft.
 */
SupervisedSweep
supervisedEvaluateAll(Explorer &ex, Benchmark b,
                      const std::vector<SystemConfig> &configs,
                      FailureReport *report,
                      const SupervisorOptions &opts);

/**
 * Supervised twin of Explorer::sweep: enumerate the design space of
 * @p assume and run it through supervisedEvaluateAll.
 */
SupervisedSweep
supervisedSweepSpace(Explorer &ex, Benchmark b,
                     const SystemAssumptions &assume,
                     bool include_single_level, bool include_two_level,
                     FailureReport *report,
                     const SupervisorOptions &opts);

/**
 * Parse the process-isolation flags the sweep drivers share
 * (design_explorer, figure_runner; docs/robustness.md):
 *
 *   --isolate=process|none  out-of-process shard execution (none)
 *   --shard-points=N        design points per worker process (32)
 *   --shard-timeout=SECS    per-attempt watchdog; <=0 disables (60)
 *   --max-retries=N         re-runs per shard before bisection (2)
 *   --store-fsync           fsync the result store on every commit
 *
 * plus the deterministic fault-injection flags behind the recovery
 * drills in tools/check.sh:
 *
 *   --inject-crash-at=IDX / --inject-hang-at=IDX /
 *   --inject-partial-at=IDX   misbehave when a worker's shard holds
 *                             design-point index IDX
 *   --inject-times=N          firings before the fault disarms
 *                             (-1 = every time)
 *
 * Fills @p out either way; returns true when --isolate=process was
 * requested. An unknown --isolate value is fatal.
 */
bool supervisorOptionsFromArgs(const ArgParser &args,
                               SupervisorOptions *out);

} // namespace tlc

#endif // TLC_CORE_SHARD_RUNNER_HH
