/**
 * @file
 * Shard-runner implementation: the worker-side simulate-and-report
 * loop, the parent-side retry/bisect/quarantine state machine, and
 * the collection pass that keeps supervised output byte-identical to
 * Explorer::evaluateAll.
 */

#include "shard_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "trace/workload.hh"
#include "util/flight_recorder.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/profiler.hh"
#include "util/trace_event.hh"

namespace tlc {

namespace {

/** Shard-level supervision metrics (per-worker ones live in
 *  util/supervisor.cc as supervisor.worker.*). */
struct ShardMetrics
{
    MetricCounter &sweeps;
    MetricCounter &shards;
    MetricCounter &retries;
    MetricCounter &bisections;
    MetricCounter &quarantined;
    MetricCounter &backoffWaits;
    MetricCounter &metricFrames;
    MetricCounter &phaseFrames;
    MetricCounter &eventFrames;
    MetricCounter &flightFrames;

    static ShardMetrics &get()
    {
        auto &r = MetricsRegistry::global();
        static ShardMetrics m{
            r.counter("supervisor.sweeps"),
            r.counter("supervisor.shards"),
            r.counter("supervisor.retries"),
            r.counter("supervisor.bisections"),
            r.counter("supervisor.quarantined"),
            r.counter("supervisor.backoff_waits"),
            r.counter("supervisor.telemetry.metric_frames"),
            r.counter("supervisor.telemetry.phase_frames"),
            r.counter("supervisor.telemetry.event_frames"),
            r.counter("supervisor.telemetry.flight_frames"),
        };
        return m;
    }
};

/**
 * Sweep-unique worker attempt serial: the <id> of the telemetry
 * namespace worker.<id>.* and (plus one, the supervisor itself being
 * pid 1) the pid of the attempt's track in the merged trace export.
 * Process-global so ids stay unique across a driver's scenarios.
 */
std::atomic<std::uint32_t> gWorkerSerial{0};

// -----------------------------------------------------------------
// Wire format (payloads of util/supervisor.hh frames)
//
// Result frame: u8 tag=1, u32le global config index, u8 ok;
//   ok   -> the eight HierarchyStats fields, u64le, declaration order
//   fail -> u32le StatusCode, u32le message length, message bytes
// Done frame:   u8 tag=2, u32le result-frame count
//
// Telemetry frames (streamed after results, before Done; all string
// fields are u32le length + bytes):
// Metrics frame: u8 tag=3, u32le counter count, per counter
//   (name, u64le value); u32le gauge count, per gauge (name, u64le
//   IEEE-754 bit pattern of the double value)
// Phases frame:  u8 tag=4, u32le phase count, per phase (name,
//   u64le calls, u64le totalNs, u64le maxNs)
// Events frame:  u8 tag=5, u32le event count, per event (u64le tsUs,
//   u64le durUs, u32le tid, name, category, argsJson); chunked at
//   kEventsPerFrame so a frame stays far below kMaxFrameBytes
// Flight frame:  u8 tag=6, then the flight-recorder payload
//   (util/flight_recorder.hh owns that layout; its first byte is
//   this same tag)
// -----------------------------------------------------------------

constexpr std::uint8_t kTagResult = 1;
constexpr std::uint8_t kTagDone = 2;
constexpr std::uint8_t kTagMetrics = 3;
constexpr std::uint8_t kTagPhases = 4;
constexpr std::uint8_t kTagEvents = 5;
constexpr std::uint8_t kTagFlight = 6;

constexpr std::size_t kEventsPerFrame = 256;

void
putU32le(std::string &s, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64le(std::string &s, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32le(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64le(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::string
encodeResult(std::uint32_t index, const Expected<HierarchyStats> &r)
{
    std::string out;
    out.push_back(static_cast<char>(kTagResult));
    putU32le(out, index);
    out.push_back(static_cast<char>(r.ok() ? 1 : 0));
    if (r.ok()) {
        const HierarchyStats &s = r.value();
        putU64le(out, s.instrRefs);
        putU64le(out, s.dataRefs);
        putU64le(out, s.l1iMisses);
        putU64le(out, s.l1dMisses);
        putU64le(out, s.l2Hits);
        putU64le(out, s.l2Misses);
        putU64le(out, s.swaps);
        putU64le(out, s.offchipWritebacks);
    } else {
        putU32le(out, static_cast<std::uint32_t>(r.status().code()));
        const std::string &msg = r.status().message();
        putU32le(out, static_cast<std::uint32_t>(msg.size()));
        out.append(msg);
    }
    return out;
}

std::string
encodeDone(std::uint32_t count)
{
    std::string out;
    out.push_back(static_cast<char>(kTagDone));
    putU32le(out, count);
    return out;
}

/** A decoded result frame. */
struct WireResult
{
    std::uint32_t index = 0;
    std::optional<Expected<HierarchyStats>> result;
};

/** A StatusCode from the wire, clamped to the known range. */
StatusCode
clampStatusCode(std::uint32_t raw)
{
    if (raw == 0 ||
        raw > static_cast<std::uint32_t>(StatusCode::WorkerTimeout))
        return StatusCode::InternalError;
    return static_cast<StatusCode>(raw);
}

/** Decode one result-frame payload; false on malformed layout. */
bool
decodeResult(std::string_view payload, WireResult &out)
{
    const auto *p =
        reinterpret_cast<const unsigned char *>(payload.data());
    if (payload.size() < 1 + 4 + 1 || p[0] != kTagResult)
        return false;
    out.index = getU32le(p + 1);
    const bool ok = p[5] != 0;
    if (ok) {
        if (payload.size() != 1 + 4 + 1 + 8 * 8)
            return false;
        HierarchyStats s;
        const unsigned char *q = p + 6;
        s.instrRefs = getU64le(q + 0 * 8);
        s.dataRefs = getU64le(q + 1 * 8);
        s.l1iMisses = getU64le(q + 2 * 8);
        s.l1dMisses = getU64le(q + 3 * 8);
        s.l2Hits = getU64le(q + 4 * 8);
        s.l2Misses = getU64le(q + 5 * 8);
        s.swaps = getU64le(q + 6 * 8);
        s.offchipWritebacks = getU64le(q + 7 * 8);
        out.result.emplace(s);
        return true;
    }
    if (payload.size() < 1 + 4 + 1 + 4 + 4)
        return false;
    const StatusCode code = clampStatusCode(getU32le(p + 6));
    const std::uint32_t msgLen = getU32le(p + 10);
    if (payload.size() != 1 + 4 + 1 + 4 + 4 +
                              static_cast<std::size_t>(msgLen))
        return false;
    out.result.emplace(Status(
        code, std::string(payload.substr(1 + 4 + 1 + 4 + 4, msgLen))));
    return true;
}

void
putString(std::string &s, std::string_view v)
{
    putU32le(s, static_cast<std::uint32_t>(v.size()));
    s.append(v);
}

/** Cursor-based readers shared by the telemetry decoders; each
 *  returns false instead of reading past the payload. */
struct WireReader
{
    std::string_view payload;
    std::size_t off = 0;

    bool u32(std::uint32_t &v)
    {
        if (payload.size() - off < 4)
            return false;
        v = getU32le(reinterpret_cast<const unsigned char *>(
                         payload.data()) +
                     off);
        off += 4;
        return true;
    }
    bool u64(std::uint64_t &v)
    {
        if (payload.size() - off < 8)
            return false;
        v = getU64le(reinterpret_cast<const unsigned char *>(
                         payload.data()) +
                     off);
        off += 8;
        return true;
    }
    bool str(std::string &v)
    {
        std::uint32_t len = 0;
        if (!u32(len) || payload.size() - off < len)
            return false;
        v.assign(payload.data() + off, len);
        off += len;
        return true;
    }
    bool done() const { return off == payload.size(); }
};

/** The worker's metrics-registry snapshot as one frame payload.
 *  Values are absolute, but the worker reset its inherited registry
 *  on entry, so absolute *is* the per-attempt delta. */
std::string
encodeMetrics()
{
    auto &reg = MetricsRegistry::global();
    const auto counters = reg.counterValues();
    const auto gauges = reg.gaugeValues();
    std::string out;
    out.push_back(static_cast<char>(kTagMetrics));
    putU32le(out, static_cast<std::uint32_t>(counters.size()));
    for (const auto &[name, value] : counters) {
        putString(out, name);
        putU64le(out, value);
    }
    putU32le(out, static_cast<std::uint32_t>(gauges.size()));
    for (const auto &[name, value] : gauges) {
        putString(out, name);
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof value);
        std::memcpy(&bits, &value, sizeof bits);
        putU64le(out, bits);
    }
    return out;
}

struct WireMetrics
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
};

bool
decodeMetrics(std::string_view payload, WireMetrics &out)
{
    WireReader r{payload, 1}; // past the tag byte
    std::uint32_t n = 0;
    if (!r.u32(n))
        return false;
    out.counters.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        std::uint64_t value = 0;
        if (!r.str(name) || !r.u64(value))
            return false;
        out.counters.emplace_back(std::move(name), value);
    }
    if (!r.u32(n))
        return false;
    out.gauges.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        std::uint64_t bits = 0;
        if (!r.str(name) || !r.u64(bits))
            return false;
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof value);
        out.gauges.emplace_back(std::move(name), value);
    }
    return r.done();
}

std::string
encodePhases()
{
    const auto phases = Profiler::global().snapshot();
    std::string out;
    out.push_back(static_cast<char>(kTagPhases));
    putU32le(out, static_cast<std::uint32_t>(phases.size()));
    for (const auto &[name, stats] : phases) {
        putString(out, name);
        putU64le(out, stats.calls);
        putU64le(out, stats.totalNs);
        putU64le(out, stats.maxNs);
    }
    return out;
}

bool
decodePhases(std::string_view payload,
             std::vector<std::pair<std::string, PhaseStats>> &out)
{
    WireReader r{payload, 1};
    std::uint32_t n = 0;
    if (!r.u32(n))
        return false;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        PhaseStats s;
        if (!r.str(name) || !r.u64(s.calls) || !r.u64(s.totalNs) ||
            !r.u64(s.maxNs))
            return false;
        out.emplace_back(std::move(name), s);
    }
    return r.done();
}

std::string
encodeEvents(std::span<const TraceEvent> events)
{
    std::string out;
    out.push_back(static_cast<char>(kTagEvents));
    putU32le(out, static_cast<std::uint32_t>(events.size()));
    for (const TraceEvent &e : events) {
        putU64le(out, e.tsUs);
        putU64le(out, e.durUs);
        putU32le(out, e.tid);
        putString(out, e.name);
        putString(out, e.category);
        putString(out, e.argsJson);
    }
    return out;
}

bool
decodeEvents(std::string_view payload, std::vector<TraceEvent> &out)
{
    WireReader r{payload, 1};
    std::uint32_t n = 0;
    if (!r.u32(n))
        return false;
    out.reserve(out.size() + n);
    for (std::uint32_t i = 0; i < n; ++i) {
        TraceEvent e;
        if (!r.u64(e.tsUs) || !r.u64(e.durUs) || !r.u32(e.tid) ||
            !r.str(e.name) || !r.str(e.category) || !r.str(e.argsJson))
            return false;
        out.push_back(std::move(e));
    }
    return r.done();
}

// -----------------------------------------------------------------
// Worker side (runs in the forked child)
// -----------------------------------------------------------------

/** Hang in a SIGTERM-proof way, so the SIGKILL escalation is what
 *  actually ends the worker (the injection tests depend on it). */
[[noreturn]] void
hangForever()
{
    signal(SIGTERM, SIG_IGN);
    for (;;)
        pause();
}

/**
 * The forked worker: arm the flight recorder, rebuild the evaluator
 * in this process, simulate the shard's configurations, persist to
 * the shard's own store handle, report each result as one frame,
 * stream telemetry (metrics deltas, phase stats, trace slices,
 * flight ring), and finish with a Done frame. Injected Crash/Hang
 * faults fire while *reporting* the poisoned point — after the
 * flight recorder has seen its label — so the emergency frame names
 * the exact design point a quarantine can blame.
 */
void
runShardWorker(int write_fd, Benchmark b,
               const std::vector<SystemConfig> &configs,
               const std::vector<std::uint32_t> &shard,
               const SupervisorOptions &opts, const ShardFault &fault)
{
    FlightRecorder &fr = FlightRecorder::global();
    fr.reset();
    fr.setPhase("startup");
    fr.note("shard [%u..%u): %zu point(s)", shard.front(),
            shard.back() + 1, shard.size());
    fr.armEmergency(write_fd, kTagFlight);

    if (fault.kind == ShardFault::Kind::ExitEarly)
        _exit(3);

    // The fork inherited copy-on-write snapshots of the parent's
    // metrics registry and profiler; reset both so the absolute
    // values this worker streams back are pure per-attempt deltas.
    MetricsRegistry::global().resetAll();
    Profiler::global().reset();

    // A worker-local trace recorder on the parent's epoch (steady
    // clock is system-wide, so child slices land directly on the
    // parent timeline), active only when the parent was recording.
    TraceEventRecorder *parentRec = TraceEventRecorder::active();
    std::unique_ptr<TraceEventRecorder> rec;
    if (parentRec) {
        rec = std::make_unique<TraceEventRecorder>(parentRec->epoch());
        TraceEventRecorder::setActive(rec.get());
    }
    auto slice = [&rec](const char *name, const char *cat,
                        TraceEventRecorder::Clock::time_point begin) {
        if (rec)
            rec->complete(name, cat, begin,
                          TraceEventRecorder::Clock::now(), 0);
    };
    auto now = [&rec] {
        return rec ? TraceEventRecorder::Clock::now()
                   : TraceEventRecorder::Clock::time_point{};
    };

    // This worker's own evaluator and store handle: the parent's
    // evaluator memo is inherited copy-on-write by fork but its
    // store fd must not be shared (two writers on one offset would
    // interleave), so the child opens the path itself. An unopenable
    // store degrades this shard to uncached, exactly like the
    // in-process engine.
    EvaluatorOptions evopts = opts.evaluator;
    evopts.resultStore.reset();
    std::shared_ptr<SweepCache> cache;
    if (!opts.resultStorePath.empty()) {
        fr.setPhase("store.open");
        auto t0 = now();
        cache = std::make_shared<SweepCache>();
        ResultStoreOptions ro;
        ro.fsyncOnCommit = opts.storeFsync;
        Status s = cache->open(opts.resultStorePath, ro);
        if (s.ok()) {
            evopts.resultStore = cache;
            fr.note("store '%s' open", opts.resultStorePath.c_str());
        } else {
            cache.reset();
            fr.note("store '%s' unopenable; shard runs uncached",
                    opts.resultStorePath.c_str());
        }
        slice("store.open", "worker", t0);
    }
    MissRateEvaluator ev(evopts);

    std::vector<SystemConfig> shardConfigs;
    shardConfigs.reserve(shard.size());
    for (std::uint32_t idx : shard)
        shardConfigs.push_back(configs[idx]);

    fr.setPhase("sim.batch");
    fr.note("sim.batch: %zu config(s)", shardConfigs.size());
    auto simBegin = now();
    std::vector<Expected<HierarchyStats>> miss =
        ev.tryMissStatsBatch(b, shardConfigs);
    slice("sim.batch", "worker", simBegin);
    fr.note("sim.batch done");

    // Commit to disk before claiming success on the pipe: a result
    // the parent saw must be one a resumed run can find in the
    // store.
    if (cache) {
        fr.setPhase("store.commit");
        auto t0 = now();
        cache->close();
        slice("store.commit", "worker", t0);
    }

    fr.setPhase("report");
    auto reportBegin = now();
    std::uint32_t sent = 0;
    for (std::size_t i = 0; i < shard.size(); ++i) {
        fr.setPoint(configs[shard[i]].label().c_str());
        if (shard[i] == fault.atIndex) {
            if (fault.kind == ShardFault::Kind::Crash) {
                // Through the armed handler: the emergency frame
                // carries this point's label before SIGSEGV kills
                // the process for real.
                raise(SIGSEGV);
            }
            if (fault.kind == ShardFault::Kind::Hang) {
                // A real hang never reaches a flush, but the drill
                // must exercise the frame path deterministically;
                // hangForever() then ignores SIGTERM so the
                // SIGKILL escalation still gets tested.
                fr.flush(write_fd, kTagFlight,
                         FlightRecorder::kReasonHang);
                hangForever();
            }
        }
        if (fault.kind == ShardFault::Kind::PartialWrite &&
            shard[i] >= fault.atIndex) {
            // Tear the stream mid-frame: a header promising 64
            // payload bytes, then 4 bytes of nothing, then death.
            std::string torn;
            putU32le(torn, 64);
            putU32le(torn, 0xdeadbeefu);
            torn.append("torn");
            ssize_t ignored =
                ::write(write_fd, torn.data(), torn.size());
            (void)ignored;
            _exit(1);
        }
        if (!writeFrame(write_fd, encodeResult(shard[i], miss[i])).ok())
            _exit(4); // parent gone; nothing sensible left to do
        ++sent;
    }
    slice("report", "worker", reportBegin);

    // Results are out; now the telemetry tail. Deactivate the
    // recorder first so the telemetry frames don't record themselves.
    fr.setPhase("telemetry");
    if (rec)
        TraceEventRecorder::setActive(nullptr);
    if (!writeFrame(write_fd, encodeMetrics()).ok())
        _exit(4);
    if (!writeFrame(write_fd, encodePhases()).ok())
        _exit(4);
    if (rec) {
        const std::vector<TraceEvent> events = rec->snapshot();
        for (std::size_t lo = 0; lo < events.size();
             lo += kEventsPerFrame) {
            const std::size_t hi =
                std::min(lo + kEventsPerFrame, events.size());
            if (!writeFrame(write_fd,
                            encodeEvents(std::span<const TraceEvent>(
                                events.data() + lo, hi - lo)))
                     .ok())
                _exit(4);
        }
    }
    fr.setPhase("done");
    fr.flush(write_fd, kTagFlight, FlightRecorder::kReasonClean);
    fr.disarm();
    if (!writeFrame(write_fd, encodeDone(sent)).ok())
        _exit(4);
}

// -----------------------------------------------------------------
// Parent side
// -----------------------------------------------------------------

/**
 * The retry/bisect/quarantine state machine of one supervised sweep.
 * Owns the per-index result slots and quarantine statuses; shards
 * run strictly sequentially (one result-store writer at a time, and
 * the simulation is the bottleneck, not the supervision).
 */
class ShardSupervisor
{
  public:
    ShardSupervisor(Benchmark b,
                    const std::vector<SystemConfig> &configs,
                    const SupervisorOptions &opts)
        : bench_(b), configs_(configs), opts_(opts),
          slots_(configs.size()), quarantine_(configs.size()),
          faultFired_(opts.faults.faults.size(), 0),
          start_(std::chrono::steady_clock::now())
    {
    }

    void run()
    {
        ShardMetrics::get().sweeps.inc();
        const std::size_t n = configs_.size();
        const std::size_t per =
            std::max<std::size_t>(1, opts_.pointsPerShard);
        for (std::size_t lo = 0; lo < n; lo += per) {
            const std::size_t hi = std::min(lo + per, n);
            std::vector<std::uint32_t> shard;
            shard.reserve(hi - lo);
            for (std::size_t i = lo; i < hi; ++i)
                shard.push_back(static_cast<std::uint32_t>(i));
            resolve(shard);
        }
    }

    SupervisionStats &stats() { return stats_; }
    std::vector<ShardTimeline> &timeline() { return timeline_; }
    std::optional<Expected<HierarchyStats>> &slot(std::size_t i)
    {
        return slots_[i];
    }
    std::optional<Status> &quarantine(std::size_t i)
    {
        return quarantine_[i];
    }

  private:
    /** The armed fault of @p shard, if any (None kind otherwise). */
    ShardFault armFault(const std::vector<std::uint32_t> &shard)
    {
        for (std::size_t f = 0; f < opts_.faults.faults.size(); ++f) {
            const ShardFault &fault = opts_.faults.faults[f];
            if (fault.kind == ShardFault::Kind::None)
                continue;
            if (fault.times >= 0 && faultFired_[f] >= fault.times)
                continue;
            if (std::find(shard.begin(), shard.end(), fault.atIndex) ==
                shard.end())
                continue;
            ++faultFired_[f];
            return fault;
        }
        return ShardFault{};
    }

    /** Fold one streamed counter delta into the global registry:
     *  once under the worker's namespace, once as the rollup. A
     *  name the parent already registered as a different kind is
     *  skipped (counter() would panic on the mismatch). */
    void mergeCounter(std::uint32_t worker_id, const std::string &name,
                      std::uint64_t delta)
    {
        if (delta == 0)
            return;
        auto &reg = MetricsRegistry::global();
        const auto kind = reg.kindOf(name);
        if (!kind.has_value() || *kind == MetricKind::Counter)
            reg.counter(name).inc(delta);
        reg.counter("worker." + std::to_string(worker_id) + "." + name)
            .inc(delta);
    }

    /**
     * One worker launch over @p shard. Results from intact frames
     * are kept even when the attempt as a whole fails — a crash
     * after reporting 30 of 32 points leaves only 2 to re-run —
     * and so is the telemetry that made it out: metric deltas roll
     * up, phase stats merge, trace slices land under this attempt's
     * pid, and the flight frame (if any) is kept in @p rec for the
     * timeline and the quarantine log.
     */
    WorkerOutcome attempt(const std::vector<std::uint32_t> &shard,
                          int attempt_no, ShardAttempt &rec)
    {
        ScopedTimer t(phase::kSupervisorShard);
        ++stats_.attempts;
        const ShardFault fault = armFault(shard);
        const std::uint32_t workerId = ++gWorkerSerial;
        rec.workerId = workerId;

        bool doneSeen = false;
        bool badFrame = false;
        std::optional<FlightInfo> flight;
        auto onFrame = [&](std::string_view payload) {
            if (payload.empty()) {
                badFrame = true;
                return;
            }
            switch (static_cast<std::uint8_t>(payload[0])) {
            case kTagDone:
                doneSeen = payload.size() == 5;
                badFrame = badFrame || payload.size() != 5;
                return;
            case kTagResult: {
                WireResult wr;
                if (!decodeResult(payload, wr) ||
                    wr.index >= slots_.size()) {
                    badFrame = true;
                    return;
                }
                slots_[wr.index] = std::move(*wr.result);
                ++rec.resultsDelivered;
                fireProgress(/*force=*/false);
                return;
            }
            case kTagMetrics: {
                WireMetrics wm;
                if (!decodeMetrics(payload, wm)) {
                    badFrame = true;
                    return;
                }
                ++stats_.metricFrames;
                ShardMetrics::get().metricFrames.inc();
                for (const auto &[name, delta] : wm.counters)
                    mergeCounter(workerId, name, delta);
                auto &reg = MetricsRegistry::global();
                for (const auto &[name, value] : wm.gauges) {
                    reg.gauge("worker." + std::to_string(workerId) +
                              "." + name)
                        .set(value);
                }
                return;
            }
            case kTagPhases: {
                std::vector<std::pair<std::string, PhaseStats>> ph;
                if (!decodePhases(payload, ph)) {
                    badFrame = true;
                    return;
                }
                ++stats_.phaseFrames;
                ShardMetrics::get().phaseFrames.inc();
                for (const auto &[name, s] : ph)
                    Profiler::global().merge(name, s);
                return;
            }
            case kTagEvents: {
                std::vector<TraceEvent> events;
                if (!decodeEvents(payload, events)) {
                    badFrame = true;
                    return;
                }
                ++stats_.eventFrames;
                ShardMetrics::get().eventFrames.inc();
                if (TraceEventRecorder *r =
                        TraceEventRecorder::active()) {
                    char name[96];
                    std::snprintf(
                        name, sizeof name,
                        "worker %u: shard [%u..%u) attempt %d",
                        workerId, shard.front(), shard.back() + 1,
                        attempt_no + 1);
                    r->import(events, workerId + 1, name);
                }
                return;
            }
            case kTagFlight: {
                FlightInfo info;
                if (!FlightRecorder::decodePayload(payload, kTagFlight,
                                                   info)) {
                    badFrame = true;
                    return;
                }
                ++stats_.flightFrames;
                ShardMetrics::get().flightFrames.inc();
                flight = std::move(info);
                return;
            }
            default:
                badFrame = true;
            }
        };

        const auto attemptBegin =
            TraceEventRecorder::Clock::now();
        WorkerOutcome outcome = superviseWorker(
            [&](int fd) {
                runShardWorker(fd, bench_, configs_, shard, opts_,
                               fault);
            },
            opts_.watchdog, onFrame);
        if (TraceEventRecorder *r = TraceEventRecorder::active()) {
            char name[96];
            std::snprintf(name, sizeof name,
                          "shard [%u..%u) worker %u: %s",
                          shard.front(), shard.back() + 1, workerId,
                          workerOutcomeKindName(outcome.kind));
            r->complete(name, "supervisor", attemptBegin,
                        TraceEventRecorder::Clock::now(), 0);
        }

        if (outcome.ok() && (badFrame || !doneSeen)) {
            // The pipe closed cleanly but the conversation did not
            // finish — treat like any other protocol violation.
            outcome.kind = WorkerOutcome::Kind::Protocol;
            outcome.detail = badFrame
                                 ? "worker sent a malformed frame"
                                 : "worker exited without a Done frame";
        }
        switch (outcome.kind) {
        case WorkerOutcome::Kind::Ok:
            break;
        case WorkerOutcome::Kind::Crash:
            ++stats_.crashes;
            break;
        case WorkerOutcome::Kind::Timeout:
            ++stats_.timeouts;
            break;
        case WorkerOutcome::Kind::Exit:
            ++stats_.exits;
            break;
        case WorkerOutcome::Kind::Protocol:
        case WorkerOutcome::Kind::ForkFailed:
            ++stats_.protocolErrors;
            break;
        }
        rec.outcome = workerOutcomeKindName(outcome.kind);
        rec.detail = outcome.detail;
        if (flight.has_value()) {
            rec.flightReason =
                FlightRecorder::reasonName(flight->reason);
            rec.flightPoint = flight->point;
            rec.flightPhase = flight->phase;
            if (!outcome.ok())
                lastFailedFlight_ = std::move(flight);
        }
        return outcome;
    }

    std::vector<std::uint32_t>
    unresolvedOf(const std::vector<std::uint32_t> &shard) const
    {
        std::vector<std::uint32_t> out;
        for (std::uint32_t idx : shard)
            if (!slots_[idx].has_value())
                out.push_back(idx);
        return out;
    }

    double elapsedSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Resolve every index of @p shard: retry, bisect, quarantine. */
    void resolve(const std::vector<std::uint32_t> &shard)
    {
        ++stats_.shards;
        ShardMetrics::get().shards.inc();
        const std::size_t tlIndex = timeline_.size();
        {
            ShardTimeline tl;
            tl.firstIndex = shard.front();
            tl.count = static_cast<std::uint32_t>(shard.size());
            timeline_.push_back(std::move(tl));
        }

        std::vector<std::uint32_t> pending = shard;
        const std::uint64_t backoffKey = shard.front();
        const int maxAttempts =
            1 + std::max(0, opts_.retry.maxRetries);
        for (int a = 0; a < maxAttempts; ++a) {
            ShardAttempt rec;
            rec.startSeconds = elapsedSeconds();
            WorkerOutcome outcome = attempt(pending, a, rec);
            rec.durationSeconds = elapsedSeconds() - rec.startSeconds;
            timeline_[tlIndex].attempts.push_back(std::move(rec));
            pending = unresolvedOf(pending);
            if (pending.empty()) {
                timeline_[tlIndex].resolution = "ok";
                fireProgress(/*force=*/true);
                return;
            }
            if (a + 1 == maxAttempts) {
                timeline_[tlIndex].resolution =
                    pending.size() == 1 ? "quarantined" : "bisected";
                giveUp(pending, outcome);
                return;
            }
            ++stats_.retries;
            ShardMetrics::get().retries.inc();
            const double wait =
                opts_.retry.backoffSeconds(a, backoffKey);
            ++stats_.backoffWaits;
            ShardMetrics::get().backoffWaits.inc();
            stats_.backoffSeconds += wait;
            timeline_[tlIndex].attempts.back().backoffSeconds = wait;
            {
                ScopedTimer t(phase::kSupervisorBackoff);
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(wait));
            }
        }
    }

    /** Out of retries: split and recurse, or quarantine the point. */
    void giveUp(const std::vector<std::uint32_t> &pending,
                const WorkerOutcome &outcome)
    {
        if (pending.size() == 1) {
            const std::uint32_t idx = pending.front();
            ++stats_.quarantined;
            ShardMetrics::get().quarantined.inc();
            const StatusCode code =
                outcome.kind == WorkerOutcome::Kind::Timeout
                    ? StatusCode::WorkerTimeout
                    : StatusCode::WorkerCrash;
            // The flight recorder of the last failed attempt says
            // what the worker was doing when it died; put that in
            // the quarantine entry so the report explains *why*,
            // not just which point.
            std::string flightCtx;
            if (lastFailedFlight_.has_value() &&
                (!lastFailedFlight_->point.empty() ||
                 !lastFailedFlight_->phase.empty())) {
                flightCtx = "; flight recorder (";
                flightCtx += FlightRecorder::reasonName(
                    lastFailedFlight_->reason);
                flightCtx += "): last point '";
                flightCtx += lastFailedFlight_->point;
                flightCtx += "' in phase '";
                flightCtx += lastFailedFlight_->phase;
                flightCtx += "'";
            }
            quarantine_[idx] = statusf(
                code,
                "isolated worker %s; point quarantined after %d "
                "attempt(s)%s",
                outcome.detail.c_str(),
                1 + std::max(0, opts_.retry.maxRetries),
                flightCtx.c_str());
            warn("supervisor: quarantined design point %s (%s%s)",
                 configs_[idx].label().c_str(),
                 outcome.detail.c_str(), flightCtx.c_str());
            fireProgress(/*force=*/true);
            return;
        }
        // The shard keeps killing workers and we cannot tell which
        // point is poisoned: split it and give each half a fresh
        // retry budget. log2(points) rounds isolate one bad point.
        ++stats_.bisections;
        ShardMetrics::get().bisections.inc();
        const std::size_t mid = pending.size() / 2;
        resolve(std::vector<std::uint32_t>(pending.begin(),
                                           pending.begin() + mid));
        resolve(std::vector<std::uint32_t>(pending.begin() + mid,
                                           pending.end()));
    }

    /**
     * Progress that streams: result frames fire this throttled to
     * one update per progressIntervalSeconds (so an isolated sweep
     * reports per point, like the in-process engine, not only per
     * resolved shard); resolution and quarantine fire it forced.
     */
    void fireProgress(bool force)
    {
        if (!opts_.progress)
            return;
        const double nowSeconds = elapsedSeconds();
        if (!force && nowSeconds - lastProgressSeconds_ <
                          opts_.progressIntervalSeconds)
            return;
        lastProgressSeconds_ = nowSeconds;
        SweepProgress p;
        p.total = configs_.size();
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (quarantine_[i].has_value()) {
                ++p.done;
                ++p.failed;
            } else if (slots_[i].has_value()) {
                ++p.done;
                if (!slots_[i]->ok())
                    ++p.failed;
            }
        }
        p.elapsedSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        p.etaSeconds =
            p.done ? p.elapsedSeconds *
                         static_cast<double>(p.total - p.done) /
                         static_cast<double>(p.done)
                   : 0.0;
        opts_.progress(p);
    }

    Benchmark bench_;
    const std::vector<SystemConfig> &configs_;
    const SupervisorOptions &opts_;
    SupervisionStats stats_;
    std::vector<ShardTimeline> timeline_;
    std::vector<std::optional<Expected<HierarchyStats>>> slots_;
    std::vector<std::optional<Status>> quarantine_;
    std::vector<int> faultFired_;
    std::optional<FlightInfo> lastFailedFlight_;
    std::chrono::steady_clock::time_point start_;
    double lastProgressSeconds_ = -1e9;
};

} // namespace

SupervisedSweep
supervisedEvaluateAll(Explorer &ex, Benchmark b,
                      const std::vector<SystemConfig> &configs,
                      FailureReport *report,
                      const SupervisorOptions &opts)
{
    tlc_assert(report != nullptr,
               "supervisedEvaluateAll requires a FailureReport: "
               "process isolation exists to keep going fail-soft");
    SupervisedSweep out;
    if (configs.empty())
        return out;

    // The in-process engine ticks explore.sweeps once per sweep; do
    // the same here so the aggregated rollups of an isolated run
    // stay comparable counter-for-counter with evaluateAll.
    MetricsRegistry::global().counter("explore.sweeps").inc();

    ShardSupervisor sup(b, configs, opts);
    sup.run();
    out.stats = sup.stats();
    out.timeline = std::move(sup.timeline());

    // Collection: mirror Explorer::evaluateAll exactly, in input
    // index order — ok points price through the same memoized pure
    // functions, failed points record the same way (including the
    // collapse of repeated non-config benchmark failures into one
    // entry), so points, envelopes and report ordering are
    // byte-identical to an in-process run. Quarantined points slot
    // in at their input position like any other per-point failure.
    const char *benchName = Workloads::info(b).name;
    std::string benchFailure;
    out.points.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (sup.quarantine(i).has_value()) {
            report->add(configs[i].label(), *sup.quarantine(i));
            continue;
        }
        tlc_assert(sup.slot(i).has_value(),
                   "supervised sweep left index %zu unresolved", i);
        Expected<HierarchyStats> &r = *sup.slot(i);
        if (r.ok()) {
            out.points.push_back(ex.pricePoint(configs[i], r.value()));
        } else if (r.status().code() != StatusCode::InvalidConfig) {
            std::string repr = r.status().toString();
            if (repr != benchFailure) {
                benchFailure = std::move(repr);
                report->add(std::string("benchmark ") + benchName,
                            r.status());
            }
        } else {
            MetricsRegistry::global()
                .counter("explore.points.failed")
                .inc();
            report->add(configs[i].label(), r.status());
        }
    }
    return out;
}

void
SupervisionStats::accumulate(const SupervisionStats &other)
{
    shards += other.shards;
    attempts += other.attempts;
    retries += other.retries;
    crashes += other.crashes;
    timeouts += other.timeouts;
    exits += other.exits;
    protocolErrors += other.protocolErrors;
    bisections += other.bisections;
    quarantined += other.quarantined;
    backoffWaits += other.backoffWaits;
    backoffSeconds += other.backoffSeconds;
    metricFrames += other.metricFrames;
    phaseFrames += other.phaseFrames;
    eventFrames += other.eventFrames;
    flightFrames += other.flightFrames;
}

std::string
supervisorTimelinesJson(const SupervisionStats &stats,
                        const std::vector<ShardTimeline> &timeline)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"shards_resolved\": " << stats.shards << ",\n"
       << "  \"worker_launches\": " << stats.attempts << ",\n"
       << "  \"retries\": " << stats.retries << ",\n"
       << "  \"crashes\": " << stats.crashes << ",\n"
       << "  \"timeouts\": " << stats.timeouts << ",\n"
       << "  \"exits\": " << stats.exits << ",\n"
       << "  \"protocol_errors\": " << stats.protocolErrors << ",\n"
       << "  \"bisections\": " << stats.bisections << ",\n"
       << "  \"quarantined\": " << stats.quarantined << ",\n"
       << "  \"backoff_waits\": " << stats.backoffWaits << ",\n"
       << "  \"backoff_seconds\": " << jsonNumber(stats.backoffSeconds)
       << ",\n"
       << "  \"metric_frames\": " << stats.metricFrames << ",\n"
       << "  \"phase_frames\": " << stats.phaseFrames << ",\n"
       << "  \"event_frames\": " << stats.eventFrames << ",\n"
       << "  \"flight_frames\": " << stats.flightFrames << ",\n"
       << "  \"shards\": [";
    for (std::size_t i = 0; i < timeline.size(); ++i) {
        const ShardTimeline &tl = timeline[i];
        os << (i ? ",\n" : "\n") << "    {\n"
           << "      \"first_index\": " << tl.firstIndex << ",\n"
           << "      \"count\": " << tl.count << ",\n"
           << "      \"resolution\": " << jsonQuote(tl.resolution)
           << ",\n"
           << "      \"attempts\": [";
        for (std::size_t a = 0; a < tl.attempts.size(); ++a) {
            const ShardAttempt &at = tl.attempts[a];
            os << (a ? ",\n" : "\n") << "        {"
               << "\"worker\": " << at.workerId
               << ", \"outcome\": " << jsonQuote(at.outcome)
               << ", \"detail\": " << jsonQuote(at.detail)
               << ", \"start_seconds\": "
               << jsonNumber(at.startSeconds)
               << ", \"duration_seconds\": "
               << jsonNumber(at.durationSeconds)
               << ", \"results\": " << at.resultsDelivered
               << ", \"backoff_seconds\": "
               << jsonNumber(at.backoffSeconds)
               << ", \"flight_reason\": " << jsonQuote(at.flightReason)
               << ", \"flight_point\": " << jsonQuote(at.flightPoint)
               << ", \"flight_phase\": " << jsonQuote(at.flightPhase)
               << "}";
        }
        os << (tl.attempts.empty() ? "]\n" : "\n      ]\n")
           << "    }";
    }
    os << (timeline.empty() ? "]\n" : "\n  ]\n") << "}";
    return os.str();
}

SupervisedSweep
supervisedSweepSpace(Explorer &ex, Benchmark b,
                     const SystemAssumptions &assume,
                     bool include_single_level, bool include_two_level,
                     FailureReport *report, const SupervisorOptions &opts)
{
    return supervisedEvaluateAll(
        ex, b,
        DesignSpace::enumerate(assume, include_single_level,
                               include_two_level),
        report, opts);
}

bool
supervisorOptionsFromArgs(const ArgParser &args, SupervisorOptions *out)
{
    const std::string mode = args.getString("isolate", "none");
    if (mode != "none" && mode != "process") {
        fatal("--isolate must be 'process' or 'none' (got '%s')",
              mode.c_str());
    }
    out->pointsPerShard =
        static_cast<std::size_t>(args.getInt("shard-points", 32));
    out->watchdog.timeoutSeconds = args.getDouble("shard-timeout", 60.0);
    out->retry.maxRetries =
        static_cast<int>(args.getInt("max-retries", 2));
    out->storeFsync = args.getBool("store-fsync", false);

    const int times = static_cast<int>(args.getInt("inject-times", -1));
    auto inject = [&](const char *key, ShardFault::Kind kind) {
        if (!args.has(key))
            return;
        ShardFault f;
        f.kind = kind;
        f.atIndex = static_cast<std::uint32_t>(args.getInt(key, 0));
        f.times = times;
        out->faults.faults.push_back(f);
    };
    inject("inject-crash-at", ShardFault::Kind::Crash);
    inject("inject-hang-at", ShardFault::Kind::Hang);
    inject("inject-partial-at", ShardFault::Kind::PartialWrite);
    return mode == "process";
}

} // namespace tlc
