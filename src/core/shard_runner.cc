/**
 * @file
 * Shard-runner implementation: the worker-side simulate-and-report
 * loop, the parent-side retry/bisect/quarantine state machine, and
 * the collection pass that keeps supervised output byte-identical to
 * Explorer::evaluateAll.
 */

#include "shard_runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "trace/workload.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/profiler.hh"

namespace tlc {

namespace {

/** Shard-level supervision metrics (per-worker ones live in
 *  util/supervisor.cc as supervisor.worker.*). */
struct ShardMetrics
{
    MetricCounter &sweeps;
    MetricCounter &shards;
    MetricCounter &retries;
    MetricCounter &bisections;
    MetricCounter &quarantined;
    MetricCounter &backoffWaits;

    static ShardMetrics &get()
    {
        auto &r = MetricsRegistry::global();
        static ShardMetrics m{
            r.counter("supervisor.sweeps"),
            r.counter("supervisor.shards"),
            r.counter("supervisor.retries"),
            r.counter("supervisor.bisections"),
            r.counter("supervisor.quarantined"),
            r.counter("supervisor.backoff_waits"),
        };
        return m;
    }
};

// -----------------------------------------------------------------
// Wire format (payloads of util/supervisor.hh frames)
//
// Result frame: u8 tag=1, u32le global config index, u8 ok;
//   ok   -> the eight HierarchyStats fields, u64le, declaration order
//   fail -> u32le StatusCode, u32le message length, message bytes
// Done frame:   u8 tag=2, u32le result-frame count
// -----------------------------------------------------------------

constexpr std::uint8_t kTagResult = 1;
constexpr std::uint8_t kTagDone = 2;

void
putU32le(std::string &s, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64le(std::string &s, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32le(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64le(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::string
encodeResult(std::uint32_t index, const Expected<HierarchyStats> &r)
{
    std::string out;
    out.push_back(static_cast<char>(kTagResult));
    putU32le(out, index);
    out.push_back(static_cast<char>(r.ok() ? 1 : 0));
    if (r.ok()) {
        const HierarchyStats &s = r.value();
        putU64le(out, s.instrRefs);
        putU64le(out, s.dataRefs);
        putU64le(out, s.l1iMisses);
        putU64le(out, s.l1dMisses);
        putU64le(out, s.l2Hits);
        putU64le(out, s.l2Misses);
        putU64le(out, s.swaps);
        putU64le(out, s.offchipWritebacks);
    } else {
        putU32le(out, static_cast<std::uint32_t>(r.status().code()));
        const std::string &msg = r.status().message();
        putU32le(out, static_cast<std::uint32_t>(msg.size()));
        out.append(msg);
    }
    return out;
}

std::string
encodeDone(std::uint32_t count)
{
    std::string out;
    out.push_back(static_cast<char>(kTagDone));
    putU32le(out, count);
    return out;
}

/** A decoded result frame. */
struct WireResult
{
    std::uint32_t index = 0;
    std::optional<Expected<HierarchyStats>> result;
};

/** A StatusCode from the wire, clamped to the known range. */
StatusCode
clampStatusCode(std::uint32_t raw)
{
    if (raw == 0 ||
        raw > static_cast<std::uint32_t>(StatusCode::WorkerTimeout))
        return StatusCode::InternalError;
    return static_cast<StatusCode>(raw);
}

/** Decode one result-frame payload; false on malformed layout. */
bool
decodeResult(std::string_view payload, WireResult &out)
{
    const auto *p =
        reinterpret_cast<const unsigned char *>(payload.data());
    if (payload.size() < 1 + 4 + 1 || p[0] != kTagResult)
        return false;
    out.index = getU32le(p + 1);
    const bool ok = p[5] != 0;
    if (ok) {
        if (payload.size() != 1 + 4 + 1 + 8 * 8)
            return false;
        HierarchyStats s;
        const unsigned char *q = p + 6;
        s.instrRefs = getU64le(q + 0 * 8);
        s.dataRefs = getU64le(q + 1 * 8);
        s.l1iMisses = getU64le(q + 2 * 8);
        s.l1dMisses = getU64le(q + 3 * 8);
        s.l2Hits = getU64le(q + 4 * 8);
        s.l2Misses = getU64le(q + 5 * 8);
        s.swaps = getU64le(q + 6 * 8);
        s.offchipWritebacks = getU64le(q + 7 * 8);
        out.result.emplace(s);
        return true;
    }
    if (payload.size() < 1 + 4 + 1 + 4 + 4)
        return false;
    const StatusCode code = clampStatusCode(getU32le(p + 6));
    const std::uint32_t msgLen = getU32le(p + 10);
    if (payload.size() != 1 + 4 + 1 + 4 + 4 +
                              static_cast<std::size_t>(msgLen))
        return false;
    out.result.emplace(Status(
        code, std::string(payload.substr(1 + 4 + 1 + 4 + 4, msgLen))));
    return true;
}

// -----------------------------------------------------------------
// Worker side (runs in the forked child)
// -----------------------------------------------------------------

/** Hang in a SIGTERM-proof way, so the SIGKILL escalation is what
 *  actually ends the worker (the injection tests depend on it). */
[[noreturn]] void
hangForever()
{
    signal(SIGTERM, SIG_IGN);
    for (;;)
        pause();
}

/**
 * The forked worker: misbehave if a fault says so, otherwise rebuild
 * the evaluator in this process, simulate the shard's
 * configurations, persist to the shard's own store handle, and
 * report each result as one frame followed by a Done frame.
 */
void
runShardWorker(int write_fd, Benchmark b,
               const std::vector<SystemConfig> &configs,
               const std::vector<std::uint32_t> &shard,
               const SupervisorOptions &opts, const ShardFault &fault)
{
    if (fault.kind == ShardFault::Kind::Crash)
        raise(SIGSEGV);
    if (fault.kind == ShardFault::Kind::Hang)
        hangForever();
    if (fault.kind == ShardFault::Kind::ExitEarly)
        _exit(3);

    // This worker's own evaluator and store handle: the parent's
    // evaluator memo is inherited copy-on-write by fork but its
    // store fd must not be shared (two writers on one offset would
    // interleave), so the child opens the path itself. An unopenable
    // store degrades this shard to uncached, exactly like the
    // in-process engine.
    EvaluatorOptions evopts = opts.evaluator;
    evopts.resultStore.reset();
    std::shared_ptr<SweepCache> cache;
    if (!opts.resultStorePath.empty()) {
        cache = std::make_shared<SweepCache>();
        ResultStoreOptions ro;
        ro.fsyncOnCommit = opts.storeFsync;
        Status s = cache->open(opts.resultStorePath, ro);
        if (s.ok())
            evopts.resultStore = cache;
        else
            cache.reset();
    }
    MissRateEvaluator ev(evopts);

    std::vector<SystemConfig> shardConfigs;
    shardConfigs.reserve(shard.size());
    for (std::uint32_t idx : shard)
        shardConfigs.push_back(configs[idx]);

    std::vector<Expected<HierarchyStats>> miss =
        ev.tryMissStatsBatch(b, shardConfigs);

    // Commit to disk before claiming success on the pipe: a result
    // the parent saw must be one a resumed run can find in the
    // store.
    if (cache)
        cache->close();

    std::uint32_t sent = 0;
    for (std::size_t i = 0; i < shard.size(); ++i) {
        if (fault.kind == ShardFault::Kind::PartialWrite &&
            shard[i] >= fault.atIndex) {
            // Tear the stream mid-frame: a header promising 64
            // payload bytes, then 4 bytes of nothing, then death.
            std::string torn;
            putU32le(torn, 64);
            putU32le(torn, 0xdeadbeefu);
            torn.append("torn");
            ssize_t ignored =
                ::write(write_fd, torn.data(), torn.size());
            (void)ignored;
            _exit(1);
        }
        if (!writeFrame(write_fd, encodeResult(shard[i], miss[i])).ok())
            _exit(4); // parent gone; nothing sensible left to do
        ++sent;
    }
    if (!writeFrame(write_fd, encodeDone(sent)).ok())
        _exit(4);
}

// -----------------------------------------------------------------
// Parent side
// -----------------------------------------------------------------

/**
 * The retry/bisect/quarantine state machine of one supervised sweep.
 * Owns the per-index result slots and quarantine statuses; shards
 * run strictly sequentially (one result-store writer at a time, and
 * the simulation is the bottleneck, not the supervision).
 */
class ShardSupervisor
{
  public:
    ShardSupervisor(Benchmark b,
                    const std::vector<SystemConfig> &configs,
                    const SupervisorOptions &opts)
        : bench_(b), configs_(configs), opts_(opts),
          slots_(configs.size()), quarantine_(configs.size()),
          faultFired_(opts.faults.faults.size(), 0),
          start_(std::chrono::steady_clock::now())
    {
    }

    void run()
    {
        ShardMetrics::get().sweeps.inc();
        const std::size_t n = configs_.size();
        const std::size_t per =
            std::max<std::size_t>(1, opts_.pointsPerShard);
        for (std::size_t lo = 0; lo < n; lo += per) {
            const std::size_t hi = std::min(lo + per, n);
            std::vector<std::uint32_t> shard;
            shard.reserve(hi - lo);
            for (std::size_t i = lo; i < hi; ++i)
                shard.push_back(static_cast<std::uint32_t>(i));
            resolve(shard);
        }
    }

    SupervisionStats &stats() { return stats_; }
    std::optional<Expected<HierarchyStats>> &slot(std::size_t i)
    {
        return slots_[i];
    }
    std::optional<Status> &quarantine(std::size_t i)
    {
        return quarantine_[i];
    }

  private:
    /** The armed fault of @p shard, if any (None kind otherwise). */
    ShardFault armFault(const std::vector<std::uint32_t> &shard)
    {
        for (std::size_t f = 0; f < opts_.faults.faults.size(); ++f) {
            const ShardFault &fault = opts_.faults.faults[f];
            if (fault.kind == ShardFault::Kind::None)
                continue;
            if (fault.times >= 0 && faultFired_[f] >= fault.times)
                continue;
            if (std::find(shard.begin(), shard.end(), fault.atIndex) ==
                shard.end())
                continue;
            ++faultFired_[f];
            return fault;
        }
        return ShardFault{};
    }

    /**
     * One worker launch over @p shard. Results from intact frames
     * are kept even when the attempt as a whole fails — a crash
     * after reporting 30 of 32 points leaves only 2 to re-run.
     */
    WorkerOutcome attempt(const std::vector<std::uint32_t> &shard)
    {
        ScopedTimer t(phase::kSupervisorShard);
        ++stats_.attempts;
        const ShardFault fault = armFault(shard);

        bool doneSeen = false;
        bool badFrame = false;
        auto onFrame = [&](std::string_view payload) {
            if (payload.empty()) {
                badFrame = true;
                return;
            }
            if (static_cast<std::uint8_t>(payload[0]) == kTagDone) {
                doneSeen = payload.size() == 5;
                badFrame = badFrame || payload.size() != 5;
                return;
            }
            WireResult wr;
            if (!decodeResult(payload, wr) ||
                wr.index >= slots_.size()) {
                badFrame = true;
                return;
            }
            slots_[wr.index] = std::move(*wr.result);
        };

        WorkerOutcome outcome = superviseWorker(
            [&](int fd) {
                runShardWorker(fd, bench_, configs_, shard, opts_,
                               fault);
            },
            opts_.watchdog, onFrame);

        if (outcome.ok() && (badFrame || !doneSeen)) {
            // The pipe closed cleanly but the conversation did not
            // finish — treat like any other protocol violation.
            outcome.kind = WorkerOutcome::Kind::Protocol;
            outcome.detail = badFrame
                                 ? "worker sent a malformed frame"
                                 : "worker exited without a Done frame";
        }
        switch (outcome.kind) {
        case WorkerOutcome::Kind::Ok:
            break;
        case WorkerOutcome::Kind::Crash:
            ++stats_.crashes;
            break;
        case WorkerOutcome::Kind::Timeout:
            ++stats_.timeouts;
            break;
        case WorkerOutcome::Kind::Exit:
            ++stats_.exits;
            break;
        case WorkerOutcome::Kind::Protocol:
        case WorkerOutcome::Kind::ForkFailed:
            ++stats_.protocolErrors;
            break;
        }
        return outcome;
    }

    std::vector<std::uint32_t>
    unresolvedOf(const std::vector<std::uint32_t> &shard) const
    {
        std::vector<std::uint32_t> out;
        for (std::uint32_t idx : shard)
            if (!slots_[idx].has_value())
                out.push_back(idx);
        return out;
    }

    /** Resolve every index of @p shard: retry, bisect, quarantine. */
    void resolve(const std::vector<std::uint32_t> &shard)
    {
        ++stats_.shards;
        ShardMetrics::get().shards.inc();

        std::vector<std::uint32_t> pending = shard;
        const std::uint64_t backoffKey = shard.front();
        const int maxAttempts =
            1 + std::max(0, opts_.retry.maxRetries);
        for (int a = 0; a < maxAttempts; ++a) {
            WorkerOutcome outcome = attempt(pending);
            pending = unresolvedOf(pending);
            if (pending.empty()) {
                fireProgress();
                return;
            }
            if (a + 1 == maxAttempts) {
                giveUp(pending, outcome);
                return;
            }
            ++stats_.retries;
            ShardMetrics::get().retries.inc();
            const double wait =
                opts_.retry.backoffSeconds(a, backoffKey);
            ++stats_.backoffWaits;
            ShardMetrics::get().backoffWaits.inc();
            stats_.backoffSeconds += wait;
            {
                ScopedTimer t(phase::kSupervisorBackoff);
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(wait));
            }
        }
    }

    /** Out of retries: split and recurse, or quarantine the point. */
    void giveUp(const std::vector<std::uint32_t> &pending,
                const WorkerOutcome &outcome)
    {
        if (pending.size() == 1) {
            const std::uint32_t idx = pending.front();
            ++stats_.quarantined;
            ShardMetrics::get().quarantined.inc();
            const StatusCode code =
                outcome.kind == WorkerOutcome::Kind::Timeout
                    ? StatusCode::WorkerTimeout
                    : StatusCode::WorkerCrash;
            quarantine_[idx] = statusf(
                code,
                "isolated worker %s; point quarantined after %d "
                "attempt(s)",
                outcome.detail.c_str(),
                1 + std::max(0, opts_.retry.maxRetries));
            warn("supervisor: quarantined design point %s (%s)",
                 configs_[idx].label().c_str(),
                 outcome.detail.c_str());
            fireProgress();
            return;
        }
        // The shard keeps killing workers and we cannot tell which
        // point is poisoned: split it and give each half a fresh
        // retry budget. log2(points) rounds isolate one bad point.
        ++stats_.bisections;
        ShardMetrics::get().bisections.inc();
        const std::size_t mid = pending.size() / 2;
        resolve(std::vector<std::uint32_t>(pending.begin(),
                                           pending.begin() + mid));
        resolve(std::vector<std::uint32_t>(pending.begin() + mid,
                                           pending.end()));
    }

    void fireProgress()
    {
        if (!opts_.progress)
            return;
        SweepProgress p;
        p.total = configs_.size();
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (quarantine_[i].has_value()) {
                ++p.done;
                ++p.failed;
            } else if (slots_[i].has_value()) {
                ++p.done;
                if (!slots_[i]->ok())
                    ++p.failed;
            }
        }
        p.elapsedSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        p.etaSeconds =
            p.done ? p.elapsedSeconds *
                         static_cast<double>(p.total - p.done) /
                         static_cast<double>(p.done)
                   : 0.0;
        opts_.progress(p);
    }

    Benchmark bench_;
    const std::vector<SystemConfig> &configs_;
    const SupervisorOptions &opts_;
    SupervisionStats stats_;
    std::vector<std::optional<Expected<HierarchyStats>>> slots_;
    std::vector<std::optional<Status>> quarantine_;
    std::vector<int> faultFired_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace

SupervisedSweep
supervisedEvaluateAll(Explorer &ex, Benchmark b,
                      const std::vector<SystemConfig> &configs,
                      FailureReport *report,
                      const SupervisorOptions &opts)
{
    tlc_assert(report != nullptr,
               "supervisedEvaluateAll requires a FailureReport: "
               "process isolation exists to keep going fail-soft");
    SupervisedSweep out;
    if (configs.empty())
        return out;

    ShardSupervisor sup(b, configs, opts);
    sup.run();
    out.stats = sup.stats();

    // Collection: mirror Explorer::evaluateAll exactly, in input
    // index order — ok points price through the same memoized pure
    // functions, failed points record the same way (including the
    // collapse of repeated non-config benchmark failures into one
    // entry), so points, envelopes and report ordering are
    // byte-identical to an in-process run. Quarantined points slot
    // in at their input position like any other per-point failure.
    const char *benchName = Workloads::info(b).name;
    std::string benchFailure;
    out.points.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        if (sup.quarantine(i).has_value()) {
            report->add(configs[i].label(), *sup.quarantine(i));
            continue;
        }
        tlc_assert(sup.slot(i).has_value(),
                   "supervised sweep left index %zu unresolved", i);
        Expected<HierarchyStats> &r = *sup.slot(i);
        if (r.ok()) {
            out.points.push_back(ex.pricePoint(configs[i], r.value()));
        } else if (r.status().code() != StatusCode::InvalidConfig) {
            std::string repr = r.status().toString();
            if (repr != benchFailure) {
                benchFailure = std::move(repr);
                report->add(std::string("benchmark ") + benchName,
                            r.status());
            }
        } else {
            MetricsRegistry::global()
                .counter("explore.points.failed")
                .inc();
            report->add(configs[i].label(), r.status());
        }
    }
    return out;
}

SupervisedSweep
supervisedSweepSpace(Explorer &ex, Benchmark b,
                     const SystemAssumptions &assume,
                     bool include_single_level, bool include_two_level,
                     FailureReport *report, const SupervisorOptions &opts)
{
    return supervisedEvaluateAll(
        ex, b,
        DesignSpace::enumerate(assume, include_single_level,
                               include_two_level),
        report, opts);
}

bool
supervisorOptionsFromArgs(const ArgParser &args, SupervisorOptions *out)
{
    const std::string mode = args.getString("isolate", "none");
    if (mode != "none" && mode != "process") {
        fatal("--isolate must be 'process' or 'none' (got '%s')",
              mode.c_str());
    }
    out->pointsPerShard =
        static_cast<std::size_t>(args.getInt("shard-points", 32));
    out->watchdog.timeoutSeconds = args.getDouble("shard-timeout", 60.0);
    out->retry.maxRetries =
        static_cast<int>(args.getInt("max-retries", 2));
    out->storeFsync = args.getBool("store-fsync", false);

    const int times = static_cast<int>(args.getInt("inject-times", -1));
    auto inject = [&](const char *key, ShardFault::Kind kind) {
        if (!args.has(key))
            return;
        ShardFault f;
        f.kind = kind;
        f.atIndex = static_cast<std::uint32_t>(args.getInt(key, 0));
        f.times = times;
        out->faults.faults.push_back(f);
    };
    inject("inject-crash-at", ShardFault::Kind::Crash);
    inject("inject-hang-at", ShardFault::Kind::Hang);
    inject("inject-partial-at", ShardFault::Kind::PartialWrite);
    return mode == "process";
}

} // namespace tlc
