/**
 * @file
 * BatchEngine: the config-mapping half of the single-pass
 * multi-configuration simulation engine. It turns a span of
 * SystemConfigs into SimGroup lanes (cache/sim_group.hh), drives the
 * benchmark trace through the group once with the same warmup
 * semantics as Hierarchy::simulate, and hands back HierarchyStats in
 * input order.
 *
 * The point: pricing a design space re-simulates the same trace once
 * per configuration, and the trace walk dominates wall clock. One
 * BatchEngine call decodes the trace once for N configurations; the
 * stats are byte-identical to N separate Hierarchy::simulate runs
 * (differentially enforced by tests/test_batch_engine.cc), so the
 * evaluator can substitute it for the point-major loop without
 * changing any figure.
 *
 * Instrumentation: each call is timed under the "sim.batch" profiler
 * phase and counted in the explore.batch.* metrics (groups, lanes,
 * how many lanes ran on the flat fast path).
 */

#ifndef TLC_CORE_BATCH_ENGINE_HH
#define TLC_CORE_BATCH_ENGINE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "cache/sim_group.hh"
#include "core/system_config.hh"
#include "trace/buffer.hh"

namespace tlc {

/**
 * Single-pass multi-configuration simulation driver. Stateless: both
 * entry points are class-statics, grouped here so the engine has one
 * name in profiles and docs.
 */
class BatchEngine
{
  public:
    /** Outcome of one batched simulation call. */
    struct Result
    {
        /** Per-config stats, ordered like the input span. */
        std::vector<HierarchyStats> stats;
        std::size_t flatLanes = 0;    ///< lanes on the SoA fast path
        std::size_t genericLanes = 0; ///< lanes on the virtual path
    };

    /**
     * Drive @p trace through @p group: the first @p warmup_refs
     * records warm every lane, statistics cover the rest — exactly
     * Hierarchy::simulate's contract, applied to all lanes in one
     * trace pass.
     */
    static void run(const TraceBuffer &trace, std::uint64_t warmup_refs,
                    SimGroup &group);

    /**
     * Simulate every configuration of @p configs against @p trace in
     * one pass. Each config must already satisfy check(); the lane
     * mapping (single- vs two-level, default seed) matches what
     * MissRateEvaluator builds for its point-major path, so the
     * returned stats are interchangeable with tryMissStats results.
     */
    static Result simulateConfigs(const TraceBuffer &trace,
                                  std::uint64_t warmup_refs,
                                  std::span<const SystemConfig> configs);
};

} // namespace tlc

#endif // TLC_CORE_BATCH_ENGINE_HH
