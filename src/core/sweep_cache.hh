/**
 * @file
 * Persistent sweep cache: content-addressed miss-statistics reuse
 * across processes and runs.
 *
 * The in-memory memo in MissRateEvaluator dies with the process; a
 * SweepCache puts the same (trace identity, warmup, configuration)
 * -> HierarchyStats mapping behind a ResultStore file, so
 *
 *  - a RE-RUN of a sweep whose model knobs did not change answers
 *    every point from disk instead of re-simulating (the
 *    incremental-sweep property of Ling et al., arXiv:1907.05068);
 *  - a sweep KILLED mid-run resumes where it stopped: every batch
 *    appended before the kill is a hit on the next run, only the
 *    unfinished tail simulates (--result-store/--resume on
 *    design_explorer and figure_runner).
 *
 * Keys are a stable FNV-1a hash of a canonical key text built from
 * the trace identity (benchmark model + length + variant, or trace
 * file path + size), the warmup reference count, the configuration's
 * missKeyString(), and kSweepCacheSchemaVersion. The full key text
 * travels inside the payload and is compared on every lookup, so a
 * hash collision — or a record written by a different schema —
 * reads as a miss ("stale"), never as wrong statistics. Cached
 * statistics round-trip bit-exactly (fixed-width little-endian
 * integers), which is what lets a warm sweep promise byte-identical
 * points, envelopes and failure reports (tests/test_result_store.cc).
 *
 * Observability: lookups and appends run under the "sweep.cache"
 * profiler phase and tick sweep_cache.{hits,misses,stale,appends}
 * in the global metrics registry.
 *
 * Thread safety: SweepCache is a thin layer over ResultStore's
 * mutex plus atomics; sweep workers share one instance freely.
 */

#ifndef TLC_CORE_SWEEP_CACHE_HH
#define TLC_CORE_SWEEP_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "cache/hierarchy.hh"
#include "core/system_config.hh"
#include "trace/workload.hh"
#include "util/result_store.hh"
#include "util/status.hh"

namespace tlc {

/**
 * Version of the SIMULATION SEMANTICS baked into cached results.
 * Bump whenever the synthetic workload generators, the cache models,
 * or the stats layout change meaning: old entries then hash to
 * different keys and simply stop matching, so a stale store can
 * never contaminate a new engine.
 */
constexpr std::uint32_t kSweepCacheSchemaVersion = 1;

/** How a lookup was resolved (mostly for tests and tooling). */
enum class SweepCacheOutcome { Hit, Miss, Stale };

class SweepCache
{
  public:
    SweepCache() = default;

    /** Open (or create) the backing store; see ResultStore::open.
     *  @p options passes durability knobs (fsync-on-commit) through
     *  to the underlying ResultStore. */
    Status open(const std::string &path,
                const ResultStoreOptions &options = {});
    void close() { store_.close(); }

    bool enabled() const { return store_.isOpen(); }
    const std::string &path() const { return store_.path(); }
    std::size_t entries() const { return store_.size(); }
    std::uint64_t droppedRecords() const
    {
        return store_.droppedRecords();
    }

    /**
     * Canonical key text of one cached point. @p trace_id comes from
     * traceIdentity(); everything else is the simulation request.
     * @p backend_tag distinguishes results produced by a non-exact
     * backend (e.g. "analytic1"): empty (the default, and what exact
     * simulation uses) keeps the legacy key text byte-identical, so
     * stores written before backends existed stay warm, while tagged
     * entries can never alias exact ones (enforced by
     * tests/test_batch_engine.cc's backend-mismatch test).
     */
    static std::string keyText(const std::string &trace_id,
                               std::uint64_t warmup_refs,
                               const SystemConfig &config,
                               const std::string &backend_tag =
                                   std::string());

    /** The store key: "tlc<schema>-" + 16-hex FNV-1a of @p key_text. */
    static std::string hashKey(const std::string &key_text);

    /**
     * Stable identity of the trace @p b would simulate against:
     * synthetic traces name the benchmark model, length and variant;
     * file-backed traces name the path and on-disk size (so a
     * swapped trace file invalidates its entries). Never loads or
     * generates the trace — a fully warm sweep touches no trace
     * bytes at all.
     */
    static std::string traceIdentity(Benchmark b,
                                     std::uint64_t trace_refs,
                                     const std::string &trace_file);

    /** Cached stats of @p key_text, or nullopt (miss/stale). */
    std::optional<HierarchyStats> lookup(const std::string &key_text,
                                         SweepCacheOutcome *outcome =
                                             nullptr);

    /**
     * Persist one simulated result. Append failures are reported to
     * the warn log, not the caller: a read-only or full disk must
     * degrade a sweep to uncached, not kill it.
     */
    void store(const std::string &key_text, const HierarchyStats &stats);

  private:
    ResultStore store_;
};

} // namespace tlc

#endif // TLC_CORE_SWEEP_CACHE_HH
