/**
 * @file
 * TPI model implementation.
 */

#include "tpi.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace tlc {

TpiResult
computeTpi(const HierarchyStats &stats, const TpiParams &params)
{
    tlc_assert(params.l1CycleNs > 0, "L1 cycle time must be positive");
    tlc_assert(params.issuePerCycle > 0, "issue rate must be positive");
    tlc_assert(stats.instrRefs > 0, "TPI undefined without instructions");
    if (params.hasL2)
        tlc_assert(params.l2CycleNsRaw > 0, "two-level system needs an "
                   "L2 cycle time");

    const double t1 = params.l1CycleNs;
    TpiResult r;
    r.offchipNsRounded = roundUpToMultiple(params.offchipNs, t1);
    r.baseTimeNs = static_cast<double>(stats.instrRefs) * t1 /
        params.issuePerCycle;

    if (params.hasL2) {
        r.l2CycleNs = roundUpToMultiple(params.l2CycleNsRaw, t1);
        r.l2CycleCpu = cyclesCeil(params.l2CycleNsRaw, t1);
        r.l2HitPenaltyCpu = 2 * r.l2CycleCpu + 1;
        r.l2MissPenaltyCpu = cyclesCeil(params.offchipNs, t1) +
            3 * r.l2CycleCpu + 1;
        r.l2HitTimeNs = static_cast<double>(stats.l2Hits) *
            (2.0 * r.l2CycleNs + t1);
        r.l2MissTimeNs = static_cast<double>(stats.l2Misses) *
            (r.offchipNsRounded + 3.0 * r.l2CycleNs + t1);
    } else {
        tlc_assert(stats.l2Hits == 0,
                   "single-level system cannot have L2 hits");
        r.l2MissPenaltyCpu = cyclesCeil(params.offchipNs, t1) + 1;
        r.l2MissTimeNs = static_cast<double>(stats.l2Misses) *
            (r.offchipNsRounded + t1);
    }

    r.tpi = (r.baseTimeNs + r.l2HitTimeNs + r.l2MissTimeNs) /
        static_cast<double>(stats.instrRefs);
    return r;
}

} // namespace tlc
