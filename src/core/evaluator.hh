/**
 * @file
 * Miss-rate evaluation with caching of traces and results.
 *
 * Sweeping the paper's design space touches the same (benchmark,
 * configuration) miss counts from several experiments; the evaluator
 * generates each benchmark trace once and memoizes simulation
 * results so figure drivers stay fast.
 *
 * Setup is value-based: construct with EvaluatorOptions to pick the
 * trace length, the warmup fraction, and which benchmarks are routed
 * to on-disk trace files instead of the synthetic model — there is
 * no post-construction mutation to race with a sweep. Because
 * on-disk data can be corrupt, every entry point reports failures as
 * Status values: a sweep that hits an unreadable trace or an invalid
 * configuration records the failure and keeps going (see
 * Explorer::evaluateAll) instead of exiting mid-run.
 *
 * Batching: tryMissStatsBatch() services many configurations from
 * ONE trace pass via the batch engine (core/batch_engine.hh) —
 * memoized configs are answered from cache, the rest share a single
 * decode of the benchmark trace. Results are byte-identical to
 * per-config tryMissStats() calls.
 *
 * Backends: EvaluatorOptions::backend selects how miss statistics
 * are produced — Exact simulation (default), the Analytic
 * reuse-distance model (core/reuse_profile.hh; one profiling pass
 * answers every cache size), or AnalyticPrune (exact here; the
 * Explorer prunes the sweep analytically and simulates only
 * Pareto-front survivors). Memo and store keys are backend-distinct,
 * so analytic estimates can never be served where exact counts were
 * requested or vice versa.
 *
 * Persistence: with EvaluatorOptions::resultStore set, a second
 * cache level sits between the memo and simulation — a persistent,
 * content-addressed SweepCache (core/sweep_cache.hh). Points
 * resolved there skip the simulation (and, when every point hits,
 * the trace load/generation too); points that do simulate are
 * appended, so interrupted or repeated sweeps pick up where the
 * store left off. Cached results are bit-exact, keeping warm sweeps
 * byte-identical to cold ones.
 *
 * Thread safety: the trace and result caches are guarded by an
 * internal mutex, and each evaluation simulates on private state
 * over the shared read-only trace, so the try* entry points may be
 * called from several sweep workers concurrently. Simulation runs
 * outside the lock; two workers racing on the same key compute
 * identical (deterministic) stats and the first insert wins.
 */

#ifndef TLC_CORE_EVALUATOR_HH
#define TLC_CORE_EVALUATOR_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/reuse_profile.hh"
#include "core/sweep_cache.hh"
#include "core/system_config.hh"
#include "trace/workload.hh"
#include "util/status.hh"

namespace tlc {

/**
 * How miss statistics are produced.
 *
 *  - Exact: simulate every configuration against the trace (the
 *    default, and the only backend that models swaps, writebacks and
 *    non-LRU replacement exactly).
 *  - Analytic: answer every configuration from one reuse-distance
 *    profiling pass per (benchmark, line size) — see
 *    core/reuse_profile.hh. Approximate for set-associative and
 *    random-replacement geometries; docs/analytic_model.md states
 *    the model and the measured error bounds.
 *  - AnalyticPrune: the evaluator behaves like Exact; Explorer uses
 *    the analytic model to RANK the design space, prunes dominated
 *    points, and simulates only the surviving Pareto-front
 *    candidates exactly, reproducing the exact sweep's envelope at a
 *    fraction of the simulations.
 */
enum class MissBackend { Exact, Analytic, AnalyticPrune };

/** Stable CLI name: "exact", "analytic", "analytic-prune". */
const char *missBackendName(MissBackend b);

/** Parse a missBackendName spelling ('_' accepted for '-');
 *  returns false on unknown names, leaving @p out untouched. */
bool missBackendFromName(const std::string &name, MissBackend &out);

/**
 * A process-wide pool of loaded/generated benchmark traces, shared
 * by several MissRateEvaluators. The sweep-service daemon
 * (service/sweep_service.hh) builds a FRESH evaluator per request —
 * so every request's memo misses route through the shared persistent
 * store, making cache reuse visible per request — but a fresh
 * evaluator must not re-generate multi-megabyte traces the previous
 * request already paid for. Keyed by SweepCache::traceIdentity, so
 * two evaluators with the same benchmark, length and trace-file
 * routing share one immutable buffer.
 *
 * Thread safety: the pool mutex is held across a load, so
 * concurrent requests for the same trace block until the first load
 * finishes (one load, many readers). Returned pointers stay valid
 * for the pool's lifetime.
 */
class TracePool
{
  public:
    /**
     * The trace named by @p key, loading it with @p loader on first
     * use. A failed load is not cached; the next acquire retries.
     */
    Expected<const TraceBuffer *>
    acquire(const std::string &key,
            const std::function<Expected<TraceBuffer>()> &loader);

    /** Number of distinct traces resident. */
    std::size_t size() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<TraceBuffer>> traces_;
};

/**
 * Construction-time configuration of a MissRateEvaluator. A plain
 * value: build one, adjust fields, hand it to the constructor.
 */
struct EvaluatorOptions
{
    /** References per benchmark trace
     *  (0 => Workloads::defaultTraceLength()). */
    std::uint64_t traceRefs = 0;
    /** Leading fraction of each trace excluded from statistics. */
    double warmupFraction = 0.1;
    /** Benchmarks routed to on-disk trace files (any format
     *  loadTraceFile understands) instead of the synthetic model.
     *  Loads happen lazily at first use. */
    std::map<Benchmark, std::string> traceFiles;
    /** Persistent result store shared across runs (core/
     *  sweep_cache.hh). With one, the evaluator consults the store
     *  between the in-memory memo and simulation, and appends every
     *  freshly simulated result — so repeated and resumed sweeps
     *  skip the trace walks entirely. Null (the default) disables
     *  persistence; a SweepCache that is not open() behaves the
     *  same. */
    std::shared_ptr<SweepCache> resultStore;
    /** Shared trace pool (see TracePool). With one, the evaluator
     *  resolves traces there instead of in its private cache, so
     *  short-lived evaluators (one per served sweep request) reuse
     *  already-loaded traces. Null (the default) keeps the classic
     *  per-evaluator trace cache. */
    std::shared_ptr<TracePool> tracePool;
    /** Miss-statistics backend (see MissBackend). Results from
     *  different backends never alias: the in-memory memo prefixes
     *  analytic keys, and the persistent store appends a backend tag
     *  to analytic key texts (exact key texts are unchanged, so
     *  stores written by exact-only builds stay valid). */
    MissBackend backend = MissBackend::Exact;
    /** AnalyticPrune safety margin: a point survives pruning while
     *  its analytic TPI is within (1 + pruneMargin) of the best
     *  analytic TPI among points of equal or smaller area. Must
     *  exceed the analytic model's worst near-frontier ranking
     *  error. Design spaces covered by the profiler's exact ladders
     *  (direct-mapped L1s, mostly-inclusive L2 in range — the
     *  paper's whole space) have ZERO ranking error, so the default
     *  is a token safety band; spaces that hit the approximate
     *  fallback models need a margin sized to the measured error
     *  (up to ~0.35 on the synthetic family — see
     *  docs/analytic_model.md before trusting pruned envelopes
     *  there). Calibrated by tests/test_figures_golden.cc and
     *  bench/analytic_sweep.cc. */
    double pruneMargin = 0.02;
};

/**
 * Runs configurations against benchmark traces. Results depend only
 * on the functional cache parameters, so the memoization key ignores
 * timing-only knobs (off-chip time, dual porting).
 */
class MissRateEvaluator
{
  public:
    explicit MissRateEvaluator(EvaluatorOptions options);

    /**
     * Convenience for the common all-synthetic case.
     * @param trace_refs      references per benchmark trace
     *                        (0 => Workloads::defaultTraceLength())
     * @param warmup_fraction leading fraction excluded from stats
     */
    explicit MissRateEvaluator(std::uint64_t trace_refs = 0,
                               double warmup_fraction = 0.1);

    /**
     * The (lazily loaded/generated, cached) trace of @p b, or the
     * Status explaining why its trace file could not be read. The
     * pointer stays valid for the evaluator's lifetime.
     */
    Expected<const TraceBuffer *> tryTrace(Benchmark b);

    /**
     * Miss statistics of @p config on @p b (memoized), with invalid
     * configurations and unreadable traces reported as a Status
     * instead of aborting.
     */
    Expected<HierarchyStats> tryMissStats(Benchmark b,
                                          const SystemConfig &config);

    /**
     * Miss statistics of every configuration of @p configs on @p b,
     * ordered like the input. Memoized configs are answered from
     * cache; the rest are simulated together in ONE pass over the
     * benchmark trace (deduplicated by memo key first), producing
     * stats byte-identical to per-config tryMissStats() calls.
     * Failures are per-slot: an invalid config fails its own slot,
     * an unloadable trace fails every non-memoized slot.
     */
    std::vector<Expected<HierarchyStats>> tryMissStatsBatch(
        Benchmark b, std::span<const SystemConfig> configs);

    /**
     * The (lazily computed, cached) reuse-distance profile of @p b
     * at @p line_bytes, or the Status explaining why the trace could
     * not be obtained. One profiling pass per (benchmark, line size)
     * for the evaluator's lifetime; the pointer stays valid for the
     * evaluator's lifetime and the profile is immutable, so workers
     * share it freely.
     */
    Expected<const ReuseProfile *>
    tryProfile(Benchmark b, std::uint32_t line_bytes,
               std::uint32_t l2_ways = 4,
               ReplPolicy l2_repl = ReplPolicy::Random);

    /**
     * ANALYTIC miss statistics of @p config on @p b (memoized under
     * backend-distinct keys), failing soft with exactly the Status
     * values the exact path produces for the same inputs: an invalid
     * configuration fails config.check(), an unreadable trace fails
     * the profile. Available whatever the constructed backend;
     * tryMissStats routes here when the backend is Analytic.
     */
    Expected<HierarchyStats> tryAnalyticStats(Benchmark b,
                                              const SystemConfig &config);

    /** Run an arbitrary hierarchy against a benchmark's trace. */
    void simulate(Benchmark b, Hierarchy &h);

    MissBackend backend() const { return backend_; }
    double pruneMargin() const { return pruneMargin_; }

    std::uint64_t traceRefs() const { return traceRefs_; }
    std::uint64_t warmupRefs() const;

    /** Number of memoized (benchmark, config) results. */
    std::size_t memoSize() const;

    /** True when an open persistent result store is attached. */
    bool hasResultStore() const
    {
        return store_ && store_->enabled();
    }

  private:
    std::string key(Benchmark b, const SystemConfig &c) const;
    std::string storeKeyText(Benchmark b, const SystemConfig &c,
                             MissBackend backend = MissBackend::Exact);
    static std::unique_ptr<Hierarchy> makeHierarchy(
        const SystemConfig &config);

    /** Load or synthesize the trace of @p b (shared by the private
     *  cache and the pooled path). */
    Expected<TraceBuffer> loadTrace(Benchmark b,
                                    const std::string &trace_file);

    std::uint64_t traceRefs_;
    double warmupFraction_;
    MissBackend backend_;
    double pruneMargin_;
    std::shared_ptr<SweepCache> store_;
    std::shared_ptr<TracePool> pool_;
    mutable std::mutex mu_; ///< guards the five caches below
    std::map<Benchmark, TraceBuffer> traces_;
    std::map<Benchmark, std::string> traceFiles_;
    std::map<Benchmark, std::string> traceIds_;
    std::map<std::string, HierarchyStats> results_;
    /** (benchmark, line size, L2 ladder ways, L2 ladder policy) ->
     *  immutable profile; unique_ptr keeps the address stable across
     *  later insertions. */
    std::map<std::tuple<int, std::uint32_t, std::uint32_t, int>,
             std::unique_ptr<ReuseProfile>> profiles_;
};

} // namespace tlc

#endif // TLC_CORE_EVALUATOR_HH
