/**
 * @file
 * Miss-rate evaluation with caching of traces and results.
 *
 * Sweeping the paper's design space touches the same (benchmark,
 * configuration) miss counts from several experiments; the evaluator
 * generates each benchmark trace once and memoizes simulation
 * results so figure drivers stay fast.
 */

#ifndef TLC_CORE_EVALUATOR_HH
#define TLC_CORE_EVALUATOR_HH

#include <map>
#include <memory>
#include <string>

#include "cache/hierarchy.hh"
#include "core/system_config.hh"
#include "trace/workload.hh"

namespace tlc {

/**
 * Runs configurations against benchmark traces. Results depend only
 * on the functional cache parameters, so the memoization key ignores
 * timing-only knobs (off-chip time, dual porting).
 */
class MissRateEvaluator
{
  public:
    /**
     * @param trace_refs      references per benchmark trace
     *                        (0 => Workloads::defaultTraceLength())
     * @param warmup_fraction leading fraction excluded from stats
     */
    explicit MissRateEvaluator(std::uint64_t trace_refs = 0,
                               double warmup_fraction = 0.1);

    /** The (lazily generated, cached) trace of a benchmark. */
    const TraceBuffer &trace(Benchmark b);

    /** Miss statistics of @p config on @p b (memoized). */
    const HierarchyStats &missStats(Benchmark b, const SystemConfig &config);

    /** Run an arbitrary hierarchy against a benchmark's trace. */
    void simulate(Benchmark b, Hierarchy &h) const;

    std::uint64_t traceRefs() const { return traceRefs_; }
    std::uint64_t warmupRefs() const;

  private:
    std::string key(Benchmark b, const SystemConfig &c) const;

    std::uint64_t traceRefs_;
    double warmupFraction_;
    std::map<Benchmark, TraceBuffer> traces_;
    std::map<std::string, HierarchyStats> results_;
};

} // namespace tlc

#endif // TLC_CORE_EVALUATOR_HH
