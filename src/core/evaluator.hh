/**
 * @file
 * Miss-rate evaluation with caching of traces and results.
 *
 * Sweeping the paper's design space touches the same (benchmark,
 * configuration) miss counts from several experiments; the evaluator
 * generates each benchmark trace once and memoizes simulation
 * results so figure drivers stay fast.
 *
 * Traces are synthetic by default (Workloads::generate); a benchmark
 * can instead be routed to an on-disk trace with setTraceFile(), the
 * path users with real captured traces take. Because on-disk data
 * can be corrupt, the try* entry points report failures as Status
 * values: a sweep that hits an unreadable trace or an invalid
 * configuration records the failure and keeps going (see
 * Explorer::evaluateAll) instead of exiting mid-run.
 *
 * Thread safety: the trace and result caches are guarded by an
 * internal mutex, and each evaluation simulates on its own
 * Hierarchy instance over the shared read-only trace, so the try
 * entry points, missStats and trace may be called from several
 * sweep workers concurrently. Simulation runs outside the lock; two workers
 * racing on the same key compute identical (deterministic) stats
 * and the first insert wins. setTraceFile() is setup-time only —
 * do not call it while a sweep is in flight.
 */

#ifndef TLC_CORE_EVALUATOR_HH
#define TLC_CORE_EVALUATOR_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cache/hierarchy.hh"
#include "core/system_config.hh"
#include "trace/workload.hh"
#include "util/status.hh"

namespace tlc {

/**
 * Runs configurations against benchmark traces. Results depend only
 * on the functional cache parameters, so the memoization key ignores
 * timing-only knobs (off-chip time, dual porting).
 */
class MissRateEvaluator
{
  public:
    /**
     * @param trace_refs      references per benchmark trace
     *                        (0 => Workloads::defaultTraceLength())
     * @param warmup_fraction leading fraction excluded from stats
     */
    explicit MissRateEvaluator(std::uint64_t trace_refs = 0,
                               double warmup_fraction = 0.1);

    /**
     * Route @p b to an on-disk trace file (any format loadTraceFile
     * understands) instead of the synthetic model. Load happens
     * lazily at first use; a cached trace for @p b is dropped so the
     * next access re-reads the file.
     */
    void setTraceFile(Benchmark b, std::string path);

    /**
     * The (lazily loaded/generated, cached) trace of @p b, or the
     * Status explaining why its trace file could not be read. The
     * pointer stays valid for the evaluator's lifetime.
     */
    Expected<const TraceBuffer *> tryTrace(Benchmark b);

    /**
     * The (lazily generated, cached) trace of a benchmark.
     * Legacy convenience: panics when a routed trace file is
     * unreadable; fail-soft callers use tryTrace().
     */
    const TraceBuffer &trace(Benchmark b);

    /**
     * Miss statistics of @p config on @p b (memoized), with invalid
     * configurations and unreadable traces reported as a Status
     * instead of aborting.
     */
    Expected<HierarchyStats> tryMissStats(Benchmark b,
                                          const SystemConfig &config);

    /** Miss statistics of @p config on @p b (memoized). */
    const HierarchyStats &missStats(Benchmark b, const SystemConfig &config);

    /** Run an arbitrary hierarchy against a benchmark's trace. */
    void simulate(Benchmark b, Hierarchy &h);

    std::uint64_t traceRefs() const { return traceRefs_; }
    std::uint64_t warmupRefs() const;

  private:
    std::string key(Benchmark b, const SystemConfig &c) const;
    static std::unique_ptr<Hierarchy> makeHierarchy(
        const SystemConfig &config);

    std::uint64_t traceRefs_;
    double warmupFraction_;
    mutable std::mutex mu_; ///< guards the three caches below
    std::map<Benchmark, TraceBuffer> traces_;
    std::map<Benchmark, std::string> traceFiles_;
    std::map<std::string, HierarchyStats> results_;
};

} // namespace tlc

#endif // TLC_CORE_EVALUATOR_HH
