/**
 * @file
 * Miss-rate evaluation with caching of traces and results.
 *
 * Sweeping the paper's design space touches the same (benchmark,
 * configuration) miss counts from several experiments; the evaluator
 * generates each benchmark trace once and memoizes simulation
 * results so figure drivers stay fast.
 *
 * Setup is value-based: construct with EvaluatorOptions to pick the
 * trace length, the warmup fraction, and which benchmarks are routed
 * to on-disk trace files instead of the synthetic model — there is
 * no post-construction mutation to race with a sweep. Because
 * on-disk data can be corrupt, every entry point reports failures as
 * Status values: a sweep that hits an unreadable trace or an invalid
 * configuration records the failure and keeps going (see
 * Explorer::evaluateAll) instead of exiting mid-run.
 *
 * Batching: tryMissStatsBatch() services many configurations from
 * ONE trace pass via the batch engine (core/batch_engine.hh) —
 * memoized configs are answered from cache, the rest share a single
 * decode of the benchmark trace. Results are byte-identical to
 * per-config tryMissStats() calls.
 *
 * Persistence: with EvaluatorOptions::resultStore set, a second
 * cache level sits between the memo and simulation — a persistent,
 * content-addressed SweepCache (core/sweep_cache.hh). Points
 * resolved there skip the simulation (and, when every point hits,
 * the trace load/generation too); points that do simulate are
 * appended, so interrupted or repeated sweeps pick up where the
 * store left off. Cached results are bit-exact, keeping warm sweeps
 * byte-identical to cold ones.
 *
 * Thread safety: the trace and result caches are guarded by an
 * internal mutex, and each evaluation simulates on private state
 * over the shared read-only trace, so the try* entry points may be
 * called from several sweep workers concurrently. Simulation runs
 * outside the lock; two workers racing on the same key compute
 * identical (deterministic) stats and the first insert wins.
 */

#ifndef TLC_CORE_EVALUATOR_HH
#define TLC_CORE_EVALUATOR_HH

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/sweep_cache.hh"
#include "core/system_config.hh"
#include "trace/workload.hh"
#include "util/status.hh"

namespace tlc {

/**
 * Construction-time configuration of a MissRateEvaluator. A plain
 * value: build one, adjust fields, hand it to the constructor.
 */
struct EvaluatorOptions
{
    /** References per benchmark trace
     *  (0 => Workloads::defaultTraceLength()). */
    std::uint64_t traceRefs = 0;
    /** Leading fraction of each trace excluded from statistics. */
    double warmupFraction = 0.1;
    /** Benchmarks routed to on-disk trace files (any format
     *  loadTraceFile understands) instead of the synthetic model.
     *  Loads happen lazily at first use. */
    std::map<Benchmark, std::string> traceFiles;
    /** Persistent result store shared across runs (core/
     *  sweep_cache.hh). With one, the evaluator consults the store
     *  between the in-memory memo and simulation, and appends every
     *  freshly simulated result — so repeated and resumed sweeps
     *  skip the trace walks entirely. Null (the default) disables
     *  persistence; a SweepCache that is not open() behaves the
     *  same. */
    std::shared_ptr<SweepCache> resultStore;
};

/**
 * Runs configurations against benchmark traces. Results depend only
 * on the functional cache parameters, so the memoization key ignores
 * timing-only knobs (off-chip time, dual porting).
 */
class MissRateEvaluator
{
  public:
    explicit MissRateEvaluator(EvaluatorOptions options);

    /**
     * Convenience for the common all-synthetic case.
     * @param trace_refs      references per benchmark trace
     *                        (0 => Workloads::defaultTraceLength())
     * @param warmup_fraction leading fraction excluded from stats
     */
    explicit MissRateEvaluator(std::uint64_t trace_refs = 0,
                               double warmup_fraction = 0.1);

    /**
     * The (lazily loaded/generated, cached) trace of @p b, or the
     * Status explaining why its trace file could not be read. The
     * pointer stays valid for the evaluator's lifetime.
     */
    Expected<const TraceBuffer *> tryTrace(Benchmark b);

    /**
     * Miss statistics of @p config on @p b (memoized), with invalid
     * configurations and unreadable traces reported as a Status
     * instead of aborting.
     */
    Expected<HierarchyStats> tryMissStats(Benchmark b,
                                          const SystemConfig &config);

    /**
     * Miss statistics of every configuration of @p configs on @p b,
     * ordered like the input. Memoized configs are answered from
     * cache; the rest are simulated together in ONE pass over the
     * benchmark trace (deduplicated by memo key first), producing
     * stats byte-identical to per-config tryMissStats() calls.
     * Failures are per-slot: an invalid config fails its own slot,
     * an unloadable trace fails every non-memoized slot.
     */
    std::vector<Expected<HierarchyStats>> tryMissStatsBatch(
        Benchmark b, std::span<const SystemConfig> configs);

    /** Run an arbitrary hierarchy against a benchmark's trace. */
    void simulate(Benchmark b, Hierarchy &h);

    std::uint64_t traceRefs() const { return traceRefs_; }
    std::uint64_t warmupRefs() const;

    /** Number of memoized (benchmark, config) results. */
    std::size_t memoSize() const;

    /** True when an open persistent result store is attached. */
    bool hasResultStore() const
    {
        return store_ && store_->enabled();
    }

  private:
    std::string key(Benchmark b, const SystemConfig &c) const;
    std::string storeKeyText(Benchmark b, const SystemConfig &c);
    static std::unique_ptr<Hierarchy> makeHierarchy(
        const SystemConfig &config);

    std::uint64_t traceRefs_;
    double warmupFraction_;
    std::shared_ptr<SweepCache> store_;
    mutable std::mutex mu_; ///< guards the four caches below
    std::map<Benchmark, TraceBuffer> traces_;
    std::map<Benchmark, std::string> traceFiles_;
    std::map<Benchmark, std::string> traceIds_;
    std::map<std::string, HierarchyStats> results_;
};

} // namespace tlc

#endif // TLC_CORE_EVALUATOR_HH
