/**
 * @file
 * One-pass LRU reuse-distance (stack-distance) profiling: the
 * analytic fast path behind MissRateEvaluator's Analytic and
 * AnalyticPrune backends.
 *
 * The paper's design-space figures sweep cache size across dozens of
 * points per benchmark, and even with SimGroup batching every
 * (size, assoc) point pays for the full trace once. A single
 * profiling pass sidesteps the size axis entirely: for an LRU cache,
 * a reference hits iff the number of DISTINCT lines touched since
 * its previous access — its reuse distance d — is smaller than the
 * capacity in lines. One pass that records the histogram of reuse
 * distances therefore answers "how many misses at capacity C?" for
 * EVERY capacity in O(1) per query (a suffix sum over the
 * histogram), the inclusion-property trick of Mattson et al. that
 * Ling et al. (arXiv:1907.05068) build their L2 reuse-model on.
 *
 * Distances are counted with a Fenwick tree over time slots (each
 * line's most recent access is a marked slot; a reuse distance is
 * the count of marked slots after the previous access), O(log n) per
 * reference — one pass costs about one exact simulation of a single
 * configuration, and prices the whole size axis.
 *
 * Three geometry models ride on the pass, selected per cache level
 * by its replacement policy (expectedMisses(sets, ways, repl)):
 *
 *  - DIRECT-MAPPED (ways == 1): an exact "ladder". The profiling
 *    pass carries, per stream, one tag array for every power-of-two
 *    set count up to 2^(kDmLadderLevels-1) and probes each on every
 *    reference, so the miss count of every direct-mapped geometry in
 *    that range is SIMULATED, not modeled — bit-exact against Cache
 *    with the same line indexing (set = line & (sets-1)). This
 *    matters because the paper's L1s are direct-mapped and the
 *    random-mapping approximation below misprices real modulo
 *    indexing by whole percentage points on some workloads.
 *
 *  - LRU set-associative: the standard binomial correction (Smith's
 *    model). Under random set indexing a reference with reuse
 *    distance d hits an S-set, A-way LRU cache with probability
 *
 *        P_hit(d) = sum_{j=0}^{A-1} C(d, j) (1/S)^j (1 - 1/S)^(d-j)
 *
 *    — the probability that fewer than A of the d intervening
 *    distinct lines landed in the same set. S == 1 recovers the
 *    exact fully-associative suffix-sum path (no floating point),
 *    which is what lets tests pin EXACT equality against a simulated
 *    fully-associative LRU cache.
 *
 *  - Random/FIFO set-associative: the geometric model. Each of the
 *    d intervening distinct lines falls in our set with probability
 *    1/S and then evicts our line with probability 1/A, so
 *
 *        P_hit(d) = (1 - 1/(S*A))^d
 *
 *    — a function of total lines only, matching the classical
 *    random-replacement independence approximation.
 *
 * Three streams are profiled side by side in the same pass —
 * instruction, data, and unified — so a profile prices the paper's
 * whole hierarchy shape: the split L1s read the instruction and data
 * histograms, and the L2 is priced by the HIERARCHY LADDER when the
 * configuration is in range, falling back to a standalone model of
 * the L2's geometry over the unified stream otherwise (an
 * approximation measured and pinned by
 * tests/test_analytic_differential.cc — see docs/analytic_model.md
 * for the error model and bounds).
 *
 * The hierarchy ladder makes two-level statistics EXACT for the
 * paper's design space, not modeled. With direct-mapped L1s the DM
 * ladder reproduces each L1's contents bit-for-bit, so the pass
 * knows, per L1 set count, exactly which references miss L1 and feed
 * the L2 — and it runs a full W-way replica of the L2 (same set
 * indexing, same replacement bookkeeping, same Pcg32 replacement
 * stream as an in-hierarchy Cache under the default simulation seed)
 * over that filtered stream for every power-of-two L2 set count.
 * One (L1 sets, L2 sets) cell therefore reports the same l2Misses
 * the real mostly-inclusive TwoLevelHierarchy counts, and l2Hits =
 * l1Misses - l2Misses closes the books exactly.
 *
 * Warmup follows Hierarchy::simulate's contract: distances are
 * computed over the FULL history (warmup references populate the
 * reuse stacks and the ladder tag arrays), but only references at
 * index >= warmup_refs accumulate into the histograms and ladder
 * miss counters.
 *
 * Determinism: profiling is a single sequential pass and every query
 * is a fixed-order reduction, so analytic statistics are
 * byte-identical run to run and whatever the worker-team width.
 */

#ifndef TLC_CORE_REUSE_PROFILE_HH
#define TLC_CORE_REUSE_PROFILE_HH

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/params.hh"
#include "core/system_config.hh"
#include "trace/buffer.hh"

namespace tlc {

/**
 * The reuse-distance histogram of one reference stream, with O(1)
 * exact fully-associative LRU miss queries, an exact direct-mapped
 * ladder, and the binomial/geometric set-associative approximations.
 */
class ReuseHistogram
{
  public:
    /** Distance of a first touch (no previous access). */
    static constexpr std::uint64_t kColdDistance =
        std::numeric_limits<std::uint64_t>::max();

    /**
     * Direct-mapped ladder depth: set counts 2^0 .. 2^(levels-1) are
     * simulated exactly during the profiling pass. 15 levels cover
     * every direct-mapped cache up to 256 KiB at 16-byte lines — the
     * paper's whole design space — in ~0.25 MiB of tag-array scratch
     * per stream. (The depth is a speed knob, not a correctness one:
     * deeper ladders answer bigger caches exactly but their tag
     * arrays overflow the CPU cache and every reference probes every
     * level; off-ladder sizes fall back to the models.)
     */
    static constexpr std::uint32_t kDmLadderLevels = 15;

    /** References counted into the histogram (post-warmup). */
    std::uint64_t refs() const { return refs_; }

    /** Counted references with no previous access (compulsory
     *  misses at any capacity). */
    std::uint64_t coldMisses() const { return cold_; }

    /** Counted references with a finite reuse distance. */
    std::uint64_t finiteRefs() const { return refs_ - cold_; }

    /** Largest finite distance observed (0 when none were). */
    std::uint64_t maxDistance() const
    {
        return counts_.empty() ? 0 : counts_.size() - 1;
    }

    /** Number of counted references with finite distance @p d. */
    std::uint64_t countAt(std::uint64_t d) const
    {
        return d < counts_.size() ? counts_[d] : 0;
    }

    /**
     * EXACT misses of a fully-associative LRU cache of @p lines
     * lines over the counted references: the cold misses plus every
     * reference whose distance is >= @p lines. O(1).
     */
    std::uint64_t missesAtCapacity(std::uint64_t lines) const
    {
        return cold_ + (lines < tail_.size() ? tail_[lines] : 0);
    }

    /**
     * EXACT misses of a direct-mapped cache of @p sets sets, from
     * the ladder simulated during the profiling pass; nullopt when
     * @p sets is not a power of two in ladder range.
     */
    std::optional<std::uint64_t>
    directMappedMisses(std::uint64_t sets) const
    {
        if (sets == 0 || (sets & (sets - 1)) != 0)
            return std::nullopt;
        std::uint32_t k = 0;
        while ((std::uint64_t{1} << k) < sets)
            ++k;
        if (k >= dm_.size())
            return std::nullopt;
        return dm_[k];
    }

    /**
     * Expected misses of an LRU cache of @p sets sets x @p ways ways
     * under the binomial set-conflict model. sets == 1 is the exact
     * missesAtCapacity(ways) path (integral, no floating point), so
     * fully-associative queries stay exact through this entry point
     * too.
     */
    double expectedMisses(std::uint64_t sets, std::uint32_t ways) const;

    /**
     * Expected misses of a @p sets x @p ways cache under @p repl,
     * selecting the model: the exact ladder for direct-mapped
     * geometries in range, the binomial model for LRU (exact at
     * sets == 1), and the geometric model for Random and FIFO.
     */
    double expectedMisses(std::uint64_t sets, std::uint32_t ways,
                          ReplPolicy repl) const;

  private:
    friend class ReuseProfile;

    void record(std::uint64_t distance);
    /** Build the suffix-sum table; called once after the pass. */
    void finalize();

    std::vector<std::uint64_t> counts_; ///< counts_[d] = refs at distance d
    std::vector<std::uint64_t> tail_;   ///< tail_[c] = refs with d >= c
    std::vector<std::uint64_t> dm_;     ///< dm_[k] = DM misses at 2^k sets
    std::uint64_t refs_ = 0;
    std::uint64_t cold_ = 0;
};

/**
 * The reuse-distance profile of one benchmark trace at one line
 * size: instruction, data and unified histograms from a single pass,
 * plus the mapping from a SystemConfig to analytic HierarchyStats.
 * Immutable once built; safe to share across sweep workers.
 */
class ReuseProfile
{
  public:
    /**
     * Hierarchy-ladder coverage: exact two-level cells are simulated
     * for L1 set counts 2^kHierL1MinLog2 .. 2^kHierL1MaxLog2 (per
     * side, direct-mapped) crossed with L2 set counts
     * 2^kHierL2MinLog2 .. 2^kHierL2MaxLog2, capped so no replica
     * exceeds kHierMaxL2Bytes of modeled L2 capacity. [64 .. 16K] L1
     * sets x L2s of at least 32 sets, up to 256 KiB, blankets the
     * paper's 1K-256K design space (the smallest enumerated L1 is
     * 1 KiB = 64 sets at 16-byte lines, the smallest L2 twice that);
     * configurations outside fall back to the standalone model. The
     * floors matter for speed as much as the cap: a 16-set L1 row
     * misses on nearly every reference, and every such miss fans out
     * across the whole row of L2 replicas, so ladder rows below the
     * design space would dominate the profiling pass while answering
     * no query. The byte cap keeps the ladder's working set small
     * enough to stay CPU-cache-resident whatever the L2
     * associativity (a 4-way 2^14-set cell alone would be a 4 MiB
     * L2 nothing in range ever queries). Cells also require
     * line_bytes >= 2, which keeps line addresses inside the
     * replicas' packed 32-bit tags.
     */
    static constexpr std::uint32_t kHierL1MinLog2 = 6;
    static constexpr std::uint32_t kHierL1MaxLog2 = 14;
    static constexpr std::uint32_t kHierL2MinLog2 = 5;
    static constexpr std::uint32_t kHierL2MaxLog2 = 14;
    static constexpr std::uint64_t kHierMaxL2Bytes = 256 * 1024;

    /**
     * Profile @p trace at @p line_bytes (power of two). The first
     * @p warmup_refs records populate the reuse stacks but are not
     * counted, mirroring Hierarchy::simulate. The hierarchy ladder
     * replicates an L2 of @p l2_ways ways under @p l2_repl (the
     * defaults are the paper's assumptions); profiles built for a
     * different L2 shape simply don't answer hierarchy queries for
     * this one. Runs under the "analytic.profile" profiler phase and
     * ticks explore.analytic.profiles.
     */
    static ReuseProfile profile(const TraceBuffer &trace,
                                std::uint32_t line_bytes,
                                std::uint64_t warmup_refs,
                                std::uint32_t l2_ways = 4,
                                ReplPolicy l2_repl = ReplPolicy::Random);

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint64_t warmupRefs() const { return warmupRefs_; }
    std::uint32_t hierL2Ways() const { return hierL2Ways_; }
    ReplPolicy hierL2Repl() const { return hierL2Repl_; }

    const ReuseHistogram &instr() const { return instr_; }
    const ReuseHistogram &data() const { return data_; }
    const ReuseHistogram &unified() const { return unified_; }

    /**
     * EXACT global (off-chip) misses of the mostly-inclusive
     * two-level hierarchy with direct-mapped split L1s of
     * @p l1_sets sets each and an L2 of @p l2_sets sets x
     * @p l2_ways ways under @p l2_repl, from the hierarchy ladder;
     * nullopt when the geometry is off-ladder (non-power-of-two or
     * out-of-range set counts, or an L2 shape other than the one
     * this profile replicated).
     */
    std::optional<std::uint64_t>
    hierarchyGlobalMisses(std::uint64_t l1_sets, std::uint64_t l2_sets,
                          std::uint32_t l2_ways,
                          ReplPolicy l2_repl) const;

    /**
     * Analytic miss statistics of @p config (whose line size must
     * match the profile's): split L1 misses from the instruction and
     * data histograms at the L1 geometry; off-chip misses from the
     * exact hierarchy ladder when the configuration is a
     * mostly-inclusive two-level system with direct-mapped L1s in
     * ladder range, else from the standalone model of the L2's
     * geometry over the unified histogram (clamped so l2Hits =
     * l1Misses - l2Misses never underflows); and the single-level
     * convention of HierarchyStats (every L1 miss goes off-chip)
     * when config has no L2. Each level's model follows its
     * replacement policy (config.l1Params()/l2Params()) — see
     * ReuseHistogram::expectedMisses. swaps and offchipWritebacks
     * are not modeled and stay 0. Rounding is llround, so results
     * are integral and deterministic.
     */
    HierarchyStats statsFor(const SystemConfig &config) const;

  private:
    ReuseProfile() = default;

    std::uint32_t lineBytes_ = 16;
    std::uint64_t warmupRefs_ = 0;
    std::uint32_t hierL2Ways_ = 4;
    ReplPolicy hierL2Repl_ = ReplPolicy::Random;
    ReuseHistogram instr_;
    ReuseHistogram data_;
    ReuseHistogram unified_;
    /** hier_[k1 - kHierL1MinLog2][k2 - kHierL2MinLog2] = exact
     *  global misses at 2^k1 L1 sets x 2^k2 L2 sets. */
    std::vector<std::vector<std::uint64_t>> hier_;
};

} // namespace tlc

#endif // TLC_CORE_REUSE_PROFILE_HH
