/**
 * @file
 * Figure catalog implementation.
 */

#include "figures.hh"

#include "util/logging.hh"

namespace tlc {

namespace {

SystemAssumptions
assume(double offchip, std::uint32_t assoc, TwoLevelPolicy policy,
       bool dual = false)
{
    SystemAssumptions a;
    a.offchipNs = offchip;
    a.l2Assoc = assoc;
    a.policy = policy;
    a.dualPortedL1 = dual;
    return a;
}

std::vector<Benchmark>
allBench()
{
    return Workloads::all();
}

std::vector<FigureSpec>
buildCatalog()
{
    using B = Benchmark;
    const auto inc = TwoLevelPolicy::Inclusive;
    const auto exc = TwoLevelPolicy::Exclusive;
    std::vector<FigureSpec> v;

    v.push_back({"table1", "Test program references",
                 ExhibitKind::Table, allBench(), {}, false,
                 "bench_table1_workloads"});
    v.push_back({"fig01", "First level cache access and cycle times",
                 ExhibitKind::TimingCurve, {}, {}, false,
                 "bench_fig01_l1_timing"});
    v.push_back({"fig02", "L2 access and cycle times with 4KB L1",
                 ExhibitKind::TimingCurve, {}, {}, false,
                 "bench_fig02_l2_timing"});
    v.push_back({"fig03", "gcc1/espresso/doduc/fpppp: 50ns, L1 only",
                 ExhibitKind::TpiScatter,
                 {B::Gcc1, B::Espresso, B::Doduc, B::Fpppp},
                 assume(50, 4, inc), false,
                 "bench_fig03_04_single_level"});
    v.push_back({"fig04", "li/eqntott/tomcatv: 50ns, L1 only",
                 ExhibitKind::TpiScatter,
                 {B::Li, B::Eqntott, B::Tomcatv}, assume(50, 4, inc),
                 false, "bench_fig03_04_single_level"});
    v.push_back({"fig05", "gcc1: 50ns, L2 4-way set-associative",
                 ExhibitKind::TpiScatter, {B::Gcc1},
                 assume(50, 4, inc), true, "bench_fig05_08_two_level"});
    v.push_back({"fig06", "doduc and espresso: 50ns, 4-way L2",
                 ExhibitKind::TpiScatter, {B::Doduc, B::Espresso},
                 assume(50, 4, inc), true, "bench_fig05_08_two_level"});
    v.push_back({"fig07", "fpppp and li: 50ns, 4-way L2",
                 ExhibitKind::TpiScatter, {B::Fpppp, B::Li},
                 assume(50, 4, inc), true, "bench_fig05_08_two_level"});
    v.push_back({"fig08", "tomcatv and eqntott: 50ns, 4-way L2",
                 ExhibitKind::TpiScatter, {B::Tomcatv, B::Eqntott},
                 assume(50, 4, inc), true, "bench_fig05_08_two_level"});
    v.push_back({"fig09", "gcc1: 50ns, L2 direct-mapped",
                 ExhibitKind::TpiScatter, {B::Gcc1},
                 assume(50, 1, inc), true, "bench_fig09_dm_l2"});
    // Figures 10-16: one per workload, dual-ported study.
    const B dual_order[] = {B::Gcc1, B::Espresso, B::Doduc, B::Fpppp,
                            B::Li, B::Eqntott, B::Tomcatv};
    int fig = 10;
    for (B b : dual_order) {
        v.push_back({"fig" + std::to_string(fig),
                     std::string(Workloads::info(b).name) +
                         ": 50ns, 4-way, 2X L1 area, 2X issue rate",
                     ExhibitKind::TpiScatter, {b},
                     assume(50, 4, inc, true), true,
                     "bench_fig10_16_dual_port"});
        ++fig;
    }
    v.push_back({"fig17", "gcc1: 200ns, L2 4-way",
                 ExhibitKind::TpiScatter, {B::Gcc1},
                 assume(200, 4, inc), true, "bench_fig17_20_long_miss"});
    v.push_back({"fig18", "doduc and espresso: 200ns, 4-way",
                 ExhibitKind::TpiScatter, {B::Doduc, B::Espresso},
                 assume(200, 4, inc), true, "bench_fig17_20_long_miss"});
    v.push_back({"fig19", "fpppp and li: 200ns, 4-way",
                 ExhibitKind::TpiScatter, {B::Fpppp, B::Li},
                 assume(200, 4, inc), true, "bench_fig17_20_long_miss"});
    v.push_back({"fig20", "tomcatv and eqntott: 200ns, 4-way",
                 ExhibitKind::TpiScatter, {B::Tomcatv, B::Eqntott},
                 assume(200, 4, inc), true, "bench_fig17_20_long_miss"});
    v.push_back({"fig21", "Exclusion vs inclusion during swapping",
                 ExhibitKind::Mechanism, {}, {}, false,
                 "bench_fig21_exclusion"});
    v.push_back({"fig22", "gcc1: 50ns, exclusive direct-mapped L2",
                 ExhibitKind::TpiScatter, {B::Gcc1},
                 assume(50, 1, exc), true, "bench_fig22_26_exclusive"});
    v.push_back({"fig23", "gcc1: 50ns, exclusive 4-way L2",
                 ExhibitKind::TpiScatter, {B::Gcc1},
                 assume(50, 4, exc), true, "bench_fig22_26_exclusive"});
    v.push_back({"fig24", "doduc and espresso: 50ns, exclusive 4-way",
                 ExhibitKind::TpiScatter, {B::Doduc, B::Espresso},
                 assume(50, 4, exc), true, "bench_fig22_26_exclusive"});
    v.push_back({"fig25", "fpppp and li: 50ns, exclusive 4-way",
                 ExhibitKind::TpiScatter, {B::Fpppp, B::Li},
                 assume(50, 4, exc), true, "bench_fig22_26_exclusive"});
    v.push_back({"fig26", "eqntott and tomcatv: 50ns, exclusive 4-way",
                 ExhibitKind::TpiScatter, {B::Eqntott, B::Tomcatv},
                 assume(50, 4, exc), true, "bench_fig22_26_exclusive"});
    return v;
}

} // namespace

const std::vector<FigureSpec> &
figureCatalog()
{
    static const std::vector<FigureSpec> catalog = buildCatalog();
    return catalog;
}

const FigureSpec &
figureById(const std::string &id)
{
    for (const auto &f : figureCatalog()) {
        if (f.id == id)
            return f;
    }
    fatal("unknown exhibit '%s' (try fig01..fig26 or table1)",
          id.c_str());
}

} // namespace tlc
