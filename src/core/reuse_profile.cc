/**
 * @file
 * Reuse-distance profiler implementation.
 */

#include "reuse_profile.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/profiler.hh"
#include "util/random.hh"

namespace tlc {

namespace {

/** Analytic-path metrics, registered once and shared by all sites. */
struct AnalyticMetrics
{
    MetricCounter &profiles;
    MetricCounter &profileRecords;

    static AnalyticMetrics &get()
    {
        static AnalyticMetrics m{
            MetricsRegistry::global().counter(
                "explore.analytic.profiles"),
            MetricsRegistry::global().counter(
                "explore.analytic.profile_records"),
        };
        return m;
    }
};

/**
 * Stack-distance engine for one reference stream: each line's most
 * recent access occupies a marked time slot; the reuse distance of
 * an access is the number of marked slots AFTER the line's previous
 * slot (= distinct other lines touched since), counted with a
 * Fenwick tree in O(log n).
 */
class StackDistanceEngine
{
  public:
    explicit StackDistanceEngine(std::size_t max_refs)
        : tree_(max_refs + 1, 0),
          size_(std::min<std::size_t>(max_refs, kMinEpoch))
    {
        last_.reserve(1u << 16);
    }

    /** Distance of this access, or ReuseHistogram::kColdDistance. */
    std::uint64_t access(std::uint64_t line)
    {
        // Same line as the previous access: distance 0 by
        // definition, and skipping the tree update is invisible —
        // the line's mark stays on its old slot, which sits after
        // every other line's mark just the same (sequential
        // instruction fetches make this the common case).
        if (line == lastLine_)
            return 0;
        lastLine_ = line;
        if (clock_ >= size_)
            compact();
        ++clock_;
        tlc_assert(clock_ <= size_,
                   "stack-distance engine sized for %zu refs saw more",
                   tree_.size() - 1);
        std::uint64_t distance = ReuseHistogram::kColdDistance;
        auto [it, inserted] = last_.try_emplace(line, clock_);
        if (!inserted) {
            distance = marked_ - prefixSum(it->second);
            add(it->second, -1);
            --marked_;
            it->second = clock_;
        }
        add(clock_, +1);
        ++marked_;
        return distance;
    }

  private:
    void add(std::size_t i, std::int64_t delta)
    {
        // Unsigned wraparound is fine: every partial sum a -1 lands
        // on was previously incremented, so values stay non-negative.
        for (; i <= size_; i += i & (~i + 1))
            tree_[i] += static_cast<std::uint32_t>(delta);
    }

    std::uint64_t prefixSum(std::size_t i) const
    {
        std::uint64_t s = 0;
        for (; i > 0; i -= i & (~i + 1))
            s += tree_[i];
        return s;
    }

    /**
     * Remap the live marks onto slots 1..marked_, preserving their
     * order — every "marked slots after X" count, and therefore
     * every future distance, is unchanged. A naive tree spans one
     * slot per reference, so updates walk a trace-length index range
     * even when only the working set is marked. Compacting whenever
     * dead slots outnumber live ones bounds the tree's EFFECTIVE
     * size (size_, the update loop's ceiling) at ~2x the working
     * set, which keeps the whole touched region CPU-cache-resident
     * at O(log live) amortized extra cost per access: a compaction
     * costs O(live log live) and buys at least `live` accesses
     * before the next one.
     */
    void compact()
    {
        std::vector<std::pair<std::size_t, std::uint64_t>> live;
        live.reserve(last_.size());
        for (const auto &[line, slot] : last_)
            live.emplace_back(slot, line);
        std::sort(live.begin(), live.end());
        clock_ = live.size();
        for (std::size_t i = 0; i < live.size(); ++i)
            last_[live[i].second] = i + 1;
        size_ = std::min(
            tree_.size() - 1,
            std::max<std::size_t>(2 * live.size(), kMinEpoch));
        // Rebuild every node up to the new size_ in closed form:
        // slots 1..clock_ each hold one mark, so node i (covering
        // (i - lowbit(i), i]) holds the part of its span that lies
        // within 1..clock_. Nodes ABOVE clock_ need this too — a
        // later add(slot, -1) climbs through them. Anything beyond
        // size_ is dead until a future compact rewrites it.
        for (std::size_t i = 1; i <= size_; ++i) {
            std::size_t lo = i - (i & (~i + 1));
            tree_[i] = static_cast<std::uint32_t>(
                std::min(i, clock_) - std::min(lo, clock_));
        }
    }

    /// Smallest effective tree size — below this, compaction churn
    /// would outweigh the locality it buys.
    static constexpr std::size_t kMinEpoch = 4096;

    std::vector<std::uint32_t> tree_; ///< 1-based Fenwick over slots
    std::unordered_map<std::uint64_t, std::size_t> last_;
    std::size_t clock_ = 0; ///< slots consumed this epoch
    std::size_t size_;      ///< effective tree size; compact() above
    std::uint64_t marked_ = 0;  ///< distinct lines seen so far
    std::uint64_t lastLine_ = ~std::uint64_t{0}; ///< previous access
};

/**
 * The exact direct-mapped ladder of one stream: one tag array per
 * power-of-two set count, all probed on every reference, so the pass
 * SIMULATES every direct-mapped geometry at once. Indexing matches
 * Cache exactly (set = line & (sets - 1); full line address as tag).
 * The tag arrays are scratch — only the per-level miss counts
 * survive into the histogram.
 */
class DmLadder
{
  public:
    explicit DmLadder(std::uint32_t levels)
        : levels_(levels), misses_(levels, 0),
          tags_((std::size_t{1} << levels) - 1, kEmpty)
    {
    }

    /**
     * Probe and fill all levels; count misses only when counted.
     * @return the miss bitmask (bit k set = level k missed), which
     * is exactly "would a direct-mapped L1 of 2^k sets forward this
     * reference to the L2" for the hierarchy ladder.
     */
    std::uint32_t access(std::uint64_t line, bool counted)
    {
        // The previous access left this line resident at EVERY
        // level, so a consecutive repeat hits everywhere and
        // changes nothing (no stamps direct-mapped).
        if (line == lastLine_)
            return 0;
        lastLine_ = line;
        std::uint32_t missMask = 0;
        std::size_t base = 0;
        for (std::uint32_t k = 0; k < levels_; ++k) {
            const std::uint64_t sets = std::uint64_t{1} << k;
            std::uint64_t &tag = tags_[base + (line & (sets - 1))];
            if (tag != line) {
                tag = line;
                misses_[k] += counted;
                missMask |= std::uint32_t{1} << k;
            }
            base += sets;
        }
        return missMask;
    }

    std::vector<std::uint64_t> takeMisses()
    {
        return std::move(misses_);
    }

  private:
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

    std::uint32_t levels_;
    std::vector<std::uint64_t> misses_;
    std::vector<std::uint64_t> tags_; ///< level k at offset 2^k - 1
    std::uint64_t lastLine_ = kEmpty; ///< previous access
};

/**
 * A bit-exact replica of one in-hierarchy L2 Cache: same set
 * indexing (set = line & (sets - 1)), same victim choice (first
 * invalid way, else Pcg32 nextBounded for Random / smallest stamp
 * for LRU and FIFO), and the same Pcg32 seed and stream the
 * simulator gives an L2 under the default hierarchy seed
 * (Cache(l2_params, seed + 2) with seed == 1). Fed the exact
 * L1-miss stream of one DM-ladder level, its miss count equals the
 * mostly-inclusive TwoLevelHierarchy's l2Misses bit for bit: L2
 * hits change no state that affects placement (dirty bits and LRU
 * stamps on loads only), and every fill consumes the replacement
 * stream exactly like the real Cache.
 */
class L2Replica
{
  public:
    L2Replica(std::uint64_t sets, std::uint32_t ways, ReplPolicy repl)
        : sets_(sets), ways_(ways), repl_(repl),
          entries_(sets * ways, Entry{kEmpty, 0}),
          rng_(kHierarchySeed + 2, 0xcac4e)
    {
    }

    void access(std::uint64_t line, bool counted)
    {
        // The previous access (hit or fill) left this line resident
        // with the newest stamp, so a consecutive repeat is a hit
        // that changes nothing observable: no miss, no fill, no
        // replacement draw, and re-stamping the already-newest way
        // cannot change any future smallest-stamp victim choice.
        if (line == lastLine_)
            return;
        lastLine_ = line;
        const std::size_t base = (line & (sets_ - 1)) * ways_;
        const std::uint32_t tag = static_cast<std::uint32_t>(line);
        Entry *set = entries_.data() + base;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (set[w].tag == tag) {
                if (repl_ == ReplPolicy::LRU)
                    set[w].stamp = ++tick_;
                return;
            }
        }
        misses_ += counted;
        std::uint32_t victim = ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (set[w].tag == kEmpty) {
                victim = w;
                break;
            }
        }
        if (victim == ways_) {
            if (repl_ == ReplPolicy::Random) {
                victim = rng_.nextBounded(ways_);
            } else {
                victim = 0;
                for (std::uint32_t w = 1; w < ways_; ++w)
                    if (set[w].stamp < set[victim].stamp)
                        victim = w;
            }
        }
        set[victim].tag = tag;
        set[victim].stamp = ++tick_;
    }

    std::uint64_t misses() const { return misses_; }

  private:
    /**
     * One way, packed so a 4-way set spans 32 bytes (half a cache
     * line) instead of two separate 32-byte tag/stamp regions. The
     * 32-bit tag holds the full line address: addresses are 32-bit
     * and profile() requires line_bytes >= 2 for the hierarchy
     * ladder, so lines fit 31 bits and never collide with kEmpty.
     * The 32-bit stamp orders LRU/FIFO ways; ticks are per-cell
     * accesses, so 4 billion of them outlasts any realistic trace.
     */
    struct Entry
    {
        std::uint32_t tag;
        std::uint32_t stamp;
    };
    static constexpr std::uint32_t kEmpty = ~std::uint32_t{0};
    /** The default Hierarchy replacement seed (see makeHierarchy). */
    static constexpr std::uint64_t kHierarchySeed = 1;

    std::uint64_t sets_;
    std::uint32_t ways_;
    ReplPolicy repl_;
    std::vector<Entry> entries_;
    std::uint32_t tick_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t lastLine_ = ~std::uint64_t{0};
    Pcg32 rng_;
};

/** llround clamped into [0, limit] for stats-count determinism. */
std::uint64_t
roundCount(double x, std::uint64_t limit)
{
    if (!(x > 0.0))
        return 0;
    auto v = static_cast<std::uint64_t>(std::llround(x));
    return v < limit ? v : limit;
}

} // namespace

// ---------------------------------------------------------------------
// ReuseHistogram
// ---------------------------------------------------------------------

void
ReuseHistogram::record(std::uint64_t distance)
{
    ++refs_;
    if (distance == kColdDistance) {
        ++cold_;
        return;
    }
    if (distance >= counts_.size())
        counts_.resize(distance + 1, 0);
    ++counts_[distance];
}

void
ReuseHistogram::finalize()
{
    tail_.assign(counts_.size() + 1, 0);
    for (std::size_t d = counts_.size(); d-- > 0;)
        tail_[d] = tail_[d + 1] + counts_[d];
}

double
ReuseHistogram::expectedMisses(std::uint64_t sets,
                               std::uint32_t ways) const
{
    tlc_assert(sets >= 1 && ways >= 1,
               "degenerate geometry %llu sets x %u ways",
               static_cast<unsigned long long>(sets), ways);
    if (sets == 1)
        return static_cast<double>(missesAtCapacity(ways));

    const double p = 1.0 / static_cast<double>(sets);
    const double q = 1.0 - p;
    const double ratio = p / q;
    double hits = 0.0;
    double qd = 1.0; // q^d, advanced with d
    for (std::size_t d = 0; d < counts_.size(); ++d, qd *= q) {
        if (!counts_[d])
            continue;
        // P_hit(d) = sum_{j<ways} C(d,j) p^j q^(d-j), built by the
        // term recurrence t_j = t_{j-1} * (d-j+1)/j * (p/q); the
        // j > d tail multiplies by zero and drops out on its own.
        double term = qd;
        double ph = term;
        const std::uint32_t jmax =
            d < ways ? static_cast<std::uint32_t>(d) : ways - 1;
        for (std::uint32_t j = 1; j <= jmax; ++j) {
            term *= static_cast<double>(d - j + 1) / j * ratio;
            ph += term;
        }
        if (ph > 1.0)
            ph = 1.0;
        hits += static_cast<double>(counts_[d]) * ph;
    }
    return static_cast<double>(refs_) - hits;
}

double
ReuseHistogram::expectedMisses(std::uint64_t sets, std::uint32_t ways,
                               ReplPolicy repl) const
{
    tlc_assert(sets >= 1 && ways >= 1,
               "degenerate geometry %llu sets x %u ways",
               static_cast<unsigned long long>(sets), ways);
    if (ways == 1) {
        // Direct-mapped: the replacement policy is irrelevant and
        // the ladder simulated the geometry exactly.
        if (auto exact = directMappedMisses(sets))
            return static_cast<double>(*exact);
    }
    if (repl == ReplPolicy::LRU)
        return expectedMisses(sets, ways);

    // Random (and FIFO, approximated the same way): each of the d
    // intervening distinct lines evicts ours with probability
    // 1/(sets*ways), so P_hit(d) = (1 - 1/lines)^d. Also the
    // out-of-range direct-mapped fallback (ways == 1 reduces the
    // binomial to exactly this form).
    const double lines =
        static_cast<double>(sets) * static_cast<double>(ways);
    const double q = 1.0 - 1.0 / lines;
    double hits = 0.0;
    double qd = 1.0; // q^d, advanced with d
    for (std::size_t d = 0; d < counts_.size(); ++d, qd *= q)
        if (counts_[d])
            hits += static_cast<double>(counts_[d]) * qd;
    return static_cast<double>(refs_) - hits;
}

// ---------------------------------------------------------------------
// ReuseProfile
// ---------------------------------------------------------------------

ReuseProfile
ReuseProfile::profile(const TraceBuffer &trace, std::uint32_t line_bytes,
                      std::uint64_t warmup_refs, std::uint32_t l2_ways,
                      ReplPolicy l2_repl)
{
    tlc_assert(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
               "line size %u is not a power of two", line_bytes);
    tlc_assert(l2_ways >= 1, "hierarchy ladder with zero-way L2");
    ScopedTimer timer(phase::kAnalyticProfile);

    std::uint32_t shift = 0;
    while ((1u << shift) < line_bytes)
        ++shift;

    ReuseProfile out;
    out.lineBytes_ = line_bytes;
    out.warmupRefs_ = warmup_refs;
    out.hierL2Ways_ = l2_ways;
    out.hierL2Repl_ = l2_repl;

    StackDistanceEngine instr(trace.instrRefs());
    StackDistanceEngine data(trace.dataRefs());
    StackDistanceEngine unified(trace.size());
    DmLadder instrDm(ReuseHistogram::kDmLadderLevels);
    DmLadder dataDm(ReuseHistogram::kDmLadderLevels);
    DmLadder unifiedDm(ReuseHistogram::kDmLadderLevels);

    // One L2 replica per (L1 sets, L2 sets) hierarchy-ladder cell.
    // The L2 axis stops where a replica would model more than
    // kHierMaxL2Bytes of L2 — such cells are pure cache-footprint
    // cost during the pass and nothing in range queries them. The
    // ladder also needs lines to fit the replicas' packed 32-bit
    // tags, which line_bytes >= 2 guarantees for 32-bit addresses
    // (line_bytes == 1 just skips the ladder; every query falls
    // back to the standalone model).
    constexpr std::uint32_t nL1 =
        kHierL1MaxLog2 - kHierL1MinLog2 + 1;
    std::uint32_t nL2 = 0;
    if (line_bytes >= 2) {
        while (nL2 < kHierL2MaxLog2 - kHierL2MinLog2 + 1 &&
               (std::uint64_t{1} << (kHierL2MinLog2 + nL2)) * l2_ways *
                       line_bytes <=
                   kHierMaxL2Bytes)
            ++nL2;
    }
    std::vector<std::vector<L2Replica>> hier;
    hier.reserve(nL1);
    for (std::uint32_t i = 0; i < nL1; ++i) {
        hier.emplace_back();
        hier.back().reserve(nL2);
        for (std::uint32_t j = 0; j < nL2; ++j)
            hier.back().emplace_back(
                std::uint64_t{1} << (kHierL2MinLog2 + j), l2_ways,
                l2_repl);
    }

    std::uint64_t index = 0;
    for (const TraceRecord &rec : trace) {
        const std::uint64_t line = rec.addr >> shift;
        const bool dataRef = isData(rec.type);
        const bool counted = index >= warmup_refs;
        const std::uint64_t dSplit =
            (dataRef ? data : instr).access(line);
        const std::uint64_t dUnified = unified.access(line);
        const std::uint32_t missMask =
            (dataRef ? dataDm : instrDm).access(line, counted);
        unifiedDm.access(line, counted);
        // Forward the reference to each ladder cell whose L1 level
        // missed: exactly the accesses the real L2 would see.
        for (std::uint32_t i = 0; i < nL1; ++i) {
            if (missMask & (std::uint32_t{1} << (kHierL1MinLog2 + i)))
                for (auto &cell : hier[i])
                    cell.access(line, counted);
        }
        if (counted) {
            (dataRef ? out.data_ : out.instr_).record(dSplit);
            out.unified_.record(dUnified);
        }
        ++index;
    }
    out.instr_.finalize();
    out.data_.finalize();
    out.unified_.finalize();
    out.instr_.dm_ = instrDm.takeMisses();
    out.data_.dm_ = dataDm.takeMisses();
    out.unified_.dm_ = unifiedDm.takeMisses();
    out.hier_.assign(nL1, std::vector<std::uint64_t>(nL2, 0));
    for (std::uint32_t i = 0; i < nL1; ++i)
        for (std::uint32_t j = 0; j < nL2; ++j)
            out.hier_[i][j] = hier[i][j].misses();

    AnalyticMetrics::get().profiles.inc();
    AnalyticMetrics::get().profileRecords.inc(trace.size());
    return out;
}

std::optional<std::uint64_t>
ReuseProfile::hierarchyGlobalMisses(std::uint64_t l1_sets,
                                    std::uint64_t l2_sets,
                                    std::uint32_t l2_ways,
                                    ReplPolicy l2_repl) const
{
    if (l2_ways != hierL2Ways_ || l2_repl != hierL2Repl_)
        return std::nullopt;
    if (l1_sets == 0 || (l1_sets & (l1_sets - 1)) != 0 ||
        l2_sets == 0 || (l2_sets & (l2_sets - 1)) != 0) {
        return std::nullopt;
    }
    std::uint32_t k1 = 0, k2 = 0;
    while ((std::uint64_t{1} << k1) < l1_sets)
        ++k1;
    while ((std::uint64_t{1} << k2) < l2_sets)
        ++k2;
    if (k1 < kHierL1MinLog2 || k1 > kHierL1MaxLog2 ||
        k2 < kHierL2MinLog2) {
        return std::nullopt;
    }
    // The L2 axis may be shorter than kHierL2MaxLog2 allows: cells
    // past the kHierMaxL2Bytes cap (or the whole ladder, at 1-byte
    // lines) were never simulated.
    const auto &row = hier_[k1 - kHierL1MinLog2];
    if (k2 - kHierL2MinLog2 >= row.size())
        return std::nullopt;
    return row[k2 - kHierL2MinLog2];
}

HierarchyStats
ReuseProfile::statsFor(const SystemConfig &config) const
{
    tlc_assert(config.assume.lineBytes == lineBytes_,
               "profile at %u-byte lines asked about a %u-byte config",
               lineBytes_, config.assume.lineBytes);

    HierarchyStats s;
    s.instrRefs = instr_.refs();
    s.dataRefs = data_.refs();

    const ReplPolicy l1Repl = config.l1Params().repl;
    const std::uint32_t l1Ways = config.assume.l1Assoc;
    const std::uint64_t l1Lines = config.l1Bytes / lineBytes_;
    tlc_assert(l1Ways >= 1 && l1Lines >= l1Ways,
               "config %s: degenerate L1 geometry",
               config.label().c_str());
    const std::uint64_t l1Sets = l1Lines / l1Ways;
    s.l1iMisses =
        roundCount(instr_.expectedMisses(l1Sets, l1Ways, l1Repl),
                   instr_.refs());
    s.l1dMisses =
        roundCount(data_.expectedMisses(l1Sets, l1Ways, l1Repl),
                   data_.refs());
    const std::uint64_t l1m = s.l1iMisses + s.l1dMisses;

    if (config.hasL2()) {
        const ReplPolicy l2Repl = config.l2Params().repl;
        const std::uint32_t l2Ways = config.assume.l2Assoc;
        const std::uint64_t l2Lines = config.l2Bytes / lineBytes_;
        tlc_assert(l2Ways >= 1 && l2Lines >= l2Ways,
                   "config %s: degenerate L2 geometry",
                   config.label().c_str());
        const std::uint64_t l2Sets = l2Lines / l2Ways;
        std::optional<std::uint64_t> exact;
        if (config.assume.policy == TwoLevelPolicy::Inclusive &&
            l1Ways == 1) {
            exact = hierarchyGlobalMisses(l1Sets, l2Sets, l2Ways,
                                          l2Repl);
        }
        // Off-ladder fallback: the hierarchy's off-chip misses are
        // modeled as the misses of a standalone L2-sized cache over
        // the unified stream, clamped so the derived l2Hits never
        // underflows.
        std::uint64_t global =
            exact ? *exact
                  : roundCount(
                        unified_.expectedMisses(l2Sets, l2Ways, l2Repl),
                        unified_.refs());
        if (global > l1m)
            global = l1m;
        s.l2Misses = global;
        s.l2Hits = l1m - global;
    } else {
        s.l2Misses = l1m;
        s.l2Hits = 0;
    }
    return s;
}

} // namespace tlc
