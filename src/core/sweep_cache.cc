/**
 * @file
 * Sweep-cache implementation: key construction, bit-exact stats
 * serialization, and the hit/miss/stale bookkeeping.
 */

#include "sweep_cache.hh"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/profiler.hh"

namespace tlc {

namespace {

/** Sweep-cache metrics, registered once and shared by all sites. */
struct CacheMetrics
{
    MetricCounter &hits;
    MetricCounter &misses;
    MetricCounter &stale;
    MetricCounter &appends;

    static CacheMetrics &get()
    {
        static CacheMetrics m{
            MetricsRegistry::global().counter("sweep_cache.hits"),
            MetricsRegistry::global().counter("sweep_cache.misses"),
            MetricsRegistry::global().counter("sweep_cache.stale"),
            MetricsRegistry::global().counter("sweep_cache.appends"),
        };
        return m;
    }
};

/** The profiler phase charged with store traffic. */
constexpr const char *kPhaseSweepCache = "sweep.cache";

void
putU64le(std::string &s, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
getU64le(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/**
 * Payload layout: u64 key-text length, the key text (collision and
 * schema guard), then the eight stats fields in declaration order.
 */
std::string
serializeStats(const std::string &key_text, const HierarchyStats &s)
{
    std::string out;
    out.reserve(8 + key_text.size() + 8 * 8);
    putU64le(out, key_text.size());
    out.append(key_text);
    putU64le(out, s.instrRefs);
    putU64le(out, s.dataRefs);
    putU64le(out, s.l1iMisses);
    putU64le(out, s.l1dMisses);
    putU64le(out, s.l2Hits);
    putU64le(out, s.l2Misses);
    putU64le(out, s.swaps);
    putU64le(out, s.offchipWritebacks);
    return out;
}

bool
deserializeStats(const std::string &payload, const std::string &key_text,
                 HierarchyStats &out)
{
    if (payload.size() < 8)
        return false;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(payload.data());
    std::uint64_t textLen = getU64le(p);
    if (textLen != key_text.size() ||
        payload.size() != 8 + textLen + 8 * 8) {
        return false;
    }
    if (payload.compare(8, textLen, key_text) != 0)
        return false;
    p += 8 + textLen;
    out.instrRefs = getU64le(p + 0 * 8);
    out.dataRefs = getU64le(p + 1 * 8);
    out.l1iMisses = getU64le(p + 2 * 8);
    out.l1dMisses = getU64le(p + 3 * 8);
    out.l2Hits = getU64le(p + 4 * 8);
    out.l2Misses = getU64le(p + 5 * 8);
    out.swaps = getU64le(p + 6 * 8);
    out.offchipWritebacks = getU64le(p + 7 * 8);
    return true;
}

} // namespace

Status
SweepCache::open(const std::string &path,
                 const ResultStoreOptions &options)
{
    return store_.open(path, options);
}

std::string
SweepCache::keyText(const std::string &trace_id,
                    std::uint64_t warmup_refs, const SystemConfig &config,
                    const std::string &backend_tag)
{
    std::ostringstream os;
    os << "schema=" << kSweepCacheSchemaVersion << "|trace=" << trace_id
       << "|warmup=" << warmup_refs << "|" << config.missKeyString();
    if (!backend_tag.empty())
        os << "|backend=" << backend_tag;
    return os.str();
}

std::string
SweepCache::hashKey(const std::string &key_text)
{
    // FNV-1a 64: stable across platforms and builds, which is all a
    // store key needs — collisions are caught by the key text
    // embedded in the payload.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : key_text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "tlc%u-%016llx",
                  kSweepCacheSchemaVersion,
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
SweepCache::traceIdentity(Benchmark b, std::uint64_t trace_refs,
                          const std::string &trace_file)
{
    std::ostringstream os;
    if (trace_file.empty()) {
        os << "synthetic:" << Workloads::info(b).name << ":refs="
           << trace_refs << ":variant=0";
        return os.str();
    }
    std::error_code ec;
    std::uintmax_t bytes = std::filesystem::file_size(trace_file, ec);
    os << "file:" << trace_file << ":bytes=" << (ec ? 0 : bytes);
    return os.str();
}

std::optional<HierarchyStats>
SweepCache::lookup(const std::string &key_text, SweepCacheOutcome *outcome)
{
    ScopedTimer timer(kPhaseSweepCache);
    auto report = [&](SweepCacheOutcome o) {
        if (outcome)
            *outcome = o;
    };
    std::string payload;
    if (!store_.lookup(hashKey(key_text), &payload)) {
        CacheMetrics::get().misses.inc();
        report(SweepCacheOutcome::Miss);
        return std::nullopt;
    }
    HierarchyStats stats;
    if (!deserializeStats(payload, key_text, stats)) {
        // Indexed but unusable: a hash collision or a record from a
        // different schema. Treated exactly like a miss; the caller
        // recomputes and the fresh append supersedes this record.
        CacheMetrics::get().stale.inc();
        report(SweepCacheOutcome::Stale);
        return std::nullopt;
    }
    CacheMetrics::get().hits.inc();
    report(SweepCacheOutcome::Hit);
    return stats;
}

void
SweepCache::store(const std::string &key_text, const HierarchyStats &stats)
{
    ScopedTimer timer(kPhaseSweepCache);
    Status s = store_.append(hashKey(key_text),
                             serializeStats(key_text, stats));
    if (!s.ok()) {
        // A full or failing disk degrades the sweep to uncached; the
        // failure class (resource-exhausted vs io-error) is in the
        // message, and the counter lets a supervisor see the store
        // has stopped absorbing results.
        MetricsRegistry::global()
            .counter("sweep_cache.append_failures")
            .inc();
        warn("sweep cache: %s", s.message().c_str());
        return;
    }
    CacheMetrics::get().appends.inc();
}

} // namespace tlc
