/**
 * @file
 * System-configuration implementation.
 */

#include "system_config.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace tlc {

std::string
SystemAssumptions::toString() const
{
    std::ostringstream os;
    os << offchipNs << "ns off-chip, ";
    if (l1Assoc != 1)
        os << l1Assoc << "-way L1, ";
    os << "L2 ";
    if (l2Assoc == 1)
        os << "direct-mapped";
    else
        os << l2Assoc << "-way";
    os << ", " << twoLevelPolicyName(policy);
    if (dualPortedL1)
        os << ", dual-ported L1";
    return os.str();
}

std::string
SystemConfig::label() const
{
    return formatConfigLabel(l1Bytes, l2Bytes);
}

std::string
SystemConfig::missKeyString() const
{
    std::ostringstream os;
    os << "l1=" << l1Bytes << ";l2=" << l2Bytes << ";line="
       << assume.lineBytes << ";l1assoc=" << assume.l1Assoc;
    if (hasL2()) {
        os << ";l2assoc=" << assume.l2Assoc << ";policy="
           << twoLevelPolicyName(assume.policy) << ";l2repl="
           << replPolicyName(assume.l2Repl);
    }
    return os.str();
}

Status
SystemConfig::check() const
{
    Status s = l1Params().check();
    if (!s.ok())
        return s.withContext("L1 of " + label());
    if (hasL2()) {
        s = l2Params().check();
        if (!s.ok())
            return s.withContext("L2 of " + label());
    }
    return Status();
}

CacheParams
SystemConfig::l1Params() const
{
    CacheParams p;
    p.sizeBytes = l1Bytes;
    p.lineBytes = assume.lineBytes;
    p.assoc = assume.l1Assoc;
    // LRU when associative; the policy is irrelevant direct-mapped.
    p.repl = assume.l1Assoc > 1 ? ReplPolicy::LRU : ReplPolicy::Random;
    return p;
}

CacheParams
SystemConfig::l2Params() const
{
    tlc_assert(hasL2(), "l2Params() on a single-level config");
    CacheParams p;
    p.sizeBytes = l2Bytes;
    p.lineBytes = assume.lineBytes;
    p.assoc = assume.l2Assoc;
    p.repl = assume.l2Repl; // pseudo-random in the paper
    return p;
}

const std::vector<std::uint64_t> &
DesignSpace::l1Sizes()
{
    static const std::vector<std::uint64_t> sizes = {
        1_KiB, 2_KiB, 4_KiB, 8_KiB, 16_KiB, 32_KiB, 64_KiB, 128_KiB,
        256_KiB,
    };
    return sizes;
}

std::vector<std::uint64_t>
DesignSpace::l2SizesFor(std::uint64_t l1_bytes)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t s = 2 * l1_bytes; s <= 256_KiB; s *= 2)
        out.push_back(s);
    return out;
}

std::vector<SystemConfig>
DesignSpace::enumerate(const SystemAssumptions &assume,
                       bool include_single_level, bool include_two_level)
{
    std::vector<SystemConfig> out;
    for (std::uint64_t l1 : l1Sizes()) {
        if (include_single_level) {
            SystemConfig c;
            c.l1Bytes = l1;
            c.l2Bytes = 0;
            c.assume = assume;
            out.push_back(c);
        }
        if (include_two_level) {
            for (std::uint64_t l2 : l2SizesFor(l1)) {
                // A set-associative L2 needs at least one set.
                if (assume.l2Assoc > 0 &&
                    l2 / assume.lineBytes < assume.l2Assoc) {
                    continue;
                }
                SystemConfig c;
                c.l1Bytes = l1;
                c.l2Bytes = l2;
                c.assume = assume;
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace tlc
