/**
 * @file
 * The design-space explorer: fuses miss rates, the timing model and
 * the area model into TPI-vs-area design points and best-performance
 * envelopes — the engine behind every figure in the paper.
 *
 * Sweeps are fail-soft: pass a FailureReport and a design point
 * whose configuration is invalid, or whose benchmark trace cannot be
 * loaded, is recorded and skipped while the remaining points
 * complete — one corrupt trace byte must not abort a multi-hour
 * multi-hundred-point run.
 *
 * Sweeps are benchmark-major and batched: evaluateAll() partitions
 * the configuration list into contiguous batches, distributes the
 * batches across the parallelFor worker team (util/parallel.hh;
 * TLC_THREADS or --threads control the width), and simulates each
 * batch's memo-missing configurations in ONE pass over the benchmark
 * trace via MissRateEvaluator::tryMissStatsBatch — instead of
 * re-walking the trace once per design point. Results are
 * deterministic: simulation lanes are fully independent, and the
 * output vector, the envelope, and the FailureReport are ordered by
 * input index regardless of batch shape or worker completion order,
 * so a batched parallel sweep produces byte-identical figure data to
 * a serial point-major one (enforced by
 * tests/test_parallel_differential.cc and tests/test_batch_engine.cc).
 */

#ifndef TLC_CORE_EXPLORER_HH
#define TLC_CORE_EXPLORER_HH

#include <functional>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "area/area_model.hh"
#include "core/evaluator.hh"
#include "core/system_config.hh"
#include "core/tpi.hh"
#include "timing/access_time.hh"
#include "util/envelope.hh"
#include "util/status.hh"

namespace tlc {

/** One fully-priced design point. */
struct DesignPoint
{
    SystemConfig config;
    double areaRbe = 0;       ///< both L1s + L2
    TimingResult l1Timing;    ///< per-L1-array timing
    TimingResult l2Timing;    ///< valid only when config.hasL2()
    HierarchyStats miss;
    TpiResult tpi;

    /** Envelope-ready (area, tpi, label) projection. */
    EnvelopePoint toEnvelopePoint() const
    {
        return EnvelopePoint{areaRbe, tpi.tpi, config.label()};
    }
};

/** One skipped design point or benchmark within a sweep. */
struct SweepFailure
{
    std::string subject; ///< config label or benchmark name
    Status status;       ///< why it was skipped
};

/**
 * Accumulates the failures of one fail-soft sweep so they can be
 * summarised at the end of the run instead of killing it.
 *
 * add() may be called from several threads concurrently (an
 * application sweeping benchmarks in parallel can share one report).
 * Explorer itself never does: it records failures after the worker
 * team joins, in input-index order, so the report contents are
 * deterministic. All accessors take the same lock as add();
 * failures() returns a snapshot by value, so the result stays valid
 * and stable even while writers are active.
 */
class FailureReport
{
  public:
    void add(std::string subject, Status status);

    bool empty() const;
    std::size_t size() const;

    /** Consistent copy of the failures recorded so far. */
    std::vector<SweepFailure> failures() const;

    /** True when some failure's subject contains @p needle. */
    bool mentions(const std::string &needle) const;

    /** Aligned ASCII summary table (subject | error | detail). */
    std::string summary() const;

  private:
    mutable std::mutex mu_;
    std::vector<SweepFailure> failures_;
};

/**
 * Live progress of one evaluateAll() call: how far along the sweep
 * is, how it is going, and when it should finish.
 */
struct SweepProgress
{
    std::size_t done = 0;     ///< points finished (ok or failed)
    std::size_t total = 0;    ///< points in this sweep
    std::size_t failed = 0;   ///< fail-soft skips so far
    double elapsedSeconds = 0.0;
    /** Estimated seconds remaining (elapsed-scaled; 0 when done). */
    double etaSeconds = 0.0;
};

/**
 * A throttled stderr progress printer: one complete line per update
 * (single fwrite, so concurrent workers can't interleave it), of the
 * form "progress: <label> 12/340 (3.5%) 1 failed ...". Suitable for
 * SweepRequest::progress / Explorer::setProgressCallback.
 */
std::function<void(const SweepProgress &)>
stderrProgressPrinter(std::string label);

/**
 * A whole sweep as one value: which configurations to price, on
 * which benchmarks, and how to run. Build one, set fields, hand it
 * to Explorer::evaluateAll — no setup-time mutation of the explorer
 * is needed.
 */
struct SweepRequest
{
    /** Configurations to price (shared by every benchmark). */
    std::vector<SystemConfig> configs;
    /** Benchmarks to price them on, swept in order. */
    std::vector<Benchmark> benchmarks;
    /** Failure sink: with one, bad points/benchmarks are recorded
     *  and skipped (fail-soft); without, the first failure is
     *  fatal. */
    FailureReport *report = nullptr;
    /** Progress callback for this request (empty => none). Fires per
     *  benchmark sweep, throttled to progressIntervalSeconds; the
     *  final update of each sweep (done == total) always fires. */
    std::function<void(const SweepProgress &)> progress;
    double progressIntervalSeconds = 0.25;
    /** Worker-team width for this request; 0 inherits the current
     *  TLC_THREADS / setParallelWorkerCount setting. The previous
     *  width is restored when the request completes. */
    unsigned threads = 0;
};

/** Priced points of one benchmark of a SweepRequest. */
struct BenchmarkSweep
{
    Benchmark benchmark;
    std::vector<DesignPoint> points;
};

/**
 * Prices configurations and sweeps design spaces. Timing and area
 * are memoized per geometry; miss rates come from the shared
 * MissRateEvaluator (so several explorers can share one). The memo
 * cache is guarded by a mutex, so one Explorer can price many
 * design points concurrently (evaluateAll does exactly that).
 */
class Explorer
{
  public:
    /** Exact memo key of one cache array geometry. */
    using TimingKey =
        std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>;

    explicit Explorer(MissRateEvaluator &evaluator,
                      const AccessTimeModel &timing = AccessTimeModel{},
                      const AreaModel &area = AreaModel{});

    /**
     * The memo key of (size, assoc, line). The full triple is the
     * key — an earlier packing into a single uint64_t could alias
     * distinct geometries (size*1024 + assoc*256 + line overflows
     * the 10 bits reserved below the size for assoc >= 4).
     */
    static TimingKey timingKey(std::uint64_t size_bytes,
                               std::uint32_t assoc,
                               std::uint32_t line_bytes)
    {
        return {size_bytes, assoc, line_bytes};
    }

    /** Cached timing of one cache array geometry (thread-safe). */
    const TimingResult &timingOf(std::uint64_t size_bytes,
                                 std::uint32_t assoc,
                                 std::uint32_t line_bytes);

    /** Number of distinct geometries memoized so far. */
    std::size_t timingCacheSize() const;

    /** Total chip area of a configuration (both L1s + L2), rbe. */
    double areaOf(const SystemConfig &config);

    /**
     * Fully price one configuration on one benchmark; a failure
     * (invalid configuration, unloadable trace) is fatal. Fail-soft
     * callers use tryEvaluate().
     */
    DesignPoint evaluate(Benchmark b, const SystemConfig &config);

    /**
     * Fully price one configuration, reporting an invalid
     * configuration or unloadable benchmark trace as a Status
     * instead of aborting.
     */
    Expected<DesignPoint> tryEvaluate(Benchmark b,
                                      const SystemConfig &config);

    /**
     * Price an explicit configuration list benchmark-major: the
     * list is split into contiguous batches, batches run across the
     * parallelFor worker team, and each batch's memo-missing
     * configurations share one pass over the benchmark trace
     * (tryMissStatsBatch). The output vector is ordered by input
     * index whatever the batch shape, and with @p report, failed
     * points are recorded there in input order and skipped
     * (fail-soft); without it, a failure is fatal as in the classic
     * API (the lowest-index failure is the one reported). A
     * benchmark whose trace cannot be loaded is reported once, not
     * once per configuration.
     *
     * With the evaluator constructed as MissBackend::AnalyticPrune,
     * the sweep first RANKS every configuration with the analytic
     * reuse-distance model (core/reuse_profile.hh; one profiling
     * pass, no simulation), prunes the points whose analytic TPI is
     * more than (1 + pruneMargin) above the best analytic TPI at
     * equal-or-smaller area — points that cannot sit on the Pareto
     * envelope unless the model misranked them by more than the
     * margin — and only the survivors are simulated exactly. The
     * returned points are the exactly-simulated survivors (in input
     * order, a subset of the full sweep), whose envelope is
     * byte-identical to the full exact sweep's as long as the margin
     * covers the model's ranking error (tests/test_figures_golden.cc
     * pins this). Ranking failures report exactly like exact-path
     * failures; explore.analytic.{ranked,pruned,survivors} count the
     * outcome.
     */
    std::vector<DesignPoint> evaluateAll(
        Benchmark b, const std::vector<SystemConfig> &configs,
        FailureReport *report = nullptr);

    /**
     * Run a whole SweepRequest: every benchmark of the request is
     * priced against its configuration list (one batched sweep per
     * benchmark), with the request's report, progress callback and
     * thread override in effect for the duration of the call.
     * Results are ordered like request.benchmarks.
     */
    std::vector<BenchmarkSweep> evaluateAll(const SweepRequest &request);

    /** Price every configuration of a design space. */
    std::vector<DesignPoint> sweep(Benchmark b,
                                   const SystemAssumptions &assume,
                                   bool include_single_level = true,
                                   bool include_two_level = true,
                                   FailureReport *report = nullptr);

    /** Best-performance envelope of a priced sweep. */
    static Envelope envelopeOf(const std::vector<DesignPoint> &points);

    using ProgressCallback = std::function<void(const SweepProgress &)>;

    /**
     * Install a progress callback for subsequent evaluateAll/sweep
     * calls (empty callback uninstalls). Invocations are throttled
     * to at most one per @p min_interval_seconds, except that the
     * final update (done == total) always fires. The callback may
     * run on any worker thread — keep it cheap and thread-safe
     * (stderrProgressPrinter qualifies). Setup-time API: do not call
     * while a sweep is in flight. Per-request callbacks
     * (SweepRequest::progress) take precedence for their request.
     */
    void setProgressCallback(ProgressCallback cb,
                             double min_interval_seconds = 0.25);

    MissRateEvaluator &evaluator() { return evaluator_; }
    const AccessTimeModel &timingModel() const { return timing_; }
    const AreaModel &areaModel() const { return area_; }

    /**
     * Assemble a DesignPoint from already-computed miss statistics:
     * timing, area and TPI are (memoized) pure functions of the
     * configuration, so pricing the same stats twice is
     * byte-identical. The process-isolated sweep supervisor
     * (core/shard_runner.hh) uses this to price statistics its
     * worker subprocesses simulated out of process.
     */
    DesignPoint pricePoint(const SystemConfig &config,
                           const HierarchyStats &miss);

  private:
    std::vector<DesignPoint> evaluateAllImpl(
        Benchmark b, const std::vector<SystemConfig> &configs,
        FailureReport *report);
    std::vector<DesignPoint> evaluateAllPruned(
        Benchmark b, const std::vector<SystemConfig> &configs,
        FailureReport *report);

    MissRateEvaluator &evaluator_;
    AccessTimeModel timing_;
    AreaModel area_;
    mutable std::mutex timingMu_;
    std::map<TimingKey, TimingResult> timingCache_;
    ProgressCallback progress_;
    double progressIntervalSeconds_ = 0.25;
};

} // namespace tlc

#endif // TLC_CORE_EXPLORER_HH
