/**
 * @file
 * The design-space explorer: fuses miss rates, the timing model and
 * the area model into TPI-vs-area design points and best-performance
 * envelopes — the engine behind every figure in the paper.
 */

#ifndef TLC_CORE_EXPLORER_HH
#define TLC_CORE_EXPLORER_HH

#include <map>
#include <vector>

#include "area/area_model.hh"
#include "core/evaluator.hh"
#include "core/system_config.hh"
#include "core/tpi.hh"
#include "timing/access_time.hh"
#include "util/envelope.hh"

namespace tlc {

/** One fully-priced design point. */
struct DesignPoint
{
    SystemConfig config;
    double areaRbe = 0;       ///< both L1s + L2
    TimingResult l1Timing;    ///< per-L1-array timing
    TimingResult l2Timing;    ///< valid only when config.hasL2()
    HierarchyStats miss;
    TpiResult tpi;

    /** Envelope-ready (area, tpi, label) projection. */
    EnvelopePoint toEnvelopePoint() const
    {
        return EnvelopePoint{areaRbe, tpi.tpi, config.label()};
    }
};

/**
 * Prices configurations and sweeps design spaces. Timing and area
 * are memoized per geometry; miss rates come from the shared
 * MissRateEvaluator (so several explorers can share one).
 */
class Explorer
{
  public:
    explicit Explorer(MissRateEvaluator &evaluator,
                      const AccessTimeModel &timing = AccessTimeModel{},
                      const AreaModel &area = AreaModel{});

    /** Cached timing of one cache array geometry. */
    const TimingResult &timingOf(std::uint64_t size_bytes,
                                 std::uint32_t assoc,
                                 std::uint32_t line_bytes);

    /** Total chip area of a configuration (both L1s + L2), rbe. */
    double areaOf(const SystemConfig &config);

    /** Fully price one configuration on one benchmark. */
    DesignPoint evaluate(Benchmark b, const SystemConfig &config);

    /** Price every configuration of a design space. */
    std::vector<DesignPoint> sweep(Benchmark b,
                                   const SystemAssumptions &assume,
                                   bool include_single_level = true,
                                   bool include_two_level = true);

    /** Best-performance envelope of a priced sweep. */
    static Envelope envelopeOf(const std::vector<DesignPoint> &points);

    MissRateEvaluator &evaluator() { return evaluator_; }
    const AccessTimeModel &timingModel() const { return timing_; }
    const AreaModel &areaModel() const { return area_; }

  private:
    MissRateEvaluator &evaluator_;
    AccessTimeModel timing_;
    AreaModel area_;
    std::map<std::uint64_t, TimingResult> timingCache_;
};

} // namespace tlc

#endif // TLC_CORE_EXPLORER_HH
