/**
 * @file
 * BatchEngine implementation.
 */

#include "batch_engine.hh"

#include "util/metrics.hh"
#include "util/profiler.hh"

namespace tlc {

namespace {

/** Batch-engine metrics, registered once and shared by all sites. */
struct BatchMetrics
{
    MetricCounter &groups;
    MetricCounter &lanes;
    MetricCounter &fastLanes;
    MetricCounter &genericLanes;

    static BatchMetrics &get()
    {
        static BatchMetrics m{
            MetricsRegistry::global().counter("explore.batch.groups"),
            MetricsRegistry::global().counter("explore.batch.lanes"),
            MetricsRegistry::global().counter("explore.batch.fast_lanes"),
            MetricsRegistry::global().counter(
                "explore.batch.generic_lanes"),
        };
        return m;
    }
};

} // namespace

void
BatchEngine::run(const TraceBuffer &trace, std::uint64_t warmup_refs,
                 SimGroup &group)
{
    const auto &recs = trace.records();
    std::uint64_t n = recs.size();
    std::uint64_t warm = warmup_refs < n ? warmup_refs : n;
    group.accessRange(recs.data(), static_cast<std::size_t>(warm));
    group.resetStats();
    group.accessRange(recs.data() + warm,
                      static_cast<std::size_t>(n - warm));
}

BatchEngine::Result
BatchEngine::simulateConfigs(const TraceBuffer &trace,
                             std::uint64_t warmup_refs,
                             std::span<const SystemConfig> configs)
{
    SimGroup group;
    for (const SystemConfig &c : configs) {
        if (c.hasL2()) {
            group.addTwoLevel(c.l1Params(), c.l2Params(),
                              c.assume.policy);
        } else {
            group.addSingleLevel(c.l1Params());
        }
    }

    {
        ScopedTimer timer(phase::kSimBatch);
        run(trace, warmup_refs, group);
    }

    Result r;
    r.stats.reserve(configs.size());
    for (std::size_t lane = 0; lane < group.laneCount(); ++lane) {
        r.stats.push_back(group.stats(lane));
        if (group.laneIsFlat(lane))
            ++r.flatLanes;
        else
            ++r.genericLanes;
    }

    BatchMetrics &m = BatchMetrics::get();
    m.groups.inc();
    m.lanes.inc(group.laneCount());
    m.fastLanes.inc(r.flatLanes);
    m.genericLanes.inc(r.genericLanes);
    return r;
}

} // namespace tlc
