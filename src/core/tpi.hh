/**
 * @file
 * The paper's execution-time model (§2.5): average time per
 * instruction (TPI) from miss counts and cache cycle times.
 *
 *   T = N_instr · t_L1 / issue
 *     + N_L2hit · (2·t_L2 + t_L1)
 *     + N_L2miss · (t_off + 3·t_L2 + t_L1)          (two-level)
 *
 *   T = N_instr · t_L1 / issue + N_miss · (t_off + t_L1)  (one-level)
 *
 * where t_L2 and t_off are rounded UP to integer multiples of the
 * L1 (= processor) cycle time. TPI = T / N_instr.
 */

#ifndef TLC_CORE_TPI_HH
#define TLC_CORE_TPI_HH

#include "cache/hierarchy.hh"

namespace tlc {

/** Timing inputs of the TPI model. */
struct TpiParams
{
    double l1CycleNs = 2.5;   ///< processor cycle time
    double l2CycleNsRaw = 0;  ///< L2 RAM cycle before rounding
    double offchipNs = 50.0;  ///< off-chip miss service
    double issuePerCycle = 1.0; ///< 2.0 for the dual-ported study
    bool hasL2 = false;
};

/** TPI and its decomposition. */
struct TpiResult
{
    double tpi = 0;           ///< ns per instruction
    double l2CycleNs = 0;     ///< rounded L2 cycle
    double offchipNsRounded = 0;
    unsigned l2CycleCpu = 0;  ///< rounded L2 cycle in CPU cycles
    unsigned l2HitPenaltyCpu = 0;  ///< 2·L2 + 1 L1, in CPU cycles
    unsigned l2MissPenaltyCpu = 0; ///< off + 3·L2 + 1 L1, in CPU cycles
    double baseTimeNs = 0;    ///< time if no L1 misses
    double l2HitTimeNs = 0;
    double l2MissTimeNs = 0;
};

/** Evaluate the TPI model. Fatal on inconsistent inputs. */
TpiResult computeTpi(const HierarchyStats &stats, const TpiParams &params);

} // namespace tlc

#endif // TLC_CORE_TPI_HH
