/**
 * @file
 * Catalog of the paper's exhibits: every table and figure, with the
 * system assumptions and workloads it uses. This is the map between
 * the paper and this reproduction — the figure-runner example and
 * the coverage tests consume it, and the bench/ drivers implement
 * it.
 */

#ifndef TLC_CORE_FIGURES_HH
#define TLC_CORE_FIGURES_HH

#include <string>
#include <vector>

#include "core/system_config.hh"
#include "trace/workload.hh"

namespace tlc {

/** What kind of exhibit a catalog entry is. */
enum class ExhibitKind {
    Table,       ///< printed rows (Table 1)
    TimingCurve, ///< model curves, no workload (Figs. 1-2)
    TpiScatter,  ///< TPI-vs-area sweeps and envelopes (most figures)
    Mechanism    ///< a didactic walk-through (Fig. 21)
};

/** One table or figure of the paper. */
struct FigureSpec
{
    std::string id;     ///< "table1", "fig05", "fig10-16", ...
    std::string title;  ///< the paper's caption, abbreviated
    ExhibitKind kind;
    std::vector<Benchmark> workloads; ///< empty for model-only plots
    SystemAssumptions assume;         ///< for TpiScatter exhibits
    bool compareSingleLevel = false;  ///< plot the 1-level staircase
    std::string benchTarget;          ///< driver that regenerates it
};

/** The full catalog, in paper order. */
const std::vector<FigureSpec> &figureCatalog();

/** Look up one exhibit by id; fatal on unknown ids. */
const FigureSpec &figureById(const std::string &id);

} // namespace tlc

#endif // TLC_CORE_FIGURES_HH
