/**
 * @file
 * Whole-system cache configuration descriptors and the paper's
 * design-space enumeration.
 */

#ifndef TLC_CORE_SYSTEM_CONFIG_HH
#define TLC_CORE_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/two_level.hh"

namespace tlc {

/**
 * Assumptions held fixed across one experiment (one figure):
 * off-chip service time, L2 associativity and policy, L1 cell type.
 */
struct SystemAssumptions
{
    double offchipNs = 50.0;    ///< off-chip miss service (50 or 200)
    /** L1 ways. The paper fixes 1 (direct-mapped, citing Hill); other
     *  values support the associativity study in bench_hill_l1_assoc. */
    std::uint32_t l1Assoc = 1;
    std::uint32_t l2Assoc = 4;  ///< L2 ways (1 = direct-mapped)
    TwoLevelPolicy policy = TwoLevelPolicy::Inclusive;
    bool dualPortedL1 = false;  ///< §6: 2x area, 2x issue rate
    std::uint32_t lineBytes = 16;
    /** L2 replacement (paper: pseudo-random; others for ablation). */
    ReplPolicy l2Repl = ReplPolicy::Random;

    std::string toString() const;
};

/**
 * One point of the design space: the sizes of the (split, equal,
 * direct-mapped) L1 caches and of the mixed L2 (0 = absent), plus
 * the experiment assumptions.
 */
struct SystemConfig
{
    std::uint64_t l1Bytes = 8 * 1024; ///< EACH of the I and D caches
    std::uint64_t l2Bytes = 0;        ///< 0 => single-level system
    SystemAssumptions assume;

    bool hasL2() const { return l2Bytes != 0; }

    /**
     * Check that both cache levels have valid geometry, returning a
     * descriptive InvalidConfig Status naming the offending level
     * instead of aborting. Sweeps call this before pricing a point
     * so one degenerate configuration cannot kill a run.
     */
    Status check() const;

    /** The paper's "L1:L2" label in KB, e.g. "32:256" or "8:0". */
    std::string label() const;

    /**
     * Canonical serialization of every parameter the MISS COUNTS of
     * this configuration depend on — geometry, associativities, line
     * size, policy and replacement (by stable name, not enum value)
     * — and nothing they don't (off-chip time, porting, cell type
     * are timing-only). Both the evaluator's in-memory memo and the
     * persistent sweep cache (core/sweep_cache.hh) key on this, so
     * the two can never disagree about which results are
     * interchangeable.
     */
    std::string missKeyString() const;

    /** Cache parameters for each L1 array (direct-mapped, split). */
    CacheParams l1Params() const;
    /** Cache parameters for the L2 array (requires hasL2()). */
    CacheParams l2Params() const;
};

/**
 * Enumerate the paper's design space for one set of assumptions:
 * L1 in {1K..256K} per side; L2 absent or in {2*L1 .. 256K}.
 */
class DesignSpace
{
  public:
    /** L1 sizes studied by the paper (bytes per side). */
    static const std::vector<std::uint64_t> &l1Sizes();

    /** L2 sizes valid for a given L1 size (excludes 0). */
    static std::vector<std::uint64_t> l2SizesFor(std::uint64_t l1_bytes);

    /** The full configuration list (single-level + two-level). */
    static std::vector<SystemConfig> enumerate(
        const SystemAssumptions &assume, bool include_single_level = true,
        bool include_two_level = true);
};

} // namespace tlc

#endif // TLC_CORE_SYSTEM_CONFIG_HH
