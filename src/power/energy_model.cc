/**
 * @file
 * Energy model implementation.
 */

#include "energy_model.hh"

#include <cmath>

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace tlc {

EnergyModel::EnergyModel(const EnergyParams &params)
    : params_(params)
{
}

EnergyBreakdown
EnergyModel::accessEnergy(const SramGeometry &g,
                          const ArrayOrganization &data_org,
                          const ArrayOrganization &tag_org,
                          bool dual_ported) const
{
    SubarrayDims dd = SubarrayDims::dataArray(g, data_org);
    SubarrayDims td = SubarrayDims::tagArray(g, tag_org, 2);
    tlc_assert(dd.valid && td.valid,
               "energy model given an invalid organization");

    const EnergyParams &p = params_;
    EnergyBreakdown e;

    // One data subarray and one tag subarray are activated per
    // access; the rest stay precharged.
    e.decoder = p.decPerAddrBit *
        (log2i(g.numSets()) + log2i(td.rows ? td.rows : 1));
    e.wordline = p.wlPerCol * (dd.cols + td.cols);
    e.bitline = p.blPerCell *
        (static_cast<double>(dd.rows) * dd.cols +
         static_cast<double>(td.rows) * td.cols);
    e.sense = p.sensePerCol * (dd.cols + td.cols);
    e.compare = p.cmpPerTagBit * g.tagBits() * g.assoc;
    e.output = p.outPerBit * g.outputBits;

    double total_bits = 8.0 * static_cast<double>(g.sizeBytes);
    e.routing = p.routePerSqrtBit * std::sqrt(total_bits);

    if (dual_ported) {
        double f = p.dualPortFactor;
        e.decoder *= f;
        e.wordline *= f;
        e.bitline *= f;
        e.sense *= f;
        e.compare *= f;
        e.output *= f;
        e.routing *= f;
    }
    return e;
}

double
EnergyModel::energyPerReference(const HierarchyStats &stats, double e_l1,
                                double e_l2) const
{
    double refs = static_cast<double>(stats.totalRefs());
    if (refs == 0)
        return 0.0;
    double l1_accesses = refs;
    double l2_accesses = static_cast<double>(stats.l1Misses());
    double offchip = static_cast<double>(stats.l2Misses);
    return (l1_accesses * e_l1 + l2_accesses * e_l2 +
            offchip * params_.offchipAccess) /
        refs;
}

} // namespace tlc
