/**
 * @file
 * Per-access energy model for on-chip caches.
 *
 * Section 1 of the paper lists lower power as the fifth advantage of
 * two-level on-chip caching: "In a single-level configuration,
 * wordlines and bitlines are longer, meaning there is a larger
 * capacitance that needs to be charged or discharged with every
 * cache access. In a two-level configuration, most accesses only
 * require an access to a small first-level cache."
 *
 * This module makes that argument quantitative with a simple
 * switched-capacitance model over the same array organizations the
 * timing model selects: decoder, wordline, bitline/precharge, sense,
 * comparator and output terms per activated subarray, plus an H-tree
 * routing term that grows with the square root of the total bit
 * count (the long global wires of big arrays). Units are arbitrary
 * "energy units" (eu); only ratios between configurations matter.
 */

#ifndef TLC_POWER_ENERGY_MODEL_HH
#define TLC_POWER_ENERGY_MODEL_HH

#include "cache/hierarchy.hh"
#include "timing/organization.hh"

namespace tlc {

/** Switched-capacitance coefficients (relative units). */
struct EnergyParams
{
    double decPerAddrBit = 2.0;  ///< predecode + decode per address bit
    double wlPerCol = 0.10;      ///< wordline charge per column
    double blPerCell = 0.004;    ///< bitline swing per cell on the line
    double sensePerCol = 0.25;   ///< sense amplifier per column
    double cmpPerTagBit = 0.6;   ///< comparator per tag bit per way
    double outPerBit = 1.2;      ///< output driver per datapath bit
    double routePerSqrtBit = 0.5; ///< global H-tree per sqrt(total bits)
    /** Energy of one off-chip access (pads + board), in the same
     *  units; dwarfs any on-chip access. */
    double offchipAccess = 4000.0;
    /** Extra factor for dual-ported arrays (two ports switching). */
    double dualPortFactor = 2.0;
};

/** Energy decomposition of one read access, in eu. */
struct EnergyBreakdown
{
    double decoder = 0;
    double wordline = 0;
    double bitline = 0;
    double sense = 0;
    double compare = 0;
    double output = 0;
    double routing = 0;

    double total() const
    {
        return decoder + wordline + bitline + sense + compare + output +
            routing;
    }
};

/**
 * Prices one cache array access and whole-hierarchy averages.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams{});

    const EnergyParams &params() const { return params_; }

    /** Energy of one access to an array with a given organization. */
    EnergyBreakdown accessEnergy(const SramGeometry &g,
                                 const ArrayOrganization &data_org,
                                 const ArrayOrganization &tag_org,
                                 bool dual_ported = false) const;

    /**
     * Average on+off-chip energy per memory reference of a hierarchy
     * run, from measured miss statistics:
     *
     *   E = E_L1 + missrate_L1 · E_L2 + missrate_global · E_offchip
     *
     * Pass e_l2 = 0 for single-level systems.
     */
    double energyPerReference(const HierarchyStats &stats, double e_l1,
                              double e_l2) const;

  private:
    EnergyParams params_;
};

} // namespace tlc

#endif // TLC_POWER_ENERGY_MODEL_HH
