/**
 * @file
 * Trace file I/O.
 *
 * Two formats are supported:
 *  - a compact binary format ("TLCT"): fixed header followed by
 *    packed 5-byte records (u32 little-endian address + 1-byte type);
 *  - a Dinero-style text format: one "<type> <hex-address>" pair per
 *    line, where type is 'i' (ifetch), 'l' (load) or 's' (store).
 *
 * The binary format lets users capture traces once (e.g. with a
 * Pin/Valgrind tool writing this layout) and replay them through the
 * simulator instead of using the built-in synthetic workloads.
 *
 * Error handling: on-disk data is untrusted. Every reader validates
 * at the boundary and returns a tlc::Status with a typed code (bad
 * magic, version mismatch, truncation, overlong varint, reference
 * type out of range, record count larger than the remaining file,
 * checksum mismatch) instead of trusting the stream or exiting.
 * Compressed traces written by this build (version 3) end in a
 * CRC-32 footer computed over the DECODED records, so a bit flip
 * anywhere in the payload is detected even when the damaged varint
 * still decodes structurally; version-2 files (no footer) from
 * earlier builds still load. Reads are
 * transactional with respect to the destination buffer: on ANY
 * failure the TraceBuffer is rolled back to the size it had on
 * entry, so a failed load leaves no partial records behind. Record
 * counts from the header are additionally clamped against the bytes
 * actually remaining in the stream before any memory is reserved,
 * so a corrupt or truncated header cannot trigger a multi-gigabyte
 * allocation.
 */

#ifndef TLC_TRACE_IO_HH
#define TLC_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/buffer.hh"
#include "util/status.hh"

namespace tlc {

/** Magic bytes that open a binary trace file. */
extern const char kTraceMagic[4];
/** Raw (fixed 5-byte records) binary format version. */
constexpr std::uint32_t kTraceVersion = 1;
/** Compressed (per-type delta + varint) format version. */
constexpr std::uint32_t kTraceVersionCompressed = 2;
/** Compressed format with a mandatory CRC-32 footer over the decoded
 *  records (4-byte little-endian address + type byte each). Written
 *  by writeCompressedTrace; readCompressedTrace accepts this and the
 *  footer-less version 2. */
constexpr std::uint32_t kTraceVersionCompressedCrc = 3;

/** Write @p buf to @p os in the binary format. */
void writeBinaryTrace(std::ostream &os, const TraceBuffer &buf);

/**
 * Read a binary trace from @p is into @p buf (appending).
 * On failure returns a descriptive Status and rolls @p buf back to
 * its entry size (no partial append).
 */
Status readBinaryTrace(std::istream &is, TraceBuffer &buf);

/**
 * Write @p buf in the compressed binary format: each record stores
 * its type and the zigzag-varint delta against the previous address
 * OF THE SAME TYPE, so sequential instruction fetch (delta 4) and
 * strided data sweeps cost one byte per reference instead of five.
 * This is the practical format for the paper-scale traces
 * (tens of millions to billions of references, Table 1); WRL's own
 * tracing system [2] compressed similarly. The stream ends in a
 * CRC-32 footer over the decoded records (version 3).
 */
void writeCompressedTrace(std::ostream &os, const TraceBuffer &buf);

/**
 * Read a compressed trace (header included): version 3 with its
 * mandatory CRC footer, or a legacy footer-less version 2. A footer
 * that is absent or cut reads as Truncated; one that disagrees with
 * the decoded records as ChecksumMismatch. On failure returns a
 * descriptive Status and rolls @p buf back to its entry size.
 */
Status readCompressedTrace(std::istream &is, TraceBuffer &buf);

/** Write @p buf to @p os in the text format. */
void writeTextTrace(std::ostream &os, const TraceBuffer &buf);

/**
 * Read a text trace. Blank lines and lines starting with '#' are
 * ignored. On the first malformed line, returns a ParseError
 * Status naming the line number and rolls @p buf back to its entry
 * size.
 */
Status readTextTrace(std::istream &is, TraceBuffer &buf);

/**
 * Convenience: load a trace file (binary or text, sniffed). The
 * returned Status carries the file path and which format/stage
 * failed; @p buf is left at its entry size on failure.
 */
Status loadTraceFile(const std::string &path, TraceBuffer &buf);

/**
 * Convenience: save a binary trace file (compressed by default;
 * pass compressed=false for the raw fixed-record layout).
 */
Status saveTraceFile(const std::string &path, const TraceBuffer &buf,
                     bool compressed = true);

} // namespace tlc

#endif // TLC_TRACE_IO_HH
