/**
 * @file
 * Trace file I/O.
 *
 * Two formats are supported:
 *  - a compact binary format ("TLCT"): fixed header followed by
 *    packed 5-byte records (u32 little-endian address + 1-byte type);
 *  - a Dinero-style text format: one "<type> <hex-address>" pair per
 *    line, where type is 'i' (ifetch), 'l' (load) or 's' (store).
 *
 * The binary format lets users capture traces once (e.g. with a
 * Pin/Valgrind tool writing this layout) and replay them through the
 * simulator instead of using the built-in synthetic workloads.
 */

#ifndef TLC_TRACE_IO_HH
#define TLC_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/buffer.hh"

namespace tlc {

/** Magic bytes that open a binary trace file. */
extern const char kTraceMagic[4];
/** Raw (fixed 5-byte records) binary format version. */
constexpr std::uint32_t kTraceVersion = 1;
/** Compressed (per-type delta + varint) format version. */
constexpr std::uint32_t kTraceVersionCompressed = 2;

/** Write @p buf to @p os in the binary format. */
void writeBinaryTrace(std::ostream &os, const TraceBuffer &buf);

/**
 * Read a binary trace from @p is into @p buf (appending).
 * Returns false (with buf untouched on header errors) when the
 * stream is not a valid trace.
 */
bool readBinaryTrace(std::istream &is, TraceBuffer &buf);

/**
 * Write @p buf in the compressed binary format: each record stores
 * its type and the zigzag-varint delta against the previous address
 * OF THE SAME TYPE, so sequential instruction fetch (delta 4) and
 * strided data sweeps cost one byte per reference instead of five.
 * This is the practical format for the paper-scale traces
 * (tens of millions to billions of references, Table 1); WRL's own
 * tracing system [2] compressed similarly.
 */
void writeCompressedTrace(std::ostream &os, const TraceBuffer &buf);

/** Read a compressed trace (header included). False on errors. */
bool readCompressedTrace(std::istream &is, TraceBuffer &buf);

/** Write @p buf to @p os in the text format. */
void writeTextTrace(std::ostream &os, const TraceBuffer &buf);

/**
 * Read a text trace. Blank lines and lines starting with '#' are
 * ignored. Returns false on the first malformed line.
 */
bool readTextTrace(std::istream &is, TraceBuffer &buf);

/** Convenience: load a trace file (binary or text, sniffed). */
bool loadTraceFile(const std::string &path, TraceBuffer &buf);

/**
 * Convenience: save a binary trace file (compressed by default;
 * pass compressed=false for the raw fixed-record layout).
 */
bool saveTraceFile(const std::string &path, const TraceBuffer &buf,
                   bool compressed = true);

} // namespace tlc

#endif // TLC_TRACE_IO_HH
