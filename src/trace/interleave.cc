/**
 * @file
 * Trace interleaving implementation.
 */

#include "interleave.hh"

#include "util/logging.hh"

namespace tlc {

TraceBuffer
interleaveTraces(const std::vector<const TraceBuffer *> &traces,
                 std::uint64_t quantum_refs, std::uint64_t total_refs)
{
    tlc_assert(!traces.empty() && traces.size() <= 4,
               "interleave supports 1..4 processes, got %zu",
               traces.size());
    tlc_assert(quantum_refs > 0, "quantum must be positive");
    for (const TraceBuffer *t : traces)
        tlc_assert(t && !t->empty(), "empty process trace");

    TraceBuffer out;
    out.reserve(total_refs);
    std::vector<std::size_t> cursor(traces.size(), 0);
    std::size_t pid = 0;
    while (out.size() < total_refs) {
        const TraceBuffer &t = *traces[pid];
        std::uint64_t n =
            std::min<std::uint64_t>(quantum_refs,
                                    total_refs - out.size());
        for (std::uint64_t i = 0; i < n; ++i) {
            TraceRecord rec = t[cursor[pid]];
            rec.addr |= static_cast<std::uint32_t>(pid) << 30;
            out.append(rec);
            cursor[pid] = (cursor[pid] + 1) % t.size();
        }
        pid = (pid + 1) % traces.size();
    }
    return out;
}

} // namespace tlc
