/**
 * @file
 * Reference-stream generator implementations.
 */

#include "streams.hh"

#include <algorithm>
#include <cstring>

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace tlc {

// ---------------------------------------------------------------------
// SequentialStream
// ---------------------------------------------------------------------

SequentialStream::SequentialStream(std::uint32_t base,
                                   std::uint32_t array_bytes,
                                   unsigned num_arrays, unsigned stride,
                                   double reuse_prob, unsigned reuse_window,
                                   std::uint64_t seed)
    : base_(base), arrayBytes_(array_bytes), numArrays_(num_arrays),
      stride_(stride), reuseProb_(reuse_prob), reuseWindow_(reuse_window),
      rng_(seed, 0x5e01)
{
    tlc_assert(array_bytes >= stride && stride > 0, "bad array geometry");
    tlc_assert(num_arrays > 0, "need at least one array");
}

std::uint32_t
SequentialStream::next()
{
    std::uint32_t off = offset_;
    if (reuseProb_ > 0.0 && rng_.nextDouble() < reuseProb_) {
        // Re-reference a recent element without advancing.
        unsigned back = 1 + rng_.nextBounded(reuseWindow_);
        std::uint64_t delta = static_cast<std::uint64_t>(back) * stride_;
        if (delta <= off)
            off -= static_cast<std::uint32_t>(delta);
        return base_ + curArray_ * arrayBytes_ + off;
    }
    std::uint32_t addr = base_ + curArray_ * arrayBytes_ + off;
    offset_ += stride_;
    if (offset_ >= arrayBytes_) {
        offset_ = 0;
        curArray_ = (curArray_ + 1) % numArrays_;
    }
    return addr;
}

// ---------------------------------------------------------------------
// StackDistStream
// ---------------------------------------------------------------------

StackDistStream::StackDistStream(std::uint32_t base,
                                 std::uint32_t region_bytes,
                                 unsigned granularity, double new_prob,
                                 double geom_p, double geom_weight,
                                 double zipf_s, std::uint64_t seed)
    : base_(base), maxObjects_(region_bytes / granularity),
      granularity_(granularity), newProb_(new_prob), geomP_(geom_p),
      geomWeight_(geom_weight), zipfS_(zipf_s), rng_(seed, 0x57ac)
{
    tlc_assert(granularity >= 4, "granularity too small");
    tlc_assert(maxObjects_ > 1, "region too small for granularity");
    stack_.reserve(maxObjects_);
}

std::uint32_t
StackDistStream::next()
{
    std::uint32_t obj;
    bool fresh = stack_.empty() ||
        (stack_.size() < maxObjects_ && rng_.nextDouble() < newProb_);
    if (fresh) {
        obj = nextFresh_++;
        stack_.insert(stack_.begin(), obj);
    } else {
        std::uint32_t n = static_cast<std::uint32_t>(stack_.size());
        std::uint32_t depth;
        if (rng_.nextDouble() < geomWeight_) {
            depth = rng_.nextGeometric(geomP_);
        } else {
            depth = rng_.nextZipf(n, zipfS_);
        }
        if (depth >= n)
            depth = n - 1;
        obj = stack_[depth];
        // Move to front.
        std::memmove(stack_.data() + 1, stack_.data(),
                     depth * sizeof(std::uint32_t));
        stack_[0] = obj;
    }
    return base_ + obj * granularity_ +
        rng_.nextBounded(granularity_ / 4) * 4;
}

// ---------------------------------------------------------------------
// ZipfStream
// ---------------------------------------------------------------------

ZipfStream::ZipfStream(std::uint32_t base, std::uint32_t region_bytes,
                       unsigned granularity, double s, std::uint64_t seed)
    : base_(base), granularity_(granularity),
      numObjects_(region_bytes / granularity), s_(s),
      rng_(seed, 0x21bf)
{
    tlc_assert(numObjects_ > 1, "region too small for granularity");
    // A fixed odd multiplier scatters popularity ranks over the
    // region so the hot set is not one contiguous block.
    scatterMul_ = 2654435761u | 1u;
}

std::uint32_t
ZipfStream::next()
{
    std::uint32_t rank = rng_.nextZipf(numObjects_, s_);
    // rank+1 so that rank 0 does not pin the hottest object to the
    // region base.
    std::uint32_t obj = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(rank + 1) * scatterMul_) %
        numObjects_);
    return base_ + obj * granularity_ +
        rng_.nextBounded(granularity_ / 4) * 4;
}

// ---------------------------------------------------------------------
// PointerChaseStream
// ---------------------------------------------------------------------

PointerChaseStream::PointerChaseStream(std::uint32_t base,
                                       std::uint32_t region_bytes,
                                       unsigned granularity,
                                       std::uint64_t seed)
    : base_(base), granularity_(granularity)
{
    std::uint32_t n = region_bytes / granularity;
    tlc_assert(n > 1, "region too small for granularity");
    // Build a single random cycle with Sattolo's algorithm so the
    // walk visits every line before repeating.
    nextIdx_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i)
        nextIdx_[i] = i;
    Pcg32 rng(seed, 0xc4a5e);
    for (std::uint32_t i = n - 1; i > 0; --i) {
        std::uint32_t j = rng.nextBounded(i);
        std::swap(nextIdx_[i], nextIdx_[j]);
    }
}

std::uint32_t
PointerChaseStream::next()
{
    cur_ = nextIdx_[cur_];
    return base_ + cur_ * granularity_;
}

// ---------------------------------------------------------------------
// LoopCodeStream
// ---------------------------------------------------------------------

LoopCodeStream::LoopCodeStream(const LoopCodeParams &params,
                               std::uint64_t seed)
    : p_(params), rng_(seed, 0xc0de)
{
    tlc_assert(p_.numFuncs > 0, "need at least one function");
    funcInstrs_ = p_.codeBytes / p_.numFuncs / 4;
    tlc_assert(funcInstrs_ >= 4, "functions too small (%u instrs)",
               funcInstrs_);
    switchFunction();
}

void
LoopCodeStream::switchFunction()
{
    curFunc_ = rng_.nextZipf(p_.numFuncs, p_.zipfS);
    pc_ = 0;
    inLoop_ = false;
}

std::uint32_t
LoopCodeStream::next()
{
    std::uint32_t addr =
        p_.base + (curFunc_ * funcInstrs_ + pc_) * 4;

    // Advance control flow.
    ++pc_;
    if (inLoop_ && pc_ >= loopEnd_) {
        if (itersLeft_ > 0) {
            --itersLeft_;
            pc_ = loopStart_;
        } else {
            inLoop_ = false;
        }
    }
    if (!inLoop_ && pc_ < funcInstrs_ &&
        rng_.nextDouble() < p_.loopStartProb) {
        std::uint32_t body = 2 +
            rng_.nextGeometric(1.0 / static_cast<double>(p_.avgLoopBody));
        loopStart_ = pc_;
        loopEnd_ = std::min(pc_ + body, funcInstrs_);
        itersLeft_ =
            rng_.nextGeometric(1.0 / static_cast<double>(p_.avgLoopIters));
        inLoop_ = itersLeft_ > 0;
    }
    if (pc_ >= funcInstrs_ ||
        (!inLoop_ && rng_.nextDouble() < p_.callProb)) {
        switchFunction();
    }
    return addr;
}

} // namespace tlc
