/**
 * @file
 * Trace record helpers.
 */

#include "record.hh"

namespace tlc {

char
refTypeChar(RefType t)
{
    switch (t) {
      case RefType::Instr:
        return 'i';
      case RefType::Load:
        return 'l';
      case RefType::Store:
        return 's';
    }
    return '?';
}

bool
refTypeFromChar(char c, RefType &out)
{
    switch (c) {
      case 'i':
        out = RefType::Instr;
        return true;
      case 'l':
        out = RefType::Load;
        return true;
      case 's':
        out = RefType::Store;
        return true;
      default:
        return false;
    }
}

} // namespace tlc
