/**
 * @file
 * Trace file I/O implementation.
 *
 * The readers follow three rules (see io.hh): validate everything,
 * never trust a size field further than the bytes that remain, and
 * roll the destination buffer back on any failure.
 */

#include "io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/crc32.hh"
#include "util/metrics.hh"

namespace tlc {

const char kTraceMagic[4] = {'T', 'L', 'C', 'T'};

namespace {

void
putU32(std::ostream &os, std::uint32_t v)
{
    char b[4];
    b[0] = static_cast<char>(v & 0xff);
    b[1] = static_cast<char>((v >> 8) & 0xff);
    b[2] = static_cast<char>((v >> 16) & 0xff);
    b[3] = static_cast<char>((v >> 24) & 0xff);
    os.write(b, 4);
}

bool
getU32(std::istream &is, std::uint32_t &v)
{
    unsigned char b[4];
    if (!is.read(reinterpret_cast<char *>(b), 4))
        return false;
    v = static_cast<std::uint32_t>(b[0]) |
        (static_cast<std::uint32_t>(b[1]) << 8) |
        (static_cast<std::uint32_t>(b[2]) << 16) |
        (static_cast<std::uint32_t>(b[3]) << 24);
    return true;
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    putU32(os, static_cast<std::uint32_t>(v & 0xffffffffu));
    putU32(os, static_cast<std::uint32_t>(v >> 32));
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    std::uint32_t lo, hi;
    if (!getU32(is, lo) || !getU32(is, hi))
        return false;
    v = (static_cast<std::uint64_t>(hi) << 32) | lo;
    return true;
}

constexpr std::uint64_t kUnknownRemaining = ~std::uint64_t{0};

/**
 * Bytes left between the current position and the end of the
 * stream, or kUnknownRemaining when the stream is not seekable
 * (e.g. a pipe). Restores the read position and stream state.
 */
std::uint64_t
remainingBytes(std::istream &is)
{
    std::istream::pos_type cur = is.tellg();
    if (cur == std::istream::pos_type(-1)) {
        is.clear();
        return kUnknownRemaining;
    }
    is.seekg(0, std::ios::end);
    std::istream::pos_type end = is.tellg();
    is.clear();
    is.seekg(cur);
    if (end == std::istream::pos_type(-1) || end < cur)
        return kUnknownRemaining;
    return static_cast<std::uint64_t>(end - cur);
}

/**
 * Safe reserve() hint for @p count records of at least
 * @p min_record_bytes each: never larger than what the remaining
 * stream bytes could actually hold, and bounded by a fixed cap when
 * the stream size is unknowable (the vector still grows on demand
 * past the hint; only the up-front allocation is limited).
 */
std::uint64_t
clampedReserve(std::uint64_t count, std::uint64_t remaining,
               std::uint64_t min_record_bytes)
{
    constexpr std::uint64_t kBlindCap = 1u << 20; // 1 M records
    if (remaining == kUnknownRemaining)
        return count < kBlindCap ? count : kBlindCap;
    std::uint64_t fit = remaining / min_record_bytes;
    return count < fit ? count : fit;
}

} // namespace

void
writeBinaryTrace(std::ostream &os, const TraceBuffer &buf)
{
    os.write(kTraceMagic, 4);
    putU32(os, kTraceVersion);
    putU64(os, buf.size());
    for (const auto &rec : buf) {
        putU32(os, rec.addr);
        char t = static_cast<char>(rec.type);
        os.write(&t, 1);
    }
}

Status
readBinaryTrace(std::istream &is, TraceBuffer &buf)
{
    const std::size_t entry = buf.size();
    auto fail = [&](Status s) {
        buf.truncate(entry);
        return s;
    };

    char magic[4];
    if (!is.read(magic, 4))
        return Status(StatusCode::Truncated,
                      "stream shorter than the 4-byte magic");
    if (std::memcmp(magic, kTraceMagic, 4) != 0) {
        return statusf(StatusCode::BadMagic,
                       "magic bytes %02x%02x%02x%02x are not \"TLCT\"",
                       static_cast<unsigned char>(magic[0]),
                       static_cast<unsigned char>(magic[1]),
                       static_cast<unsigned char>(magic[2]),
                       static_cast<unsigned char>(magic[3]));
    }
    std::uint32_t version;
    if (!getU32(is, version))
        return Status(StatusCode::Truncated,
                      "stream ends inside the version field");
    if (version != kTraceVersion) {
        return statusf(StatusCode::VersionMismatch,
                       "version %u where the raw binary reader expects %u",
                       version, kTraceVersion);
    }
    std::uint64_t count;
    if (!getU64(is, count))
        return Status(StatusCode::Truncated,
                      "stream ends inside the record count");
    // Reject only clearly-hostile counts here (more records than
    // remaining BYTES): a file that merely lost its tail still
    // enters the record loop and reports WHERE it was cut. Either
    // way the reserve() below is clamped, so a lying header can
    // never force a huge allocation.
    const std::uint64_t remaining = remainingBytes(is);
    if (remaining != kUnknownRemaining && count > remaining) {
        return statusf(StatusCode::CountTooLarge,
                       "record count %llu exceeds even one byte per "
                       "record in the %llu bytes remaining",
                       static_cast<unsigned long long>(count),
                       static_cast<unsigned long long>(remaining));
    }
    buf.reserve(entry + clampedReserve(count, remaining, 5));
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint32_t addr;
        char t;
        if (!getU32(is, addr) || !is.read(&t, 1)) {
            return fail(statusf(
                StatusCode::Truncated,
                "stream ends inside record %llu of %llu",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(count)));
        }
        if (t < 0 || t > 2) {
            return fail(statusf(
                StatusCode::TypeOutOfRange,
                "record %llu has reference type %d (expected 0..2)",
                static_cast<unsigned long long>(i), static_cast<int>(t)));
        }
        buf.append(addr, static_cast<RefType>(t));
    }
    return Status();
}

namespace {

void
putVarint(std::ostream &os, std::uint64_t v)
{
    while (v >= 0x80) {
        char b = static_cast<char>((v & 0x7f) | 0x80);
        os.write(&b, 1);
        v >>= 7;
    }
    char b = static_cast<char>(v);
    os.write(&b, 1);
}

Status
getVarint(std::istream &is, std::uint64_t &v)
{
    v = 0;
    unsigned shift = 0;
    for (int nbytes = 1;; ++nbytes) {
        char c;
        if (!is.read(&c, 1)) {
            return Status(StatusCode::Truncated,
                          "stream ends inside a varint");
        }
        unsigned char b = static_cast<unsigned char>(c);
        // A u64 takes at most 10 varint bytes, and the 10th carries
        // only the top bit (shift 63).
        if (nbytes > 10 || (shift == 63 && (b & 0x7e))) {
            return statusf(StatusCode::OverlongVarint,
                           "varint overflows 64 bits at byte %d", nbytes);
        }
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return Status();
        if (nbytes == 10) {
            return Status(StatusCode::OverlongVarint,
                          "varint continues past 10 bytes");
        }
        shift += 7;
    }
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
        -static_cast<std::int64_t>(v & 1);
}

/**
 * Fold one DECODED record into the footer CRC in its canonical
 * 5-byte form (little-endian address + type). Checksumming the
 * decoded side, not the varint bytes, keeps the footer meaningful
 * across recompression and pins down the delta/zigzag decode itself.
 */
std::uint32_t
crcRecord(std::uint32_t state, std::uint32_t addr, unsigned ty)
{
    unsigned char rec[5];
    rec[0] = static_cast<unsigned char>(addr & 0xff);
    rec[1] = static_cast<unsigned char>((addr >> 8) & 0xff);
    rec[2] = static_cast<unsigned char>((addr >> 16) & 0xff);
    rec[3] = static_cast<unsigned char>((addr >> 24) & 0xff);
    rec[4] = static_cast<unsigned char>(ty);
    return crc32Update(state, rec, sizeof rec);
}

} // namespace

void
writeCompressedTrace(std::ostream &os, const TraceBuffer &buf)
{
    os.write(kTraceMagic, 4);
    putU32(os, kTraceVersionCompressedCrc);
    putU64(os, buf.size());
    std::uint32_t last[3] = {0, 0, 0};
    std::uint32_t crc = kCrc32Init;
    for (const auto &rec : buf) {
        unsigned ty = static_cast<unsigned>(rec.type);
        std::int64_t delta = static_cast<std::int64_t>(rec.addr) -
            static_cast<std::int64_t>(last[ty]);
        last[ty] = rec.addr;
        putVarint(os, (zigzag(delta) << 2) | ty);
        crc = crcRecord(crc, rec.addr, ty);
    }
    putU32(os, crc32Final(crc));
}

Status
readCompressedTrace(std::istream &is, TraceBuffer &buf)
{
    const std::size_t entry = buf.size();
    auto fail = [&](Status s) {
        buf.truncate(entry);
        return s;
    };

    char magic[4];
    if (!is.read(magic, 4))
        return Status(StatusCode::Truncated,
                      "stream shorter than the 4-byte magic");
    if (std::memcmp(magic, kTraceMagic, 4) != 0) {
        return statusf(StatusCode::BadMagic,
                       "magic bytes %02x%02x%02x%02x are not \"TLCT\"",
                       static_cast<unsigned char>(magic[0]),
                       static_cast<unsigned char>(magic[1]),
                       static_cast<unsigned char>(magic[2]),
                       static_cast<unsigned char>(magic[3]));
    }
    std::uint32_t version;
    if (!getU32(is, version))
        return Status(StatusCode::Truncated,
                      "stream ends inside the version field");
    if (version != kTraceVersionCompressed &&
        version != kTraceVersionCompressedCrc) {
        return statusf(StatusCode::VersionMismatch,
                       "version %u where the compressed reader expects "
                       "%u or %u", version, kTraceVersionCompressed,
                       kTraceVersionCompressedCrc);
    }
    const bool hasFooter = version == kTraceVersionCompressedCrc;
    std::uint64_t count;
    if (!getU64(is, count))
        return Status(StatusCode::Truncated,
                      "stream ends inside the record count");
    const std::uint64_t remaining = remainingBytes(is);
    // Compressed records are at least one byte each, and version 3
    // owes a 4-byte footer on top.
    const std::uint64_t overhead = hasFooter ? 4 : 0;
    if (remaining != kUnknownRemaining && remaining < overhead) {
        return Status(StatusCode::Truncated,
                      "stream ends inside the CRC footer");
    }
    if (remaining != kUnknownRemaining &&
        count > remaining - overhead) {
        return statusf(StatusCode::CountTooLarge,
                       "record count %llu exceeds the %llu bytes that "
                       "remain (compressed records are >= 1 byte)",
                       static_cast<unsigned long long>(count),
                       static_cast<unsigned long long>(remaining));
    }
    buf.reserve(entry + clampedReserve(count, remaining, 1));
    std::uint32_t last[3] = {0, 0, 0};
    std::uint32_t crc = kCrc32Init;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t word;
        Status s = getVarint(is, word);
        if (!s.ok()) {
            return fail(s.withContext(
                "record " + std::to_string(i) + " of " +
                std::to_string(count)));
        }
        unsigned ty = static_cast<unsigned>(word & 3);
        if (ty > 2) {
            return fail(statusf(
                StatusCode::TypeOutOfRange,
                "record %llu has reference type %u (expected 0..2)",
                static_cast<unsigned long long>(i), ty));
        }
        std::int64_t delta = unzigzag(word >> 2);
        std::uint32_t addr = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(last[ty]) + delta);
        last[ty] = addr;
        buf.append(addr, static_cast<RefType>(ty));
        if (hasFooter)
            crc = crcRecord(crc, addr, ty);
    }
    if (hasFooter) {
        std::uint32_t want;
        if (!getU32(is, want)) {
            return fail(Status(StatusCode::Truncated,
                               "stream ends inside the CRC footer"));
        }
        std::uint32_t got = crc32Final(crc);
        if (want != got) {
            return fail(statusf(
                StatusCode::ChecksumMismatch,
                "CRC footer 0x%08x does not match 0x%08x computed "
                "over the %llu decoded records", want, got,
                static_cast<unsigned long long>(count)));
        }
    }
    return Status();
}

void
writeTextTrace(std::ostream &os, const TraceBuffer &buf)
{
    for (const auto &rec : buf) {
        os << refTypeChar(rec.type) << " 0x" << std::hex << rec.addr
           << std::dec << '\n';
    }
}

Status
readTextTrace(std::istream &is, TraceBuffer &buf)
{
    const std::size_t entry = buf.size();
    auto fail = [&](Status s) {
        buf.truncate(entry);
        return s;
    };

    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char tc;
        std::string addr_str;
        if (!(ls >> tc >> addr_str)) {
            return fail(statusf(StatusCode::ParseError,
                                "line %zu: expected \"<type> <address>\"",
                                lineno));
        }
        RefType type;
        if (!refTypeFromChar(tc, type)) {
            return fail(statusf(
                StatusCode::ParseError,
                "line %zu: unknown reference type '%c' (expected i/l/s)",
                lineno, tc));
        }
        char *end = nullptr;
        unsigned long addr = std::strtoul(addr_str.c_str(), &end, 0);
        if (end == addr_str.c_str() || *end != '\0') {
            return fail(statusf(StatusCode::ParseError,
                                "line %zu: bad address '%s'", lineno,
                                addr_str.c_str()));
        }
        buf.append(static_cast<std::uint32_t>(addr), type);
    }
    return Status();
}

namespace {

/** Trace-reader metrics, registered once and shared by all sites. */
struct TraceIoMetrics
{
    MetricCounter &files;
    MetricCounter &records;
    MetricCounter &bytes;
    MetricCounter &errors;

    static TraceIoMetrics &get()
    {
        static TraceIoMetrics m{
            MetricsRegistry::global().counter("trace.load.files"),
            MetricsRegistry::global().counter("trace.load.records"),
            MetricsRegistry::global().counter("trace.load.bytes"),
            MetricsRegistry::global().counter("trace.load.errors"),
        };
        return m;
    }
};

/** Tick the load counters for one loadTraceFile outcome. */
void
recordLoad(const Status &s, std::size_t records_added,
           std::uintmax_t bytes)
{
    TraceIoMetrics &m = TraceIoMetrics::get();
    if (!s.ok()) {
        m.errors.inc();
        return;
    }
    m.files.inc();
    m.records.inc(records_added);
    m.bytes.inc(bytes);
}

} // namespace

Status
loadTraceFile(const std::string &path, TraceBuffer &buf)
{
    const std::size_t entry_records = buf.size();
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        TraceIoMetrics::get().errors.inc();
        return statusf(StatusCode::IoError,
                       "cannot open trace file '%s'", path.c_str());
    }
    is.seekg(0, std::ios::end);
    std::streamoff file_bytes = is.tellg();
    is.seekg(0);
    char magic[4];
    if (is.read(magic, 4) && std::memcmp(magic, kTraceMagic, 4) == 0) {
        std::uint32_t version = 0;
        if (!getU32(is, version)) {
            TraceIoMetrics::get().errors.inc();
            return statusf(StatusCode::Truncated,
                           "'%s': file ends inside the binary trace "
                           "header", path.c_str());
        }
        is.seekg(0);
        Status s;
        if (version == kTraceVersionCompressed ||
            version == kTraceVersionCompressedCrc)
            s = readCompressedTrace(is, buf);
        else if (version == kTraceVersion)
            s = readBinaryTrace(is, buf);
        else {
            TraceIoMetrics::get().errors.inc();
            return statusf(StatusCode::VersionMismatch,
                           "'%s': unsupported trace version %u "
                           "(expected %u, %u or %u)", path.c_str(),
                           version, kTraceVersion,
                           kTraceVersionCompressed,
                           kTraceVersionCompressedCrc);
        }
        recordLoad(s, buf.size() - entry_records,
                   file_bytes > 0
                       ? static_cast<std::uintmax_t>(file_bytes)
                       : 0);
        return s.withContext("'" + path + "'");
    }
    is.clear();
    is.seekg(0);
    Status s = readTextTrace(is, buf);
    recordLoad(s, buf.size() - entry_records,
               file_bytes > 0 ? static_cast<std::uintmax_t>(file_bytes)
                              : 0);
    return s.withContext("'" + path + "' (text)");
}

Status
saveTraceFile(const std::string &path, const TraceBuffer &buf,
              bool compressed)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        return statusf(StatusCode::IoError,
                       "cannot open trace file '%s' for writing",
                       path.c_str());
    }
    if (compressed)
        writeCompressedTrace(os, buf);
    else
        writeBinaryTrace(os, buf);
    if (!os.good()) {
        return statusf(StatusCode::IoError,
                       "write to trace file '%s' failed", path.c_str());
    }
    return Status();
}

} // namespace tlc
