/**
 * @file
 * Trace file I/O implementation.
 */

#include "io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace tlc {

const char kTraceMagic[4] = {'T', 'L', 'C', 'T'};

namespace {

void
putU32(std::ostream &os, std::uint32_t v)
{
    char b[4];
    b[0] = static_cast<char>(v & 0xff);
    b[1] = static_cast<char>((v >> 8) & 0xff);
    b[2] = static_cast<char>((v >> 16) & 0xff);
    b[3] = static_cast<char>((v >> 24) & 0xff);
    os.write(b, 4);
}

bool
getU32(std::istream &is, std::uint32_t &v)
{
    unsigned char b[4];
    if (!is.read(reinterpret_cast<char *>(b), 4))
        return false;
    v = static_cast<std::uint32_t>(b[0]) |
        (static_cast<std::uint32_t>(b[1]) << 8) |
        (static_cast<std::uint32_t>(b[2]) << 16) |
        (static_cast<std::uint32_t>(b[3]) << 24);
    return true;
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    putU32(os, static_cast<std::uint32_t>(v & 0xffffffffu));
    putU32(os, static_cast<std::uint32_t>(v >> 32));
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    std::uint32_t lo, hi;
    if (!getU32(is, lo) || !getU32(is, hi))
        return false;
    v = (static_cast<std::uint64_t>(hi) << 32) | lo;
    return true;
}

} // namespace

void
writeBinaryTrace(std::ostream &os, const TraceBuffer &buf)
{
    os.write(kTraceMagic, 4);
    putU32(os, kTraceVersion);
    putU64(os, buf.size());
    for (const auto &rec : buf) {
        putU32(os, rec.addr);
        char t = static_cast<char>(rec.type);
        os.write(&t, 1);
    }
}

bool
readBinaryTrace(std::istream &is, TraceBuffer &buf)
{
    char magic[4];
    if (!is.read(magic, 4) || std::memcmp(magic, kTraceMagic, 4) != 0)
        return false;
    std::uint32_t version;
    if (!getU32(is, version) || version != kTraceVersion) {
        warn("unsupported trace version");
        return false;
    }
    std::uint64_t count;
    if (!getU64(is, count))
        return false;
    buf.reserve(buf.size() + count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint32_t addr;
        char t;
        if (!getU32(is, addr) || !is.read(&t, 1))
            return false;
        if (t < 0 || t > 2)
            return false;
        buf.append(addr, static_cast<RefType>(t));
    }
    return true;
}

namespace {

void
putVarint(std::ostream &os, std::uint64_t v)
{
    while (v >= 0x80) {
        char b = static_cast<char>((v & 0x7f) | 0x80);
        os.write(&b, 1);
        v >>= 7;
    }
    char b = static_cast<char>(v);
    os.write(&b, 1);
}

bool
getVarint(std::istream &is, std::uint64_t &v)
{
    v = 0;
    unsigned shift = 0;
    for (;;) {
        char c;
        if (!is.read(&c, 1) || shift > 63)
            return false;
        unsigned char b = static_cast<unsigned char>(c);
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return true;
        shift += 7;
    }
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
        -static_cast<std::int64_t>(v & 1);
}

} // namespace

void
writeCompressedTrace(std::ostream &os, const TraceBuffer &buf)
{
    os.write(kTraceMagic, 4);
    putU32(os, kTraceVersionCompressed);
    putU64(os, buf.size());
    std::uint32_t last[3] = {0, 0, 0};
    for (const auto &rec : buf) {
        unsigned ty = static_cast<unsigned>(rec.type);
        std::int64_t delta = static_cast<std::int64_t>(rec.addr) -
            static_cast<std::int64_t>(last[ty]);
        last[ty] = rec.addr;
        putVarint(os, (zigzag(delta) << 2) | ty);
    }
}

bool
readCompressedTrace(std::istream &is, TraceBuffer &buf)
{
    char magic[4];
    if (!is.read(magic, 4) || std::memcmp(magic, kTraceMagic, 4) != 0)
        return false;
    std::uint32_t version;
    if (!getU32(is, version) || version != kTraceVersionCompressed)
        return false;
    std::uint64_t count;
    if (!getU64(is, count))
        return false;
    buf.reserve(buf.size() + count);
    std::uint32_t last[3] = {0, 0, 0};
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t word;
        if (!getVarint(is, word))
            return false;
        unsigned ty = static_cast<unsigned>(word & 3);
        if (ty > 2)
            return false;
        std::int64_t delta = unzigzag(word >> 2);
        std::uint32_t addr = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(last[ty]) + delta);
        last[ty] = addr;
        buf.append(addr, static_cast<RefType>(ty));
    }
    return true;
}

void
writeTextTrace(std::ostream &os, const TraceBuffer &buf)
{
    for (const auto &rec : buf) {
        os << refTypeChar(rec.type) << " 0x" << std::hex << rec.addr
           << std::dec << '\n';
    }
}

bool
readTextTrace(std::istream &is, TraceBuffer &buf)
{
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char tc;
        std::string addr_str;
        if (!(ls >> tc >> addr_str))
            return false;
        RefType type;
        if (!refTypeFromChar(tc, type))
            return false;
        char *end = nullptr;
        unsigned long addr = std::strtoul(addr_str.c_str(), &end, 0);
        if (end == addr_str.c_str() || *end != '\0')
            return false;
        buf.append(static_cast<std::uint32_t>(addr), type);
    }
    return true;
}

bool
loadTraceFile(const std::string &path, TraceBuffer &buf)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        warn("cannot open trace file '%s'", path.c_str());
        return false;
    }
    char magic[4];
    if (is.read(magic, 4) && std::memcmp(magic, kTraceMagic, 4) == 0) {
        std::uint32_t version = 0;
        getU32(is, version);
        is.seekg(0);
        if (version == kTraceVersionCompressed)
            return readCompressedTrace(is, buf);
        return readBinaryTrace(is, buf);
    }
    is.clear();
    is.seekg(0);
    return readTextTrace(is, buf);
}

bool
saveTraceFile(const std::string &path, const TraceBuffer &buf,
              bool compressed)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        warn("cannot open trace file '%s' for writing", path.c_str());
        return false;
    }
    if (compressed)
        writeCompressedTrace(os, buf);
    else
        writeBinaryTrace(os, buf);
    return os.good();
}

} // namespace tlc
