/**
 * @file
 * Memory-reference trace records.
 *
 * The paper drives its cache simulator with long address traces
 * (Table 1). A record is one memory reference: an instruction fetch,
 * a load, or a store. Addresses are 32-bit physical byte addresses
 * (the paper assumes physically-addressed caches).
 */

#ifndef TLC_TRACE_RECORD_HH
#define TLC_TRACE_RECORD_HH

#include <cstdint>

namespace tlc {

/** Kind of memory reference. */
enum class RefType : std::uint8_t {
    Instr = 0, ///< instruction fetch
    Load  = 1, ///< data read
    Store = 2  ///< data write
};

/** True for loads and stores. */
constexpr bool
isData(RefType t)
{
    return t != RefType::Instr;
}

/** One memory reference. */
struct TraceRecord
{
    std::uint32_t addr; ///< byte address
    RefType type;       ///< reference kind

    bool operator==(const TraceRecord &) const = default;
};

/** Single-character mnemonic used by the text trace format. */
char refTypeChar(RefType t);

/** Inverse of refTypeChar; returns false on unknown characters. */
bool refTypeFromChar(char c, RefType &out);

} // namespace tlc

#endif // TLC_TRACE_RECORD_HH
