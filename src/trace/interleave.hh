/**
 * @file
 * Multiprogrammed trace interleaving.
 *
 * The paper scopes multiprogramming out ("Effects of
 * multiprogramming and system references were beyond the scope of
 * this study", §2.2). This module supplies the machinery to put it
 * back in: several workload traces are interleaved in round-robin
 * quanta, with each process placed in a disjoint address-space
 * slice, so the cache-size sensitivity to context-switch rate can
 * be measured (cf. Mogul & Borg, "The Effect of Context Switches on
 * Cache Performance", WRL TN-16).
 */

#ifndef TLC_TRACE_INTERLEAVE_HH
#define TLC_TRACE_INTERLEAVE_HH

#include <vector>

#include "trace/buffer.hh"

namespace tlc {

/**
 * Interleave up to four traces in round-robin quanta.
 *
 * Each process's addresses are offset into a disjoint 1 GB slice
 * (pid << 30) so physically-addressed caches see no sharing between
 * processes. Traces shorter than needed wrap around.
 *
 * @param traces       the per-process reference streams (1..4)
 * @param quantum_refs references per scheduling quantum
 * @param total_refs   length of the interleaved result
 */
TraceBuffer interleaveTraces(const std::vector<const TraceBuffer *> &traces,
                             std::uint64_t quantum_refs,
                             std::uint64_t total_refs);

} // namespace tlc

#endif // TLC_TRACE_INTERLEAVE_HH
