/**
 * @file
 * Concrete reference-stream generators.
 *
 * These are the building blocks from which the seven SPEC89 workload
 * models are composed. Each captures one canonical access pattern:
 *
 *  - SequentialStream: unit-stride sweeps over large arrays
 *    (tomcatv's grids, eqntott's bit vectors);
 *  - StackDistStream: LRU-stack-distance-driven references over a
 *    heap region (gcc's and li's dynamic data);
 *  - ZipfStream: skewed random references over a table region
 *    (symbol tables, hash tables);
 *  - PointerChaseStream: a fixed random-permutation walk (linked
 *    structures with no spatial locality);
 *  - LoopCodeStream: instruction fetch with functions, basic blocks,
 *    and loops (every benchmark's code).
 */

#ifndef TLC_TRACE_STREAMS_HH
#define TLC_TRACE_STREAMS_HH

#include <cstdint>
#include <vector>

#include "trace/stream.hh"
#include "util/random.hh"

namespace tlc {

/**
 * Unit-stride (or fixed-stride) sweep over one or more equal-sized
 * arrays, switching arrays after each full pass, optionally
 * revisiting the previous few elements (row reuse, as in stencil
 * codes). Capacity-bound: misses in any cache smaller than the
 * total footprint.
 */
class SequentialStream : public RefStream
{
  public:
    /**
     * @param base        byte address of the first array
     * @param array_bytes size of each array
     * @param num_arrays  arrays visited round-robin each "iteration"
     * @param stride      bytes between consecutive elements
     * @param reuse_prob  probability of re-referencing a recent
     *                    element instead of advancing
     * @param reuse_window how far back (elements) reuse may reach
     * @param seed        RNG seed
     */
    SequentialStream(std::uint32_t base, std::uint32_t array_bytes,
                     unsigned num_arrays, unsigned stride,
                     double reuse_prob, unsigned reuse_window,
                     std::uint64_t seed);

    std::uint32_t next() override;

  private:
    std::uint32_t base_;
    std::uint32_t arrayBytes_;
    unsigned numArrays_;
    unsigned stride_;
    double reuseProb_;
    unsigned reuseWindow_;
    unsigned curArray_ = 0;
    std::uint32_t offset_ = 0;
    Pcg32 rng_;
};

/**
 * LRU-stack-distance generator. Maintains an explicit LRU stack of
 * line-granular addresses within a region; each reference draws a
 * stack depth from a two-component mixture (geometric near-top plus
 * Zipf heavy tail), or touches a brand-new line with probability
 * newProb. This gives a directly-controllable miss-rate-vs-capacity
 * curve while still producing concrete conflicting addresses.
 */
class StackDistStream : public RefStream
{
  public:
    /**
     * @param base         region base address
     * @param region_bytes region size (stack never grows past this)
     * @param granularity  bytes per distinct object (>= 4)
     * @param new_prob     probability of touching a fresh object
     * @param geom_p       geometric( p ) component parameter
     * @param geom_weight  weight of the geometric component
     * @param zipf_s       Zipf exponent of the tail component
     * @param seed         RNG seed
     */
    StackDistStream(std::uint32_t base, std::uint32_t region_bytes,
                    unsigned granularity, double new_prob, double geom_p,
                    double geom_weight, double zipf_s, std::uint64_t seed);

    std::uint32_t next() override;

    /** Number of distinct objects touched so far. */
    std::size_t stackSize() const { return stack_.size(); }

  private:
    std::uint32_t base_;
    std::uint32_t maxObjects_;
    unsigned granularity_;
    double newProb_;
    double geomP_;
    double geomWeight_;
    double zipfS_;
    std::uint32_t nextFresh_ = 0;
    std::vector<std::uint32_t> stack_; ///< object ids, MRU first
    Pcg32 rng_;
};

/**
 * Zipf-skewed independent references over a region: object k is
 * touched with probability proportional to 1/(k+1)^s, with object
 * ranks scattered over the region by a fixed pseudo-random
 * permutation so hot objects are not spatially adjacent.
 */
class ZipfStream : public RefStream
{
  public:
    ZipfStream(std::uint32_t base, std::uint32_t region_bytes,
               unsigned granularity, double s, std::uint64_t seed);

    std::uint32_t next() override;

  private:
    std::uint32_t base_;
    unsigned granularity_;
    std::uint32_t numObjects_;
    double s_;
    std::uint32_t scatterMul_; ///< odd multiplier scattering ranks
    Pcg32 rng_;
};

/**
 * Pointer chase: a walk of a fixed random permutation cycle over the
 * region's lines. No spatial locality, reuse distance equal to the
 * region size — the worst case for any cache smaller than the region.
 */
class PointerChaseStream : public RefStream
{
  public:
    PointerChaseStream(std::uint32_t base, std::uint32_t region_bytes,
                       unsigned granularity, std::uint64_t seed);

    std::uint32_t next() override;

  private:
    std::uint32_t base_;
    unsigned granularity_;
    std::vector<std::uint32_t> nextIdx_; ///< permutation cycle
    std::uint32_t cur_ = 0;
};

/** Parameters of a LoopCodeStream. */
struct LoopCodeParams
{
    std::uint32_t base = 0x00400000;   ///< code segment base
    std::uint32_t codeBytes = 64 * 1024; ///< static code footprint
    unsigned numFuncs = 64;            ///< functions in the footprint
    double zipfS = 1.0;                ///< function popularity skew
    double loopStartProb = 0.02;       ///< per-instr chance a loop begins
    unsigned avgLoopBody = 16;         ///< mean loop body, instructions
    unsigned avgLoopIters = 8;         ///< mean loop trip count
    double callProb = 0.005;           ///< per-instr chance of a call
};

/**
 * Instruction-fetch stream: sequential execution through functions
 * with geometric loops and Zipf-popular function calls. The set of
 * frequently-executed functions forms the instruction working set.
 */
class LoopCodeStream : public RefStream
{
  public:
    LoopCodeStream(const LoopCodeParams &params, std::uint64_t seed);

    std::uint32_t next() override;

  private:
    void switchFunction();

    LoopCodeParams p_;
    std::uint32_t funcInstrs_;  ///< instructions per function
    std::uint32_t curFunc_ = 0;
    std::uint32_t pc_ = 0;      ///< instruction index within function
    // Active innermost loop (no nesting; nesting adds little for
    // I-cache behaviour at these footprints).
    bool inLoop_ = false;
    std::uint32_t loopStart_ = 0;
    std::uint32_t loopEnd_ = 0;
    std::uint32_t itersLeft_ = 0;
    Pcg32 rng_;
};

} // namespace tlc

#endif // TLC_TRACE_STREAMS_HH
