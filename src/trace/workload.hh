/**
 * @file
 * The seven SPEC89 workload models of the paper (Table 1): gcc1,
 * espresso, fpppp, doduc, li, eqntott, tomcatv.
 *
 * The original study drove its simulator with real address traces
 * captured on a DECStation (30 M to 2.9 G references, Table 1).
 * Those traces are not available, so each benchmark is modelled as a
 * deterministic synthetic reference mixture (see streams.hh) whose
 * parameters are calibrated to the per-benchmark behaviour the paper
 * reports: espresso 1.00 % and eqntott 1.49 % miss rate at 32 KB,
 * tomcatv 10.9 % and flat with size, gcc/fpppp rewarding large
 * caches, and all TPI minima falling between 8 KB and 128 KB.
 * Instruction/data reference ratios follow Table 1 exactly.
 */

#ifndef TLC_TRACE_WORKLOAD_HH
#define TLC_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/buffer.hh"
#include "trace/stream.hh"
#include "util/random.hh"
#include "util/status.hh"

namespace tlc {

/** The benchmarks of Table 1. */
enum class Benchmark {
    Gcc1,
    Espresso,
    Fpppp,
    Doduc,
    Li,
    Eqntott,
    Tomcatv
};

/** Static facts about one benchmark (Table 1 of the paper). */
struct WorkloadInfo
{
    Benchmark bench;
    const char *name;
    double paperInstrRefsM; ///< instruction refs in the paper, millions
    double paperDataRefsM;  ///< data refs in the paper, millions

    double paperTotalRefsM() const
    {
        return paperInstrRefsM + paperDataRefsM;
    }
    /** Data references per instruction (preserved by the models). */
    double dataPerInstr() const
    {
        return paperDataRefsM / paperInstrRefsM;
    }
};

/**
 * A reference mixture: one instruction stream plus weighted data
 * streams, interleaved as a processor would issue them.
 */
class WorkloadMixer
{
  public:
    WorkloadMixer(std::unique_ptr<RefStream> code, double data_per_instr,
                  double store_frac, std::uint64_t seed);

    /** Add a data stream chosen with the given relative weight. */
    void addDataStream(std::unique_ptr<RefStream> stream, double weight);

    /** Append @p total_refs records (instructions + data) to @p buf. */
    void generate(TraceBuffer &buf, std::uint64_t total_refs);

  private:
    std::unique_ptr<RefStream> code_;
    std::vector<std::unique_ptr<RefStream>> data_;
    std::vector<double> cumWeight_;
    double dataPerInstr_;
    double storeFrac_;
    Pcg32 rng_;
};

/** Factory and metadata for the seven benchmark models. */
class Workloads
{
  public:
    /** All benchmarks, in Table 1 order. */
    static const std::vector<Benchmark> &all();

    /** Table 1 metadata. */
    static const WorkloadInfo &info(Benchmark b);

    /** Benchmark by name ("gcc1", ...); fatal on unknown names. */
    static Benchmark byName(const std::string &name);

    /**
     * Benchmark by name, reporting unknown names as an UnknownName
     * Status instead of exiting (for fail-soft pipelines).
     */
    static Expected<Benchmark> tryByName(const std::string &name);

    /**
     * Build the calibrated mixer for @p b. Exposed so tests can
     * inspect stream composition; most callers use generate().
     * @param variant selects an alternative random stream with the
     *        same calibrated structure (for sensitivity analysis);
     *        variant 0 is the canonical trace.
     */
    static std::unique_ptr<WorkloadMixer> makeMixer(Benchmark b,
                                                    unsigned variant = 0);

    /**
     * Generate @p total_refs references of benchmark @p b. Fully
     * deterministic: same benchmark + length + variant => same trace.
     */
    static TraceBuffer generate(Benchmark b, std::uint64_t total_refs,
                                unsigned variant = 0);

    /**
     * Default trace length per benchmark: 4 M references times the
     * TLC_TRACE_SCALE environment variable (if set).
     */
    static std::uint64_t defaultTraceLength();
};

} // namespace tlc

#endif // TLC_TRACE_WORKLOAD_HH
