/**
 * @file
 * Trace buffer implementation.
 */

#include "buffer.hh"

#include "util/logging.hh"

namespace tlc {

void
TraceBuffer::append(TraceRecord rec)
{
    records_.push_back(rec);
    switch (rec.type) {
      case RefType::Instr:
        ++instr_;
        break;
      case RefType::Load:
        ++loads_;
        break;
      case RefType::Store:
        ++stores_;
        break;
    }
}

void
TraceBuffer::append(std::uint32_t addr, RefType type)
{
    append(TraceRecord{addr, type});
}

void
TraceBuffer::truncate(std::size_t n)
{
    tlc_assert(n <= records_.size(), "truncate(%zu) beyond size %zu", n,
               records_.size());
    while (records_.size() > n) {
        switch (records_.back().type) {
          case RefType::Instr:
            --instr_;
            break;
          case RefType::Load:
            --loads_;
            break;
          case RefType::Store:
            --stores_;
            break;
        }
        records_.pop_back();
    }
}

void
TraceBuffer::clear()
{
    records_.clear();
    instr_ = loads_ = stores_ = 0;
}

} // namespace tlc
