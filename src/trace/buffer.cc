/**
 * @file
 * Trace buffer implementation.
 */

#include "buffer.hh"

namespace tlc {

void
TraceBuffer::append(TraceRecord rec)
{
    records_.push_back(rec);
    switch (rec.type) {
      case RefType::Instr:
        ++instr_;
        break;
      case RefType::Load:
        ++loads_;
        break;
      case RefType::Store:
        ++stores_;
        break;
    }
}

void
TraceBuffer::append(std::uint32_t addr, RefType type)
{
    append(TraceRecord{addr, type});
}

void
TraceBuffer::clear()
{
    records_.clear();
    instr_ = loads_ = stores_ = 0;
}

} // namespace tlc
