/**
 * @file
 * Workload model construction and generation.
 *
 * Address-space layout used by all models (32-bit physical):
 *   0x0040_0000  code segment
 *   0x1004_0000  heap region (stack-distance streams)
 *   0x2008_0000  large-array region (sequential sweeps)
 *   0x300c_0000  table region (Zipf / pointer-chase streams)
 * (see the comment at kCodeBase for why the bases are staggered)
 */

#include "workload.hh"

#include <cstdlib>

#include "trace/streams.hh"
#include "util/logging.hh"

namespace tlc {

namespace {

// Region bases are offset by distinct multiples of 256 KB so that
// large physically-indexed structures (e.g. a board-level cache) do
// not see every region aliasing to the same indexes. Offsets that
// are multiples of 256 KB leave the index bits of every cache up to
// 256 KB — the paper's whole design space — untouched.
constexpr std::uint32_t kCodeBase = 0x00400000;
constexpr std::uint32_t kHeapBase = 0x10040000;
constexpr std::uint32_t kArrayBase = 0x20080000;
constexpr std::uint32_t kTableBase = 0x300c0000;

// Table 1 of the paper.
const WorkloadInfo kInfos[] = {
    {Benchmark::Gcc1,     "gcc1",     22.7,   7.2},
    {Benchmark::Espresso, "espresso", 135.3,  31.8},
    {Benchmark::Fpppp,    "fpppp",    244.1,  136.2},
    {Benchmark::Doduc,    "doduc",    283.6,  108.2},
    {Benchmark::Li,       "li",       1247.1, 452.8},
    {Benchmark::Eqntott,  "eqntott",  1484.7, 293.6},
    {Benchmark::Tomcatv,  "tomcatv",  1986.3, 963.6},
};

// Per-benchmark deterministic seeds (arbitrary but fixed); variants
// shift the seed so sensitivity studies get structurally-identical
// but statistically-independent traces.
std::uint64_t
benchSeed(Benchmark b, unsigned variant)
{
    return 0x9e3779b97f4a7c15ULL +
        0x1000 * static_cast<std::uint64_t>(b) +
        0xabcd0000ULL * variant;
}

} // namespace

// ---------------------------------------------------------------------
// WorkloadMixer
// ---------------------------------------------------------------------

WorkloadMixer::WorkloadMixer(std::unique_ptr<RefStream> code,
                             double data_per_instr, double store_frac,
                             std::uint64_t seed)
    : code_(std::move(code)), dataPerInstr_(data_per_instr),
      storeFrac_(store_frac), rng_(seed, 0x313)
{
    tlc_assert(code_ != nullptr, "mixer needs an instruction stream");
    tlc_assert(data_per_instr >= 0.0 && data_per_instr <= 2.0,
               "implausible data/instr ratio %f", data_per_instr);
}

void
WorkloadMixer::addDataStream(std::unique_ptr<RefStream> stream,
                             double weight)
{
    tlc_assert(weight > 0.0, "stream weight must be positive");
    double prev = cumWeight_.empty() ? 0.0 : cumWeight_.back();
    data_.push_back(std::move(stream));
    cumWeight_.push_back(prev + weight);
}

void
WorkloadMixer::generate(TraceBuffer &buf, std::uint64_t total_refs)
{
    tlc_assert(!data_.empty() || dataPerInstr_ == 0.0,
               "data/instr ratio set but no data streams added");
    buf.reserve(buf.size() + total_refs);
    std::uint64_t end = buf.size() + total_refs;
    double wtot = cumWeight_.empty() ? 0.0 : cumWeight_.back();
    while (buf.size() < end) {
        buf.append(code_->next(), RefType::Instr);
        if (buf.size() >= end)
            break;
        if (!data_.empty() && rng_.nextDouble() < dataPerInstr_) {
            double pick = rng_.nextDouble() * wtot;
            std::size_t idx = 0;
            while (idx + 1 < cumWeight_.size() && pick > cumWeight_[idx])
                ++idx;
            RefType t = (rng_.nextDouble() < storeFrac_) ?
                RefType::Store : RefType::Load;
            buf.append(data_[idx]->next(), t);
        }
    }
}

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

const std::vector<Benchmark> &
Workloads::all()
{
    static const std::vector<Benchmark> v = {
        Benchmark::Gcc1, Benchmark::Espresso, Benchmark::Fpppp,
        Benchmark::Doduc, Benchmark::Li, Benchmark::Eqntott,
        Benchmark::Tomcatv,
    };
    return v;
}

const WorkloadInfo &
Workloads::info(Benchmark b)
{
    for (const auto &i : kInfos) {
        if (i.bench == b)
            return i;
    }
    panic("unknown benchmark %d", static_cast<int>(b));
}

Benchmark
Workloads::byName(const std::string &name)
{
    Expected<Benchmark> b = tryByName(name);
    if (!b.ok())
        fatal("%s", b.status().message().c_str());
    return b.value();
}

Expected<Benchmark>
Workloads::tryByName(const std::string &name)
{
    for (const auto &i : kInfos) {
        if (name == i.name)
            return i.bench;
    }
    return statusf(StatusCode::UnknownName,
                   "unknown benchmark '%s' (expected gcc1, espresso, "
                   "fpppp, doduc, li, eqntott, or tomcatv)", name.c_str());
}

std::unique_ptr<WorkloadMixer>
Workloads::makeMixer(Benchmark b, unsigned variant)
{
    const WorkloadInfo &wi = info(b);
    const std::uint64_t seed = benchSeed(b, variant);
    const double dpi = wi.dataPerInstr();

    switch (b) {
      case Benchmark::Gcc1: {
        // Large, flat-profiled compiler code; heap data with a long
        // stack-distance tail. Rewards caches up to ~128 KB.
        LoopCodeParams code;
        code.base = kCodeBase;
        code.codeBytes = 160 * 1024;
        code.numFuncs = 160;
        code.zipfS = 1.15;
        code.loopStartProb = 0.015;
        code.avgLoopBody = 12;
        code.avgLoopIters = 6;
        code.callProb = 0.012;
        auto mixer = std::make_unique<WorkloadMixer>(
            std::make_unique<LoopCodeStream>(code, seed), dpi, 0.35, seed);
        mixer->addDataStream(
            std::make_unique<StackDistStream>(
                kHeapBase, 320 * 1024, 32, 0.0025, 0.06, 0.72, 0.95,
                seed + 1),
            0.85);
        mixer->addDataStream(
            std::make_unique<ZipfStream>(kTableBase, 256 * 1024, 16, 1.1,
                                         seed + 2),
            0.15);
        return mixer;
      }

      case Benchmark::Espresso: {
        // Tight logic-minimiser loops over a small working set;
        // the paper quotes a 1.00 % miss rate at 32 KB.
        LoopCodeParams code;
        code.base = kCodeBase;
        code.codeBytes = 40 * 1024;
        code.numFuncs = 40;
        code.zipfS = 1.30;
        code.loopStartProb = 0.03;
        code.avgLoopBody = 14;
        code.avgLoopIters = 16;
        code.callProb = 0.006;
        auto mixer = std::make_unique<WorkloadMixer>(
            std::make_unique<LoopCodeStream>(code, seed), dpi, 0.25, seed);
        mixer->addDataStream(
            std::make_unique<StackDistStream>(
                kHeapBase, 160 * 1024, 32, 0.002, 0.10, 0.80, 1.05,
                seed + 1),
            0.97);
        mixer->addDataStream(
            std::make_unique<PointerChaseStream>(kTableBase, 512 * 1024,
                                                 16, seed + 2),
            0.03);
        return mixer;
      }

      case Benchmark::Fpppp: {
        // Famous for enormous straight-line basic blocks: few, very
        // large functions, little looping. The instruction working
        // set only fits at 64-128 KB.
        LoopCodeParams code;
        code.base = kCodeBase;
        code.codeBytes = 120 * 1024;
        code.numFuncs = 10;
        code.zipfS = 0.55;
        code.loopStartProb = 0.002;
        code.avgLoopBody = 24;
        code.avgLoopIters = 3;
        code.callProb = 0.0008;
        auto mixer = std::make_unique<WorkloadMixer>(
            std::make_unique<LoopCodeStream>(code, seed), dpi, 0.40, seed);
        mixer->addDataStream(
            std::make_unique<StackDistStream>(
                kHeapBase, 96 * 1024, 64, 0.0008, 0.09, 0.85, 1.10,
                seed + 1),
            1.0);
        return mixer;
      }

      case Benchmark::Doduc: {
        // Monte-Carlo nuclear-reactor simulation: mid-sized FP code,
        // mid-sized data working set.
        LoopCodeParams code;
        code.base = kCodeBase;
        code.codeBytes = 96 * 1024;
        code.numFuncs = 64;
        code.zipfS = 0.90;
        code.loopStartProb = 0.012;
        code.avgLoopBody = 18;
        code.avgLoopIters = 8;
        code.callProb = 0.008;
        auto mixer = std::make_unique<WorkloadMixer>(
            std::make_unique<LoopCodeStream>(code, seed), dpi, 0.30, seed);
        mixer->addDataStream(
            std::make_unique<StackDistStream>(
                kHeapBase, 256 * 1024, 32, 0.002, 0.07, 0.70, 0.95,
                seed + 1),
            1.0);
        return mixer;
      }

      case Benchmark::Li: {
        // Lisp interpreter: small hot interpreter core, garbage-
        // collected heap with a moderate tail.
        LoopCodeParams code;
        code.base = kCodeBase;
        code.codeBytes = 48 * 1024;
        code.numFuncs = 48;
        code.zipfS = 1.20;
        code.loopStartProb = 0.02;
        code.avgLoopBody = 10;
        code.avgLoopIters = 5;
        code.callProb = 0.015;
        auto mixer = std::make_unique<WorkloadMixer>(
            std::make_unique<LoopCodeStream>(code, seed), dpi, 0.40, seed);
        mixer->addDataStream(
            std::make_unique<StackDistStream>(
                kHeapBase, 320 * 1024, 32, 0.003, 0.08, 0.72, 0.95,
                seed + 1),
            0.95);
        mixer->addDataStream(
            std::make_unique<PointerChaseStream>(kTableBase, 32 * 1024, 16,
                                                 seed + 2),
            0.05);
        return mixer;
      }

      case Benchmark::Eqntott: {
        // One tiny comparison loop over large bit vectors plus a
        // small hot table; 1.49 % at 32 KB in the paper, and low
        // enough that small caches are preferred.
        LoopCodeParams code;
        code.base = kCodeBase;
        code.codeBytes = 16 * 1024;
        code.numFuncs = 16;
        code.zipfS = 1.40;
        code.loopStartProb = 0.05;
        code.avgLoopBody = 12;
        code.avgLoopIters = 48;
        code.callProb = 0.003;
        auto mixer = std::make_unique<WorkloadMixer>(
            std::make_unique<LoopCodeStream>(code, seed), dpi, 0.20, seed);
        mixer->addDataStream(
            std::make_unique<SequentialStream>(
                kArrayBase, 1 * 1024 * 1024, 2, 4, 0.30, 8, seed + 1),
            0.50);
        mixer->addDataStream(
            std::make_unique<StackDistStream>(
                kHeapBase, 48 * 1024, 32, 0.0008, 0.12, 0.90, 1.20,
                seed + 2),
            0.50);
        return mixer;
      }

      case Benchmark::Tomcatv: {
        // Vectorised mesh generation: trivial code, seven ~0.5 MB
        // grid arrays swept each timestep. 10.9 % at 32 KB, nearly
        // flat with cache size (footprint >> any on-chip cache).
        LoopCodeParams code;
        code.base = kCodeBase;
        code.codeBytes = 12 * 1024;
        code.numFuncs = 6;
        code.zipfS = 0.80;
        code.loopStartProb = 0.06;
        code.avgLoopBody = 20;
        code.avgLoopIters = 64;
        code.callProb = 0.001;
        auto mixer = std::make_unique<WorkloadMixer>(
            std::make_unique<LoopCodeStream>(code, seed), dpi, 0.35, seed);
        mixer->addDataStream(
            std::make_unique<SequentialStream>(
                kArrayBase, 512 * 1024, 7, 8, 0.35, 768, seed + 1),
            1.0);
        return mixer;
      }
    }
    panic("unknown benchmark %d", static_cast<int>(b));
}

TraceBuffer
Workloads::generate(Benchmark b, std::uint64_t total_refs,
                    unsigned variant)
{
    TraceBuffer buf;
    makeMixer(b, variant)->generate(buf, total_refs);
    return buf;
}

std::uint64_t
Workloads::defaultTraceLength()
{
    double scale = 1.0;
    if (const char *env = std::getenv("TLC_TRACE_SCALE")) {
        scale = std::atof(env);
        if (scale <= 0.0)
            scale = 1.0;
    }
    return static_cast<std::uint64_t>(4000000.0 * scale);
}

} // namespace tlc
