/**
 * @file
 * In-memory trace buffer with reference-count bookkeeping.
 */

#ifndef TLC_TRACE_BUFFER_HH
#define TLC_TRACE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"

namespace tlc {

/**
 * A sequence of trace records held in memory, with per-type counts
 * maintained incrementally (the quantities Table 1 of the paper
 * reports per benchmark).
 */
class TraceBuffer
{
  public:
    TraceBuffer() = default;

    void reserve(std::size_t n) { records_.reserve(n); }

    void append(TraceRecord rec);
    void append(std::uint32_t addr, RefType type);

    /**
     * Drop records from the tail until only @p n remain, keeping the
     * per-type counts consistent. Used by the trace readers to roll
     * a partially-appended buffer back to its pre-call size when a
     * read fails part-way through. Asserts when @p n exceeds size().
     */
    void truncate(std::size_t n);

    const std::vector<TraceRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }
    const TraceRecord &operator[](std::size_t i) const
    {
        return records_[i];
    }

    std::uint64_t instrRefs() const { return instr_; }
    std::uint64_t loadRefs() const { return loads_; }
    std::uint64_t storeRefs() const { return stores_; }
    std::uint64_t dataRefs() const { return loads_ + stores_; }
    std::uint64_t totalRefs() const { return records_.size(); }

    void clear();

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

  private:
    std::vector<TraceRecord> records_;
    std::uint64_t instr_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace tlc

#endif // TLC_TRACE_BUFFER_HH
