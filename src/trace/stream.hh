/**
 * @file
 * Abstract memory-reference stream.
 *
 * Workload models (src/trace/workload.cc) are mixtures of concrete
 * streams. Each stream produces an endless sequence of addresses
 * with a particular locality structure.
 */

#ifndef TLC_TRACE_STREAM_HH
#define TLC_TRACE_STREAM_HH

#include <cstdint>

namespace tlc {

/**
 * A source of byte addresses with some locality structure. Streams
 * are deterministic given their construction-time seed.
 */
class RefStream
{
  public:
    virtual ~RefStream() = default;

    /** Produce the next byte address of this stream. */
    virtual std::uint32_t next() = 0;
};

} // namespace tlc

#endif // TLC_TRACE_STREAM_HH
