/**
 * @file
 * Umbrella header: the whole public API of the two-level-caching
 * library. Include this (or the individual module headers) and link
 * against tlc_core.
 *
 * The library reproduces Jouppi & Wilton, "Tradeoffs in Two-Level
 * On-Chip Caching" (WRL 93/3 / ISCA 1994):
 *
 *   - trace/   synthetic SPEC89 workload models, trace buffers and
 *              file formats, multiprogrammed interleaving;
 *   - cache/   the trace-driven simulator: single-level, two-level
 *              (inclusive / strict-inclusive / EXCLUSIVE — the
 *              paper's contribution), victim caches, stream
 *              buffers, board-level systems, 3C classification;
 *   - timing/  the Wilton-Jouppi analytical access/cycle-time model
 *              with organization search;
 *   - area/    the Mulder register-bit-equivalent area model;
 *   - power/   per-access energy;
 *   - pipeline/ the Section-10 multicycle / non-blocking study;
 *   - vm/      TLB and the page-size translation rule;
 *   - core/    the TPI model and the design-space explorer that
 *              fuses everything into the paper's figures.
 */

#ifndef TLC_TLC_HH
#define TLC_TLC_HH

#include "area/area_model.hh"
#include "cache/board_system.hh"
#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/params.hh"
#include "cache/single_level.hh"
#include "cache/stream_buffer.hh"
#include "cache/three_c.hh"
#include "cache/two_level.hh"
#include "cache/victim_cache.hh"
#include "core/evaluator.hh"
#include "core/explorer.hh"
#include "core/system_config.hh"
#include "core/tpi.hh"
#include "pipeline/pipeline.hh"
#include "power/energy_model.hh"
#include "timing/access_time.hh"
#include "timing/organization.hh"
#include "timing/technology.hh"
#include "trace/buffer.hh"
#include "trace/interleave.hh"
#include "trace/io.hh"
#include "trace/record.hh"
#include "trace/stream.hh"
#include "trace/streams.hh"
#include "trace/workload.hh"
#include "util/args.hh"
#include "util/envelope.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/plot.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "vm/tlb.hh"

#endif // TLC_TLC_HH
