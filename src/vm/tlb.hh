/**
 * @file
 * TLB model for the address-translation experiment.
 *
 * The paper's fourth advantage of two-level on-chip caching (§1):
 * primary caches no larger than the page size can be indexed in
 * parallel with address translation, while a large single-level
 * cache must wait for (or speculate past) the TLB. By the time a
 * primary miss reaches the physically-addressed L2, translation has
 * long finished. This module supplies the TLB reach/miss behaviour
 * and the translation-serialization rule that the experiment driver
 * (bench_translation) prices.
 */

#ifndef TLC_VM_TLB_HH
#define TLC_VM_TLB_HH

#include <cstdint>

#include "cache/cache.hh"
#include "trace/buffer.hh"

namespace tlc {

/** TLB geometry. */
struct TlbParams
{
    std::uint32_t entries = 64;
    std::uint32_t assoc = 0;        ///< 0 = fully associative
    std::uint32_t pageBytes = 4096; ///< minimum page size (§1: 4-8 KB)
    ReplPolicy repl = ReplPolicy::LRU;

    /** Bytes of address space the TLB can map at once. */
    std::uint64_t reachBytes() const
    {
        return static_cast<std::uint64_t>(entries) * pageBytes;
    }
};

/**
 * A translation lookaside buffer, modelled as a cache of page-sized
 * "lines" (one tag per page).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params, std::uint64_t seed = 0x71b);

    /** Translate one reference. @return true on a TLB hit. */
    bool access(std::uint64_t addr);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    double missRate() const
    {
        return accesses_ ?
            static_cast<double>(misses_) / accesses_ : 0.0;
    }

    const TlbParams &params() const { return params_; }
    void resetStats();

    /**
     * §1's rule: can a direct-mapped, virtually-indexed L1 of
     * @p l1_bytes be accessed in parallel with translation? Only
     * when its index bits fit inside the page offset.
     */
    static bool parallelLookupPossible(std::uint64_t l1_bytes,
                                       std::uint32_t page_bytes)
    {
        return l1_bytes <= page_bytes;
    }

  private:
    TlbParams params_;
    Cache tags_;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

/** TLB miss statistics of a whole trace (I and D share one TLB). */
struct TlbRunStats
{
    std::uint64_t refs = 0;
    std::uint64_t misses = 0;
    double missRate() const
    {
        return refs ? static_cast<double>(misses) / refs : 0.0;
    }
};

/** Run a trace through a TLB (first warmup_refs excluded). */
TlbRunStats runTlb(const TlbParams &params, const TraceBuffer &trace,
                   std::uint64_t warmup_refs = 0);

} // namespace tlc

#endif // TLC_VM_TLB_HH
