/**
 * @file
 * TLB implementation.
 */

#include "tlb.hh"

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace tlc {

namespace {

CacheParams
tagParams(const TlbParams &p)
{
    tlc_assert(isPowerOfTwo(p.pageBytes) && p.pageBytes >= 512,
               "bad page size %u", p.pageBytes);
    tlc_assert(p.entries >= 1, "TLB needs entries");
    CacheParams c;
    c.sizeBytes = static_cast<std::uint64_t>(p.entries) * p.pageBytes;
    c.lineBytes = p.pageBytes; // one tag per page
    c.assoc = p.assoc;
    c.repl = p.repl;
    return c;
}

} // namespace

Tlb::Tlb(const TlbParams &params, std::uint64_t seed)
    : params_(params), tags_(tagParams(params), seed)
{
}

bool
Tlb::access(std::uint64_t addr)
{
    ++accesses_;
    if (tags_.lookupAndTouch(addr))
        return true;
    ++misses_;
    tags_.fill(addr);
    return false;
}

void
Tlb::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
}

TlbRunStats
runTlb(const TlbParams &params, const TraceBuffer &trace,
       std::uint64_t warmup_refs)
{
    Tlb tlb(params);
    const auto &recs = trace.records();
    std::uint64_t warm = std::min<std::uint64_t>(warmup_refs,
                                                 recs.size());
    for (std::uint64_t i = 0; i < warm; ++i)
        tlb.access(recs[i].addr);
    tlb.resetStats();
    for (std::uint64_t i = warm; i < recs.size(); ++i)
        tlb.access(recs[i].addr);
    TlbRunStats s;
    s.refs = tlb.accesses();
    s.misses = tlb.misses();
    return s;
}

} // namespace tlc
