/**
 * @file
 * Area model implementation.
 */

#include "area_model.hh"

#include "util/logging.hh"

namespace tlc {

AreaModel::AreaModel(const AreaParams &params)
    : params_(params)
{
}

AreaBreakdown
AreaModel::breakdown(const SramGeometry &g,
                     const ArrayOrganization &data_org,
                     const ArrayOrganization &tag_org, CellType cell) const
{
    const AreaParams &p = params_;
    AreaBreakdown b;

    if (g.fullyAssociative()) {
        // CAM-tagged array (victim buffers, fully-assoc TLBs): the
        // tag store is made of larger compare-capable cells and the
        // comparators are folded into them.
        double entries =
            static_cast<double>(g.sizeBytes / g.blockBytes);
        b.dataCells = entries * 8.0 * g.blockBytes * p.sramCellRbe;
        b.dataPeripheral =
            (entries * p.driverColsPerSubarray +
             8.0 * g.blockBytes * p.senseRowsPerSubarray) *
                p.sramCellRbe +
            p.fixedPerSubarray;
        b.tagCells = entries * (g.tagBits() + kStatusBits) *
            p.camCellRbe;
        b.tagPeripheral = entries * p.driverColsPerSubarray *
            p.camCellRbe;
        b.comparators = 0.0; // folded into the CAM cells
        b.control = (b.dataCells + b.dataPeripheral + b.tagCells +
                     b.tagPeripheral) *
            p.controlFraction;
        if (cell == CellType::DualPorted) {
            double f = p.dualPortFactor;
            b.dataCells *= f;
            b.dataPeripheral *= f;
            b.tagCells *= f;
            b.tagPeripheral *= f;
            b.control *= f;
        }
        return b;
    }

    SubarrayDims dd = SubarrayDims::dataArray(g, data_org);
    SubarrayDims td = SubarrayDims::tagArray(g, tag_org, kStatusBits);
    tlc_assert(dd.valid && td.valid,
               "area model given an invalid organization");

    auto array_area = [&p](const SubarrayDims &d, std::uint32_t subarrays,
                           double &cells, double &peripheral) {
        double core_cells = static_cast<double>(d.rows) * d.cols;
        double padded =
            (static_cast<double>(d.rows) + p.senseRowsPerSubarray) *
            (static_cast<double>(d.cols) + p.driverColsPerSubarray);
        cells = core_cells * subarrays * p.sramCellRbe;
        peripheral = (padded - core_cells) * subarrays * p.sramCellRbe +
            p.fixedPerSubarray * subarrays;
    };

    array_area(dd, data_org.numSubarrays(), b.dataCells, b.dataPeripheral);
    array_area(td, tag_org.numSubarrays(), b.tagCells, b.tagPeripheral);

    // One comparator per way, tagBits wide (6 transistors = 6 x 0.6
    // rbe per bit, paper §5).
    b.comparators = static_cast<double>(g.assoc) * g.tagBits() *
        p.comparatorBitRbe;

    double subtotal = b.dataCells + b.dataPeripheral + b.tagCells +
        b.tagPeripheral + b.comparators;
    b.control = subtotal * p.controlFraction;

    if (cell == CellType::DualPorted) {
        double f = p.dualPortFactor;
        b.dataCells *= f;
        b.dataPeripheral *= f;
        b.tagCells *= f;
        b.tagPeripheral *= f;
        b.comparators *= f;
        b.control *= f;
    }
    return b;
}

double
AreaModel::area(const SramGeometry &g, const ArrayOrganization &data_org,
                const ArrayOrganization &tag_org, CellType cell) const
{
    return breakdown(g, data_org, tag_org, cell).total();
}

} // namespace tlc
