/**
 * @file
 * On-chip cache area model in register-bit equivalents (rbe),
 * reconstructing Mulder, Quach & Flynn (JSSC 1991), the model the
 * paper uses (§2.4).
 *
 * Anchors from the paper and from Mulder:
 *  - a 6-transistor SRAM cell is 0.6 rbe;
 *  - a comparator bit is 6 × 0.6 rbe (quoted in §5);
 *  - peripheral logic (drivers, sense amps, column mux, decoders,
 *    control) is charged per row, per column and per subarray of the
 *    organization chosen by the timing model, reflecting the paper's
 *    remark that performance-optimal organizations increase the
 *    peripheral-to-core ratio;
 *  - calibration target: a pair of 32 KB caches ≈ 500 k rbe (§3).
 */

#ifndef TLC_AREA_AREA_MODEL_HH
#define TLC_AREA_AREA_MODEL_HH

#include "timing/organization.hh"

namespace tlc {

/** RAM cell variants (paper §6). */
enum class CellType {
    SinglePorted6T, ///< 0.6 rbe, one read-or-write port
    DualPorted      ///< 2× area, 2× access bandwidth
};

/** Breakdown of one cache's area, all in rbe. */
struct AreaBreakdown
{
    double dataCells = 0;
    double dataPeripheral = 0;
    double tagCells = 0;
    double tagPeripheral = 0;
    double comparators = 0;
    double control = 0;

    double total() const
    {
        return dataCells + dataPeripheral + tagCells + tagPeripheral +
            comparators + control;
    }
};

/** Tunable constants of the area model (rbe units). */
struct AreaParams
{
    double sramCellRbe = 0.6;    ///< 6T cell (Mulder)
    double camCellRbe = 1.2;     ///< CAM tag cell (compare + store)
    double comparatorBitRbe = 3.6; ///< 6 x 0.6 rbe per tag bit per way
    /** Sense amps + precharge + column mux: height charged per
     *  column of each subarray, in cell-equivalents. */
    double senseRowsPerSubarray = 6.0;
    /** Wordline drivers: width charged per row of each subarray. */
    double driverColsPerSubarray = 3.0;
    /** Decoder + subarray control, per subarray. */
    double fixedPerSubarray = 300.0;
    /** Global control as a fraction of everything else. */
    double controlFraction = 0.02;
    /** Total-area multiplier for dual-ported arrays (paper §6:
     *  "twice the area ... twice the access bandwidth"). */
    double dualPortFactor = 2.0;
};

/**
 * The area model. area() prices one cache given the organization
 * the timing model selected for it.
 */
class AreaModel
{
  public:
    explicit AreaModel(const AreaParams &params = AreaParams{});

    const AreaParams &params() const { return params_; }

    /** Detailed area of one cache array. */
    AreaBreakdown breakdown(const SramGeometry &g,
                            const ArrayOrganization &data_org,
                            const ArrayOrganization &tag_org,
                            CellType cell = CellType::SinglePorted6T) const;

    /** Total area of one cache array, in rbe. */
    double area(const SramGeometry &g, const ArrayOrganization &data_org,
                const ArrayOrganization &tag_org,
                CellType cell = CellType::SinglePorted6T) const;

    /** Number of tag status bits (valid + dirty), as in timing. */
    static constexpr std::uint32_t kStatusBits = 2;

  private:
    AreaParams params_;
};

} // namespace tlc

#endif // TLC_AREA_AREA_MODEL_HH
