/**
 * @file
 * parallelFor implementation: a per-call team of std::threads
 * pulling indices from a shared atomic counter (self-scheduling, so
 * expensive and cheap indices balance automatically).
 */

#include "parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace tlc {

namespace {

std::atomic<unsigned> g_worker_override{0};
thread_local bool t_in_worker = false;
thread_local unsigned t_worker_id = 0;

unsigned
hardwareWorkers()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

unsigned
parallelWorkerCount()
{
    unsigned n = g_worker_override.load(std::memory_order_relaxed);
    if (n)
        return n;
    if (const char *env = std::getenv("TLC_THREADS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end && end != env && *end == '\0' && v >= 1 &&
            v <= 4096) {
            return static_cast<unsigned>(v);
        }
    }
    return hardwareWorkers();
}

void
setParallelWorkerCount(unsigned n)
{
    g_worker_override.store(n, std::memory_order_relaxed);
}

unsigned
parallelWorkerOverride()
{
    return g_worker_override.load(std::memory_order_relaxed);
}

bool
inParallelWorker()
{
    return t_in_worker;
}

unsigned
parallelWorkerId()
{
    return t_worker_id;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;

    std::size_t workers = parallelWorkerCount();
    if (workers > n)
        workers = n;

    // Serial fast path: one worker, a single index, or a nested call
    // from inside a worker (spawning a second team underneath the
    // first could deadlock the machine with teams^2 threads).
    if (workers <= 1 || t_in_worker) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto work = [&](unsigned id) {
        t_in_worker = true;
        t_worker_id = id;
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                break;
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                stop.store(true, std::memory_order_relaxed);
            }
        }
        t_in_worker = false;
        t_worker_id = 0;
    };

    std::vector<std::thread> team;
    team.reserve(workers - 1);
    try {
        for (std::size_t w = 1; w < workers; ++w)
            team.emplace_back(work, static_cast<unsigned>(w));
    } catch (const std::system_error &) {
        // Thread creation failed (resource exhaustion): fail soft —
        // whatever part of the team started, plus the calling
        // thread, still completes the whole range below.
    }
    work(0); // the calling thread is part of the team
    for (std::thread &t : team)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace tlc
