/**
 * @file
 * Metrics registry implementation.
 */

#include "metrics.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace tlc {

namespace {

const char *
kindName(int kind)
{
    switch (kind) {
      case 0:
        return "counter";
      case 1:
        return "gauge";
      case 2:
        return "histogram";
    }
    return "?";
}

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry g;
    return g;
}

MetricCounter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = Kind::Counter;
        e.counter = std::make_unique<MetricCounter>();
        it = entries_.emplace(name, std::move(e)).first;
    }
    tlc_assert(it->second.kind == Kind::Counter,
               "metric '%s' already registered as a %s", name.c_str(),
               kindName(static_cast<int>(it->second.kind)));
    return *it->second.counter;
}

MetricGauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = Kind::Gauge;
        e.gauge = std::make_unique<MetricGauge>();
        it = entries_.emplace(name, std::move(e)).first;
    }
    tlc_assert(it->second.kind == Kind::Gauge,
               "metric '%s' already registered as a %s", name.c_str(),
               kindName(static_cast<int>(it->second.kind)));
    return *it->second.gauge;
}

MetricHistogram &
MetricsRegistry::histogram(const std::string &name, unsigned num_buckets)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        Entry e;
        e.kind = Kind::Histogram;
        e.histogram = std::make_unique<MetricHistogram>(num_buckets);
        it = entries_.emplace(name, std::move(e)).first;
    }
    tlc_assert(it->second.kind == Kind::Histogram,
               "metric '%s' already registered as a %s", name.c_str(),
               kindName(static_cast<int>(it->second.kind)));
    return *it->second.histogram;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(name) != 0;
}

std::optional<MetricKind>
MetricsRegistry::kindOf(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        return std::nullopt;
    return it->second.kind;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto &[name, e] : entries_) {
        if (e.kind == Kind::Counter)
            out.emplace_back(name, e.counter->value());
    }
    return out;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, double>> out;
    for (const auto &[name, e] : entries_) {
        if (e.kind == Kind::Gauge)
            out.emplace_back(name, e.gauge->value());
    }
    return out;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

std::vector<std::string>
MetricsRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, e] : entries_)
        out.push_back(name);
    return out;
}

std::string
MetricsRegistry::toText() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t width = 0;
    for (const auto &[name, e] : entries_)
        width = std::max(width, name.size());

    std::ostringstream os;
    for (const auto &[name, e] : entries_) {
        os << name << std::string(width - name.size() + 2, ' ');
        switch (e.kind) {
          case Kind::Counter:
            os << e.counter->value();
            break;
          case Kind::Gauge:
            os << jsonNumber(e.gauge->value());
            break;
          case Kind::Histogram: {
            Log2Histogram h = e.histogram->snapshot();
            os << h.count() << " samples";
            if (h.count())
                os << ", p50 <= " << h.quantile(0.5) << ", p99 <= "
                   << h.quantile(0.99);
            break;
          }
        }
        os << '\n';
    }
    return os.str();
}

std::string
MetricsRegistry::toJson(int indent) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::string pad(indent, ' ');
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[name, e] : entries_) {
        os << (first ? "\n" : ",\n") << pad << jsonQuote(name) << ": ";
        first = false;
        switch (e.kind) {
          case Kind::Counter:
            os << e.counter->value();
            break;
          case Kind::Gauge:
            os << jsonNumber(e.gauge->value());
            break;
          case Kind::Histogram: {
            Log2Histogram h = e.histogram->snapshot();
            unsigned last = 0;
            for (unsigned i = 0; i < h.numBuckets(); ++i) {
                if (h.bucket(i))
                    last = i + 1;
            }
            os << "{\"count\": " << h.count() << ", \"buckets\": [";
            for (unsigned i = 0; i < last; ++i)
                os << (i ? ", " : "") << h.bucket(i);
            os << "]}";
            break;
          }
        }
    }
    os << (first ? "}" : "\n}");
    return os.str();
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, e] : entries_) {
        switch (e.kind) {
          case Kind::Counter:
            e.counter->reset();
            break;
          case Kind::Gauge:
            e.gauge->reset();
            break;
          case Kind::Histogram:
            e.histogram->reset();
            break;
        }
    }
}

Status
writeMetricsFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        return statusf(StatusCode::IoError,
                       "cannot open metrics file '%s' for writing",
                       path.c_str());
    }
    os << MetricsRegistry::global().toJson() << "\n";
    if (!os.good()) {
        return statusf(StatusCode::IoError,
                       "write to metrics file '%s' failed",
                       path.c_str());
    }
    return Status();
}

} // namespace tlc
