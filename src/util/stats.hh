/**
 * @file
 * Lightweight statistics package: scalar counters, means, and
 * fixed-bucket distributions, in the spirit of gem5's Stats.
 */

#ifndef TLC_UTIL_STATS_HH
#define TLC_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tlc {

/** Scalar event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean / min / max / variance of a stream of samples. */
class RunningStat
{
  public:
    void sample(double x);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double total() const { return total_; }
    void reset();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double total_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over power-of-two buckets: bucket i counts samples in
 * [2^i, 2^(i+1)). Useful for stack-distance and run-length checks.
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(unsigned num_buckets = 32);

    void sample(std::uint64_t x);

    std::uint64_t bucket(unsigned i) const;
    unsigned numBuckets() const { return buckets_.size(); }
    std::uint64_t count() const { return count_; }

    /** Fraction of samples strictly below @p limit. */
    double fractionBelow(std::uint64_t limit) const;

    /** Approximate quantile (by bucket upper edge). */
    std::uint64_t quantile(double q) const;

    std::string toString() const;
    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::vector<std::uint64_t> raw_; ///< per-bucket sum for quantiles
    std::uint64_t count_ = 0;
};

/** Ratio helper that never divides by zero. */
inline double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

} // namespace tlc

#endif // TLC_UTIL_STATS_HH
