/**
 * @file
 * Status implementation.
 */

#include "status.hh"

#include <cerrno>
#include <cstdarg>
#include <cstdio>

namespace tlc {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::IoError:
        return "io-error";
      case StatusCode::BadMagic:
        return "bad-magic";
      case StatusCode::VersionMismatch:
        return "version-mismatch";
      case StatusCode::Truncated:
        return "truncated";
      case StatusCode::OverlongVarint:
        return "overlong-varint";
      case StatusCode::TypeOutOfRange:
        return "type-out-of-range";
      case StatusCode::CountTooLarge:
        return "count-too-large";
      case StatusCode::ChecksumMismatch:
        return "bad-crc";
      case StatusCode::ParseError:
        return "parse-error";
      case StatusCode::InvalidConfig:
        return "invalid-config";
      case StatusCode::UnknownName:
        return "unknown-name";
      case StatusCode::InternalError:
        return "internal-error";
      case StatusCode::ResourceExhausted:
        return "resource-exhausted";
      case StatusCode::WorkerCrash:
        return "worker-crash";
      case StatusCode::WorkerTimeout:
        return "worker-timeout";
    }
    return "?";
}

StatusCode
statusCodeFromErrno(int err)
{
    switch (err) {
      case ENOSPC:
#ifdef EDQUOT
      case EDQUOT:
#endif
      case EFBIG:
      case ENOMEM:
        return StatusCode::ResourceExhausted;
      default:
        return StatusCode::IoError;
    }
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    std::string s = statusCodeName(code_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

Status
Status::withContext(const std::string &context) const
{
    if (ok())
        return *this;
    return Status(code_, context + ": " + message_);
}

Status
statusf(StatusCode code, const char *fmt, ...)
{
    tlc_assert(code != StatusCode::Ok, "statusf() needs a failure code");
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string msg;
    if (n > 0) {
        // One extra slot for the terminator vsnprintf writes.
        msg.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(msg.data(), msg.size(), fmt, args);
        msg.resize(static_cast<std::size_t>(n));
    }
    va_end(args);
    return Status(code, std::move(msg));
}

} // namespace tlc
