/**
 * @file
 * ASCII plot renderer.
 */

#include "plot.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>

#include "logging.hh"

namespace tlc {

ScatterPlot::ScatterPlot(unsigned width, unsigned height, bool log_x,
                         bool log_y)
    : width_(width), height_(height), logX_(log_x), logY_(log_y)
{
    tlc_assert(width >= 16 && height >= 6, "plot area too small");
}

void
ScatterPlot::addSeries(const std::string &name, char marker)
{
    tlc_assert(find(name) == nullptr, "duplicate series '%s'",
               name.c_str());
    series_.push_back(Series{name, marker, {}});
}

const ScatterPlot::Series *
ScatterPlot::find(const std::string &name) const
{
    for (const auto &s : series_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

ScatterPlot::Series *
ScatterPlot::find(const std::string &name)
{
    return const_cast<Series *>(
        static_cast<const ScatterPlot *>(this)->find(name));
}

void
ScatterPlot::addPoint(const std::string &series, double x, double y)
{
    Series *s = find(series);
    tlc_assert(s != nullptr, "unknown series '%s'", series.c_str());
    tlc_assert(!logX_ || x > 0, "log-x plot needs positive x");
    tlc_assert(!logY_ || y > 0, "log-y plot needs positive y");
    s->points.emplace_back(x, y);
}

std::size_t
ScatterPlot::numPoints() const
{
    std::size_t n = 0;
    for (const auto &s : series_)
        n += s.points.size();
    return n;
}

void
ScatterPlot::render(std::ostream &os) const
{
    if (numPoints() == 0) {
        os << "(empty plot)\n";
        return;
    }

    double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
    double ymin = xmin, ymax = -xmin;
    for (const auto &s : series_) {
        for (auto [x, y] : s.points) {
            xmin = std::min(xmin, x);
            xmax = std::max(xmax, x);
            ymin = std::min(ymin, y);
            ymax = std::max(ymax, y);
        }
    }
    // Avoid a degenerate range.
    if (xmax <= xmin)
        xmax = xmin * (logX_ ? 2.0 : 1.0) + 1.0;
    if (ymax <= ymin)
        ymax = ymin * (logY_ ? 2.0 : 1.0) + 1.0;

    auto tx = [&](double v) { return logX_ ? std::log(v) : v; };
    auto ty = [&](double v) { return logY_ ? std::log(v) : v; };
    double x0 = tx(xmin), x1 = tx(xmax);
    double y0 = ty(ymin), y1 = ty(ymax);

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    for (const auto &s : series_) {
        for (auto [x, y] : s.points) {
            unsigned cx = static_cast<unsigned>(
                std::lround((tx(x) - x0) / (x1 - x0) * (width_ - 1)));
            unsigned cy = static_cast<unsigned>(
                std::lround((ty(y) - y0) / (y1 - y0) * (height_ - 1)));
            grid[height_ - 1 - cy][cx] = s.marker;
        }
    }

    auto fmt = [](double v) {
        char buf[32];
        if (v >= 1e6)
            std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
        else if (v >= 1e4)
            std::snprintf(buf, sizeof(buf), "%.0fk", v / 1e3);
        else if (v >= 1e3)
            std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
        else
            std::snprintf(buf, sizeof(buf), "%.3g", v);
        return std::string(buf);
    };

    if (!ylabel_.empty())
        os << ylabel_ << "\n";
    std::string ytop = fmt(ymax), ybot = fmt(ymin);
    std::size_t margin = std::max(ytop.size(), ybot.size()) + 1;
    for (unsigned r = 0; r < height_; ++r) {
        std::string label;
        if (r == 0)
            label = ytop;
        else if (r == height_ - 1)
            label = ybot;
        os << std::setw(static_cast<int>(margin)) << label << "|"
           << grid[r] << "\n";
    }
    os << std::string(margin, ' ') << "+" << std::string(width_, '-')
       << "\n";
    std::string xlo = fmt(xmin), xhi = fmt(xmax);
    os << std::string(margin + 1, ' ') << xlo
       << std::string(width_ > xlo.size() + xhi.size()
                          ? width_ - xlo.size() - xhi.size()
                          : 1,
                      ' ')
       << xhi << "\n";
    if (!xlabel_.empty())
        os << std::string(margin + 1, ' ') << xlabel_ << "\n";
    os << std::string(margin + 1, ' ') << "legend:";
    for (const auto &s : series_)
        os << "  " << s.marker << "=" << s.name;
    os << "\n";
}

} // namespace tlc
