/**
 * @file
 * Trace-event recorder implementation.
 */

#include "trace_event.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>
#include <utility>

#include "util/json.hh"

namespace tlc {

namespace {

std::atomic<TraceEventRecorder *> gActive{nullptr};

} // namespace

TraceEventRecorder::TraceEventRecorder() : t0_(Clock::now())
{
}

TraceEventRecorder::TraceEventRecorder(Clock::time_point epoch)
    : t0_(epoch)
{
}

TraceEventRecorder *
TraceEventRecorder::active()
{
    return gActive.load(std::memory_order_acquire);
}

void
TraceEventRecorder::setActive(TraceEventRecorder *r)
{
    gActive.store(r, std::memory_order_release);
}

void
TraceEventRecorder::complete(std::string name, std::string category,
                             Clock::time_point begin,
                             Clock::time_point end, std::uint32_t tid,
                             std::string args_json)
{
    auto us = [this](Clock::time_point t) {
        auto d = std::chrono::duration_cast<std::chrono::microseconds>(
            t - t0_);
        return d.count() < 0 ? std::uint64_t{0}
                             : static_cast<std::uint64_t>(d.count());
    };
    TraceEvent e;
    e.name = std::move(name);
    e.category = std::move(category);
    e.argsJson = std::move(args_json);
    e.tsUs = us(begin);
    std::uint64_t endUs = us(end);
    e.durUs = endUs > e.tsUs ? endUs - e.tsUs : 0;
    e.pid = 1;
    e.tid = tid;

    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(e));
}

std::vector<TraceEvent>
TraceEventRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

void
TraceEventRecorder::import(const std::vector<TraceEvent> &events,
                           std::uint32_t pid,
                           const std::string &process_name)
{
    std::lock_guard<std::mutex> lock(mu_);
    processNames_[pid] = process_name;
    for (TraceEvent e : events) {
        e.pid = pid;
        events_.push_back(std::move(e));
    }
}

std::size_t
TraceEventRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

void
TraceEventRecorder::write(std::ostream &os) const
{
    std::vector<TraceEvent> events;
    std::map<std::uint32_t, std::string> processNames;
    {
        std::lock_guard<std::mutex> lock(mu_);
        events = events_;
        processNames = processNames_;
    }
    // Stable output: viewers don't care about event order, but a
    // deterministic file is diffable and testable.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         return a.tid != b.tid ? a.tid < b.tid
                                               : a.tsUs < b.tsUs;
                     });

    std::set<std::pair<std::uint32_t, std::uint32_t>> tracks;
    for (const TraceEvent &e : events)
        tracks.insert({e.pid, e.tid});

    os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    bool first = true;
    for (const auto &[pid, name] : processNames) {
        os << (first ? "\n" : ",\n")
           << "    {\"ph\": \"M\", \"pid\": " << pid
           << ", \"tid\": 0, \"name\": \"process_name\", "
           << "\"args\": {\"name\": " << jsonQuote(name) << "}}";
        first = false;
    }
    for (const auto &[pid, tid] : tracks) {
        os << (first ? "\n" : ",\n")
           << "    {\"ph\": \"M\", \"pid\": " << pid
           << ", \"tid\": " << tid
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
           << jsonQuote("worker-" + std::to_string(tid)) << "}}";
        first = false;
    }
    for (const TraceEvent &e : events) {
        os << (first ? "\n" : ",\n")
           << "    {\"ph\": \"X\", \"pid\": " << e.pid
           << ", \"tid\": " << e.tid << ", \"ts\": " << e.tsUs
           << ", \"dur\": " << e.durUs
           << ", \"name\": " << jsonQuote(e.name)
           << ", \"cat\": " << jsonQuote(e.category);
        if (!e.argsJson.empty())
            os << ", \"args\": " << e.argsJson;
        os << "}";
        first = false;
    }
    os << (first ? "]\n}\n" : "\n  ]\n}\n");
}

Status
TraceEventRecorder::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        return statusf(StatusCode::IoError,
                       "cannot open trace-event file '%s' for writing",
                       path.c_str());
    }
    write(os);
    if (!os.good()) {
        return statusf(StatusCode::IoError,
                       "write to trace-event file '%s' failed",
                       path.c_str());
    }
    return Status();
}

} // namespace tlc
