/**
 * @file
 * Trace-event recorder implementation.
 */

#include "trace_event.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>

#include "util/json.hh"

namespace tlc {

namespace {

std::atomic<TraceEventRecorder *> gActive{nullptr};

} // namespace

TraceEventRecorder::TraceEventRecorder() : t0_(Clock::now())
{
}

TraceEventRecorder *
TraceEventRecorder::active()
{
    return gActive.load(std::memory_order_acquire);
}

void
TraceEventRecorder::setActive(TraceEventRecorder *r)
{
    gActive.store(r, std::memory_order_release);
}

void
TraceEventRecorder::complete(std::string name, std::string category,
                             Clock::time_point begin,
                             Clock::time_point end, std::uint32_t tid,
                             std::string args_json)
{
    auto us = [this](Clock::time_point t) {
        auto d = std::chrono::duration_cast<std::chrono::microseconds>(
            t - t0_);
        return d.count() < 0 ? std::uint64_t{0}
                             : static_cast<std::uint64_t>(d.count());
    };
    Event e;
    e.name = std::move(name);
    e.category = std::move(category);
    e.argsJson = std::move(args_json);
    e.tsUs = us(begin);
    std::uint64_t endUs = us(end);
    e.durUs = endUs > e.tsUs ? endUs - e.tsUs : 0;
    e.tid = tid;

    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(e));
}

std::size_t
TraceEventRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

void
TraceEventRecorder::write(std::ostream &os) const
{
    std::vector<Event> events;
    {
        std::lock_guard<std::mutex> lock(mu_);
        events = events_;
    }
    // Stable output: viewers don't care about event order, but a
    // deterministic file is diffable and testable.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.tid != b.tid ? a.tid < b.tid
                                               : a.tsUs < b.tsUs;
                     });

    std::set<std::uint32_t> tids;
    for (const Event &e : events)
        tids.insert(e.tid);

    os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
    bool first = true;
    for (std::uint32_t tid : tids) {
        os << (first ? "\n" : ",\n")
           << "    {\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
           << jsonQuote("worker-" + std::to_string(tid)) << "}}";
        first = false;
    }
    for (const Event &e : events) {
        os << (first ? "\n" : ",\n")
           << "    {\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
           << ", \"ts\": " << e.tsUs << ", \"dur\": " << e.durUs
           << ", \"name\": " << jsonQuote(e.name)
           << ", \"cat\": " << jsonQuote(e.category);
        if (!e.argsJson.empty())
            os << ", \"args\": " << e.argsJson;
        os << "}";
        first = false;
    }
    os << (first ? "]\n}\n" : "\n  ]\n}\n");
}

Status
TraceEventRecorder::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        return statusf(StatusCode::IoError,
                       "cannot open trace-event file '%s' for writing",
                       path.c_str());
    }
    write(os);
    if (!os.good()) {
        return statusf(StatusCode::IoError,
                       "write to trace-event file '%s' failed",
                       path.c_str());
    }
    return Status();
}

} // namespace tlc
