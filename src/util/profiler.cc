/**
 * @file
 * Profiler implementation.
 */

#include "profiler.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json.hh"

namespace tlc {

namespace {

/** Fixed 3-decimal JSON number with trailing zeros trimmed. */
std::string
fixed3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    std::string s(buf);
    while (!s.empty() && s.back() == '0')
        s.pop_back();
    if (!s.empty() && s.back() == '.')
        s.pop_back();
    return s;
}

} // namespace

Profiler &
Profiler::global()
{
    static Profiler g;
    return g;
}

void
Profiler::record(const char *phase, std::uint64_t ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    PhaseStats &s = phases_[phase];
    ++s.calls;
    s.totalNs += ns;
    s.maxNs = std::max(s.maxNs, ns);
}

void
Profiler::merge(const std::string &phase, const PhaseStats &stats)
{
    std::lock_guard<std::mutex> lock(mu_);
    PhaseStats &s = phases_[phase];
    s.calls += stats.calls;
    s.totalNs += stats.totalNs;
    s.maxNs = std::max(s.maxNs, stats.maxNs);
}

std::map<std::string, PhaseStats>
Profiler::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return phases_;
}

std::string
Profiler::toText() const
{
    std::map<std::string, PhaseStats> snap = snapshot();
    std::size_t width = 5; // "phase"
    for (const auto &[name, s] : snap)
        width = std::max(width, name.size());

    std::ostringstream os;
    char line[160];
    std::snprintf(line, sizeof(line), "%-*s %10s %12s %12s %12s\n",
                  static_cast<int>(width), "phase", "calls", "total_ms",
                  "mean_us", "max_us");
    os << line;
    for (const auto &[name, s] : snap) {
        std::snprintf(line, sizeof(line),
                      "%-*s %10llu %12.3f %12.3f %12.3f\n",
                      static_cast<int>(width), name.c_str(),
                      static_cast<unsigned long long>(s.calls),
                      s.totalNs * 1e-6, s.meanNs() * 1e-3,
                      s.maxNs * 1e-3);
        os << line;
    }
    return os.str();
}

std::string
Profiler::toJson(int indent) const
{
    std::map<std::string, PhaseStats> snap = snapshot();
    const std::string pad(indent, ' ');
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[name, s] : snap) {
        os << (first ? "\n" : ",\n") << pad << jsonQuote(name)
           << ": {\"calls\": " << s.calls
           << ", \"total_ms\": " << fixed3(s.totalNs * 1e-6)
           << ", \"mean_us\": " << fixed3(s.meanNs() * 1e-3)
           << ", \"max_us\": " << fixed3(s.maxNs * 1e-3) << "}";
        first = false;
    }
    os << (first ? "}" : "\n}");
    return os.str();
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    phases_.clear();
}

} // namespace tlc
