/**
 * @file
 * Fault-injecting streambuf implementation.
 */

#include "faultio.hh"

#include <sstream>

#include "util/metrics.hh"

namespace tlc {

CorruptingStreamBuf::CorruptingStreamBuf(std::streambuf &src,
                                         const FaultSpec &spec)
    : src_(&src), spec_(spec), rng_(spec.seed, 0xFA17)
{
    // Empty get area: first read goes through underflow().
    setg(&cur_, &cur_ + 1, &cur_ + 1);
}

CorruptingStreamBuf::~CorruptingStreamBuf()
{
    // One flush per stream keeps the per-byte path metric-free.
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.counter("trace.faultio.streams").inc();
    reg.counter("trace.faultio.bytes").inc(srcPos_);
    reg.counter("trace.faultio.faults").inc(faults_);
}

bool
CorruptingStreamBuf::nextByte(char &out)
{
    if (havePending_) {
        havePending_ = false;
        out = pending_;
        return true;
    }
    for (;;) {
        if (srcPos_ >= spec_.truncateAfter) {
            if (!cutCounted_) {
                cutCounted_ = true;
                ++faults_;
            }
            return false;
        }
        int_type v = src_->sbumpc();
        if (traits_type::eq_int_type(v, traits_type::eof()))
            return false;
        ++srcPos_;
        unsigned char b =
            static_cast<unsigned char>(traits_type::to_char_type(v));
        if (spec_.dropRate > 0.0 && rng_.nextDouble() < spec_.dropRate) {
            ++faults_;
            continue;
        }
        if (spec_.bitFlipRate > 0.0 &&
            rng_.nextDouble() < spec_.bitFlipRate) {
            b = static_cast<unsigned char>(b ^ (1u << rng_.nextBounded(8)));
            ++faults_;
        }
        if (spec_.dupRate > 0.0 && rng_.nextDouble() < spec_.dupRate) {
            pending_ = static_cast<char>(b);
            havePending_ = true;
            ++faults_;
        }
        out = static_cast<char>(b);
        return true;
    }
}

CorruptingStreamBuf::int_type
CorruptingStreamBuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    if (!nextByte(cur_))
        return traits_type::eof();
    setg(&cur_, &cur_, &cur_ + 1);
    return traits_type::to_int_type(cur_);
}

std::string
corruptCopy(const std::string &bytes, const FaultSpec &spec)
{
    std::istringstream src(bytes);
    CorruptingStreamBuf cb(*src.rdbuf(), spec);
    std::string out;
    out.reserve(bytes.size() + bytes.size() / 8 + 16);
    using traits = std::streambuf::traits_type;
    for (std::streambuf::int_type c;
         !traits::eq_int_type(c = cb.sbumpc(), traits::eof());) {
        out.push_back(static_cast<char>(c));
    }
    return out;
}

} // namespace tlc
