/**
 * @file
 * Result-store implementation.
 *
 * The scan trusts nothing: lengths are sanity-capped before any
 * allocation, every record's CRC is recomputed, and the first
 * structural problem (short read, absurd length) ends the scan and
 * truncates the file back to the last intact record so appends
 * never land after garbage.
 */

#include "result_store.hh"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "util/crc32.hh"
#include "util/logging.hh"

namespace tlc {

const char kResultStoreMagic[4] = {'T', 'L', 'R', 'S'};

namespace {

constexpr std::size_t kHeaderBytes = 8;

void
putU32le(std::string &s, std::uint32_t v)
{
    s.push_back(static_cast<char>(v & 0xff));
    s.push_back(static_cast<char>((v >> 8) & 0xff));
    s.push_back(static_cast<char>((v >> 16) & 0xff));
    s.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t
getU32le(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
}

} // namespace

ResultStore::~ResultStore()
{
    close();
}

void
ResultStore::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (file_) {
        std::fflush(file_);
        std::fclose(file_);
        file_ = nullptr;
    }
    index_.clear();
    path_.clear();
    options_ = ResultStoreOptions{};
    dropped_ = 0;
    validEnd_ = 0;
}

bool
ResultStore::isOpen() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return file_ != nullptr;
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
}

std::uint64_t
ResultStore::droppedRecords() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

Status
ResultStore::open(const std::string &path, const ResultStoreOptions &options)
{
    close();
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
    // "r+b" keeps existing contents; fall back to "w+b" only when
    // the file does not exist yet, so an unreadable existing file is
    // an error rather than silently clobbered.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    if (!f) {
        f = std::fopen(path.c_str(), "w+b");
        if (!f) {
            return statusf(StatusCode::IoError,
                           "cannot open or create result store '%s'",
                           path.c_str());
        }
    }
    file_ = f;
    path_ = path;
    Status s = scan();
    if (!s.ok()) {
        std::fclose(file_);
        file_ = nullptr;
        path_.clear();
        index_.clear();
        dropped_ = 0;
        return s;
    }
    return Status();
}

Status
ResultStore::scan()
{
    std::fseek(file_, 0, SEEK_END);
    long fileSize = std::ftell(file_);
    if (fileSize < 0) {
        return statusf(StatusCode::IoError,
                       "cannot size result store '%s'", path_.c_str());
    }

    auto writeHeader = [&]() -> Status {
        if (ftruncate(fileno(file_), 0) != 0) {
            return statusf(StatusCode::IoError,
                           "cannot truncate result store '%s'",
                           path_.c_str());
        }
        std::fseek(file_, 0, SEEK_SET);
        std::string h(kResultStoreMagic, 4);
        putU32le(h, kResultStoreVersion);
        if (std::fwrite(h.data(), 1, h.size(), file_) != h.size() ||
            std::fflush(file_) != 0) {
            return statusf(StatusCode::IoError,
                           "cannot write result store header to '%s'",
                           path_.c_str());
        }
        validEnd_ = static_cast<long>(kHeaderBytes);
        return Status();
    };

    if (fileSize == 0)
        return writeHeader();
    if (static_cast<std::size_t>(fileSize) < kHeaderBytes) {
        // A creation that died inside the header; no record was ever
        // written, so rebuilding the header loses nothing.
        ++dropped_;
        return writeHeader();
    }

    std::fseek(file_, 0, SEEK_SET);
    unsigned char header[kHeaderBytes];
    if (std::fread(header, 1, kHeaderBytes, file_) != kHeaderBytes) {
        return statusf(StatusCode::IoError,
                       "cannot read result store header of '%s'",
                       path_.c_str());
    }
    if (std::memcmp(header, kResultStoreMagic, 4) != 0) {
        return statusf(StatusCode::BadMagic,
                       "'%s' is not a result store (magic "
                       "%02x%02x%02x%02x)", path_.c_str(), header[0],
                       header[1], header[2], header[3]);
    }
    std::uint32_t version = getU32le(header + 4);
    if (version != kResultStoreVersion) {
        return statusf(StatusCode::VersionMismatch,
                       "result store '%s' has format version %u where "
                       "this build expects %u", path_.c_str(), version,
                       kResultStoreVersion);
    }

    // Scan records. validEnd tracks the byte just past the last
    // structurally intact record; anything after a short read or an
    // absurd length is a torn tail and gets cut off so appends never
    // follow garbage.
    long validEnd = static_cast<long>(kHeaderBytes);
    bool tornTail = false;
    std::string key, payload;
    for (;;) {
        unsigned char lens[8];
        std::size_t got = std::fread(lens, 1, sizeof lens, file_);
        if (got == 0)
            break; // clean end at a record boundary
        if (got < sizeof lens) {
            tornTail = true;
            break;
        }
        std::uint32_t keyBytes = getU32le(lens);
        std::uint32_t payloadBytes = getU32le(lens + 4);
        if (keyBytes == 0 || keyBytes > kResultStoreMaxKeyBytes ||
            payloadBytes > kResultStoreMaxPayloadBytes) {
            tornTail = true;
            break;
        }
        key.resize(keyBytes);
        payload.resize(payloadBytes);
        unsigned char crcBuf[4];
        if (std::fread(key.data(), 1, keyBytes, file_) != keyBytes ||
            std::fread(payload.data(), 1, payloadBytes, file_) !=
                payloadBytes ||
            std::fread(crcBuf, 1, 4, file_) != 4) {
            tornTail = true;
            break;
        }
        std::uint32_t state = crc32Update(kCrc32Init, key.data(),
                                          keyBytes);
        state = crc32Update(state, payload.data(), payloadBytes);
        if (crc32Final(state) != getU32le(crcBuf)) {
            // The record's frame is intact (lengths were plausible
            // and everything was present), so scanning can continue
            // past it — the entry just stops answering lookups.
            ++dropped_;
            validEnd += static_cast<long>(sizeof lens) + keyBytes +
                payloadBytes + 4;
            continue;
        }
        index_[key] = payload; // later records supersede earlier ones
        validEnd += static_cast<long>(sizeof lens) + keyBytes +
            payloadBytes + 4;
    }

    if (tornTail || validEnd < fileSize) {
        ++dropped_;
        if (ftruncate(fileno(file_), validEnd) != 0) {
            return statusf(StatusCode::IoError,
                           "cannot truncate torn tail of result store "
                           "'%s'", path_.c_str());
        }
    }
    std::fseek(file_, validEnd, SEEK_SET);
    validEnd_ = validEnd;
    return Status();
}

bool
ResultStore::lookup(const std::string &key, std::string *payload) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    if (payload)
        *payload = it->second;
    return true;
}

Status
ResultStore::append(const std::string &key, std::string_view payload)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!file_) {
        return statusf(StatusCode::IoError,
                       "append to a result store that is not open");
    }
    if (key.empty() || key.size() > kResultStoreMaxKeyBytes) {
        return statusf(StatusCode::InvalidConfig,
                       "result store key of %zu bytes (limit %u, and "
                       "empty keys are reserved)", key.size(),
                       kResultStoreMaxKeyBytes);
    }
    if (payload.size() > kResultStoreMaxPayloadBytes) {
        return statusf(StatusCode::InvalidConfig,
                       "result store payload of %zu bytes (limit %u)",
                       payload.size(), kResultStoreMaxPayloadBytes);
    }

    // One contiguous buffer, one fwrite, one flush: a crash leaves
    // either the whole record or a torn tail the next open() cuts.
    std::string rec;
    rec.reserve(8 + key.size() + payload.size() + 4);
    putU32le(rec, static_cast<std::uint32_t>(key.size()));
    putU32le(rec, static_cast<std::uint32_t>(payload.size()));
    rec.append(key);
    rec.append(payload);
    std::uint32_t state =
        crc32Update(kCrc32Init, key.data(), key.size());
    state = crc32Update(state, payload.data(), payload.size());
    putU32le(rec, crc32Final(state));

    // A failed or short write leaves a torn record at the tail; cut
    // the file back to the last intact record right away, so the
    // damage is repaired at write time (not on the next open) and a
    // later append in this process cannot land after garbage. errno
    // classifies the cause: the disk-full family (ENOSPC, EDQUOT,
    // EFBIG) becomes ResourceExhausted, hardware errors (EIO) and
    // the rest stay IoError.
    errno = 0;
    if (std::fwrite(rec.data(), 1, rec.size(), file_) != rec.size() ||
        std::fflush(file_) != 0) {
        const int err = errno;
        std::clearerr(file_);
        if (ftruncate(fileno(file_), validEnd_) == 0)
            std::fseek(file_, validEnd_, SEEK_SET);
        return statusf(statusCodeFromErrno(err),
                       "write to result store '%s' failed: %s",
                       path_.c_str(),
                       err ? std::strerror(err) : "short write");
    }
    if (options_.fsyncOnCommit && fsync(fileno(file_)) != 0) {
        // The record reached the OS but its durability is unknown;
        // report honestly and retract it so the caller's "append ok
        // => record committed" invariant holds.
        const int err = errno;
        if (ftruncate(fileno(file_), validEnd_) == 0)
            std::fseek(file_, validEnd_, SEEK_SET);
        return statusf(statusCodeFromErrno(err),
                       "fsync of result store '%s' failed: %s",
                       path_.c_str(), std::strerror(err));
    }
    validEnd_ += static_cast<long>(rec.size());
    index_[key] = std::string(payload);
    return Status();
}

} // namespace tlc
