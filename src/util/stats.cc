/**
 * @file
 * Statistics package implementation.
 */

#include "stats.hh"

#include <cmath>
#include <sstream>

#include "bitutil.hh"
#include "logging.hh"

namespace tlc {

void
RunningStat::sample(double x)
{
    ++n_;
    total_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Log2Histogram::Log2Histogram(unsigned num_buckets)
    : buckets_(num_buckets, 0), raw_(num_buckets, 0)
{
    tlc_assert(num_buckets > 0 && num_buckets <= 64,
               "bad bucket count %u", num_buckets);
}

void
Log2Histogram::sample(std::uint64_t x)
{
    unsigned b = (x == 0) ? 0 : log2i(x);
    if (b >= buckets_.size())
        b = buckets_.size() - 1;
    ++buckets_[b];
    raw_[b] += x;
    ++count_;
}

std::uint64_t
Log2Histogram::bucket(unsigned i) const
{
    tlc_assert(i < buckets_.size(), "bucket %u out of range", i);
    return buckets_[i];
}

double
Log2Histogram::fractionBelow(std::uint64_t limit) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        std::uint64_t lo = (i == 0) ? 0 : (std::uint64_t{1} << i);
        std::uint64_t hi = std::uint64_t{1} << (i + 1);
        if (hi <= limit) {
            below += buckets_[i];
        } else if (lo < limit) {
            // Partial bucket: assume uniform within the bucket.
            double frac = static_cast<double>(limit - lo) /
                          static_cast<double>(hi - lo);
            below += static_cast<std::uint64_t>(buckets_[i] * frac);
        }
    }
    return static_cast<double>(below) / static_cast<double>(count_);
}

std::uint64_t
Log2Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return std::uint64_t{1} << (i + 1);
    }
    return std::uint64_t{1} << buckets_.size();
}

std::string
Log2Histogram::toString() const
{
    std::ostringstream os;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        os << "[2^" << i << "): " << buckets_[i] << "  ";
    }
    return os.str();
}

void
Log2Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    std::fill(raw_.begin(), raw_.end(), 0);
    count_ = 0;
}

} // namespace tlc
