/**
 * @file
 * Portable SIMD backend control and wrapper intrinsics.
 *
 * The batch engine's hot lanes (cache/simd_lanes.hh) vectorize their
 * tag compares. Correctness there is ISA-dependent, so the backend is
 * a first-class runtime concept rather than a compile-time fact:
 *
 *  - Every binary always carries the scalar kernels, plus the AVX2
 *    kernels on x86-64 (compiled in a dedicated -mavx2 TU) and the
 *    NEON kernels on aarch64. simdBackendCompiled() reports what this
 *    binary carries.
 *  - At runtime, detectSimdBackend() picks the best backend the CPU
 *    actually supports (cpuid on x86; NEON is architectural on
 *    aarch64). simdBackendSupported() exposes the per-backend answer.
 *  - The TLC_SIMD environment variable (scalar | avx2 | neon |
 *    native) overrides detection — this is what the CI dispatch
 *    matrix forces so the scalar-vs-vector byte-identity suite can
 *    pin each backend. An unknown or unsupported value is a fatal
 *    user error: a forced backend that silently fell back would make
 *    the differential prove nothing.
 *  - setSimdBackend() is the programmatic equivalent (tests iterate
 *    every supported backend in one process).
 *
 * The wrapper intrinsics themselves live at the bottom of this
 * header in per-ISA inline namespaces: a TU compiled with -mavx2
 * sees the AVX2 implementation, an aarch64 TU the NEON one, anything
 * else the scalar one, and a TU may force the scalar variant by
 * defining TLC_SIMD_FORCE_SCALAR before including this header. The
 * inline-namespace spelling keeps the three variants distinct
 * symbols, so a binary carrying several of them never ODR-merges a
 * vector body into a scalar call site (which would break forced-
 * scalar runs and SIGILL on older CPUs).
 */

#ifndef TLC_UTIL_SIMD_HH
#define TLC_UTIL_SIMD_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

#if !defined(TLC_SIMD_FORCE_SCALAR) && defined(__AVX2__)
#include <immintrin.h>
#elif !defined(TLC_SIMD_FORCE_SCALAR) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace tlc {

/** Vector instruction set a lane kernel was compiled against. */
enum class SimdBackend : std::uint8_t {
    Scalar, ///< plain C++ (always available, the reference semantics)
    Avx2,   ///< x86-64 AVX2, 4 x u64 per 256-bit vector
    Neon    ///< aarch64 NEON, 2 x u64 per 128-bit vector
};

/** Stable lower-case name ("scalar", "avx2", "neon"). */
const char *simdBackendName(SimdBackend b);

/** Was this backend's kernel set compiled into the binary? */
bool simdBackendCompiled(SimdBackend b);

/** Compiled in AND supported by the CPU we are running on? */
bool simdBackendSupported(SimdBackend b);

/**
 * Best supported backend for this process, ignoring any override —
 * the pure cpuid-dispatch decision (unit-tested in tests/test_simd.cc).
 */
SimdBackend detectSimdBackend();

/**
 * Parse a TLC_SIMD spelling: "scalar", "avx2", "neon" name a backend,
 * "native" means detectSimdBackend(). Unknown spellings return
 * InvalidConfig (callers decide whether that is fatal).
 */
Expected<SimdBackend> parseSimdBackend(const std::string &text);

/**
 * Resolve an override string against a detection result — the pure
 * decision function behind activeSimdBackend(), separated out so the
 * env/cpuid interplay is unit-testable: nullptr/empty means "use
 * @p detected"; a named backend must be supported or the result is
 * InvalidConfig; "native" resolves to @p detected.
 */
Expected<SimdBackend> resolveSimdBackend(const char *override_text,
                                         SimdBackend detected);

/**
 * The backend the lane kernels dispatch to right now: an explicit
 * setSimdBackend() if one was made, else TLC_SIMD if set (fatal on
 * unknown or unsupported values), else detectSimdBackend(). The
 * env/detect resolution is computed once and cached.
 */
SimdBackend activeSimdBackend();

/**
 * Force the active backend for this process (tests, tools). Fatal if
 * the backend is not supported here — a forced backend that silently
 * degraded would invalidate any differential run on top of it.
 */
void setSimdBackend(SimdBackend b);

/** Drop any setSimdBackend() override, back to env/detection. */
void clearSimdBackendOverride();

// ---------------------------------------------------------------------
// Wrapper intrinsics: u64-element tag-compare primitives.
// ---------------------------------------------------------------------
//
// Exactly one of the inline namespaces below is compiled per TU,
// selected by the TU's own ISA flags. All variants implement the
// same contracts:
//
//   simdWidth              elements per vector step (1 / 2 / 4)
//   eqMask(p, n, want, ignore)
//     bit i set iff (p[i] & ~ignore) == want, for i in [0, n)
//   zeroMask(p, n, bit)
//     bit i set iff (p[i] & bit) == 0, for i in [0, n)
//   probeRow(row, n, want, orOnHit)
//     the SoA lane probe: for each i, hit iff
//     (row[i] & ~orOnHitIgnored) == want where the dirty bit is
//     ignored in the compare; hits get row[i] |= orOnHit, misses are
//     left untouched; returns the miss bitmask over [0, n).
//
// n is at most 64 (bitmask results); lane blocks enforce that cap.

#if !defined(TLC_SIMD_FORCE_SCALAR) && defined(__AVX2__)

inline namespace simd_avx2_ops {

constexpr std::uint32_t simdWidth = 4;
constexpr SimdBackend simdOpsBackend = SimdBackend::Avx2;

inline std::uint64_t
eqMask(const std::uint64_t *p, std::uint32_t n, std::uint64_t want,
       std::uint64_t ignore)
{
    const __m256i vwant = _mm256_set1_epi64x(
        static_cast<long long>(want));
    const __m256i vkeep = _mm256_set1_epi64x(
        static_cast<long long>(~ignore));
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i e = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i));
        __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(e, vkeep),
                                        vwant);
        mask |= static_cast<std::uint64_t>(
                    _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
                << i;
    }
    for (; i < n; ++i)
        mask |= static_cast<std::uint64_t>((p[i] & ~ignore) == want) << i;
    return mask;
}

inline std::uint64_t
zeroMask(const std::uint64_t *p, std::uint32_t n, std::uint64_t bit)
{
    const __m256i vbit = _mm256_set1_epi64x(static_cast<long long>(bit));
    const __m256i vzero = _mm256_setzero_si256();
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i e = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i));
        __m256i z = _mm256_cmpeq_epi64(_mm256_and_si256(e, vbit), vzero);
        mask |= static_cast<std::uint64_t>(
                    _mm256_movemask_pd(_mm256_castsi256_pd(z)))
                << i;
    }
    for (; i < n; ++i)
        mask |= static_cast<std::uint64_t>((p[i] & bit) == 0) << i;
    return mask;
}

inline std::uint64_t
probeRow(std::uint64_t *row, std::uint32_t n, std::uint64_t want,
         std::uint64_t dirtyBit, std::uint64_t orOnHit)
{
    const __m256i vwant = _mm256_set1_epi64x(
        static_cast<long long>(want));
    const __m256i vkeep = _mm256_set1_epi64x(
        static_cast<long long>(~dirtyBit));
    const __m256i vor = _mm256_set1_epi64x(
        static_cast<long long>(orOnHit));
    std::uint64_t miss = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i e = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + i));
        __m256i hit = _mm256_cmpeq_epi64(_mm256_and_si256(e, vkeep),
                                         vwant);
        if (orOnHit) {
            // hits pick up the dirty bit, misses stay untouched for
            // the caller's scalar refill to read.
            __m256i updated = _mm256_or_si256(
                e, _mm256_and_si256(hit, vor));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(row + i),
                                updated);
        }
        std::uint64_t hitBits = static_cast<std::uint64_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(hit)));
        miss |= (~hitBits & 0xf) << i;
    }
    for (; i < n; ++i) {
        std::uint64_t e = row[i];
        if ((e & ~dirtyBit) == want)
            row[i] = e | orOnHit;
        else
            miss |= std::uint64_t(1) << i;
    }
    return miss;
}

} // inline namespace simd_avx2_ops

#elif !defined(TLC_SIMD_FORCE_SCALAR) && defined(__aarch64__)

inline namespace simd_neon_ops {

constexpr std::uint32_t simdWidth = 2;
constexpr SimdBackend simdOpsBackend = SimdBackend::Neon;

inline std::uint64_t
eqMask(const std::uint64_t *p, std::uint32_t n, std::uint64_t want,
       std::uint64_t ignore)
{
    const uint64x2_t vwant = vdupq_n_u64(want);
    const uint64x2_t vkeep = vdupq_n_u64(~ignore);
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64x2_t e = vld1q_u64(p + i);
        uint64x2_t eq = vceqq_u64(vandq_u64(e, vkeep), vwant);
        mask |= (vgetq_lane_u64(eq, 0) & 1) << i;
        mask |= (vgetq_lane_u64(eq, 1) & 1) << (i + 1);
    }
    for (; i < n; ++i)
        mask |= static_cast<std::uint64_t>((p[i] & ~ignore) == want) << i;
    return mask;
}

inline std::uint64_t
zeroMask(const std::uint64_t *p, std::uint32_t n, std::uint64_t bit)
{
    const uint64x2_t vbit = vdupq_n_u64(bit);
    const uint64x2_t vzero = vdupq_n_u64(0);
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64x2_t e = vld1q_u64(p + i);
        uint64x2_t z = vceqq_u64(vandq_u64(e, vbit), vzero);
        mask |= (vgetq_lane_u64(z, 0) & 1) << i;
        mask |= (vgetq_lane_u64(z, 1) & 1) << (i + 1);
    }
    for (; i < n; ++i)
        mask |= static_cast<std::uint64_t>((p[i] & bit) == 0) << i;
    return mask;
}

inline std::uint64_t
probeRow(std::uint64_t *row, std::uint32_t n, std::uint64_t want,
         std::uint64_t dirtyBit, std::uint64_t orOnHit)
{
    const uint64x2_t vwant = vdupq_n_u64(want);
    const uint64x2_t vkeep = vdupq_n_u64(~dirtyBit);
    const uint64x2_t vor = vdupq_n_u64(orOnHit);
    std::uint64_t miss = 0;
    std::uint32_t i = 0;
    for (; i + 2 <= n; i += 2) {
        uint64x2_t e = vld1q_u64(row + i);
        uint64x2_t hit = vceqq_u64(vandq_u64(e, vkeep), vwant);
        if (orOnHit)
            vst1q_u64(row + i, vorrq_u64(e, vandq_u64(hit, vor)));
        miss |= (~vgetq_lane_u64(hit, 0) & 1) << i;
        miss |= (~vgetq_lane_u64(hit, 1) & 1) << (i + 1);
    }
    for (; i < n; ++i) {
        std::uint64_t e = row[i];
        if ((e & ~dirtyBit) == want)
            row[i] = e | orOnHit;
        else
            miss |= std::uint64_t(1) << i;
    }
    return miss;
}

} // inline namespace simd_neon_ops

#else

inline namespace simd_scalar_ops {

constexpr std::uint32_t simdWidth = 1;
constexpr SimdBackend simdOpsBackend = SimdBackend::Scalar;

inline std::uint64_t
eqMask(const std::uint64_t *p, std::uint32_t n, std::uint64_t want,
       std::uint64_t ignore)
{
    std::uint64_t mask = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        mask |= static_cast<std::uint64_t>((p[i] & ~ignore) == want) << i;
    return mask;
}

inline std::uint64_t
zeroMask(const std::uint64_t *p, std::uint32_t n, std::uint64_t bit)
{
    std::uint64_t mask = 0;
    for (std::uint32_t i = 0; i < n; ++i)
        mask |= static_cast<std::uint64_t>((p[i] & bit) == 0) << i;
    return mask;
}

inline std::uint64_t
probeRow(std::uint64_t *row, std::uint32_t n, std::uint64_t want,
         std::uint64_t dirtyBit, std::uint64_t orOnHit)
{
    std::uint64_t miss = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t e = row[i];
        // Branchless: hits pick up orOnHit, misses are rewritten with
        // their own value (a no-op the compiler turns into a cmov'd
        // store or masked blend).
        bool hit = (e & ~dirtyBit) == want;
        row[i] = hit ? (e | orOnHit) : e;
        miss |= static_cast<std::uint64_t>(!hit) << i;
    }
    return miss;
}

} // inline namespace simd_scalar_ops

#endif

} // namespace tlc

#endif // TLC_UTIL_SIMD_HH
