#include "util/simd.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace tlc {
namespace {

/**
 * Process-wide override installed by setSimdBackend(); kSimdNoOverride
 * means "fall through to env/detection". Plain int (not optional) so
 * static init is constant-initialized.
 */
constexpr int kSimdNoOverride = -1;
int g_forcedBackend = kSimdNoOverride;

SimdBackend
resolveFromEnvOnce()
{
    const char *env = std::getenv("TLC_SIMD");
    Expected<SimdBackend> r = resolveSimdBackend(env, detectSimdBackend());
    if (!r.ok()) {
        // A forced-but-impossible backend must not silently degrade:
        // the CI dispatch matrix relies on TLC_SIMD=X meaning X ran.
        panic("TLC_SIMD: %s", r.status().message().c_str());
    }
    return r.value();
}

} // namespace

const char *
simdBackendName(SimdBackend b)
{
    switch (b) {
      case SimdBackend::Scalar: return "scalar";
      case SimdBackend::Avx2: return "avx2";
      case SimdBackend::Neon: return "neon";
    }
    return "unknown";
}

bool
simdBackendCompiled(SimdBackend b)
{
    switch (b) {
      case SimdBackend::Scalar:
        return true;
      case SimdBackend::Avx2:
#if defined(TLC_SIMD_HAVE_AVX2)
        return true;
#else
        return false;
#endif
      case SimdBackend::Neon:
#if defined(TLC_SIMD_HAVE_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
simdBackendSupported(SimdBackend b)
{
    if (!simdBackendCompiled(b))
        return false;
    switch (b) {
      case SimdBackend::Scalar:
        return true;
      case SimdBackend::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case SimdBackend::Neon:
        // NEON is architectural on aarch64: compiled-in implies
        // supported.
        return true;
    }
    return false;
}

SimdBackend
detectSimdBackend()
{
    if (simdBackendSupported(SimdBackend::Avx2))
        return SimdBackend::Avx2;
    if (simdBackendSupported(SimdBackend::Neon))
        return SimdBackend::Neon;
    return SimdBackend::Scalar;
}

Expected<SimdBackend>
parseSimdBackend(const std::string &text)
{
    if (text == "scalar")
        return SimdBackend::Scalar;
    if (text == "avx2")
        return SimdBackend::Avx2;
    if (text == "neon")
        return SimdBackend::Neon;
    if (text == "native")
        return detectSimdBackend();
    return statusf(StatusCode::InvalidConfig,
                   "unknown SIMD backend '%s' "
                   "(expected scalar, avx2, neon, or native)",
                   text.c_str());
}

Expected<SimdBackend>
resolveSimdBackend(const char *override_text, SimdBackend detected)
{
    if (override_text == nullptr || override_text[0] == '\0')
        return detected;
    const std::string text(override_text);
    if (text == "native")
        return detected;
    Expected<SimdBackend> parsed = parseSimdBackend(text);
    if (!parsed.ok())
        return parsed;
    if (!simdBackendSupported(parsed.value())) {
        return statusf(StatusCode::InvalidConfig,
                       "backend '%s' is not %s",
                       simdBackendName(parsed.value()),
                       simdBackendCompiled(parsed.value())
                           ? "supported by this machine's CPU"
                           : "compiled into this binary");
    }
    return parsed;
}

SimdBackend
activeSimdBackend()
{
    if (g_forcedBackend != kSimdNoOverride)
        return static_cast<SimdBackend>(g_forcedBackend);
    static const SimdBackend resolved = resolveFromEnvOnce();
    return resolved;
}

void
setSimdBackend(SimdBackend b)
{
    if (!simdBackendSupported(b)) {
        panic("setSimdBackend: backend '%s' is not supported here",
              simdBackendName(b));
    }
    g_forcedBackend = static_cast<int>(b);
}

void
clearSimdBackendOverride()
{
    g_forcedBackend = kSimdNoOverride;
}

} // namespace tlc
