/**
 * @file
 * Crash flight recorder for supervised sweep workers: a bounded,
 * allocation-free ring of recent structured events (current design
 * point, current phase, free-form notes) that a forked worker keeps
 * up to date as it simulates, and flushes to the supervisor as one
 * final CRC frame — on clean exit through the normal writeFrame
 * path, or from inside a signal handler through the async-signal-
 * safe emergency path when the worker crashes or is killed by the
 * watchdog's SIGTERM.
 *
 * The point: when the retry/bisect machinery quarantines a design
 * point, the FailureReport entry can say *why* — "last seen
 * reporting point l1=8K/l2=64K during sim.batch" — instead of only
 * which worker died (docs/observability.md, flight-recorder
 * contract).
 *
 * Signal-safety: the emergency path does byte copies, table-driven
 * CRC and raw write() only. note()/setPoint()/setPhase() are for
 * normal code (they snprintf); every slot is fixed-size and
 * NUL-padded so a handler that interrupts a half-written note reads
 * a truncated string, never out of bounds. After the emergency
 * flush the handler restores the default disposition and re-raises,
 * so the parent still sees the real death signal (WIFSIGNALED
 * classification is preserved); SIGTERM flushes and _exit()s.
 *
 * One recorder per process (global()); the worker arms it with the
 * pipe fd right after fork. The parent never arms, so the handlers
 * are installed only in children.
 */

#ifndef TLC_UTIL_FLIGHT_RECORDER_HH
#define TLC_UTIL_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tlc {

/** A decoded flight-recorder frame, parent side. */
struct FlightInfo
{
    std::uint8_t reason = 0; ///< FlightRecorder::kReason*
    int signo = 0;           ///< delivering signal (kReasonSignal)
    std::string point;       ///< last design point label
    std::string phase;       ///< last phase ("sim.batch", "report")
    std::vector<std::string> notes; ///< ring contents, oldest first
};

class FlightRecorder
{
  public:
    static constexpr std::size_t kRingEntries = 16;
    static constexpr std::size_t kNoteBytes = 96;
    static constexpr std::size_t kLabelBytes = 64;

    /** Why a flight frame was emitted. */
    static constexpr std::uint8_t kReasonClean = 0;     ///< normal exit
    static constexpr std::uint8_t kReasonSignal = 1;    ///< crash/SIGTERM
    static constexpr std::uint8_t kReasonHang = 2;      ///< injected hang
    static constexpr std::uint8_t kReasonException = 3; ///< thrown C++

    /** Exit status of a worker that honored the watchdog's SIGTERM
     *  by flushing its flight frame and leaving. */
    static constexpr int kSigtermExit = 5;

    static FlightRecorder &global();

    FlightRecorder() = default;
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Clear point/phase/ring (a fresh worker starts clean). */
    void reset();

    /** Record the design point currently being worked (truncates). */
    void setPoint(const char *label);

    /** Record the current phase (truncates). */
    void setPhase(const char *phase);

    /** Append one printf-formatted note to the ring (normal path
     *  only — not async-signal-safe). */
    void note(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /**
     * Arm the emergency path: install handlers for the fatal
     * signals (SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT) and
     * SIGTERM that serialize this recorder into one frame tagged
     * @p frame_tag and write it to @p fd before dying/exiting.
     */
    void armEmergency(int fd, std::uint8_t frame_tag);

    /** Forget the armed fd (handlers stay installed but do nothing). */
    void disarm();

    bool armed() const;

    /**
     * Serialize into @p buf as a frame payload: u8 tag, u8 reason,
     * u32le signo, then length-prefixed (u8) point, phase and ring
     * notes (u8 count first). Returns bytes written; signal-safe.
     */
    std::size_t serializePayload(char *buf, std::size_t cap,
                                 std::uint8_t frame_tag,
                                 std::uint8_t reason, int signo) const;

    /** writeFrame a payload for @p reason to @p fd (normal path:
     *  clean exits and the injected-hang drill). */
    bool flush(int fd, std::uint8_t frame_tag, std::uint8_t reason);

    /** flush() to the armed fd, if armed (used by the supervisor's
     *  catch-all exception exit); no-op otherwise. */
    void flushIfArmed(std::uint8_t reason);

    /** Parse a flight payload; false on malformed layout. */
    static bool decodePayload(std::string_view payload,
                              std::uint8_t frame_tag, FlightInfo &out);

    /** Stable name of a kReason* value ("clean", "signal", ...). */
    static const char *reasonName(std::uint8_t reason);

  private:
    struct Slot
    {
        char text[kNoteBytes] = {};
    };

    char point_[kLabelBytes] = {};
    char phase_[kLabelBytes] = {};
    Slot ring_[kRingEntries];
    std::atomic<std::uint32_t> seq_{0};
};

} // namespace tlc

#endif // TLC_UTIL_FLIGHT_RECORDER_HH
