/**
 * @file
 * Minimal deterministic-friendly parallelism: a parallelFor over an
 * index range backed by a per-call worker team.
 *
 * Design points:
 *  - Worker count comes from setParallelWorkerCount() (a --threads
 *    flag), else the TLC_THREADS environment variable, else
 *    std::thread::hardware_concurrency(). TLC_THREADS=1 forces
 *    serial execution on the calling thread.
 *  - Callers own determinism: the body receives its index and must
 *    write only to per-index state, so results are ordered by input
 *    index regardless of which worker finishes first. The sweep
 *    engine relies on this to make parallel figure data
 *    byte-identical to serial figure data.
 *  - Exception-safe: the first exception thrown by any body stops
 *    further indices from being issued, the team is joined, and the
 *    exception is rethrown on the calling thread.
 *  - Nested calls are safe: a parallelFor issued from inside a
 *    worker runs serially on that worker instead of spawning a
 *    second team underneath the first.
 */

#ifndef TLC_UTIL_PARALLEL_HH
#define TLC_UTIL_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace tlc {

/**
 * The number of workers parallelFor would use right now:
 * the programmatic override if set, else TLC_THREADS (when it parses
 * to a positive integer), else hardware_concurrency(), never 0.
 */
unsigned parallelWorkerCount();

/**
 * Override the worker count programmatically (the --threads flag of
 * the bench drivers). @p n = 0 clears the override, returning
 * control to TLC_THREADS / the hardware default.
 */
void setParallelWorkerCount(unsigned n);

/**
 * The current programmatic override, 0 when none is installed.
 * Lets a scoped override (SweepRequest::threads) restore whatever
 * was in effect before it.
 */
unsigned parallelWorkerOverride();

/** True while the calling thread is executing a parallelFor body. */
bool inParallelWorker();

/**
 * Stable worker index of the calling thread within the current
 * parallelFor: the calling thread is worker 0, spawned team members
 * are 1..workers-1. Outside a parallelFor (and on the serial fast
 * path) this is 0. The trace-event exporter uses it to give each
 * worker its own timeline track.
 */
unsigned parallelWorkerId();

/**
 * Run @p body(i) for every i in [0, n), distributing indices across
 * the worker team and blocking until all complete (or until a body
 * throws, in which case the remaining un-issued indices are skipped
 * and the first exception is rethrown here). Runs serially on the
 * calling thread when n <= 1, when only one worker is configured,
 * or when called from inside another parallelFor.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &body);

} // namespace tlc

#endif // TLC_UTIL_PARALLEL_HH
