/**
 * @file
 * JSON helper implementation: escaping, number formatting, and a
 * recursive-descent syntax checker.
 */

#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace tlc {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    // %.17g round-trips any double but prints 0.1 as
    // 0.10000000000000001; try increasing precision until the value
    // survives a parse round trip.
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        if (std::sscanf(buf, "%lf", &back) == 1 && back == v)
            break;
    }
    std::string out = buf;
    // "1e+06" is valid JSON, but "inf"/"nan" never reach here.
    return out;
}

// ---------------------------------------------------------------------
// Syntax checker
// ---------------------------------------------------------------------

namespace {

/** Cursor over the document; all check* functions advance it. */
struct Cursor
{
    const char *p;
    const char *end;

    bool eof() const { return p >= end; }
    char peek() const { return *p; }

    void skipWs()
    {
        while (p < end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
            ++p;
        }
    }

    bool consume(char c)
    {
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool literal(const char *lit)
    {
        const char *q = p;
        while (*lit) {
            if (q >= end || *q != *lit)
                return false;
            ++q;
            ++lit;
        }
        p = q;
        return true;
    }
};

bool checkValue(Cursor &c);

bool
checkString(Cursor &c)
{
    if (!c.consume('"'))
        return false;
    while (!c.eof()) {
        unsigned char ch = static_cast<unsigned char>(*c.p++);
        if (ch == '"')
            return true;
        if (ch < 0x20)
            return false; // raw control character
        if (ch == '\\') {
            if (c.eof())
                return false;
            char esc = *c.p++;
            switch (esc) {
              case '"':
              case '\\':
              case '/':
              case 'b':
              case 'f':
              case 'n':
              case 'r':
              case 't':
                break;
              case 'u':
                for (int i = 0; i < 4; ++i) {
                    if (c.eof() ||
                        !std::isxdigit(static_cast<unsigned char>(*c.p))) {
                        return false;
                    }
                    ++c.p;
                }
                break;
              default:
                return false;
            }
        }
    }
    return false; // unterminated
}

bool
checkNumber(Cursor &c)
{
    c.consume('-');
    if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek())))
        return false;
    if (!c.consume('0')) {
        while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
            ++c.p;
    }
    if (c.consume('.')) {
        if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek())))
            return false;
        while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
            ++c.p;
    }
    if (!c.eof() && (c.peek() == 'e' || c.peek() == 'E')) {
        ++c.p;
        if (!c.eof() && (c.peek() == '+' || c.peek() == '-'))
            ++c.p;
        if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek())))
            return false;
        while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
            ++c.p;
    }
    return true;
}

bool
checkObject(Cursor &c)
{
    if (!c.consume('{'))
        return false;
    c.skipWs();
    if (c.consume('}'))
        return true;
    for (;;) {
        c.skipWs();
        if (!checkString(c))
            return false;
        c.skipWs();
        if (!c.consume(':'))
            return false;
        if (!checkValue(c))
            return false;
        c.skipWs();
        if (c.consume('}'))
            return true;
        if (!c.consume(','))
            return false;
    }
}

bool
checkArray(Cursor &c)
{
    if (!c.consume('['))
        return false;
    c.skipWs();
    if (c.consume(']'))
        return true;
    for (;;) {
        if (!checkValue(c))
            return false;
        c.skipWs();
        if (c.consume(']'))
            return true;
        if (!c.consume(','))
            return false;
    }
}

bool
checkValue(Cursor &c)
{
    c.skipWs();
    if (c.eof())
        return false;
    switch (c.peek()) {
      case '{':
        return checkObject(c);
      case '[':
        return checkArray(c);
      case '"':
        return checkString(c);
      case 't':
        return c.literal("true");
      case 'f':
        return c.literal("false");
      case 'n':
        return c.literal("null");
      default:
        return checkNumber(c);
    }
}

} // namespace

bool
jsonSyntaxOk(const std::string &text)
{
    Cursor c{text.data(), text.data() + text.size()};
    if (!checkValue(c))
        return false;
    c.skipWs();
    return c.eof();
}

} // namespace tlc
