/**
 * @file
 * JSON helper implementation: escaping, number formatting, and a
 * recursive-descent syntax checker.
 */

#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace tlc {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    // %.17g round-trips any double but prints 0.1 as
    // 0.10000000000000001; try increasing precision until the value
    // survives a parse round trip.
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        if (std::sscanf(buf, "%lf", &back) == 1 && back == v)
            break;
    }
    std::string out = buf;
    // "1e+06" is valid JSON, but "inf"/"nan" never reach here.
    return out;
}

// ---------------------------------------------------------------------
// Syntax checker
// ---------------------------------------------------------------------

namespace {

/** Cursor over the document; all check* functions advance it. */
struct Cursor
{
    const char *p;
    const char *end;

    bool eof() const { return p >= end; }
    char peek() const { return *p; }

    void skipWs()
    {
        while (p < end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
            ++p;
        }
    }

    bool consume(char c)
    {
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    bool literal(const char *lit)
    {
        const char *q = p;
        while (*lit) {
            if (q >= end || *q != *lit)
                return false;
            ++q;
            ++lit;
        }
        p = q;
        return true;
    }
};

bool checkValue(Cursor &c);

bool
checkString(Cursor &c)
{
    if (!c.consume('"'))
        return false;
    while (!c.eof()) {
        unsigned char ch = static_cast<unsigned char>(*c.p++);
        if (ch == '"')
            return true;
        if (ch < 0x20)
            return false; // raw control character
        if (ch == '\\') {
            if (c.eof())
                return false;
            char esc = *c.p++;
            switch (esc) {
              case '"':
              case '\\':
              case '/':
              case 'b':
              case 'f':
              case 'n':
              case 'r':
              case 't':
                break;
              case 'u':
                for (int i = 0; i < 4; ++i) {
                    if (c.eof() ||
                        !std::isxdigit(static_cast<unsigned char>(*c.p))) {
                        return false;
                    }
                    ++c.p;
                }
                break;
              default:
                return false;
            }
        }
    }
    return false; // unterminated
}

bool
checkNumber(Cursor &c)
{
    c.consume('-');
    if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek())))
        return false;
    if (!c.consume('0')) {
        while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
            ++c.p;
    }
    if (c.consume('.')) {
        if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek())))
            return false;
        while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
            ++c.p;
    }
    if (!c.eof() && (c.peek() == 'e' || c.peek() == 'E')) {
        ++c.p;
        if (!c.eof() && (c.peek() == '+' || c.peek() == '-'))
            ++c.p;
        if (c.eof() || !std::isdigit(static_cast<unsigned char>(c.peek())))
            return false;
        while (!c.eof() && std::isdigit(static_cast<unsigned char>(c.peek())))
            ++c.p;
    }
    return true;
}

bool
checkObject(Cursor &c)
{
    if (!c.consume('{'))
        return false;
    c.skipWs();
    if (c.consume('}'))
        return true;
    for (;;) {
        c.skipWs();
        if (!checkString(c))
            return false;
        c.skipWs();
        if (!c.consume(':'))
            return false;
        if (!checkValue(c))
            return false;
        c.skipWs();
        if (c.consume('}'))
            return true;
        if (!c.consume(','))
            return false;
    }
}

bool
checkArray(Cursor &c)
{
    if (!c.consume('['))
        return false;
    c.skipWs();
    if (c.consume(']'))
        return true;
    for (;;) {
        if (!checkValue(c))
            return false;
        c.skipWs();
        if (c.consume(']'))
            return true;
        if (!c.consume(','))
            return false;
    }
}

bool
checkValue(Cursor &c)
{
    c.skipWs();
    if (c.eof())
        return false;
    switch (c.peek()) {
      case '{':
        return checkObject(c);
      case '[':
        return checkArray(c);
      case '"':
        return checkString(c);
      case 't':
        return c.literal("true");
      case 'f':
        return c.literal("false");
      case 'n':
        return c.literal("null");
      default:
        return checkNumber(c);
    }
}

} // namespace

bool
jsonSyntaxOk(const std::string &text)
{
    Cursor c{text.data(), text.data() + text.size()};
    if (!checkValue(c))
        return false;
    c.skipWs();
    return c.eof();
}

// ---------------------------------------------------------------------
// Value parser
// ---------------------------------------------------------------------

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.num_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.type_ = Type::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::vector<Member> members)
{
    JsonValue v;
    v.type_ = Type::Object;
    v.members_ = std::move(members);
    return v;
}

bool
JsonValue::boolean() const
{
    tlc_assert(type_ == Type::Bool, "JsonValue is not a bool");
    return bool_;
}

double
JsonValue::number() const
{
    tlc_assert(type_ == Type::Number, "JsonValue is not a number");
    return num_;
}

const std::string &
JsonValue::str() const
{
    tlc_assert(type_ == Type::String, "JsonValue is not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    tlc_assert(type_ == Type::Array, "JsonValue is not an array");
    return items_;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    tlc_assert(type_ == Type::Object, "JsonValue is not an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    tlc_assert(type_ == Type::Object, "JsonValue is not an object");
    for (const auto &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

Expected<std::uint64_t>
JsonValue::asU64() const
{
    if (type_ != Type::Number)
        return statusf(StatusCode::ParseError, "expected an integer");
    constexpr double kMaxExact = 9007199254740992.0; // 2^53
    if (num_ < 0 || num_ > kMaxExact || num_ != std::floor(num_))
        return statusf(StatusCode::ParseError,
                       "expected a non-negative integer, got %s",
                       jsonNumber(num_).c_str());
    return static_cast<std::uint64_t>(num_);
}

namespace {

constexpr int kMaxParseDepth = 64;

/** Recursive-descent parser building JsonValue trees. */
struct Parser
{
    Cursor c;
    Status error; ///< first failure, with byte offset context
    const char *begin;

    Status fail(const char *what)
    {
        if (error.ok()) {
            error = statusf(StatusCode::ParseError,
                            "JSON parse error at byte %zu: %s",
                            static_cast<std::size_t>(c.p - begin), what);
        }
        return error;
    }

    bool parseString(std::string &out)
    {
        if (!c.consume('"')) {
            fail("expected a string");
            return false;
        }
        out.clear();
        while (!c.eof()) {
            unsigned char ch = static_cast<unsigned char>(*c.p++);
            if (ch == '"')
                return true;
            if (ch < 0x20) {
                fail("raw control character in string");
                return false;
            }
            if (ch != '\\') {
                out += static_cast<char>(ch);
                continue;
            }
            if (c.eof())
                break;
            char esc = *c.p++;
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the matching low half.
                    if (!c.literal("\\u")) {
                        fail("lone high surrogate in \\u escape");
                        return false;
                    }
                    unsigned lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF) {
                        fail("invalid low surrogate in \\u escape");
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("lone low surrogate in \\u escape");
                    return false;
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape character");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool parseHex4(unsigned &out)
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            if (c.eof() ||
                !std::isxdigit(static_cast<unsigned char>(*c.p))) {
                fail("invalid \\u escape");
                return false;
            }
            char h = *c.p++;
            unsigned d;
            if (h >= '0' && h <= '9')
                d = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                d = static_cast<unsigned>(h - 'a' + 10);
            else
                d = static_cast<unsigned>(h - 'A' + 10);
            v = (v << 4) | d;
        }
        out = v;
        return true;
    }

    static void appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const char *start = c.p;
        if (!checkNumber(c)) {
            fail("invalid number");
            return false;
        }
        std::string digits(start, c.p);
        out = JsonValue::makeNumber(std::strtod(digits.c_str(), nullptr));
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxParseDepth) {
            fail("nesting deeper than 64 levels");
            return false;
        }
        c.skipWs();
        if (c.eof()) {
            fail("unexpected end of document");
            return false;
        }
        switch (c.peek()) {
          case '{': {
            ++c.p;
            std::vector<JsonValue::Member> members;
            c.skipWs();
            if (c.consume('}')) {
                out = JsonValue::makeObject(std::move(members));
                return true;
            }
            for (;;) {
                c.skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                for (const auto &m : members) {
                    if (m.first == key) {
                        fail("duplicate object key");
                        return false;
                    }
                }
                c.skipWs();
                if (!c.consume(':')) {
                    fail("expected ':' after object key");
                    return false;
                }
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                members.emplace_back(std::move(key), std::move(v));
                c.skipWs();
                if (c.consume('}'))
                    break;
                if (!c.consume(',')) {
                    fail("expected ',' or '}' in object");
                    return false;
                }
            }
            out = JsonValue::makeObject(std::move(members));
            return true;
          }
          case '[': {
            ++c.p;
            std::vector<JsonValue> items;
            c.skipWs();
            if (c.consume(']')) {
                out = JsonValue::makeArray(std::move(items));
                return true;
            }
            for (;;) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                items.push_back(std::move(v));
                c.skipWs();
                if (c.consume(']'))
                    break;
                if (!c.consume(',')) {
                    fail("expected ',' or ']' in array");
                    return false;
                }
            }
            out = JsonValue::makeArray(std::move(items));
            return true;
          }
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue::makeString(std::move(s));
            return true;
          }
          case 't':
            if (!c.literal("true")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue::makeBool(true);
            return true;
          case 'f':
            if (!c.literal("false")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue::makeBool(false);
            return true;
          case 'n':
            if (!c.literal("null")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue{};
            return true;
          default:
            return parseNumber(out);
        }
    }
};

} // namespace

Expected<JsonValue>
jsonParse(const std::string &text)
{
    Parser p{Cursor{text.data(), text.data() + text.size()}, Status{},
             text.data()};
    JsonValue v;
    if (!p.parseValue(v, 0))
        return p.error;
    p.c.skipWs();
    if (!p.c.eof()) {
        p.fail("trailing garbage after document");
        return p.error;
    }
    return v;
}

} // namespace tlc
