/**
 * @file
 * Structured, recoverable error reporting.
 *
 * The logging layer (logging.hh) handles the unrecoverable end of
 * the spectrum: panic() for internal invariant violations, fatal()
 * for user errors in CLI mains. Everything in between — a corrupt
 * trace byte, a degenerate cache geometry, an unreadable benchmark
 * file — must NOT abort a multi-hour design-space sweep. Library
 * code reports such failures as a tlc::Status (or tlc::Expected<T>
 * when a value is produced on success) and lets the caller decide
 * whether to skip the design point, retry, or exit.
 *
 * Conventions:
 *  - a default-constructed Status is success;
 *  - Status converts (explicitly) to bool as "is ok", so
 *    `if (!loadTraceFile(...))` keeps working at legacy call sites;
 *  - Status is [[nodiscard]]: dropping an error is a compile warning;
 *  - messages are complete sentences with the offending values
 *    embedded (built with statusf()), suitable for a FailureReport.
 */

#ifndef TLC_UTIL_STATUS_HH
#define TLC_UTIL_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace tlc {

/** Machine-inspectable failure categories. */
enum class StatusCode {
    Ok = 0,
    IoError,         ///< cannot open/read/write a file
    BadMagic,        ///< trace header magic bytes wrong
    VersionMismatch, ///< trace format version not understood
    Truncated,       ///< stream ended inside a header or record
    OverlongVarint,  ///< varint longer than 10 bytes / overflows u64
    TypeOutOfRange,  ///< reference type byte not instr/load/store
    CountTooLarge,   ///< record count exceeds the bytes that remain
    ChecksumMismatch,///< stored CRC disagrees with the payload
    ParseError,      ///< malformed text-format line
    InvalidConfig,   ///< cache/system parameters violate invariants
    UnknownName,     ///< lookup by name failed
    InternalError,   ///< none of the above (should be rare)
    ResourceExhausted, ///< out of disk/quota/file-size (ENOSPC class)
    WorkerCrash,     ///< isolated worker process died (signal/exit)
    WorkerTimeout    ///< isolated worker exceeded its watchdog budget
};

/** Short stable name of a code ("truncated", "bad-magic", ...). */
const char *statusCodeName(StatusCode code);

/**
 * The StatusCode best describing an errno value from a failed write:
 * ENOSPC/EDQUOT/EFBIG (the disk-full family) map to
 * ResourceExhausted so callers can tell "the disk is full" from
 * "the disk is broken" (EIO and everything else stays IoError).
 */
StatusCode statusCodeFromErrno(int err);

/**
 * The result of an operation that can fail recoverably: a code plus
 * a human-readable message. Cheap to move, comparable to ok().
 */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure with an explicit code and message. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    explicit operator bool() const { return ok(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "code-name: message", or "ok". */
    std::string toString() const;

    /**
     * A copy with @p context prepended to the message
     * ("gcc1.trc: <message>"); no-op on success.
     */
    Status withContext(const std::string &context) const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** Build a failure Status with a printf-formatted message. */
Status statusf(StatusCode code, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Either a value or the Status explaining why there is none.
 * Converts implicitly from both so `return statusf(...)` and
 * `return value` read naturally in a function returning Expected<T>.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}

    Expected(Status status) : status_(std::move(status))
    {
        tlc_assert(!status_.ok(),
                   "Expected<T> constructed from an OK status");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** The error; an OK status when a value is present. */
    const Status &status() const { return status_; }

    /** The value; asserts when the operation failed. */
    const T &value() const
    {
        tlc_assert(ok(), "value() on failed Expected: %s",
                   status_.message().c_str());
        return *value_;
    }
    T &value()
    {
        tlc_assert(ok(), "value() on failed Expected: %s",
                   status_.message().c_str());
        return *value_;
    }

    /** The value, or @p fallback when the operation failed. */
    T valueOr(T fallback) const
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace tlc

#endif // TLC_UTIL_STATUS_HH
