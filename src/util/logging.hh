/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors
 * (bad configuration or arguments), warn()/inform() are advisory.
 */

#ifndef TLC_UTIL_LOGGING_HH
#define TLC_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tlc {

/** Verbosity levels for status messages. */
enum class LogLevel {
    Quiet,   ///< only fatal/panic output
    Normal,  ///< warn + inform
    Verbose  ///< everything, including debug chatter
};

/** Set the global verbosity (default: Normal). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 * Use when the library itself is broken, never for user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, bad
 * arguments) and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Advisory warning; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose-only debug message. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert an invariant with a formatted message.
 * Active in all build types (unlike <cassert>).
 */
#define tlc_assert(cond, fmt, ...)                                       \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::tlc::panic("assertion '" #cond "' failed at " __FILE__     \
                         ":%d: " fmt, __LINE__ __VA_OPT__(, )            \
                         __VA_ARGS__);                                   \
        }                                                                \
    } while (0)

} // namespace tlc

#endif // TLC_UTIL_LOGGING_HH
