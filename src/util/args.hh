/**
 * @file
 * Minimal command-line argument parser for the example binaries and
 * bench drivers: --key=value / --key value / --flag.
 */

#ifndef TLC_UTIL_ARGS_HH
#define TLC_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tlc {

/**
 * Parsed command line. Unknown options are collected and can be
 * rejected by the caller; positional arguments are kept in order.
 */
class ArgParser
{
  public:
    ArgParser(int argc, const char *const *argv);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def = 0) const;
    double getDouble(const std::string &key, double def = 0.0) const;
    bool getBool(const std::string &key, bool def = false) const;

    const std::vector<std::string> &positional() const { return positional_; }
    const std::string &programName() const { return program_; }

    /** All option keys seen, for unknown-option checking. */
    std::vector<std::string> keys() const;

  private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

/**
 * Apply the flags every driver shares:
 *   --quiet / --verbose   set the log level (mutually exclusive)
 *   --threads=N           set the parallelFor worker count
 *                         (0 = TLC_THREADS / hardware default)
 *   --profile             enable the per-phase profiler; drivers
 *                         print Profiler::global().toText() at exit
 * Call once at the top of main(); examples and bench drivers all go
 * through here so the observability surface stays uniform.
 */
void applyStandardFlags(const ArgParser &args);

} // namespace tlc

#endif // TLC_UTIL_ARGS_HH
