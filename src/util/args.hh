/**
 * @file
 * Minimal command-line argument parser for the example binaries and
 * bench drivers (--key=value / --key value / --flag), plus the
 * tlc::cli options layer the sweep drivers share: one parse of the
 * common sweep flags (refs/backend/progress/store/telemetry) and one
 * TelemetrySession that owns the end-of-run artifact writing the
 * drivers used to duplicate line for line.
 */

#ifndef TLC_UTIL_ARGS_HH
#define TLC_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/trace_event.hh"

namespace tlc {

/**
 * Parsed command line. Unknown options are collected and can be
 * rejected by the caller; positional arguments are kept in order.
 */
class ArgParser
{
  public:
    ArgParser(int argc, const char *const *argv);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t def = 0) const;
    double getDouble(const std::string &key, double def = 0.0) const;
    bool getBool(const std::string &key, bool def = false) const;

    const std::vector<std::string> &positional() const { return positional_; }
    const std::string &programName() const { return program_; }

    /** All option keys seen, for unknown-option checking. */
    std::vector<std::string> keys() const;

  private:
    std::string program_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

/**
 * Apply the flags every driver shares:
 *   --quiet / --verbose   set the log level (mutually exclusive)
 *   --threads=N           set the parallelFor worker count
 *                         (0 = TLC_THREADS / hardware default)
 *   --profile             enable the per-phase profiler; drivers
 *                         print Profiler::global().toText() at exit
 * Call once at the top of main(); examples and bench drivers all go
 * through here so the observability surface stays uniform.
 */
void applyStandardFlags(const ArgParser &args);

namespace cli {

/**
 * The sweep flags every sweep driver accepts, parsed once. Values
 * are raw (strings, integers): this layer sits below core, so
 * interpretation that needs core types — backend names, store
 * opening, request decoding — happens in the driver or in
 * service/sweep_service.hh. sweepFlagsFromArgs() enforces the
 * cross-flag rules the drivers used to duplicate (--resume requires
 * --result-store and an existing file).
 */
struct SweepFlags
{
    std::uint64_t refs = 0;      ///< --refs trace length
    std::string backend;         ///< --backend (exact/analytic/...)
    bool progress = false;       ///< --progress stderr lines
    std::string traceOut;        ///< --trace-out timeline file
    std::string manifestPath;    ///< --manifest run-manifest file
    std::string metricsOut;      ///< --metrics-out registry dump
    std::string resultStore;     ///< --result-store sweep cache
    bool resume = false;         ///< --resume (store must exist)
    bool storeFsync = false;     ///< --store-fsync durability
    std::string requestFile;     ///< --request sweep-request JSON
    std::string statsOut;        ///< --stats-out accounting JSON
};

/** Parse the shared sweep flags (fatal on rule violations).
 *  @p default_refs seeds refs when --refs is absent. */
SweepFlags sweepFlagsFromArgs(const ArgParser &args,
                              std::int64_t default_refs);

/**
 * Owns a sweep driver's observability artifacts for the duration of
 * a run: construction enables the profiler when a manifest was
 * requested (phase times belong in the manifest) and activates the
 * trace-event recorder when --trace-out was given; finish() writes
 * the timeline, the run manifest and the metrics dump with the same
 * messages the drivers used to emit inline. The destructor
 * deactivates the recorder if finish() never ran (early exit).
 */
class TelemetrySession
{
  public:
    /** What the run did, for the manifest. */
    struct RunSummary
    {
        std::string workload;
        std::uint64_t traceRefs = 0;
        std::uint64_t pointsPriced = 0;
        std::uint64_t failures = 0;
        double wallSeconds = 0.0;
        std::string supervisorJson; ///< isolate-mode timelines ("" = none)
    };

    explicit TelemetrySession(const SweepFlags &flags);
    ~TelemetrySession();

    TelemetrySession(const TelemetrySession &) = delete;
    TelemetrySession &operator=(const TelemetrySession &) = delete;

    /** Write every requested artifact (call once, at end of run). */
    void finish(int argc, const char *const *argv,
                const RunSummary &summary);

  private:
    SweepFlags flags_;
    TraceEventRecorder recorder_;
    bool finished_ = false;
};

} // namespace cli

} // namespace tlc

#endif // TLC_UTIL_ARGS_HH
