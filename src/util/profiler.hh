/**
 * @file
 * Scoped phase profiler: RAII timers feeding per-phase wall-clock
 * aggregates, so a sweep can report where its time actually went
 * (trace load vs. cache simulation vs. timing/area/TPI models).
 *
 * Usage:
 *   {
 *       ScopedTimer t(phase::kSimL2);
 *       hierarchy.simulate(trace, warmup);
 *   } // merged into Profiler::global() at scope exit
 *
 * Thread safety: each ScopedTimer accumulates on its own thread (two
 * steady_clock reads, no shared state) and merges into the profiler
 * under one short mutex hold at scope exit, so the PR-2 worker team
 * can nest timers freely; phases are aggregated across threads.
 *
 * Overhead discipline: the profiler is disabled by default. A
 * ScopedTimer constructed while disabled reads one relaxed atomic
 * and never touches the clock, so instrumented code paths cost
 * nothing measurable when observability is off (the acceptance bar
 * bench_sweep_timing checks). Timers also sit at phase granularity —
 * once per design point or file, never per simulated reference.
 */

#ifndef TLC_UTIL_PROFILER_HH
#define TLC_UTIL_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace tlc {

/**
 * Canonical phase names, so call sites and dashboards agree on
 * spelling. Free-form names are also accepted.
 */
namespace phase {
inline constexpr const char *kTraceLoad = "trace.load";
inline constexpr const char *kSimL1 = "sim.l1";
inline constexpr const char *kSimL2 = "sim.l2";
inline constexpr const char *kSimBatch = "sim.batch";
inline constexpr const char *kAnalyticProfile = "analytic.profile";
inline constexpr const char *kModelTiming = "model.timing";
inline constexpr const char *kModelArea = "model.area";
inline constexpr const char *kModelTpi = "model.tpi";
inline constexpr const char *kSupervisorShard = "supervisor.shard";
inline constexpr const char *kSupervisorBackoff = "supervisor.backoff";
} // namespace phase

/** Aggregate wall-clock of one named phase across all threads. */
struct PhaseStats
{
    std::uint64_t calls = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t maxNs = 0;

    double totalSeconds() const { return totalNs * 1e-9; }
    double meanNs() const
    {
        return calls ? static_cast<double>(totalNs) / calls : 0.0;
    }
};

/** Per-phase aggregate store. Use global(); tests build their own. */
class Profiler
{
  public:
    Profiler() = default;
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** The process-wide profiler all ScopedTimers default to. */
    static Profiler &global();

    /** Turn timing on/off (default off). Existing aggregates stay. */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Merge one timed interval into @p phase (thread-safe). */
    void record(const char *phase, std::uint64_t ns);

    /**
     * Fold a whole foreign aggregate into @p phase: calls and total
     * time add, max takes the larger. This is how the shard
     * supervisor rolls a worker subprocess's streamed phase stats
     * into the parent profiler (docs/observability.md).
     */
    void merge(const std::string &phase, const PhaseStats &stats);

    /** Consistent copy of every phase aggregate, sorted by name. */
    std::map<std::string, PhaseStats> snapshot() const;

    /** Aligned text table: phase, calls, total ms, mean us, max us. */
    std::string toText() const;

    /** JSON object: {"phase": {"calls":N,"total_ms":..,...}, ...}. */
    std::string toJson(int indent = 2) const;

    /** Drop all aggregates (enabled state is unchanged). */
    void reset();

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::map<std::string, PhaseStats> phases_;
};

/**
 * RAII phase timer. Construction samples the clock only when the
 * target profiler is enabled; destruction merges the elapsed time.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *phase)
        : ScopedTimer(phase, Profiler::global())
    {
    }

    ScopedTimer(const char *phase, Profiler &profiler)
        : profiler_(profiler), phase_(phase), armed_(profiler.enabled())
    {
        if (armed_)
            start_ = std::chrono::steady_clock::now();
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (!armed_)
            return;
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
        profiler_.record(phase_, static_cast<std::uint64_t>(ns));
    }

  private:
    Profiler &profiler_;
    const char *phase_;
    bool armed_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace tlc

#endif // TLC_UTIL_PROFILER_HH
