/**
 * @file
 * Persistent, append-only, content-addressed result store.
 *
 * A ResultStore is one file plus an in-memory index: records are
 * (key, payload) pairs appended to the file and never rewritten, so
 * a process killed mid-append loses at most the record in flight.
 * On open() the file is scanned once, every intact record enters
 * the index (later records with the same key supersede earlier
 * ones), and damage is handled fail-soft:
 *
 *  - a record whose CRC-32 disagrees with its bytes is skipped (it
 *    simply no longer answers lookups — the caller recomputes and
 *    appends a fresh copy);
 *  - a truncated or structurally corrupt tail ends the scan, and
 *    the file is cut back to the last intact record before new
 *    appends go after it, so one torn write cannot poison every
 *    subsequent record.
 *
 * Only a damaged HEADER (wrong magic or an unknown version) refuses
 * to open: appending to a file we cannot parse at all could destroy
 * someone else's data, so that is reported as a Status and the
 * store stays disabled.
 *
 * The store is generic — keys and payloads are opaque byte strings.
 * Domain code (core/sweep_cache.hh) decides what the key hashes and
 * how payloads serialize. Thread safety: every public method takes
 * an internal mutex; appends flush before returning.
 *
 * File layout (all integers little-endian):
 *   header:  "TLRS" magic, u32 format version (= 1)
 *   record:  u32 key_bytes, u32 payload_bytes, key, payload,
 *            u32 crc32(key + payload)
 */

#ifndef TLC_UTIL_RESULT_STORE_HH
#define TLC_UTIL_RESULT_STORE_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.hh"

namespace tlc {

/** Magic bytes that open a result-store file. */
extern const char kResultStoreMagic[4];
/** On-disk format version understood by this build. */
constexpr std::uint32_t kResultStoreVersion = 1;

/** Sanity caps: a record whose declared lengths exceed these is
 *  treated as structural corruption (scan stops, tail truncated). */
constexpr std::uint32_t kResultStoreMaxKeyBytes = 1u << 12;
constexpr std::uint32_t kResultStoreMaxPayloadBytes = 1u << 20;

/** Durability knobs of one open() call. */
struct ResultStoreOptions
{
    /**
     * fsync the file after every successful append. Off by default
     * (an OS-level flush already bounds loss to a crash of the whole
     * machine); the sweep supervisor turns it on for its workers so
     * a SIGKILL'd run loses at most the record in flight even under
     * power failure.
     */
    bool fsyncOnCommit = false;
};

class ResultStore
{
  public:
    ResultStore() = default;
    ~ResultStore();
    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Open (creating if absent) the store at @p path, scan existing
     * records into the index, and recover from a damaged tail by
     * truncating back to the last intact record. Corrupt individual
     * records are counted in droppedRecords() and skipped — open()
     * still succeeds. Fails only when the file cannot be created,
     * or its header names a different magic/version (appending to
     * an alien file would destroy it).
     */
    Status open(const std::string &path,
                const ResultStoreOptions &options = {});

    /** Flush and close; lookups fail and appends error afterwards. */
    void close();

    bool isOpen() const;
    const std::string &path() const { return path_; }

    /** Keys currently answering lookups. */
    std::size_t size() const;

    /** Records skipped during open(): CRC mismatches plus one for a
     *  truncated/structurally corrupt tail. */
    std::uint64_t droppedRecords() const;

    /** Fetch @p key's payload into @p payload (latest append wins). */
    bool lookup(const std::string &key, std::string *payload) const;

    /**
     * Append one record and flush it to the OS (and fsync it, with
     * ResultStoreOptions::fsyncOnCommit). The index is updated so an
     * immediate lookup() sees the new payload. Oversized keys or
     * payloads (see the caps above) are rejected, not written.
     *
     * A failed write (ENOSPC, EIO, quota/file-size limits) is
     * surfaced at once as a Status whose code classifies the cause
     * (ResourceExhausted for the disk-full family, IoError
     * otherwise), and the file is cut back to the last intact record
     * immediately — a short write mid-record no longer has to wait
     * for the next open() to be repaired, and later appends in this
     * process never land after a torn record.
     */
    Status append(const std::string &key, std::string_view payload);

  private:
    Status scan();

    mutable std::mutex mu_;
    std::string path_;
    std::FILE *file_ = nullptr;
    ResultStoreOptions options_;
    std::map<std::string, std::string> index_;
    std::uint64_t dropped_ = 0;
    /** Byte just past the last intact record (append repair point). */
    long validEnd_ = 0;
};

} // namespace tlc

#endif // TLC_UTIL_RESULT_STORE_HH
