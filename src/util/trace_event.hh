/**
 * @file
 * Chrome trace-event exporter: records timed slices of work and
 * writes them in the Trace Event Format that chrome://tracing and
 * Perfetto (ui.perfetto.dev) open directly.
 *
 * The sweep engine records one complete ("ph":"X") event per design
 * point, on the track of the worker thread that priced it, which
 * gives the first real view into parallel-sweep load balance: open
 * the file and see which worker did what, when, and for how long.
 *
 * Since the cross-process telemetry work the timeline is also
 * multi-process: the shard supervisor imports the slices a forked
 * worker subprocess streamed back over the frame pipe, each under
 * its own pid (the supervisor itself is pid 1), so an isolated sweep
 * renders as one named track per worker attempt next to the
 * supervisor's own shard slices. Worker-side recorders are built
 * with the parent's epoch — steady_clock is system-wide on Linux, so
 * child timestamps land directly on the parent timeline.
 *
 * Recording is opt-in: nothing is recorded unless a recorder has
 * been installed with setActive() (the sweep drivers do this when
 * --trace-out=FILE is given). Instrumentation sites check active()
 * — a single relaxed atomic load — and skip all work when it is
 * null, so the exporter costs nothing when off.
 *
 * Thread safety: complete() appends under a mutex; events arrive at
 * design-point granularity (well below contention rates), and the
 * two clock reads bracketing the slice happen lock-free on the
 * recording thread.
 */

#ifndef TLC_UTIL_TRACE_EVENT_HH
#define TLC_UTIL_TRACE_EVENT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.hh"

namespace tlc {

/**
 * One complete ("ph":"X") slice. Public so the shard supervisor can
 * snapshot a worker recorder, ship the events over the frame pipe,
 * and import them into the parent recorder under the worker's pid.
 */
struct TraceEvent
{
    std::string name;
    std::string category;
    std::string argsJson;
    std::uint64_t tsUs = 0;
    std::uint64_t durUs = 0;
    std::uint32_t pid = 1;
    std::uint32_t tid = 0;
};

/** Collects trace events; write them out once the run completes. */
class TraceEventRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Timestamps are recorded relative to construction time. */
    TraceEventRecorder();

    /**
     * Timestamps relative to @p epoch: how a forked worker keeps its
     * slices on the supervisor's timeline (pass the parent
     * recorder's epoch() across fork).
     */
    explicit TraceEventRecorder(Clock::time_point epoch);

    TraceEventRecorder(const TraceEventRecorder &) = delete;
    TraceEventRecorder &operator=(const TraceEventRecorder &) = delete;

    /** The zero point every tsUs is measured from. */
    Clock::time_point epoch() const { return t0_; }

    /**
     * The currently installed recorder, or nullptr when recording
     * is off. Instrumentation sites must null-check.
     */
    static TraceEventRecorder *active();

    /**
     * Install @p r as the process-wide recorder (nullptr uninstalls).
     * Install before starting a sweep and uninstall before the
     * recorder is destroyed; not intended to be swapped mid-sweep.
     */
    static void setActive(TraceEventRecorder *r);

    /**
     * Record one complete slice: @p name ran on track @p tid from
     * @p begin to @p end. @p args_json, when non-empty, must be a
     * complete JSON object ("{...}") and becomes the event's args
     * (shown in the trace viewer's detail pane).
     */
    void complete(std::string name, std::string category,
                  Clock::time_point begin, Clock::time_point end,
                  std::uint32_t tid, std::string args_json = "");

    /** A consistent copy of every recorded slice. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Append foreign slices under process id @p pid, naming that
     * pid's track @p process_name in the output ("worker 3: shard
     * [32..64) attempt 1"). The events' own pid fields are
     * overwritten with @p pid.
     */
    void import(const std::vector<TraceEvent> &events,
                std::uint32_t pid, const std::string &process_name);

    /** Number of slices recorded so far. */
    std::size_t size() const;

    /**
     * Write the JSON document: a {"traceEvents": [...]} object
     * holding one thread_name metadata event per track (plus one
     * process_name metadata event per imported worker pid) and every
     * recorded slice.
     */
    void write(std::ostream &os) const;

    /** write() to @p path; IoError Status if the file can't be written. */
    Status writeFile(const std::string &path) const;

  private:
    Clock::time_point t0_;
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::map<std::uint32_t, std::string> processNames_;
};

} // namespace tlc

#endif // TLC_UTIL_TRACE_EVENT_HH
