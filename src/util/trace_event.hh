/**
 * @file
 * Chrome trace-event exporter: records timed slices of work and
 * writes them in the Trace Event Format that chrome://tracing and
 * Perfetto (ui.perfetto.dev) open directly.
 *
 * The sweep engine records one complete ("ph":"X") event per design
 * point, on the track of the worker thread that priced it, which
 * gives the first real view into parallel-sweep load balance: open
 * the file and see which worker did what, when, and for how long.
 *
 * Recording is opt-in: nothing is recorded unless a recorder has
 * been installed with setActive() (the sweep drivers do this when
 * --trace-out=FILE is given). Instrumentation sites check active()
 * — a single relaxed atomic load — and skip all work when it is
 * null, so the exporter costs nothing when off.
 *
 * Thread safety: complete() appends under a mutex; events arrive at
 * design-point granularity (well below contention rates), and the
 * two clock reads bracketing the slice happen lock-free on the
 * recording thread.
 */

#ifndef TLC_UTIL_TRACE_EVENT_HH
#define TLC_UTIL_TRACE_EVENT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.hh"

namespace tlc {

/** Collects trace events; write them out once the run completes. */
class TraceEventRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Timestamps are recorded relative to construction time. */
    TraceEventRecorder();
    TraceEventRecorder(const TraceEventRecorder &) = delete;
    TraceEventRecorder &operator=(const TraceEventRecorder &) = delete;

    /**
     * The currently installed recorder, or nullptr when recording
     * is off. Instrumentation sites must null-check.
     */
    static TraceEventRecorder *active();

    /**
     * Install @p r as the process-wide recorder (nullptr uninstalls).
     * Install before starting a sweep and uninstall before the
     * recorder is destroyed; not intended to be swapped mid-sweep.
     */
    static void setActive(TraceEventRecorder *r);

    /**
     * Record one complete slice: @p name ran on track @p tid from
     * @p begin to @p end. @p args_json, when non-empty, must be a
     * complete JSON object ("{...}") and becomes the event's args
     * (shown in the trace viewer's detail pane).
     */
    void complete(std::string name, std::string category,
                  Clock::time_point begin, Clock::time_point end,
                  std::uint32_t tid, std::string args_json = "");

    /** Number of slices recorded so far. */
    std::size_t size() const;

    /**
     * Write the JSON document: a {"traceEvents": [...]} object
     * holding one thread_name metadata event per track plus every
     * recorded slice.
     */
    void write(std::ostream &os) const;

    /** write() to @p path; IoError Status if the file can't be written. */
    Status writeFile(const std::string &path) const;

  private:
    struct Event
    {
        std::string name;
        std::string category;
        std::string argsJson;
        std::uint64_t tsUs;
        std::uint64_t durUs;
        std::uint32_t tid;
    };

    Clock::time_point t0_;
    mutable std::mutex mu_;
    std::vector<Event> events_;
};

} // namespace tlc

#endif // TLC_UTIL_TRACE_EVENT_HH
