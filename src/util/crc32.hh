/**
 * @file
 * CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte ranges.
 *
 * Used wherever on-disk records need tamper evidence: the result
 * store (util/result_store.hh) checksums every appended record, and
 * the compressed trace format (trace/io.hh, version 3) carries a
 * whole-stream checksum so a flipped payload byte cannot silently
 * decode into a different — but structurally valid — trace.
 *
 * Incremental use: seed with kCrc32Init, fold ranges with
 * crc32Update(), finish with crc32Final(). crc32() does all three
 * for a single contiguous range.
 */

#ifndef TLC_UTIL_CRC32_HH
#define TLC_UTIL_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace tlc {

inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;

namespace detail {

/** The byte-at-a-time lookup table for the reflected polynomial. */
inline const std::array<std::uint32_t, 256> &
crc32Table()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** Fold @p n bytes at @p data into a running CRC state. */
inline std::uint32_t
crc32Update(std::uint32_t state, const void *data, std::size_t n)
{
    const auto &table = detail::crc32Table();
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i)
        state = table[(state ^ p[i]) & 0xff] ^ (state >> 8);
    return state;
}

/** Finalize a running CRC state into the published checksum. */
inline std::uint32_t
crc32Final(std::uint32_t state)
{
    return state ^ 0xffffffffu;
}

/** One-shot CRC-32 of a contiguous byte range. */
inline std::uint32_t
crc32(const void *data, std::size_t n)
{
    return crc32Final(crc32Update(kCrc32Init, data, n));
}

} // namespace tlc

#endif // TLC_UTIL_CRC32_HH
