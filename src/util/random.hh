/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (trace generators,
 * pseudo-random cache replacement) draws from Pcg32 streams with
 * fixed seeds so that every experiment is bit-reproducible.
 */

#ifndef TLC_UTIL_RANDOM_HH
#define TLC_UTIL_RANDOM_HH

#include <cstdint>

namespace tlc {

/**
 * PCG32 generator (O'Neill, pcg-random.org; XSH-RR variant).
 *
 * Small, fast, statistically strong, and supports independent
 * streams via the stream-selector constructor argument.
 */
class Pcg32
{
  public:
    /** Construct with a seed and an optional independent stream id. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next uniform 32-bit value. */
    std::uint32_t next();

    /** Uniform integer in [0, bound) with no modulo bias. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Geometric(p) sample: number of failures before first success. */
    std::uint32_t nextGeometric(double p);

    /** Exponential sample with the given mean. */
    double nextExponential(double mean);

    /**
     * Zipf-like sample over [0, n): rank r drawn with probability
     * proportional to 1 / (r + 1)^s. Uses rejection-inversion
     * (Hormann & Derflinger) so setup is O(1).
     */
    std::uint32_t nextZipf(std::uint32_t n, double s);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace tlc

#endif // TLC_UTIL_RANDOM_HH
