/**
 * @file
 * ASCII scatter/line plots for terminal output.
 *
 * The paper's figures are log-log plots of TPI against area; the
 * bench drivers reproduce the numbers as tables and use this plotter
 * to also render the figure's shape directly in the terminal, so the
 * staircases and crossovers can be eyeballed without a plotting
 * pipeline.
 */

#ifndef TLC_UTIL_PLOT_HH
#define TLC_UTIL_PLOT_HH

#include <ostream>
#include <string>
#include <vector>

namespace tlc {

/**
 * A multi-series 2-D scatter plot rendered with ASCII characters,
 * with optional log scaling per axis.
 */
class ScatterPlot
{
  public:
    /**
     * @param width  plot-area columns (without axis decoration)
     * @param height plot-area rows
     * @param log_x  logarithmic x axis
     * @param log_y  logarithmic y axis
     */
    ScatterPlot(unsigned width = 72, unsigned height = 20,
                bool log_x = true, bool log_y = true);

    /** Register a series with a one-character marker. */
    void addSeries(const std::string &name, char marker);

    /** Add one point to a registered series. */
    void addPoint(const std::string &series, double x, double y);

    /** Axis labels shown under/next to the plot. */
    void setXLabel(std::string label) { xlabel_ = std::move(label); }
    void setYLabel(std::string label) { ylabel_ = std::move(label); }

    /** Number of points across all series. */
    std::size_t numPoints() const;

    /**
     * Render the plot. Later-registered series overdraw earlier
     * ones where points collide. No-op (with a note) when empty.
     */
    void render(std::ostream &os) const;

  private:
    struct Series
    {
        std::string name;
        char marker;
        std::vector<std::pair<double, double>> points;
    };

    const Series *find(const std::string &name) const;
    Series *find(const std::string &name);

    unsigned width_;
    unsigned height_;
    bool logX_;
    bool logY_;
    std::string xlabel_;
    std::string ylabel_;
    std::vector<Series> series_;
};

} // namespace tlc

#endif // TLC_UTIL_PLOT_HH
