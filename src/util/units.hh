/**
 * @file
 * Unit helpers: byte-size literals and time conversions shared by
 * the timing and performance models.
 */

#ifndef TLC_UTIL_UNITS_HH
#define TLC_UTIL_UNITS_HH

#include <cstdint>

namespace tlc {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;

/** User-defined literal: 32_KiB. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v * KiB;
}

/** User-defined literal: 1_MiB. */
constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v * MiB;
}

/**
 * Round @p time up to the next multiple of @p quantum
 * (used for L2 cycle and off-chip times, which the paper rounds to
 * integer multiples of the processor/L1 cycle time).
 */
constexpr double
roundUpToMultiple(double time, double quantum)
{
    if (quantum <= 0.0)
        return time;
    // Tolerate tiny floating-point excess so that an exact multiple
    // does not round to the next step.
    double ratio = time / quantum;
    auto n = static_cast<std::uint64_t>(ratio);
    if (ratio - static_cast<double>(n) > 1e-9)
        ++n;
    if (n == 0)
        n = 1;
    return static_cast<double>(n) * quantum;
}

/** Integer number of quanta after rounding up. */
constexpr unsigned
cyclesCeil(double time, double quantum)
{
    return static_cast<unsigned>(roundUpToMultiple(time, quantum) /
                                 quantum + 0.5);
}

} // namespace tlc

#endif // TLC_UTIL_UNITS_HH
