/**
 * @file
 * Table printer implementation.
 */

#include "table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace tlc {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    tlc_assert(!header_.empty(), "table needs at least one column");
}

void
Table::beginRow()
{
    if (!rows_.empty() && rows_.back().size() != header_.size()) {
        panic("previous table row has %zu cells, expected %zu",
              rows_.back().size(), header_.size());
    }
    rows_.emplace_back();
}

void
Table::cell(const std::string &value)
{
    tlc_assert(!rows_.empty(), "cell() before beginRow()");
    tlc_assert(rows_.back().size() < header_.size(),
               "too many cells in row");
    rows_.back().push_back(value);
}

void
Table::cell(const char *value)
{
    cell(std::string(value));
}

void
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    cell(os.str());
}

void
Table::cell(std::uint64_t value)
{
    cell(std::to_string(value));
}

void
Table::cell(int value)
{
    cell(std::to_string(value));
}

void
Table::cell(unsigned value)
{
    cell(std::to_string(value));
}

void
Table::addRow(std::initializer_list<std::string> cells)
{
    tlc_assert(cells.size() == header_.size(),
               "row has %zu cells, expected %zu",
               cells.size(), header_.size());
    beginRow();
    for (const auto &c : cells)
        cell(c);
}

const std::string &
Table::at(std::size_t row, std::size_t col) const
{
    tlc_assert(row < rows_.size() && col < header_.size(),
               "table index (%zu, %zu) out of range", row, col);
    return rows_[row][col];
}

void
Table::printAscii(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    print_row(header_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total ? total - 2 : 0, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
formatSize(std::uint64_t bytes)
{
    if (bytes == 0)
        return "0";
    if (bytes % (1024 * 1024) == 0)
        return std::to_string(bytes / (1024 * 1024)) + "M";
    if (bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "K";
    return std::to_string(bytes);
}

std::string
formatConfigLabel(std::uint64_t l1_bytes, std::uint64_t l2_bytes)
{
    std::string l1 = (l1_bytes % 1024 == 0) ?
        std::to_string(l1_bytes / 1024) : std::to_string(l1_bytes);
    std::string l2 = (l2_bytes % 1024 == 0) ?
        std::to_string(l2_bytes / 1024) : std::to_string(l2_bytes);
    return l1 + ":" + l2;
}

} // namespace tlc
