/**
 * @file
 * Tiny JSON helpers for the observability layer.
 *
 * The metrics registry, profiler, trace-event exporter and run
 * manifest all emit JSON by hand (this repository deliberately has
 * no third-party dependencies). This header centralises the two
 * things hand-written JSON gets wrong: string escaping and numeric
 * formatting. It also provides a strict syntax checker so tests and
 * tools can assert "this blob parses as JSON" without a parser
 * library.
 */

#ifndef TLC_UTIL_JSON_HH
#define TLC_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hh"

namespace tlc {

/** @p s with JSON string escaping applied (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

/** @p s escaped and double-quoted, ready to splice into JSON. */
std::string jsonQuote(const std::string &s);

/**
 * A double rendered as a valid JSON number: finite values use
 * shortest round-trip formatting; NaN and infinities (which JSON
 * cannot represent) become 0 with no complaint, matching how the
 * rest of the codebase treats undefined ratios.
 */
std::string jsonNumber(double v);

/**
 * Strict syntax check of one complete JSON document (RFC 8259:
 * any value at the top level, no trailing garbage). Validates
 * structure only — no limits on depth or duplicate keys.
 */
bool jsonSyntaxOk(const std::string &text);

/**
 * A parsed JSON value. The sweep-service wire codec
 * (service/sweep_codec.hh) decodes requests through this; it is a
 * plain immutable tree, not a DOM — build documents with the
 * escape/number helpers above, parse them with jsonParse().
 *
 * Object members keep their document order (deterministic error
 * messages, canonical re-encoding); lookup by key is linear, which
 * is fine at wire-schema sizes.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::vector<Member> members);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; asserting on the wrong type is a caller bug. */
    bool boolean() const;
    double number() const;
    const std::string &str() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<Member> &members() const;

    /** Object member by key, or nullptr (asserts on non-objects). */
    const JsonValue *find(const std::string &key) const;

    /**
     * The number as an exact unsigned integer: fails when the value
     * is not a number, not integral, negative, or above 2^53 (where
     * doubles stop being exact).
     */
    Expected<std::uint64_t> asU64() const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/**
 * Parse one complete JSON document into a JsonValue tree. Strict
 * RFC 8259 syntax plus two hardening rules a network-facing daemon
 * wants: duplicate object keys are a ParseError (silently keeping
 * either one would let two readers disagree about the same bytes),
 * and nesting beyond 64 levels is rejected (bounded recursion on
 * hostile input). \uXXXX escapes are decoded to UTF-8, including
 * surrogate pairs; lone surrogates are rejected.
 */
Expected<JsonValue> jsonParse(const std::string &text);

} // namespace tlc

#endif // TLC_UTIL_JSON_HH
