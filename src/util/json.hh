/**
 * @file
 * Tiny JSON helpers for the observability layer.
 *
 * The metrics registry, profiler, trace-event exporter and run
 * manifest all emit JSON by hand (this repository deliberately has
 * no third-party dependencies). This header centralises the two
 * things hand-written JSON gets wrong: string escaping and numeric
 * formatting. It also provides a strict syntax checker so tests and
 * tools can assert "this blob parses as JSON" without a parser
 * library.
 */

#ifndef TLC_UTIL_JSON_HH
#define TLC_UTIL_JSON_HH

#include <cstdint>
#include <string>

namespace tlc {

/** @p s with JSON string escaping applied (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

/** @p s escaped and double-quoted, ready to splice into JSON. */
std::string jsonQuote(const std::string &s);

/**
 * A double rendered as a valid JSON number: finite values use
 * shortest round-trip formatting; NaN and infinities (which JSON
 * cannot represent) become 0 with no complaint, matching how the
 * rest of the codebase treats undefined ratios.
 */
std::string jsonNumber(double v);

/**
 * Strict syntax check of one complete JSON document (RFC 8259:
 * any value at the top level, no trailing garbage). Validates
 * structure only — no limits on depth or duplicate keys.
 */
bool jsonSyntaxOk(const std::string &text);

} // namespace tlc

#endif // TLC_UTIL_JSON_HH
