/**
 * @file
 * Small bit-manipulation helpers used throughout the cache models.
 */

#ifndef TLC_UTIL_BITUTIL_HH
#define TLC_UTIL_BITUTIL_HH

#include <cstdint>

namespace tlc {

/** True iff @p x is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(@p x); log2i(0) is defined as 0. */
constexpr unsigned
log2i(std::uint64_t x)
{
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** Ceiling of log2(@p x). */
constexpr unsigned
log2Ceil(std::uint64_t x)
{
    return (x <= 1) ? 0 : log2i(x - 1) + 1;
}

/** Smallest power of two >= @p x (x must be <= 2^63). */
constexpr std::uint64_t
nextPowerOfTwo(std::uint64_t x)
{
    if (x <= 1)
        return 1;
    return std::uint64_t{1} << log2Ceil(x);
}

/** Extract bits [lo, lo+count) of @p x. */
constexpr std::uint64_t
bits(std::uint64_t x, unsigned lo, unsigned count)
{
    if (count >= 64)
        return x >> lo;
    return (x >> lo) & ((std::uint64_t{1} << count) - 1);
}

/** Align @p x down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t x, std::uint64_t align)
{
    return x & ~(align - 1);
}

/** Align @p x up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

} // namespace tlc

#endif // TLC_UTIL_BITUTIL_HH
