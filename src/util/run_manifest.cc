/**
 * @file
 * Run-manifest implementation.
 */

#include "run_manifest.hh"

#include <fstream>
#include <sstream>
#include <thread>

#include "util/json.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"
#include "util/profiler.hh"

namespace tlc {

RunManifest
RunManifest::fromCommandLine(int argc, const char *const *argv)
{
    RunManifest m;
    if (argc > 0) {
        std::string prog = argv[0];
        std::size_t slash = prog.find_last_of('/');
        m.tool = slash == std::string::npos ? prog
                                            : prog.substr(slash + 1);
    }
    std::ostringstream cmd;
    for (int i = 0; i < argc; ++i)
        cmd << (i ? " " : "") << argv[i];
    m.commandLine = cmd.str();
    m.threads = parallelWorkerCount();
    unsigned hw = std::thread::hardware_concurrency();
    m.hardwareConcurrency = hw ? hw : 1;
    return m;
}

std::string
RunManifest::toJson() const
{
    // The embedded dumps are indented two spaces for a flat object;
    // re-indent them to sit at depth one inside the manifest.
    auto reindent = [](const std::string &block) {
        std::string out;
        out.reserve(block.size());
        for (char c : block) {
            out += c;
            if (c == '\n')
                out += "  ";
        }
        return out;
    };

    std::ostringstream os;
    os << "{\n"
       << "  \"schema\": \"tlc-run-manifest-v1\",\n"
       << "  \"tool\": " << jsonQuote(tool) << ",\n"
       << "  \"command\": " << jsonQuote(commandLine) << ",\n"
       << "  \"workload\": " << jsonQuote(workload) << ",\n"
       << "  \"trace_refs\": " << traceRefs << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_concurrency\": " << hardwareConcurrency << ",\n"
       << "  \"points_priced\": " << pointsPriced << ",\n"
       << "  \"failures\": " << failures << ",\n"
       << "  \"wall_seconds\": " << jsonNumber(wallSeconds) << ",\n";
    if (!supervisorJson.empty())
        os << "  \"supervisor\": " << reindent(supervisorJson) << ",\n";
    os << "  \"metrics\": "
       << reindent(MetricsRegistry::global().toJson()) << ",\n"
       << "  \"phases\": " << reindent(Profiler::global().toJson())
       << "\n}\n";
    return os.str();
}

Status
RunManifest::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        return statusf(StatusCode::IoError,
                       "cannot open manifest '%s' for writing",
                       path.c_str());
    }
    os << toJson();
    if (!os.good()) {
        return statusf(StatusCode::IoError,
                       "write to manifest '%s' failed", path.c_str());
    }
    return Status();
}

} // namespace tlc
