/**
 * @file
 * Implementation of error-reporting helpers.
 */

#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace tlc {

namespace {

LogLevel gLevel = LogLevel::Normal;

/**
 * Format the whole line first, then hand it to stderr in ONE stdio
 * call. fwrite locks the FILE internally, so concurrent sweep
 * workers can't interleave fragments of each other's messages —
 * the old tag/body/newline triple of calls could.
 */
void
emit(const char *tag, const char *fmt, va_list args)
{
    char stack[512];
    va_list probe;
    va_copy(probe, args);
    int body = std::vsnprintf(stack, sizeof(stack), fmt, probe);
    va_end(probe);
    if (body < 0)
        body = 0;

    std::string line(tag);
    line += ": ";
    if (static_cast<std::size_t>(body) < sizeof(stack)) {
        line.append(stack, static_cast<std::size_t>(body));
    } else {
        std::vector<char> heap(static_cast<std::size_t>(body) + 1);
        std::vsnprintf(heap.data(), heap.size(), fmt, args);
        line.append(heap.data(), static_cast<std::size_t>(body));
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (gLevel == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (gLevel == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (gLevel != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

} // namespace tlc
