/**
 * @file
 * Implementation of error-reporting helpers.
 */

#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace tlc {

namespace {

LogLevel gLevel = LogLevel::Normal;

void
emit(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (gLevel == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (gLevel == LogLevel::Quiet)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (gLevel != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

} // namespace tlc
