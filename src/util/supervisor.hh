/**
 * @file
 * Process-level worker supervision: run a function in a forked
 * subprocess, stream CRC-framed results back over a pipe, and
 * survive the worker's death.
 *
 * This is the generic half of the fault-isolated sweep engine
 * (core/shard_runner.hh holds the sweep-specific half). It knows
 * nothing about caches or design points; it knows how to
 *
 *  - fork a worker and hand it the write end of a pipe,
 *  - read length-prefixed, CRC-32-guarded frames on the parent side
 *    (a torn or corrupted frame is detected, never acted on),
 *  - enforce a watchdog deadline on the whole worker run, escalating
 *    SIGTERM -> SIGKILL when the worker ignores the polite signal,
 *  - classify how the worker ended: clean, killed by a signal
 *    (SIGSEGV, abort), nonzero exit, watchdog timeout, or a protocol
 *    violation (torn tail, bad CRC, absurd frame length),
 *  - compute deterministic exponential-backoff-with-jitter delays
 *    for the retry loop of whoever drives it.
 *
 * The child runs the worker function and _exit()s — it never returns
 * into the caller's stack, never runs atexit handlers, and never
 * flushes the parent's buffered stdio a second time. An exception
 * escaping the worker function exits with a reserved status instead
 * of propagating.
 *
 * Observability: forks, crashes, timeouts, nonzero exits and
 * protocol violations tick supervisor.worker.* in the global metrics
 * registry.
 */

#ifndef TLC_UTIL_SUPERVISOR_HH
#define TLC_UTIL_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/status.hh"

namespace tlc {

/** Largest frame payload accepted by the parent-side reader; a
 *  declared length beyond this is a protocol violation, not an
 *  allocation. */
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/** Exit status the child uses when the worker function throws. */
constexpr int kWorkerExceptionExit = 113;

/**
 * Write one frame (u32 length, u32 CRC-32 of the payload, payload
 * bytes, all little-endian) to @p fd, retrying short writes and
 * EINTR. Worker-side helper; the parent never writes.
 */
Status writeFrame(int fd, std::string_view payload);

/**
 * Incremental reader for the frame format writeFrame produces: feed
 * it raw bytes as they arrive (from a pipe, a socket, a file tail)
 * and it extracts complete, CRC-valid frames in order. This is the
 * exact codec the worker supervisor speaks on its result pipes,
 * factored out so other transports — the sweep-service daemon's
 * Unix-domain socket (service/daemon.hh) — parse the same bytes the
 * same way.
 *
 * A protocol violation (declared length beyond kMaxFrameBytes, CRC
 * mismatch) poisons the reader: feed() returns false then and on
 * every later call, and no further frames are delivered — corrupt
 * streams are abandoned, never resynchronized.
 */
class FrameReader
{
  public:
    /**
     * Append @p bytes and invoke @p on_frame once per complete
     * CRC-valid frame now available, in order. Returns false on (or
     * after) a protocol violation. on_frame must not throw.
     */
    bool feed(std::string_view bytes,
              const std::function<void(std::string_view payload)>
                  &on_frame);

    /** True when no partial frame is buffered and the stream is
     *  healthy — i.e. an EOF here is a clean end of stream. */
    bool atFrameBoundary() const
    {
        return buffer_.empty() && !poisoned_;
    }

  private:
    std::string buffer_;
    bool poisoned_ = false;
};

/**
 * Async-signal-safe writeFrame: @p scratch must have room for
 * 8 + @p len bytes and is used to assemble the header + payload
 * before one raw write() loop — no allocation, no stdio, table-only
 * CRC. This is the emergency path the crash flight recorder
 * (util/flight_recorder.hh) uses from inside a signal handler;
 * returns false when the frame could not be fully written.
 */
bool writeFrameRaw(int fd, const char *payload, std::size_t len,
                   char *scratch, std::size_t scratch_cap);

/** Watchdog budget of one worker run. */
struct WatchdogSpec
{
    /** Whole-run deadline in seconds; <= 0 disables the watchdog. */
    double timeoutSeconds = 60.0;
    /** Grace between SIGTERM and the SIGKILL escalation. */
    double killGraceSeconds = 0.5;
};

/** How one supervised worker run ended. */
struct WorkerOutcome
{
    enum class Kind {
        Ok,         ///< clean exit 0, no torn bytes
        Crash,      ///< killed by a signal (SIGSEGV, SIGABRT, ...)
        Exit,       ///< exited with a nonzero status
        Timeout,    ///< watchdog expired; worker was killed
        Protocol,   ///< bad CRC / absurd length / torn trailing frame
        ForkFailed  ///< fork or pipe creation itself failed
    };

    Kind kind = Kind::Ok;
    int termSignal = 0; ///< valid for Crash
    int exitStatus = 0; ///< valid for Exit
    /** Human phrase: "killed by signal 11 (Segmentation fault)". */
    std::string detail;

    bool ok() const { return kind == Kind::Ok; }

    /**
     * The failure as a Status: Timeout maps to WorkerTimeout,
     * everything else to WorkerCrash, with @p context prepended to
     * the detail phrase. An Ok outcome asserts — success has no
     * Status to report.
     */
    Status toStatus(const std::string &context) const;
};

/** Short stable name of an outcome kind ("crash", "timeout", ...). */
const char *workerOutcomeKindName(WorkerOutcome::Kind kind);

/**
 * Fork, run @p worker(write_fd) in the child, and collect the frames
 * it writes. The parent invokes @p on_frame once per intact frame,
 * in order, while the run is still in flight — a worker that dies
 * halfway still delivers everything it completed. The watchdog
 * covers the whole run: when it expires the worker gets SIGTERM,
 * then SIGKILL after the grace period, and the outcome is Timeout.
 * The child is always reaped before this returns; there are no
 * zombies to collect.
 *
 * on_frame runs on the calling thread and must not throw.
 */
WorkerOutcome
superviseWorker(const std::function<void(int write_fd)> &worker,
                const WatchdogSpec &watchdog,
                const std::function<void(std::string_view payload)>
                    &on_frame);

/**
 * Deterministic retry pacing: exponential backoff from
 * backoffBaseSeconds, doubling per attempt, capped at
 * backoffMaxSeconds, scaled by a jitter factor in [0.5, 1.0) drawn
 * from a Pcg32 seeded with (seed, key, attempt) — so two supervisors
 * retrying the same shard pick the same waits (reproducible tests)
 * while different shards desynchronize.
 */
struct RetryPolicy
{
    /** Attempts after the first before giving up on a shard. */
    int maxRetries = 2;
    double backoffBaseSeconds = 0.05;
    double backoffMaxSeconds = 2.0;
    std::uint64_t seed = 0x5eedb0ffULL;

    /** Wait before retry number @p attempt (0-based) of @p key. */
    double backoffSeconds(int attempt, std::uint64_t key) const;
};

} // namespace tlc

#endif // TLC_UTIL_SUPERVISOR_HH
