/**
 * @file
 * Worker supervision implementation: fork/pipe plumbing, the framed
 * reader, watchdog escalation, and exit classification.
 */

#include "supervisor.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/crc32.hh"
#include "util/flight_recorder.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/random.hh"

namespace tlc {

namespace {

/** Supervisor metrics, registered once and shared by all sites. */
struct WorkerMetrics
{
    MetricCounter &forks;
    MetricCounter &crashes;
    MetricCounter &timeouts;
    MetricCounter &exits;
    MetricCounter &protocolErrors;

    static WorkerMetrics &get()
    {
        auto &r = MetricsRegistry::global();
        static WorkerMetrics m{
            r.counter("supervisor.worker.forks"),
            r.counter("supervisor.worker.crashes"),
            r.counter("supervisor.worker.timeouts"),
            r.counter("supervisor.worker.exits"),
            r.counter("supervisor.worker.protocol_errors"),
        };
        return m;
    }
};

void
putU32le(std::string &s, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32le(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * waitpid() in a WNOHANG poll loop for up to @p grace_seconds; true
 * when the child was reaped in time. Avoids SIGCHLD handlers, which
 * would be process-global state this library must not own.
 */
bool
reapWithGrace(pid_t pid, double grace_seconds, int *wstatus)
{
    const double deadline = nowSeconds() + grace_seconds;
    for (;;) {
        pid_t r = waitpid(pid, wstatus, WNOHANG);
        if (r == pid)
            return true;
        if (r < 0 && errno != EINTR)
            return false;
        if (nowSeconds() >= deadline)
            return false;
        usleep(2000);
    }
}

/** SIGTERM, grace, then SIGKILL and a blocking reap. */
int
killAndReap(pid_t pid, double grace_seconds)
{
    int wstatus = 0;
    kill(pid, SIGTERM);
    if (!reapWithGrace(pid, grace_seconds, &wstatus)) {
        kill(pid, SIGKILL);
        while (waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
        }
    }
    return wstatus;
}

/**
 * Incremental frame extractor over the parent's receive buffer.
 * Consumes complete, CRC-valid frames from the front of @p buf and
 * hands their payloads to @p on_frame; returns false on the first
 * protocol violation (absurd declared length or CRC mismatch).
 */
bool
drainFrames(std::string &buf,
            const std::function<void(std::string_view)> &on_frame)
{
    const auto *base = reinterpret_cast<const unsigned char *>(buf.data());
    std::size_t off = 0;
    bool ok = true;
    while (buf.size() - off >= 8) {
        const std::uint32_t len = getU32le(base + off);
        const std::uint32_t want = getU32le(base + off + 4);
        if (len > kMaxFrameBytes) {
            ok = false;
            break;
        }
        if (buf.size() - off - 8 < len)
            break; // incomplete frame; wait for more bytes
        const char *payload = buf.data() + off + 8;
        if (crc32(payload, len) != want) {
            ok = false;
            break;
        }
        on_frame(std::string_view(payload, len));
        off += 8 + static_cast<std::size_t>(len);
    }
    buf.erase(0, off);
    return ok;
}

} // namespace

bool
FrameReader::feed(std::string_view bytes,
                  const std::function<void(std::string_view payload)>
                      &on_frame)
{
    if (poisoned_)
        return false;
    buffer_.append(bytes.data(), bytes.size());
    if (!drainFrames(buffer_, on_frame)) {
        poisoned_ = true;
        return false;
    }
    return true;
}

Status
writeFrame(int fd, std::string_view payload)
{
    tlc_assert(payload.size() <= kMaxFrameBytes,
               "frame payload exceeds kMaxFrameBytes");
    std::string rec;
    rec.reserve(8 + payload.size());
    putU32le(rec, static_cast<std::uint32_t>(payload.size()));
    putU32le(rec, crc32(payload.data(), payload.size()));
    rec.append(payload);

    std::size_t off = 0;
    while (off < rec.size()) {
        ssize_t n = ::write(fd, rec.data() + off, rec.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return statusf(statusCodeFromErrno(errno),
                           "frame write failed: %s", std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    return Status{};
}

bool
writeFrameRaw(int fd, const char *payload, std::size_t len,
              char *scratch, std::size_t scratch_cap)
{
    if (len > kMaxFrameBytes || scratch_cap < 8 + len)
        return false;
    const std::uint32_t crc = crc32(payload, len);
    for (int i = 0; i < 4; ++i) {
        scratch[i] =
            static_cast<char>((static_cast<std::uint32_t>(len) >>
                               (8 * i)) & 0xff);
        scratch[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
    }
    // payload may already live inside scratch (the flight recorder
    // serializes directly at scratch + 8); memmove keeps that legal.
    std::memmove(scratch + 8, payload, len);
    std::size_t off = 0;
    const std::size_t total = 8 + len;
    while (off < total) {
        ssize_t n = ::write(fd, scratch + off, total - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

Status
WorkerOutcome::toStatus(const std::string &context) const
{
    tlc_assert(kind != Kind::Ok, "an Ok outcome has no Status");
    const StatusCode code = kind == Kind::Timeout
                                ? StatusCode::WorkerTimeout
                                : StatusCode::WorkerCrash;
    return statusf(code, "%s: %s", context.c_str(), detail.c_str());
}

const char *
workerOutcomeKindName(WorkerOutcome::Kind kind)
{
    switch (kind) {
    case WorkerOutcome::Kind::Ok:
        return "ok";
    case WorkerOutcome::Kind::Crash:
        return "crash";
    case WorkerOutcome::Kind::Exit:
        return "exit";
    case WorkerOutcome::Kind::Timeout:
        return "timeout";
    case WorkerOutcome::Kind::Protocol:
        return "protocol";
    case WorkerOutcome::Kind::ForkFailed:
        return "fork-failed";
    }
    return "unknown";
}

WorkerOutcome
superviseWorker(const std::function<void(int write_fd)> &worker,
                const WatchdogSpec &watchdog,
                const std::function<void(std::string_view payload)>
                    &on_frame)
{
    WorkerOutcome out;

    int fds[2];
    if (pipe(fds) != 0) {
        out.kind = WorkerOutcome::Kind::ForkFailed;
        out.detail = std::string("pipe failed: ") + std::strerror(errno);
        return out;
    }

    pid_t pid = fork();
    if (pid < 0) {
        out.kind = WorkerOutcome::Kind::ForkFailed;
        out.detail = std::string("fork failed: ") + std::strerror(errno);
        close(fds[0]);
        close(fds[1]);
        return out;
    }

    if (pid == 0) {
        // Child. Only the write end is ours; run the worker and
        // _exit without touching the parent's stdio or atexit state.
        close(fds[0]);
        try {
            worker(fds[1]);
        } catch (...) {
            // A worker that armed the flight recorder still gets its
            // last-known-state frame out before the reserved exit.
            FlightRecorder::global().flushIfArmed(
                FlightRecorder::kReasonException);
            _exit(kWorkerExceptionExit);
        }
        close(fds[1]);
        _exit(0);
    }

    // Parent.
    WorkerMetrics::get().forks.inc();
    close(fds[1]);
    const int rfd = fds[0];
    const bool armed = watchdog.timeoutSeconds > 0;
    const double deadline = nowSeconds() + watchdog.timeoutSeconds;
    FrameReader frames;
    bool frameError = false;

    for (;;) {
        double waitSeconds =
            armed ? deadline - nowSeconds() : 0.25;
        if (armed && waitSeconds <= 0) {
            // Watchdog expired: politely, then firmly — but keep
            // draining the pipe through the grace window, because a
            // worker with an armed flight recorder answers SIGTERM
            // with one last frame of crash context, and dropping it
            // here would blind the quarantine log.
            kill(pid, SIGTERM);
            const double graceDeadline =
                nowSeconds() + watchdog.killGraceSeconds;
            for (;;) {
                const double left = graceDeadline - nowSeconds();
                if (left <= 0)
                    break;
                struct pollfd gfd = {rfd, POLLIN, 0};
                int gr = poll(&gfd, 1,
                              static_cast<int>(left * 1000) + 1);
                if (gr < 0) {
                    if (errno == EINTR)
                        continue;
                    break;
                }
                if (gr == 0)
                    continue;
                char chunk[4096];
                ssize_t n = ::read(rfd, chunk, sizeof chunk);
                if (n <= 0)
                    break; // EOF or error: nothing more to salvage
                if (!frames.feed(std::string_view(
                                     chunk, static_cast<std::size_t>(n)),
                                 on_frame))
                    break; // torn mid-death frame; keep what we have
            }
            close(rfd);
            int wstatus = 0;
            if (!reapWithGrace(pid, 0.05, &wstatus)) {
                kill(pid, SIGKILL);
                while (waitpid(pid, &wstatus, 0) < 0 &&
                       errno == EINTR) {
                }
            }
            out.kind = WorkerOutcome::Kind::Timeout;
            char msg[96];
            std::snprintf(msg, sizeof msg,
                          "worker exceeded %.3gs watchdog and was killed",
                          watchdog.timeoutSeconds);
            out.detail = msg;
            WorkerMetrics::get().timeouts.inc();
            return out;
        }

        struct pollfd pfd = {rfd, POLLIN, 0};
        int timeoutMs = armed
                            ? static_cast<int>(waitSeconds * 1000) + 1
                            : 250;
        int pr = poll(&pfd, 1, timeoutMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            close(rfd);
            killAndReap(pid, watchdog.killGraceSeconds);
            out.kind = WorkerOutcome::Kind::Protocol;
            out.detail =
                std::string("poll failed: ") + std::strerror(errno);
            WorkerMetrics::get().protocolErrors.inc();
            return out;
        }
        if (pr == 0)
            continue; // re-check the deadline

        char chunk[4096];
        ssize_t n = ::read(rfd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            n = 0; // treat as EOF; waitpid classifies below
        }
        if (n > 0) {
            if (!frames.feed(std::string_view(
                                 chunk, static_cast<std::size_t>(n)),
                             on_frame)) {
                frameError = true;
                close(rfd);
                killAndReap(pid, watchdog.killGraceSeconds);
                out.kind = WorkerOutcome::Kind::Protocol;
                out.detail = "corrupt frame in worker stream";
                WorkerMetrics::get().protocolErrors.inc();
                return out;
            }
            continue;
        }

        // EOF: the worker closed its pipe (exit or death). Reap and
        // classify. The grace reap covers the tiny window between
        // close-of-pipe and process exit.
        close(rfd);
        int wstatus = 0;
        if (!reapWithGrace(pid, 5.0, &wstatus))
            wstatus = killAndReap(pid, watchdog.killGraceSeconds);

        if (WIFSIGNALED(wstatus)) {
            out.kind = WorkerOutcome::Kind::Crash;
            out.termSignal = WTERMSIG(wstatus);
            char msg[96];
            std::snprintf(msg, sizeof msg,
                          "worker killed by signal %d (%s)",
                          out.termSignal, strsignal(out.termSignal));
            out.detail = msg;
            WorkerMetrics::get().crashes.inc();
            return out;
        }
        if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0) {
            out.kind = WorkerOutcome::Kind::Exit;
            out.exitStatus = WEXITSTATUS(wstatus);
            char msg[96];
            std::snprintf(msg, sizeof msg,
                          "worker exited with status %d%s",
                          out.exitStatus,
                          out.exitStatus == kWorkerExceptionExit
                              ? " (unhandled exception)"
                              : "");
            out.detail = msg;
            WorkerMetrics::get().exits.inc();
            return out;
        }
        if (!frames.atFrameBoundary() || frameError) {
            // Clean exit but torn trailing bytes: the worker lied
            // about being done. Never act on a partial frame.
            out.kind = WorkerOutcome::Kind::Protocol;
            out.detail = "worker exited leaving a torn trailing frame";
            WorkerMetrics::get().protocolErrors.inc();
            return out;
        }
        out.kind = WorkerOutcome::Kind::Ok;
        out.detail = "ok";
        return out;
    }
}

double
RetryPolicy::backoffSeconds(int attempt, std::uint64_t key) const
{
    double d = backoffBaseSeconds;
    for (int i = 0; i < attempt && d < backoffMaxSeconds; ++i)
        d *= 2;
    if (d > backoffMaxSeconds)
        d = backoffMaxSeconds;
    // Deterministic jitter in [0.5, 1.0): reproducible per
    // (seed, key, attempt), decorrelated across shards.
    Pcg32 rng(seed ^ key, 0x9e3779b97f4a7c15ULL ^
                              static_cast<std::uint64_t>(attempt));
    return d * (0.5 + 0.5 * rng.nextDouble());
}

} // namespace tlc
