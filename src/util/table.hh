/**
 * @file
 * Simple column-aligned table printer with CSV export, used by the
 * benchmark harness to print figure/table data series.
 */

#ifndef TLC_UTIL_TABLE_HH
#define TLC_UTIL_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace tlc {

/**
 * A table of string cells with a header row. Numeric convenience
 * overloads format with sensible defaults. Print as aligned ASCII
 * (for terminals) or CSV (for plotting).
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Start a new row. Must be followed by cell() calls. */
    void beginRow();

    /** Append one cell to the current row. */
    void cell(const std::string &value);
    void cell(const char *value);
    void cell(double value, int precision = 3);
    void cell(std::uint64_t value);
    void cell(int value);
    void cell(unsigned value);

    /** Append a whole row at once. */
    void addRow(std::initializer_list<std::string> cells);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return header_.size(); }

    /** The cell at (row, col); panics when out of range. */
    const std::string &at(std::size_t row, std::size_t col) const;

    /** Render as aligned, human-readable ASCII. */
    void printAscii(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a byte count as "1K", "256K", etc. */
std::string formatSize(std::uint64_t bytes);

/** Format "L1:L2" configuration labels like the paper ("32:256"). */
std::string formatConfigLabel(std::uint64_t l1_bytes, std::uint64_t l2_bytes);

} // namespace tlc

#endif // TLC_UTIL_TABLE_HH
