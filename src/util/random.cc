/**
 * @file
 * PCG32 implementation and derived distributions.
 */

#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace tlc {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    next();
    state_ += seed;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Pcg32::nextDouble()
{
    // 32 random bits -> [0, 1) with 2^-32 resolution.
    return next() * (1.0 / 4294967296.0);
}

std::uint32_t
Pcg32::nextGeometric(double p)
{
    tlc_assert(p > 0.0 && p <= 1.0, "geometric p=%f out of range", p);
    if (p >= 1.0)
        return 0;
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 1e-12;
    return static_cast<std::uint32_t>(std::log(u) / std::log(1.0 - p));
}

double
Pcg32::nextExponential(double mean)
{
    double u = nextDouble();
    if (u <= 0.0)
        u = 1e-12;
    return -mean * std::log(u);
}

std::uint32_t
Pcg32::nextZipf(std::uint32_t n, double s)
{
    tlc_assert(n > 0, "zipf over empty range");
    if (n == 1)
        return 0;
    // Rejection-inversion sampling (Hormann & Derflinger 1996),
    // specialised to support {1..n} and shifted to {0..n-1}.
    auto h = [s](double x) {
        if (s == 1.0)
            return std::log(x);
        return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
    };
    auto hInv = [s](double y) {
        if (s == 1.0)
            return std::exp(y);
        return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
    };
    const double hx0 = h(0.5) - 1.0;
    const double hn = h(n + 0.5);
    for (;;) {
        double u = hx0 + nextDouble() * (hn - hx0);
        double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        double hk = h(k - 0.5);
        if (u >= hk - std::pow(static_cast<double>(k), -s) && u < h(k + 0.5))
            return static_cast<std::uint32_t>(k - 1);
        // Acceptance is very likely; loop otherwise.
        if (u >= hk)
            return static_cast<std::uint32_t>(k - 1);
    }
}

} // namespace tlc
