/**
 * @file
 * Envelope implementation.
 */

#include "envelope.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "logging.hh"

namespace tlc {

Envelope
Envelope::of(std::vector<EnvelopePoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const EnvelopePoint &a, const EnvelopePoint &b) {
                  if (a.area != b.area)
                      return a.area < b.area;
                  return a.tpi < b.tpi;
              });
    Envelope env;
    double best = std::numeric_limits<double>::infinity();
    for (const auto &p : points) {
        if (p.tpi < best) {
            best = p.tpi;
            env.points_.push_back(p);
        }
    }
    return env;
}

double
Envelope::bestTpiWithin(double area_budget) const
{
    const EnvelopePoint *p = bestPointWithin(area_budget);
    return p ? p->tpi : std::numeric_limits<double>::infinity();
}

const EnvelopePoint *
Envelope::bestPointWithin(double area_budget) const
{
    const EnvelopePoint *best = nullptr;
    for (const auto &p : points_) {
        if (p.area <= area_budget)
            best = &p;
        else
            break;
    }
    return best;
}

double
Envelope::meanGapAgainst(const Envelope &other, int grid_points) const
{
    tlc_assert(grid_points > 1, "need at least 2 grid points");
    if (points_.empty() || other.points_.empty())
        return 0.0;
    double lo = std::max(points_.front().area, other.points_.front().area);
    double hi = std::min(points_.back().area, other.points_.back().area);
    if (hi <= lo)
        return 0.0;
    double log_lo = std::log(lo);
    double log_hi = std::log(hi);
    double sum = 0.0;
    int n = 0;
    for (int i = 0; i < grid_points; ++i) {
        double a = std::exp(log_lo + (log_hi - log_lo) * i /
                            (grid_points - 1));
        double t1 = bestTpiWithin(a);
        double t2 = other.bestTpiWithin(a);
        if (std::isinf(t1) || std::isinf(t2))
            continue;
        sum += t1 - t2;
        ++n;
    }
    return n ? sum / n : 0.0;
}

} // namespace tlc
