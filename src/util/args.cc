/**
 * @file
 * Argument-parser implementation.
 */

#include "args.hh"

#include <cstdlib>

#include "logging.hh"

namespace tlc {

ArgParser::ArgParser(int argc, const char *const *argv)
{
    tlc_assert(argc >= 1, "argc must include the program name");
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            options_[body] = argv[++i];
        } else {
            options_[body] = "true";
        }
    }
}

bool
ArgParser::has(const std::string &key) const
{
    return options_.count(key) > 0;
}

std::string
ArgParser::getString(const std::string &key, const std::string &def) const
{
    auto it = options_.find(key);
    return it == options_.end() ? def : it->second;
}

std::int64_t
ArgParser::getInt(const std::string &key, std::int64_t def) const
{
    auto it = options_.find(key);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --%s expects an integer, got '%s'",
              key.c_str(), it->second.c_str());
    return v;
}

double
ArgParser::getDouble(const std::string &key, double def) const
{
    auto it = options_.find(key);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --%s expects a number, got '%s'",
              key.c_str(), it->second.c_str());
    return v;
}

bool
ArgParser::getBool(const std::string &key, bool def) const
{
    auto it = options_.find(key);
    if (it == options_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("option --%s expects a boolean, got '%s'",
          key.c_str(), v.c_str());
}

std::vector<std::string>
ArgParser::keys() const
{
    std::vector<std::string> out;
    out.reserve(options_.size());
    for (const auto &kv : options_)
        out.push_back(kv.first);
    return out;
}

} // namespace tlc
