/**
 * @file
 * Argument-parser implementation.
 */

#include "args.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "logging.hh"
#include "metrics.hh"
#include "parallel.hh"
#include "profiler.hh"
#include "run_manifest.hh"

namespace tlc {

ArgParser::ArgParser(int argc, const char *const *argv)
{
    tlc_assert(argc >= 1, "argc must include the program name");
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            options_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            options_[body] = argv[++i];
        } else {
            options_[body] = "true";
        }
    }
}

bool
ArgParser::has(const std::string &key) const
{
    return options_.count(key) > 0;
}

std::string
ArgParser::getString(const std::string &key, const std::string &def) const
{
    auto it = options_.find(key);
    return it == options_.end() ? def : it->second;
}

std::int64_t
ArgParser::getInt(const std::string &key, std::int64_t def) const
{
    auto it = options_.find(key);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --%s expects an integer, got '%s'",
              key.c_str(), it->second.c_str());
    return v;
}

double
ArgParser::getDouble(const std::string &key, double def) const
{
    auto it = options_.find(key);
    if (it == options_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --%s expects a number, got '%s'",
              key.c_str(), it->second.c_str());
    return v;
}

bool
ArgParser::getBool(const std::string &key, bool def) const
{
    auto it = options_.find(key);
    if (it == options_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("option --%s expects a boolean, got '%s'",
          key.c_str(), v.c_str());
}

void
applyStandardFlags(const ArgParser &args)
{
    bool quiet = args.getBool("quiet", false);
    bool verbose = args.getBool("verbose", false);
    if (quiet && verbose)
        fatal("--quiet and --verbose are mutually exclusive");
    if (quiet)
        setLogLevel(LogLevel::Quiet);
    else if (verbose)
        setLogLevel(LogLevel::Verbose);

    if (args.has("threads")) {
        std::int64_t n = args.getInt("threads", 0);
        if (n < 0 || n > 4096)
            fatal("--threads=%lld out of range [0, 4096]",
                  static_cast<long long>(n));
        setParallelWorkerCount(static_cast<unsigned>(n));
    }

    if (args.getBool("profile", false)) {
        Profiler::global().setEnabled(true);
        // Every driver gets the dump without wiring its own exit
        // path; drivers that also write a manifest embed the same
        // aggregates there.
        std::atexit([] {
            std::string text = Profiler::global().toText();
            std::fwrite(text.data(), 1, text.size(), stderr);
        });
    }
}

namespace cli {

SweepFlags
sweepFlagsFromArgs(const ArgParser &args, std::int64_t default_refs)
{
    SweepFlags f;
    f.refs =
        static_cast<std::uint64_t>(args.getInt("refs", default_refs));
    f.backend = args.getString("backend", "exact");
    f.progress = args.getBool("progress", false);
    f.traceOut = args.getString("trace-out");
    f.manifestPath = args.getString("manifest");
    f.metricsOut = args.getString("metrics-out");
    f.resultStore = args.getString("result-store");
    f.resume = args.getBool("resume", false);
    f.storeFsync = args.getBool("store-fsync", false);
    f.requestFile = args.getString("request");
    f.statsOut = args.getString("stats-out");

    if (f.resume && f.resultStore.empty())
        fatal("--resume requires --result-store=FILE");
    if (f.resume && !std::filesystem::exists(f.resultStore)) {
        fatal("--resume: result store '%s' does not exist "
              "(nothing to resume)", f.resultStore.c_str());
    }
    return f;
}

TelemetrySession::TelemetrySession(const SweepFlags &flags)
    : flags_(flags)
{
    // Phase times belong in the manifest, so a manifest request
    // implies profiling.
    if (!flags_.manifestPath.empty())
        Profiler::global().setEnabled(true);
    if (!flags_.traceOut.empty())
        TraceEventRecorder::setActive(&recorder_);
}

TelemetrySession::~TelemetrySession()
{
    if (!finished_ && !flags_.traceOut.empty())
        TraceEventRecorder::setActive(nullptr);
}

void
TelemetrySession::finish(int argc, const char *const *argv,
                         const RunSummary &summary)
{
    finished_ = true;
    if (!flags_.traceOut.empty()) {
        TraceEventRecorder::setActive(nullptr);
        Status s = recorder_.writeFile(flags_.traceOut);
        if (!s.ok())
            warn("%s", s.message().c_str());
        else
            inform("wrote worker timeline to '%s' (open in "
                   "chrome://tracing or ui.perfetto.dev)",
                   flags_.traceOut.c_str());
    }
    if (!flags_.manifestPath.empty()) {
        RunManifest m = RunManifest::fromCommandLine(argc, argv);
        m.workload = summary.workload;
        m.traceRefs = summary.traceRefs;
        m.pointsPriced = summary.pointsPriced;
        m.failures = summary.failures;
        m.wallSeconds = summary.wallSeconds;
        m.supervisorJson = summary.supervisorJson;
        Status s = m.writeFile(flags_.manifestPath);
        if (!s.ok())
            warn("%s", s.message().c_str());
        else
            inform("wrote run manifest to '%s'",
                   flags_.manifestPath.c_str());
    }
    if (!flags_.metricsOut.empty()) {
        Status s = writeMetricsFile(flags_.metricsOut);
        if (!s.ok())
            warn("%s", s.message().c_str());
        else
            inform("wrote metrics dump to '%s'",
                   flags_.metricsOut.c_str());
    }
}

} // namespace cli

std::vector<std::string>
ArgParser::keys() const
{
    std::vector<std::string> out;
    out.reserve(options_.size());
    for (const auto &kv : options_)
        out.push_back(kv.first);
    return out;
}

} // namespace tlc
