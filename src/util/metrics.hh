/**
 * @file
 * Hierarchical, thread-safe metrics registry, in the spirit of
 * gem5's Stats package (whose scalar types util/stats.hh already
 * imitates).
 *
 * Every subsystem registers named metrics under a dotted namespace
 * ("cache.l1d.misses", "explore.timing_cache.hits", ...) and bumps
 * them as it works; at the end of a run the registry can be dumped
 * as aligned text or JSON (the run manifest embeds the JSON form),
 * so a sweep over thousands of design points can be audited post-hoc:
 * how many references were simulated, how often the memo caches hit,
 * how many points failed soft.
 *
 * Thread safety: counters and gauges are lock-free atomics, so sweep
 * workers bump them concurrently without coordination; histograms
 * take a private mutex per sample. Registration (create-or-get by
 * name) takes the registry mutex, and the returned references stay
 * valid for the registry's lifetime — register once, hold the
 * reference, and the hot path never touches the registry lock.
 *
 * Overhead discipline: nothing in this header is called from the
 * per-reference simulate loop. Instrumentation sites tick metrics at
 * design-point or file granularity (a handful of relaxed atomic adds
 * per point), which is unmeasurable next to the millions of
 * simulated references each point costs — verified by
 * bench_sweep_timing against the pre-instrumentation baseline.
 */

#ifndef TLC_UTIL_METRICS_HH
#define TLC_UTIL_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hh"
#include "util/status.hh"

namespace tlc {

/** What lives under a registered metric name. */
enum class MetricKind { Counter, Gauge, Histogram };

/** Monotonic event counter (lock-free). */
class MetricCounter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value-wins instantaneous measurement (lock-free). */
class MetricGauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Power-of-two-bucket histogram (mutex per sample). */
class MetricHistogram
{
  public:
    explicit MetricHistogram(unsigned num_buckets = 32)
        : hist_(num_buckets)
    {
    }

    void sample(std::uint64_t x)
    {
        std::lock_guard<std::mutex> lock(mu_);
        hist_.sample(x);
    }

    /** A consistent copy of the underlying distribution. */
    Log2Histogram snapshot() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return hist_;
    }

    void reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        hist_.reset();
    }

  private:
    mutable std::mutex mu_;
    Log2Histogram hist_;
};

/**
 * Create-or-get registry of named metrics. Use the process-wide
 * global() instance for real instrumentation; tests build private
 * instances for isolation.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry all library instrumentation uses. */
    static MetricsRegistry &global();

    /**
     * The counter named @p name, created on first use. Asking for an
     * existing name returns the same object (so independent call
     * sites may share a metric); asking for a name already
     * registered as a different kind is a programming error and
     * panics.
     */
    MetricCounter &counter(const std::string &name);

    /** The gauge named @p name, created on first use. */
    MetricGauge &gauge(const std::string &name);

    /** The histogram named @p name, created on first use. */
    MetricHistogram &histogram(const std::string &name,
                               unsigned num_buckets = 32);

    /** True when a metric of any kind is registered under @p name. */
    bool has(const std::string &name) const;

    /**
     * The kind registered under @p name, or nullopt when absent.
     * Lets cross-process mergers (core/shard_runner.cc) skip a name
     * whose kind differs instead of tripping the create-or-get
     * mismatch panic on wire data.
     */
    std::optional<MetricKind> kindOf(const std::string &name) const;

    /**
     * Snapshot of every counter as (name, value), sorted by name —
     * the worker side of the telemetry frames serializes this.
     */
    std::vector<std::pair<std::string, std::uint64_t>>
    counterValues() const;

    /** Snapshot of every gauge as (name, value), sorted by name. */
    std::vector<std::pair<std::string, double>> gaugeValues() const;

    /** Number of registered metrics. */
    std::size_t size() const;

    /** Sorted names of every registered metric. */
    std::vector<std::string> names() const;

    /**
     * One-line-per-metric text dump, sorted by name:
     *   cache.l1d.misses                 123456
     */
    std::string toText() const;

    /**
     * Flat JSON object keyed by metric name, sorted. Counters and
     * gauges map to numbers; histograms to
     * {"count": N, "buckets": [...]} with trailing zero buckets
     * trimmed.
     */
    std::string toJson(int indent = 2) const;

    /** Zero every metric (registrations survive). */
    void resetAll();

  private:
    using Kind = MetricKind;

    struct Entry
    {
        Kind kind;
        std::unique_ptr<MetricCounter> counter;
        std::unique_ptr<MetricGauge> gauge;
        std::unique_ptr<MetricHistogram> histogram;
    };

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
};

/**
 * Write the global registry's JSON dump to @p path (the sweep
 * drivers' --metrics-out=FILE). IoError Status on failure.
 */
Status writeMetricsFile(const std::string &path);

} // namespace tlc

#endif // TLC_UTIL_METRICS_HH
