/**
 * @file
 * Run manifest: one JSON document written next to sweep results that
 * records what a run actually was — tool, command line, workload,
 * thread count — and what it actually did — points priced, failures,
 * wall-clock, the full metrics dump, and the per-phase profile.
 *
 * A figure regenerated months later is only trustworthy if the run
 * that produced it can be audited; the manifest is that audit
 * record. tools/validate_trace.py checks the schema in CI.
 */

#ifndef TLC_UTIL_RUN_MANIFEST_HH
#define TLC_UTIL_RUN_MANIFEST_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace tlc {

/** Everything a finished run wants remembered. */
struct RunManifest
{
    std::string tool;        ///< program name (argv[0] basename)
    std::string commandLine; ///< argv joined with spaces
    std::string workload;    ///< benchmark name(s) swept
    std::uint64_t traceRefs = 0;
    std::uint64_t seed = 0;       ///< workload-generator seed, if any
    unsigned threads = 0;         ///< worker team width used
    unsigned hardwareConcurrency = 0;
    std::uint64_t pointsPriced = 0;
    std::uint64_t failures = 0;   ///< fail-soft skips
    double wallSeconds = 0.0;
    /**
     * Supervision summary of an --isolate=process run: the JSON
     * object supervisorTimelinesJson (core/shard_runner.hh) renders,
     * with per-shard attempt/retry/backoff/outcome timelines. Empty
     * (and omitted from the output) for in-process runs.
     */
    std::string supervisorJson;

    /**
     * Fill tool/commandLine from argv and threads /
     * hardwareConcurrency from the parallel runtime.
     */
    static RunManifest fromCommandLine(int argc, const char *const *argv);

    /**
     * The manifest as a JSON object, embedding the global metrics
     * registry dump under "metrics" and the global profiler dump
     * under "phases".
     */
    std::string toJson() const;

    /** toJson() to @p path; IoError Status on failure. */
    Status writeFile(const std::string &path) const;
};

} // namespace tlc

#endif // TLC_UTIL_RUN_MANIFEST_HH
