/**
 * @file
 * Flight-recorder implementation: bounded note ring, the armed-fd
 * signal handlers, and the frame payload codec.
 */

#include "flight_recorder.hh"

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include <signal.h>
#include <unistd.h>

#include "util/crc32.hh"
#include "util/supervisor.hh"

namespace tlc {

namespace {

/**
 * Emergency-path state, file-scope so the handlers can reach it
 * without captures. fd < 0 means disarmed; the buffer leaves 8 bytes
 * of headroom so writeFrameRaw can assemble its header in place.
 */
std::atomic<int> gArmedFd{-1};
std::atomic<std::uint8_t> gFrameTag{0};
char gEmergencyBuf[4096];

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL,
                                 SIGABRT};

extern "C" void
emergencyHandler(int sig)
{
    const int fd = gArmedFd.load(std::memory_order_acquire);
    if (fd >= 0) {
        const std::size_t n = FlightRecorder::global().serializePayload(
            gEmergencyBuf + 8, sizeof gEmergencyBuf - 8,
            gFrameTag.load(std::memory_order_acquire),
            FlightRecorder::kReasonSignal, sig);
        if (n > 0) {
            writeFrameRaw(fd, gEmergencyBuf + 8, n, gEmergencyBuf,
                          sizeof gEmergencyBuf);
        }
    }
    if (sig == SIGTERM) {
        // The watchdog's polite kill: frame is out, leave quietly
        // with a status the supervisor can tell apart from worker
        // bugs.
        _exit(FlightRecorder::kSigtermExit);
    }
    // Fatal signal: die by it for real so the parent's WIFSIGNALED
    // classification still sees the original cause of death.
    signal(sig, SIG_DFL);
    raise(sig);
}

void
copyLabel(char *dst, std::size_t cap, const char *src)
{
    std::size_t i = 0;
    for (; src != nullptr && src[i] != '\0' && i + 1 < cap; ++i)
        dst[i] = src[i];
    dst[i] = '\0';
    // NUL-pad the tail so a handler interrupting this copy never
    // reads stale bytes past the new terminator.
    for (++i; i < cap; ++i)
        dst[i] = '\0';
}

/** Bounds-checked byte append used by serializePayload. */
bool
putByte(char *buf, std::size_t cap, std::size_t &off, std::uint8_t v)
{
    if (off >= cap)
        return false;
    buf[off++] = static_cast<char>(v);
    return true;
}

bool
putLenPrefixed(char *buf, std::size_t cap, std::size_t &off,
               const char *s, std::size_t max_len)
{
    const std::size_t len = strnlen(s, max_len);
    if (len > 255 || !putByte(buf, cap, off,
                              static_cast<std::uint8_t>(len)))
        return false;
    if (off + len > cap)
        return false;
    std::memcpy(buf + off, s, len);
    off += len;
    return true;
}

} // namespace

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::reset()
{
    seq_.store(0, std::memory_order_relaxed);
    std::memset(point_, 0, sizeof point_);
    std::memset(phase_, 0, sizeof phase_);
    for (Slot &s : ring_)
        std::memset(s.text, 0, sizeof s.text);
}

void
FlightRecorder::setPoint(const char *label)
{
    copyLabel(point_, sizeof point_, label);
}

void
FlightRecorder::setPhase(const char *phase)
{
    copyLabel(phase_, sizeof phase_, phase);
}

void
FlightRecorder::note(const char *fmt, ...)
{
    char text[kNoteBytes];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(text, sizeof text, fmt, ap);
    va_end(ap);

    const std::uint32_t seq = seq_.load(std::memory_order_relaxed);
    Slot &slot = ring_[seq % kRingEntries];
    copyLabel(slot.text, sizeof slot.text, text);
    seq_.store(seq + 1, std::memory_order_release);
}

void
FlightRecorder::armEmergency(int fd, std::uint8_t frame_tag)
{
    // Warm the CRC lookup table now: its first-use initialization is
    // a guarded magic static, which must not happen inside a signal
    // handler.
    (void)crc32("", 0);

    gFrameTag.store(frame_tag, std::memory_order_release);
    gArmedFd.store(fd, std::memory_order_release);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = emergencyHandler;
    sigemptyset(&sa.sa_mask);
    for (int sig : kFatalSignals)
        sigaction(sig, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
FlightRecorder::disarm()
{
    gArmedFd.store(-1, std::memory_order_release);
}

bool
FlightRecorder::armed() const
{
    return gArmedFd.load(std::memory_order_acquire) >= 0;
}

std::size_t
FlightRecorder::serializePayload(char *buf, std::size_t cap,
                                 std::uint8_t frame_tag,
                                 std::uint8_t reason, int signo) const
{
    std::size_t off = 0;
    if (!putByte(buf, cap, off, frame_tag) ||
        !putByte(buf, cap, off, reason))
        return 0;
    const auto sig = static_cast<std::uint32_t>(signo);
    for (int i = 0; i < 4; ++i) {
        if (!putByte(buf, cap, off,
                     static_cast<std::uint8_t>((sig >> (8 * i)) & 0xff)))
            return 0;
    }
    if (!putLenPrefixed(buf, cap, off, point_, sizeof point_ - 1) ||
        !putLenPrefixed(buf, cap, off, phase_, sizeof phase_ - 1))
        return 0;

    const std::uint32_t seq = seq_.load(std::memory_order_acquire);
    const std::uint32_t count =
        seq < kRingEntries ? seq
                           : static_cast<std::uint32_t>(kRingEntries);
    if (!putByte(buf, cap, off, static_cast<std::uint8_t>(count)))
        return 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        // Oldest first: the ring index of note (seq - count + i).
        const Slot &slot = ring_[(seq - count + i) % kRingEntries];
        if (!putLenPrefixed(buf, cap, off, slot.text,
                            sizeof slot.text - 1))
            return 0;
    }
    return off;
}

bool
FlightRecorder::flush(int fd, std::uint8_t frame_tag,
                      std::uint8_t reason)
{
    char buf[4096];
    const std::size_t n = serializePayload(
        buf + 8, sizeof buf - 8, frame_tag, reason, 0);
    if (n == 0)
        return false;
    return writeFrameRaw(fd, buf + 8, n, buf, sizeof buf);
}

void
FlightRecorder::flushIfArmed(std::uint8_t reason)
{
    const int fd = gArmedFd.load(std::memory_order_acquire);
    if (fd >= 0)
        flush(fd, gFrameTag.load(std::memory_order_acquire), reason);
}

bool
FlightRecorder::decodePayload(std::string_view payload,
                              std::uint8_t frame_tag, FlightInfo &out)
{
    std::size_t off = 0;
    auto byteAt = [&payload, &off](std::uint8_t &v) {
        if (off >= payload.size())
            return false;
        v = static_cast<std::uint8_t>(payload[off++]);
        return true;
    };
    auto lenPrefixed = [&payload, &off, &byteAt](std::string &s) {
        std::uint8_t len = 0;
        if (!byteAt(len) || off + len > payload.size())
            return false;
        s.assign(payload.data() + off, len);
        off += len;
        return true;
    };

    std::uint8_t tag = 0;
    std::uint8_t reason = 0;
    if (!byteAt(tag) || tag != frame_tag || !byteAt(reason))
        return false;
    std::uint32_t sig = 0;
    for (int i = 0; i < 4; ++i) {
        std::uint8_t b = 0;
        if (!byteAt(b))
            return false;
        sig |= static_cast<std::uint32_t>(b) << (8 * i);
    }
    FlightInfo info;
    info.reason = reason;
    info.signo = static_cast<int>(sig);
    if (!lenPrefixed(info.point) || !lenPrefixed(info.phase))
        return false;
    std::uint8_t count = 0;
    if (!byteAt(count) || count > kRingEntries)
        return false;
    info.notes.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) {
        std::string note;
        if (!lenPrefixed(note))
            return false;
        info.notes.push_back(std::move(note));
    }
    if (off != payload.size())
        return false;
    out = std::move(info);
    return true;
}

const char *
FlightRecorder::reasonName(std::uint8_t reason)
{
    switch (reason) {
    case kReasonClean:
        return "clean";
    case kReasonSignal:
        return "signal";
    case kReasonHang:
        return "hang";
    case kReasonException:
        return "exception";
    }
    return "unknown";
}

} // namespace tlc
