/**
 * @file
 * Best-performance-envelope (Pareto staircase) computation.
 *
 * Every figure in the paper plots TPI against chip area and draws the
 * "best performance envelope": for each available area, the lowest
 * TPI achievable by any configuration that fits. Because cache sizes
 * are discrete the envelope is a staircase of non-dominated points.
 */

#ifndef TLC_UTIL_ENVELOPE_HH
#define TLC_UTIL_ENVELOPE_HH

#include <string>
#include <vector>

namespace tlc {

/** One candidate design point: cost (area) vs value (TPI). */
struct EnvelopePoint
{
    double area;       ///< cost axis (rbe)
    double tpi;        ///< value axis (ns/instruction, lower is better)
    std::string label; ///< configuration label, e.g. "32:256"
};

/**
 * The non-dominated staircase of a set of design points.
 */
class Envelope
{
  public:
    /** Build the envelope of @p points (order irrelevant). */
    static Envelope of(std::vector<EnvelopePoint> points);

    /** Points on the staircase, sorted by increasing area. */
    const std::vector<EnvelopePoint> &points() const { return points_; }

    /**
     * The best TPI achievable within @p area_budget, i.e. the
     * staircase evaluated at area_budget. Returns +inf when nothing
     * fits.
     */
    double bestTpiWithin(double area_budget) const;

    /** The staircase point chosen by bestTpiWithin. */
    const EnvelopePoint *bestPointWithin(double area_budget) const;

    /**
     * Area-weighted mean height difference against another envelope
     * over the overlapping area range, evaluated on a log-area grid.
     * Positive when *this lies above (is worse than) @p other.
     * This is the quantitative version of the paper's "distance
     * between the solid and dotted lines".
     */
    double meanGapAgainst(const Envelope &other, int grid_points = 64) const;

    bool empty() const { return points_.empty(); }

  private:
    std::vector<EnvelopePoint> points_;
};

} // namespace tlc

#endif // TLC_UTIL_ENVELOPE_HH
