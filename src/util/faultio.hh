/**
 * @file
 * Deterministic fault injection for byte streams.
 *
 * The robustness claim of the trace layer — any corrupt input is
 * rejected with a descriptive Status, without crashing, hanging, or
 * over-allocating — is only testable with corrupt inputs. This
 * wrapper manufactures them reproducibly: a std::streambuf that
 * forwards another streambuf's bytes while injecting bit flips,
 * byte drops and byte duplications at configurable per-byte rates,
 * plus an optional hard truncation, all driven by a seeded Pcg32 so
 * every failure a fuzz run finds can be replayed from its seed.
 *
 * Used by tests/test_fault_injection.cc and tools/trace_fuzz.cc.
 */

#ifndef TLC_UTIL_FAULTIO_HH
#define TLC_UTIL_FAULTIO_HH

#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <string>

#include "util/random.hh"

namespace tlc {

/** What to inject, how often, and with which random stream. */
struct FaultSpec
{
    static constexpr std::size_t kNoTruncate =
        static_cast<std::size_t>(-1);

    double bitFlipRate = 0.0; ///< P(flip one random bit) per byte
    double dropRate = 0.0;    ///< P(delete the byte) per byte
    double dupRate = 0.0;     ///< P(emit the byte twice) per byte
    /** Hard cut: stop after this many SOURCE bytes (EOF beyond). */
    std::size_t truncateAfter = kNoTruncate;
    std::uint64_t seed = 1;   ///< Pcg32 seed; same seed => same faults
};

/**
 * Read-side corrupting wrapper around another streambuf. Wrap a
 * file/string buffer, hand the wrapper to an std::istream, and the
 * reader under test sees the faulted byte stream.
 */
class CorruptingStreamBuf : public std::streambuf
{
  public:
    CorruptingStreamBuf(std::streambuf &src, const FaultSpec &spec);

    /**
     * Folds this stream's totals into the global metrics registry
     * (trace.faultio.{streams,bytes,faults}) so a fuzz run's
     * manifest records how much corruption was actually exercised.
     */
    ~CorruptingStreamBuf() override;

    /** Source bytes consumed so far. */
    std::size_t bytesRead() const { return srcPos_; }
    /** Faults injected so far (flips + drops + dups + the cut). */
    std::size_t faultsInjected() const { return faults_; }

  protected:
    int_type underflow() override;

  private:
    bool nextByte(char &out);

    std::streambuf *src_;
    FaultSpec spec_;
    Pcg32 rng_;
    std::size_t srcPos_ = 0;
    std::size_t faults_ = 0;
    bool havePending_ = false;
    bool cutCounted_ = false;
    char pending_ = 0; ///< second copy of a duplicated byte
    char cur_ = 0;     ///< one-byte get area
};

/**
 * Convenience: the corrupted image of @p bytes under @p spec,
 * produced through a CorruptingStreamBuf (so tests and tools
 * exercise the same code path).
 */
std::string corruptCopy(const std::string &bytes, const FaultSpec &spec);

} // namespace tlc

#endif // TLC_UTIL_FAULTIO_HH
