/**
 * @file
 * The tlcd explorer daemon: a long-lived server that accepts sweep
 * requests over a Unix-domain socket and streams results back, so
 * many clients can share one trace pool and one persistent result
 * store instead of each paying the cold-start cost.
 *
 * Wire protocol (docs/service.md): length-prefixed CRC-32 frames —
 * the exact codec the fault-isolation supervisor speaks on its
 * result pipes (util/supervisor.hh FrameReader/writeFrame). The
 * client sends ONE frame per request, holding a canonical
 * "tlc-sweep-request-v1" document (service/sweep_codec.hh); the
 * server answers with a stream of JSON event frames discriminated by
 * their "event" member:
 *
 *   progress  {"event":"progress","done":..,"total":..,"failed":..,
 *              "elapsed_seconds":..,"eta_seconds":..}
 *   response  {"event":"response","chunk":"..","last":bool} —
 *             consecutive chunks concatenate to the canonical
 *             response document (chunking keeps every frame under
 *             the 1 MiB cap)
 *   stats     {"event":"stats","chunk":".."} — the accounting
 *             document, always the LAST event of a served request
 *   error     {"event":"error","code":"..","message":".."} — the
 *             request could not be decoded (connection stays open)
 *             or the byte stream violated the frame protocol
 *             (connection closes)
 *
 * A connection may submit any number of requests sequentially; EOF
 * at a frame boundary is a clean goodbye. Concurrency: each
 * connection is served by its own thread, while sweep EXECUTION is
 * serialized inside SweepService — overlapping clients are accepted
 * concurrently, run in arrival order, and the later one's repeated
 * points resolve from the shared store (warm, near-free).
 *
 * Lifecycle: start() binds, listens and spawns the accept loop;
 * stop() (idempotent, also run by the destructor) finishes in-flight
 * requests, joins every connection thread and unlinks the socket.
 * tlcd (tools/tlcd.cc) wires SIGTERM/SIGINT to stop() for clean
 * shutdown; check.sh drills it.
 */

#ifndef TLC_SERVICE_DAEMON_HH
#define TLC_SERVICE_DAEMON_HH

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/sweep_service.hh"
#include "util/status.hh"

namespace tlc::service {

class SweepDaemon
{
  public:
    /** Serve @p service (not owned; must outlive the daemon) on
     *  @p socket_path. */
    SweepDaemon(SweepService &service, std::string socket_path);
    ~SweepDaemon();

    SweepDaemon(const SweepDaemon &) = delete;
    SweepDaemon &operator=(const SweepDaemon &) = delete;

    /** Bind + listen + spawn the accept loop. IoError/InvalidConfig
     *  Status when the socket cannot be set up. */
    Status start();

    /** Drain: no new connections, finish in-flight requests, join
     *  every thread, unlink the socket. Idempotent. */
    void stop();

    bool running() const { return started_; }
    const std::string &socketPath() const { return socketPath_; }

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void handleRequest(int fd, std::mutex &write_mu, bool &dead,
                       const std::string &text);

    SweepService &service_;
    std::string socketPath_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    bool started_ = false;
    std::thread acceptThread_;
    std::mutex connsMu_;
    std::vector<std::thread> conns_;
};

} // namespace tlc::service

#endif // TLC_SERVICE_DAEMON_HH
