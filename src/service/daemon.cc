/**
 * @file
 * Sweep daemon implementation.
 */

#include "daemon.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/supervisor.hh"

namespace tlc::service {

namespace {

/** Daemon metrics, registered once. */
struct DaemonMetrics
{
    MetricCounter &connections;
    MetricCounter &badRequests;
    MetricCounter &protocolErrors;

    static DaemonMetrics &get()
    {
        static DaemonMetrics m{
            MetricsRegistry::global().counter("service.connections"),
            MetricsRegistry::global().counter(
                "service.bad_requests"),
            MetricsRegistry::global().counter(
                "service.protocol_errors"),
        };
        return m;
    }
};

/** Response/stats documents travel as string chunks inside event
 *  frames; JSON escaping can double a chunk, so half the frame cap
 *  would already be tight — stay well under it. */
constexpr std::size_t kChunkBytes = 256 * 1024;

/** Poll granularity: how quickly stop() is noticed. */
constexpr int kPollMs = 200;

std::string
progressEventJson(const SweepProgress &p)
{
    std::ostringstream os;
    os << "{\"event\": \"progress\", \"done\": " << p.done
       << ", \"total\": " << p.total << ", \"failed\": " << p.failed
       << ", \"elapsed_seconds\": " << jsonNumber(p.elapsedSeconds)
       << ", \"eta_seconds\": " << jsonNumber(p.etaSeconds) << "}";
    return os.str();
}

std::string
errorEventJson(const Status &s)
{
    std::ostringstream os;
    os << "{\"event\": \"error\", \"code\": "
       << jsonQuote(statusCodeName(s.code())) << ", \"message\": "
       << jsonQuote(s.message()) << "}";
    return os.str();
}

/**
 * Send one event frame; on failure (client went away) flips @p dead
 * so later events are skipped — a sweep in flight completes for the
 * store's benefit even when nobody is listening anymore.
 */
void
sendEvent(int fd, std::mutex &write_mu, bool &dead,
          const std::string &payload)
{
    std::lock_guard<std::mutex> lock(write_mu);
    if (dead)
        return;
    Status s = writeFrame(fd, payload);
    if (!s.ok())
        dead = true;
}

} // namespace

SweepDaemon::SweepDaemon(SweepService &service, std::string socket_path)
    : service_(service), socketPath_(std::move(socket_path))
{
}

SweepDaemon::~SweepDaemon()
{
    stop();
}

Status
SweepDaemon::start()
{
    tlc_assert(!started_, "daemon already started");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath_.size() >= sizeof(addr.sun_path)) {
        return statusf(StatusCode::InvalidConfig,
                       "socket path '%s' exceeds the %zu-byte "
                       "AF_UNIX limit", socketPath_.c_str(),
                       sizeof(addr.sun_path) - 1);
    }
    std::memcpy(addr.sun_path, socketPath_.c_str(),
                socketPath_.size() + 1);

    // A dying client must cost us an EPIPE errno, not a process
    // signal.
    ::signal(SIGPIPE, SIG_IGN);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0) {
        return statusf(StatusCode::IoError, "socket: %s",
                       std::strerror(errno));
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status s = statusf(StatusCode::IoError,
                           "bind '%s': %s (stale socket from a dead "
                           "daemon? remove the file)",
                           socketPath_.c_str(), std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return s;
    }
    if (::listen(listenFd_, 16) != 0) {
        Status s = statusf(StatusCode::IoError, "listen '%s': %s",
                           socketPath_.c_str(), std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(socketPath_.c_str());
        return s;
    }

    stop_ = false;
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    inform("tlcd: serving sweep requests on '%s'",
           socketPath_.c_str());
    return Status{};
}

void
SweepDaemon::stop()
{
    if (!started_)
        return;
    stop_ = true;
    if (acceptThread_.joinable())
        acceptThread_.join();
    // Connection threads notice stop_ within one poll tick; a thread
    // inside a sweep finishes it first (drain semantics).
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        conns.swap(conns_);
    }
    for (std::thread &t : conns) {
        if (t.joinable())
            t.join();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(socketPath_.c_str());
    started_ = false;
}

void
SweepDaemon::acceptLoop()
{
    while (!stop_) {
        pollfd p{listenFd_, POLLIN, 0};
        int r = ::poll(&p, 1, kPollMs);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            warn("tlcd: poll: %s", std::strerror(errno));
            return;
        }
        if (r == 0)
            continue;
        int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("tlcd: accept: %s", std::strerror(errno));
            return;
        }
        DaemonMetrics::get().connections.inc();
        std::lock_guard<std::mutex> lock(connsMu_);
        conns_.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
SweepDaemon::serveConnection(int fd)
{
    FrameReader frames;
    std::mutex writeMu;
    bool dead = false;
    std::vector<std::string> requests;
    char buf[64 * 1024];

    while (!stop_) {
        pollfd p{fd, POLLIN, 0};
        int r = ::poll(&p, 1, kPollMs);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (r == 0)
            continue;
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0) {
            if (!frames.atFrameBoundary()) {
                DaemonMetrics::get().protocolErrors.inc();
                warn("tlcd: connection closed mid-frame");
            }
            break;
        }
        bool healthy = frames.feed(
            std::string_view(buf, static_cast<std::size_t>(n)),
            [&](std::string_view payload) {
                requests.emplace_back(payload);
            });
        for (const std::string &req : requests)
            handleRequest(fd, writeMu, dead, req);
        requests.clear();
        if (!healthy) {
            // Torn length or bad CRC: the stream can never be
            // trusted again — say why, then hang up.
            DaemonMetrics::get().protocolErrors.inc();
            sendEvent(fd, writeMu, dead,
                      errorEventJson(statusf(
                          StatusCode::ChecksumMismatch,
                          "frame protocol violation (bad CRC or "
                          "length); closing connection")));
            break;
        }
    }
    ::close(fd);
}

void
SweepDaemon::handleRequest(int fd, std::mutex &write_mu, bool &dead,
                           const std::string &text)
{
    Expected<SweepRequestSpec> spec = sweepRequestFromJson(text);
    if (!spec.ok()) {
        DaemonMetrics::get().badRequests.inc();
        sendEvent(fd, write_mu, dead,
                  errorEventJson(spec.status()));
        return;
    }

    ServiceRun run = service_.run(
        spec.value(), [&](const SweepProgress &p) {
            sendEvent(fd, write_mu, dead, progressEventJson(p));
        });

    const std::string response =
        sweepResponseJson(spec.value(), run.outcome);
    for (std::size_t off = 0; off < response.size();
         off += kChunkBytes) {
        const std::size_t len =
            std::min(kChunkBytes, response.size() - off);
        const bool last = off + len >= response.size();
        std::string event = "{\"event\": \"response\", \"chunk\": " +
            jsonQuote(response.substr(off, len)) +
            ", \"last\": " + (last ? "true" : "false") + "}";
        sendEvent(fd, write_mu, dead, event);
    }
    sendEvent(fd, write_mu, dead,
              "{\"event\": \"stats\", \"chunk\": " +
                  jsonQuote(sweepStatsJson(run.accounting)) + "}");
}

} // namespace tlc::service
