/**
 * @file
 * Sweep-service JSON codec implementation.
 */

#include "sweep_codec.hh"

#include <initializer_list>
#include <sstream>

#include "core/sweep_cache.hh"
#include "util/json.hh"

namespace tlc::service {

namespace {

// ---------------------------------------------------------------
// Strict-parse helpers. Every object is checked against an allowed
// key list so a typo'd or future field fails loudly by name instead
// of being silently ignored — the reject-unknown-fields half of the
// schema contract (tests/test_service.cc pins it).

Status
wrongType(const char *where, const char *want)
{
    return statusf(StatusCode::ParseError, "%s must be %s", where,
                   want);
}

Status
checkFields(const JsonValue &obj, const char *where,
            std::initializer_list<const char *> allowed)
{
    for (const JsonValue::Member &m : obj.members()) {
        bool known = false;
        for (const char *a : allowed) {
            if (m.first == a) {
                known = true;
                break;
            }
        }
        if (!known) {
            return statusf(StatusCode::ParseError,
                           "unknown field '%s' in %s",
                           m.first.c_str(), where);
        }
    }
    return Status{};
}

Status
readBool(const JsonValue &v, const char *where, bool &out)
{
    if (!v.isBool())
        return wrongType(where, "a boolean");
    out = v.boolean();
    return Status{};
}

Status
readString(const JsonValue &v, const char *where, std::string &out)
{
    if (!v.isString())
        return wrongType(where, "a string");
    out = v.str();
    return Status{};
}

Status
readU64(const JsonValue &v, const char *where, std::uint64_t &out)
{
    Expected<std::uint64_t> u = v.asU64();
    if (!u.ok())
        return u.status().withContext(where);
    out = u.value();
    return Status{};
}

Status
readFraction(const JsonValue &v, const char *where, double &out)
{
    if (!v.isNumber())
        return wrongType(where, "a number");
    double d = v.number();
    if (d < 0.0 || d >= 1.0) {
        return statusf(StatusCode::ParseError,
                       "%s %g out of range [0, 1)", where, d);
    }
    out = d;
    return Status{};
}

Status
readNonNegative(const JsonValue &v, const char *where, double &out)
{
    if (!v.isNumber())
        return wrongType(where, "a number");
    double d = v.number();
    if (d < 0.0) {
        return statusf(StatusCode::ParseError, "%s %g negative",
                       where, d);
    }
    out = d;
    return Status{};
}

Status
parsePolicy(const std::string &name, TwoLevelPolicy &out)
{
    for (TwoLevelPolicy p :
         {TwoLevelPolicy::Inclusive, TwoLevelPolicy::StrictInclusive,
          TwoLevelPolicy::Exclusive}) {
        if (name == twoLevelPolicyName(p)) {
            out = p;
            return Status{};
        }
    }
    return statusf(StatusCode::UnknownName,
                   "unknown two-level policy '%s'", name.c_str());
}

Status
parseRepl(const std::string &name, ReplPolicy &out)
{
    for (ReplPolicy p :
         {ReplPolicy::Random, ReplPolicy::LRU, ReplPolicy::FIFO}) {
        if (name == replPolicyName(p)) {
            out = p;
            return Status{};
        }
    }
    return statusf(StatusCode::UnknownName,
                   "unknown replacement policy '%s'", name.c_str());
}

Status
decodeAssumptions(const JsonValue &v, SystemAssumptions &out)
{
    if (!v.isObject())
        return wrongType("'assumptions'", "an object");
    Status fs = checkFields(v, "'assumptions'",
                            {"offchip_ns", "l1_assoc", "l2_assoc",
                             "policy", "dual_ported_l1", "line_bytes",
                             "l2_repl"});
    if (!fs.ok())
        return fs;

    std::uint64_t u = 0;
    std::string s;
    if (const JsonValue *m = v.find("offchip_ns")) {
        Status st =
            readNonNegative(*m, "'assumptions.offchip_ns'",
                            out.offchipNs);
        if (!st.ok())
            return st;
    }
    if (const JsonValue *m = v.find("l1_assoc")) {
        Status st = readU64(*m, "'assumptions.l1_assoc'", u);
        if (!st.ok())
            return st;
        out.l1Assoc = static_cast<std::uint32_t>(u);
    }
    if (const JsonValue *m = v.find("l2_assoc")) {
        Status st = readU64(*m, "'assumptions.l2_assoc'", u);
        if (!st.ok())
            return st;
        out.l2Assoc = static_cast<std::uint32_t>(u);
    }
    if (const JsonValue *m = v.find("policy")) {
        Status st = readString(*m, "'assumptions.policy'", s);
        if (!st.ok())
            return st;
        st = parsePolicy(s, out.policy);
        if (!st.ok())
            return st;
    }
    if (const JsonValue *m = v.find("dual_ported_l1")) {
        Status st = readBool(*m, "'assumptions.dual_ported_l1'",
                             out.dualPortedL1);
        if (!st.ok())
            return st;
    }
    if (const JsonValue *m = v.find("line_bytes")) {
        Status st = readU64(*m, "'assumptions.line_bytes'", u);
        if (!st.ok())
            return st;
        out.lineBytes = static_cast<std::uint32_t>(u);
    }
    if (const JsonValue *m = v.find("l2_repl")) {
        Status st = readString(*m, "'assumptions.l2_repl'", s);
        if (!st.ok())
            return st;
        st = parseRepl(s, out.l2Repl);
        if (!st.ok())
            return st;
    }
    return Status{};
}

// ---------------------------------------------------------------
// Encoding helpers: hand-built canonical JSON via the escape/number
// helpers, like the rest of the observability layer.

std::string
u64s(std::uint64_t v)
{
    return std::to_string(v);
}

void
emitMiss(std::ostringstream &os, const HierarchyStats &m,
         const char *indent)
{
    os << "{\n"
       << indent << "  \"instr_refs\": " << u64s(m.instrRefs) << ",\n"
       << indent << "  \"data_refs\": " << u64s(m.dataRefs) << ",\n"
       << indent << "  \"l1i_misses\": " << u64s(m.l1iMisses) << ",\n"
       << indent << "  \"l1d_misses\": " << u64s(m.l1dMisses) << ",\n"
       << indent << "  \"l2_hits\": " << u64s(m.l2Hits) << ",\n"
       << indent << "  \"l2_misses\": " << u64s(m.l2Misses) << ",\n"
       << indent << "  \"swaps\": " << u64s(m.swaps) << ",\n"
       << indent << "  \"offchip_writebacks\": "
       << u64s(m.offchipWritebacks) << "\n"
       << indent << "}";
}

void
emitEnvelope(std::ostringstream &os, const Envelope &env,
             const char *indent)
{
    if (env.points().empty()) {
        os << "[]";
        return;
    }
    os << "[\n";
    for (std::size_t i = 0; i < env.points().size(); ++i) {
        const EnvelopePoint &p = env.points()[i];
        os << indent << "  {\"area_rbe\": " << jsonNumber(p.area)
           << ", \"tpi_ns\": " << jsonNumber(p.tpi)
           << ", \"label\": " << jsonQuote(p.label) << "}"
           << (i + 1 < env.points().size() ? "," : "") << "\n";
    }
    os << indent << "]";
}

} // namespace

std::vector<SystemConfig>
SweepRequestSpec::materializeConfigs() const
{
    if (explicitConfigs) {
        std::vector<SystemConfig> out;
        out.reserve(configs.size());
        for (const auto &[l1, l2] : configs) {
            SystemConfig c;
            c.l1Bytes = l1;
            c.l2Bytes = l2;
            c.assume = assume;
            out.push_back(c);
        }
        return out;
    }
    return DesignSpace::enumerate(assume, spaceSingleLevel,
                                  spaceTwoLevel);
}

std::string
sweepRequestToJson(const SweepRequestSpec &spec)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": " << jsonQuote(kRequestSchema) << ",\n";
    os << "  \"tag\": " << jsonQuote(spec.tag) << ",\n";
    os << "  \"benchmarks\": [";
    for (std::size_t i = 0; i < spec.benchmarks.size(); ++i) {
        os << (i ? ", " : "")
           << jsonQuote(Workloads::info(spec.benchmarks[i]).name);
    }
    os << "],\n";
    os << "  \"assumptions\": {\n"
       << "    \"offchip_ns\": " << jsonNumber(spec.assume.offchipNs)
       << ",\n"
       << "    \"l1_assoc\": " << u64s(spec.assume.l1Assoc) << ",\n"
       << "    \"l2_assoc\": " << u64s(spec.assume.l2Assoc) << ",\n"
       << "    \"policy\": "
       << jsonQuote(twoLevelPolicyName(spec.assume.policy)) << ",\n"
       << "    \"dual_ported_l1\": "
       << (spec.assume.dualPortedL1 ? "true" : "false") << ",\n"
       << "    \"line_bytes\": " << u64s(spec.assume.lineBytes)
       << ",\n"
       << "    \"l2_repl\": "
       << jsonQuote(replPolicyName(spec.assume.l2Repl)) << "\n"
       << "  },\n";
    if (spec.explicitConfigs) {
        os << "  \"configs\": [";
        for (std::size_t i = 0; i < spec.configs.size(); ++i) {
            os << (i ? "," : "") << "\n    {\"l1_bytes\": "
               << u64s(spec.configs[i].first) << ", \"l2_bytes\": "
               << u64s(spec.configs[i].second) << "}";
        }
        os << "\n  ],\n";
    } else {
        os << "  \"space\": {\"single_level\": "
           << (spec.spaceSingleLevel ? "true" : "false")
           << ", \"two_level\": "
           << (spec.spaceTwoLevel ? "true" : "false") << "},\n";
    }
    os << "  \"evaluator\": {\n"
       << "    \"trace_refs\": " << u64s(spec.traceRefs) << ",\n"
       << "    \"warmup_fraction\": "
       << jsonNumber(spec.warmupFraction) << ",\n"
       << "    \"backend\": "
       << jsonQuote(missBackendName(spec.backend)) << ",\n"
       << "    \"prune_margin\": " << jsonNumber(spec.pruneMargin)
       << "\n  },\n";
    os << "  \"energy\": " << (spec.energy ? "true" : "false")
       << ",\n";
    os << "  \"threads\": " << u64s(spec.threads) << ",\n";
    os << "  \"trace_files\": {";
    bool first = true;
    for (const auto &[b, path] : spec.traceFiles) {
        os << (first ? "" : ", ")
           << jsonQuote(Workloads::info(b).name) << ": "
           << jsonQuote(path);
        first = false;
    }
    os << "}\n}";
    return os.str();
}

Expected<SweepRequestSpec>
sweepRequestFromJson(const std::string &text)
{
    Expected<JsonValue> parsed = jsonParse(text);
    if (!parsed.ok())
        return parsed.status().withContext("sweep request");
    const JsonValue &root = parsed.value();
    if (!root.isObject())
        return wrongType("sweep request", "a JSON object");

    // Schema tag first: a document from a different schema gets a
    // version complaint, not a flood of unknown-field errors.
    const JsonValue *schema = root.find("schema");
    if (!schema || !schema->isString()) {
        return statusf(StatusCode::VersionMismatch,
                       "sweep request has no \"schema\" string "
                       "(want \"%s\")", kRequestSchema);
    }
    if (schema->str() != kRequestSchema) {
        return statusf(StatusCode::VersionMismatch,
                       "sweep request schema \"%s\" not understood "
                       "(want \"%s\")", schema->str().c_str(),
                       kRequestSchema);
    }

    Status fs = checkFields(root, "sweep request",
                            {"schema", "tag", "benchmarks",
                             "assumptions", "configs", "space",
                             "evaluator", "energy", "threads",
                             "trace_files"});
    if (!fs.ok())
        return fs;

    SweepRequestSpec spec;

    if (const JsonValue *m = root.find("tag")) {
        Status st = readString(*m, "'tag'", spec.tag);
        if (!st.ok())
            return st;
    }

    const JsonValue *benches = root.find("benchmarks");
    if (!benches || !benches->isArray() || benches->items().empty()) {
        return statusf(StatusCode::ParseError,
                       "'benchmarks' must be a non-empty array of "
                       "benchmark names");
    }
    for (const JsonValue &b : benches->items()) {
        if (!b.isString())
            return wrongType("'benchmarks' entries", "strings");
        Expected<Benchmark> bench = Workloads::tryByName(b.str());
        if (!bench.ok())
            return bench.status();
        spec.benchmarks.push_back(bench.value());
    }

    if (const JsonValue *m = root.find("assumptions")) {
        Status st = decodeAssumptions(*m, spec.assume);
        if (!st.ok())
            return st;
    }

    const JsonValue *configs = root.find("configs");
    const JsonValue *space = root.find("space");
    if (configs && space) {
        return statusf(StatusCode::ParseError,
                       "'configs' and 'space' are mutually exclusive "
                       "(explicit points or an enumerated space, not "
                       "both)");
    }
    if (configs) {
        if (!configs->isArray() || configs->items().empty()) {
            return statusf(StatusCode::ParseError,
                           "'configs' must be a non-empty array");
        }
        spec.explicitConfigs = true;
        for (const JsonValue &c : configs->items()) {
            if (!c.isObject())
                return wrongType("'configs' entries", "objects");
            Status st = checkFields(c, "'configs' entry",
                                    {"l1_bytes", "l2_bytes"});
            if (!st.ok())
                return st;
            const JsonValue *l1 = c.find("l1_bytes");
            if (!l1) {
                return statusf(StatusCode::ParseError,
                               "'configs' entry missing 'l1_bytes'");
            }
            std::uint64_t l1v = 0, l2v = 0;
            st = readU64(*l1, "'l1_bytes'", l1v);
            if (!st.ok())
                return st;
            if (const JsonValue *l2 = c.find("l2_bytes")) {
                st = readU64(*l2, "'l2_bytes'", l2v);
                if (!st.ok())
                    return st;
            }
            spec.configs.emplace_back(l1v, l2v);
        }
    }
    if (space) {
        if (!space->isObject())
            return wrongType("'space'", "an object");
        Status st = checkFields(*space, "'space'",
                                {"single_level", "two_level"});
        if (!st.ok())
            return st;
        if (const JsonValue *m = space->find("single_level")) {
            st = readBool(*m, "'space.single_level'",
                          spec.spaceSingleLevel);
            if (!st.ok())
                return st;
        }
        if (const JsonValue *m = space->find("two_level")) {
            st = readBool(*m, "'space.two_level'",
                          spec.spaceTwoLevel);
            if (!st.ok())
                return st;
        }
        if (!spec.spaceSingleLevel && !spec.spaceTwoLevel) {
            return statusf(StatusCode::ParseError,
                           "'space' excludes both halves of the "
                           "design space");
        }
    }

    if (const JsonValue *ev = root.find("evaluator")) {
        if (!ev->isObject())
            return wrongType("'evaluator'", "an object");
        Status st = checkFields(*ev, "'evaluator'",
                                {"trace_refs", "warmup_fraction",
                                 "backend", "prune_margin"});
        if (!st.ok())
            return st;
        if (const JsonValue *m = ev->find("trace_refs")) {
            st = readU64(*m, "'evaluator.trace_refs'",
                         spec.traceRefs);
            if (!st.ok())
                return st;
        }
        if (const JsonValue *m = ev->find("warmup_fraction")) {
            st = readFraction(*m, "'evaluator.warmup_fraction'",
                              spec.warmupFraction);
            if (!st.ok())
                return st;
        }
        if (const JsonValue *m = ev->find("backend")) {
            std::string s;
            st = readString(*m, "'evaluator.backend'", s);
            if (!st.ok())
                return st;
            if (!missBackendFromName(s, spec.backend)) {
                return statusf(StatusCode::UnknownName,
                               "unknown miss backend '%s'",
                               s.c_str());
            }
        }
        if (const JsonValue *m = ev->find("prune_margin")) {
            st = readNonNegative(*m, "'evaluator.prune_margin'",
                                 spec.pruneMargin);
            if (!st.ok())
                return st;
        }
    }

    if (const JsonValue *m = root.find("energy")) {
        Status st = readBool(*m, "'energy'", spec.energy);
        if (!st.ok())
            return st;
    }
    if (const JsonValue *m = root.find("threads")) {
        std::uint64_t t = 0;
        Status st = readU64(*m, "'threads'", t);
        if (!st.ok())
            return st;
        if (t > 4096) {
            return statusf(StatusCode::ParseError,
                           "'threads' %llu out of range [0, 4096]",
                           static_cast<unsigned long long>(t));
        }
        spec.threads = static_cast<unsigned>(t);
    }
    if (const JsonValue *m = root.find("trace_files")) {
        if (!m->isObject())
            return wrongType("'trace_files'", "an object");
        for (const JsonValue::Member &e : m->members()) {
            Expected<Benchmark> bench =
                Workloads::tryByName(e.first);
            if (!bench.ok()) {
                return bench.status().withContext("'trace_files'");
            }
            std::string path;
            Status st = readString(e.second, "'trace_files' values",
                                   path);
            if (!st.ok())
                return st;
            spec.traceFiles[bench.value()] = path;
        }
    }

    return spec;
}

std::string
sweepResponseJson(const SweepRequestSpec &spec,
                  const SweepOutcome &outcome)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": " << jsonQuote(kResponseSchema) << ",\n";
    os << "  \"tag\": " << jsonQuote(spec.tag) << ",\n";
    os << "  \"benchmarks\": [";
    for (std::size_t bi = 0; bi < outcome.sweeps.size(); ++bi) {
        const ServedBenchmarkSweep &sw = outcome.sweeps[bi];
        os << (bi ? "," : "") << "\n    {\n"
           << "      \"benchmark\": "
           << jsonQuote(Workloads::info(sw.benchmark).name) << ",\n"
           << "      \"points\": [";
        for (std::size_t i = 0; i < sw.points.size(); ++i) {
            const DesignPoint &p = sw.points[i];
            os << (i ? "," : "") << "\n        {\n"
               << "          \"config\": "
               << jsonQuote(p.config.label()) << ",\n"
               << "          \"l1_bytes\": "
               << u64s(p.config.l1Bytes) << ",\n"
               << "          \"l2_bytes\": "
               << u64s(p.config.l2Bytes) << ",\n"
               << "          \"area_rbe\": " << jsonNumber(p.areaRbe)
               << ",\n"
               << "          \"l1_access_ns\": "
               << jsonNumber(p.l1Timing.accessNs) << ",\n"
               << "          \"l1_cycle_ns\": "
               << jsonNumber(p.l1Timing.cycleNs) << ",\n";
            if (p.config.hasL2()) {
                os << "          \"l2_access_ns\": "
                   << jsonNumber(p.l2Timing.accessNs) << ",\n"
                   << "          \"l2_cycle_ns\": "
                   << jsonNumber(p.l2Timing.cycleNs) << ",\n";
            }
            os << "          \"tpi_ns\": " << jsonNumber(p.tpi.tpi)
               << ",\n";
            if (!sw.energyPerRef.empty()) {
                os << "          \"energy_eu_per_ref\": "
                   << jsonNumber(sw.energyPerRef[i]) << ",\n";
            }
            os << "          \"miss\": ";
            emitMiss(os, p.miss, "          ");
            os << "\n        }";
        }
        os << (sw.points.empty() ? "]" : "\n      ]") << ",\n";
        os << "      \"envelope\": ";
        emitEnvelope(os, sw.envelope, "      ");
        if (!sw.energyEnvelope.points().empty() ||
            !sw.energyPerRef.empty()) {
            os << ",\n      \"energy_envelope\": ";
            emitEnvelope(os, sw.energyEnvelope, "      ");
        }
        os << "\n    }";
    }
    os << (outcome.sweeps.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"failures\": [";
    for (std::size_t i = 0; i < outcome.failures.size(); ++i) {
        const SweepFailure &f = outcome.failures[i];
        os << (i ? "," : "") << "\n    {\"subject\": "
           << jsonQuote(f.subject) << ", \"code\": "
           << jsonQuote(statusCodeName(f.status.code()))
           << ", \"message\": " << jsonQuote(f.status.message())
           << "}";
    }
    os << (outcome.failures.empty() ? "]" : "\n  ]") << "\n}";
    return os.str();
}

std::string
sweepStatsJson(const SweepAccounting &acct)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": " << jsonQuote(kStatsSchema) << ",\n";
    os << "  \"store_hits\": " << u64s(acct.storeHits) << ",\n";
    os << "  \"store_misses\": " << u64s(acct.storeMisses) << ",\n";
    os << "  \"store_appends\": " << u64s(acct.storeAppends) << ",\n";
    os << "  \"memo_hits\": " << u64s(acct.memoHits) << ",\n";
    os << "  \"points_priced\": " << u64s(acct.pointsPriced) << ",\n";
    os << "  \"failures\": " << u64s(acct.failures) << ",\n";
    os << "  \"wall_seconds\": " << jsonNumber(acct.wallSeconds)
       << "\n}";
    return os.str();
}

} // namespace tlc::service
