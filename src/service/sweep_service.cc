/**
 * @file
 * Sweep-service engine implementation.
 */

#include "sweep_service.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "power/energy_model.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace tlc::service {

namespace {

/** Service metrics, registered once. */
struct ServiceMetrics
{
    MetricCounter &requests;
    MetricCounter &points;
    MetricCounter &failures;

    static ServiceMetrics &get()
    {
        static ServiceMetrics m{
            MetricsRegistry::global().counter(
                "service.requests_served"),
            MetricsRegistry::global().counter(
                "service.points_served"),
            MetricsRegistry::global().counter(
                "service.request_failures"),
        };
        return m;
    }
};

/** Per-reference energy of every point of one sweep (spec.energy). */
std::vector<double>
priceEnergy(Explorer &ex, const SweepRequestSpec &spec,
            const std::vector<DesignPoint> &points)
{
    EnergyModel em;
    auto arrayEnergy = [&](std::uint64_t size, std::uint32_t assoc,
                           bool dual) {
        const TimingResult &t =
            ex.timingOf(size, assoc, spec.assume.lineBytes);
        SramGeometry g{size, spec.assume.lineBytes, assoc, 32, 64};
        return em.accessEnergy(g, t.dataOrg, t.tagOrg, dual).total();
    };
    std::vector<double> out;
    out.reserve(points.size());
    for (const DesignPoint &p : points) {
        double eL1 = arrayEnergy(p.config.l1Bytes,
                                 spec.assume.l1Assoc,
                                 spec.assume.dualPortedL1);
        double eL2 = p.config.hasL2()
                         ? arrayEnergy(p.config.l2Bytes,
                                       spec.assume.l2Assoc, false)
                         : 0.0;
        out.push_back(em.energyPerReference(p.miss, eL1, eL2));
    }
    return out;
}

/** TPI-vs-energy envelope: cost axis = eu/ref instead of rbe. */
Envelope
energyEnvelopeOf(const std::vector<DesignPoint> &points,
                 const std::vector<double> &energy)
{
    std::vector<EnvelopePoint> eps;
    eps.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        eps.push_back(EnvelopePoint{energy[i], points[i].tpi.tpi,
                                    points[i].config.label()});
    }
    return Envelope::of(std::move(eps));
}

} // namespace

SweepService::SweepService(SweepServiceOptions options)
    : options_(std::move(options)), pool_(std::make_shared<TracePool>())
{
}

Status
SweepService::init()
{
    if (options_.resultStorePath.empty())
        return Status{};
    store_ = std::make_shared<SweepCache>();
    ResultStoreOptions ropts;
    ropts.fsyncOnCommit = options_.storeFsync;
    Status s = store_->open(options_.resultStorePath, ropts);
    if (!s.ok())
        store_.reset();
    return s;
}

ServiceRun
SweepService::run(const SweepRequestSpec &spec,
                  const std::function<void(const SweepProgress &)>
                      &progress)
{
    // One sweep at a time: the engine's parallelism lives INSIDE a
    // request (the worker team), and the accounting below reads
    // process-wide counters whose deltas are only attributable to
    // this request while no other sweep is in flight.
    std::lock_guard<std::mutex> lock(engineMu_);
    auto t0 = std::chrono::steady_clock::now();

    MetricsRegistry &reg = MetricsRegistry::global();
    MetricCounter &storeHits = reg.counter("sweep_cache.hits");
    MetricCounter &storeMisses = reg.counter("sweep_cache.misses");
    MetricCounter &storeAppends = reg.counter("sweep_cache.appends");
    MetricCounter &memoHits =
        reg.counter("explore.missrate_cache.hits");
    const std::uint64_t h0 = storeHits.value();
    const std::uint64_t m0 = storeMisses.value();
    const std::uint64_t a0 = storeAppends.value();
    const std::uint64_t memo0 = memoHits.value();

    EvaluatorOptions eopts;
    eopts.traceRefs = spec.traceRefs;
    eopts.warmupFraction = spec.warmupFraction;
    eopts.traceFiles = spec.traceFiles;
    eopts.resultStore = store_;
    eopts.tracePool = pool_;
    eopts.backend = spec.backend;
    eopts.pruneMargin = spec.pruneMargin;
    MissRateEvaluator ev(eopts);
    Explorer ex(ev);

    SweepRequest req;
    req.configs = spec.materializeConfigs();
    req.benchmarks = spec.benchmarks;
    FailureReport report;
    req.report = &report;
    req.progress = progress;
    req.threads = spec.threads;

    std::vector<BenchmarkSweep> sweeps = ex.evaluateAll(req);

    ServiceRun out;
    for (BenchmarkSweep &bs : sweeps) {
        ServedBenchmarkSweep sb;
        sb.benchmark = bs.benchmark;
        sb.points = std::move(bs.points);
        sb.envelope = Explorer::envelopeOf(sb.points);
        if (spec.energy) {
            sb.energyPerRef = priceEnergy(ex, spec, sb.points);
            sb.energyEnvelope =
                energyEnvelopeOf(sb.points, sb.energyPerRef);
        }
        out.accounting.pointsPriced += sb.points.size();
        out.outcome.sweeps.push_back(std::move(sb));
    }
    out.outcome.failures = report.failures();

    out.accounting.storeHits = storeHits.value() - h0;
    out.accounting.storeMisses = storeMisses.value() - m0;
    out.accounting.storeAppends = storeAppends.value() - a0;
    out.accounting.memoHits = memoHits.value() - memo0;
    out.accounting.failures = report.size();
    out.accounting.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    ServiceMetrics::get().requests.inc();
    ServiceMetrics::get().points.inc(out.accounting.pointsPriced);
    ServiceMetrics::get().failures.inc(out.accounting.failures);
    return out;
}

int
runRequestCli(const cli::SweepFlags &flags)
{
    std::ifstream in(flags.requestFile, std::ios::binary);
    if (!in) {
        warn("--request: cannot open '%s'",
             flags.requestFile.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    Expected<SweepRequestSpec> spec =
        sweepRequestFromJson(text.str());
    if (!spec.ok()) {
        warn("--request '%s': %s", flags.requestFile.c_str(),
             spec.status().toString().c_str());
        return 1;
    }

    SweepServiceOptions sopts;
    sopts.resultStorePath = flags.resultStore;
    sopts.storeFsync = flags.storeFsync;
    SweepService svc(sopts);
    Status s = svc.init();
    if (!s.ok()) {
        warn("result store: %s", s.message().c_str());
        return 1;
    }

    std::function<void(const SweepProgress &)> progress;
    if (flags.progress) {
        progress = stderrProgressPrinter(
            spec.value().tag.empty() ? "request" : spec.value().tag);
    }
    ServiceRun run = svc.run(spec.value(), progress);

    std::string response =
        sweepResponseJson(spec.value(), run.outcome) + "\n";
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fflush(stdout);

    if (!flags.statsOut.empty()) {
        std::ofstream sout(flags.statsOut,
                           std::ios::binary | std::ios::trunc);
        if (!sout) {
            warn("--stats-out: cannot open '%s'",
                 flags.statsOut.c_str());
            return 1;
        }
        sout << sweepStatsJson(run.accounting) << "\n";
    }
    return 0;
}

} // namespace tlc::service
