/**
 * @file
 * Client side of the sweep service: connect to a tlcd socket, submit
 * one canonical request document, stream the event frames back, and
 * return the reassembled response + stats documents. Shared by the
 * tlc_client tool and the concurrency tests, so every consumer
 * speaks the protocol through one implementation.
 */

#ifndef TLC_SERVICE_CLIENT_HH
#define TLC_SERVICE_CLIENT_HH

#include <functional>
#include <string>

#include "core/explorer.hh"
#include "util/status.hh"

namespace tlc::service {

/** A served request's two documents, byte-exact as sent. */
struct ServiceReply
{
    std::string responseJson; ///< "tlc-sweep-response-v1" document
    std::string statsJson;    ///< "tlc-sweep-stats-v1" document
};

/**
 * Submit @p request_json over @p socket_path and block until the
 * stats event (the protocol's end-of-request marker) arrives.
 * @p progress (optional) receives the daemon's streamed progress
 * events. An error event from the daemon comes back as a Status
 * carrying the daemon's code and message; transport problems
 * (connect failure, timeout, torn frames, daemon hangup) map to
 * IoError/ChecksumMismatch.
 */
Expected<ServiceReply> submitSweepRequest(
    const std::string &socket_path, const std::string &request_json,
    const std::function<void(const SweepProgress &)> &progress = {},
    double timeout_seconds = 600.0);

} // namespace tlc::service

#endif // TLC_SERVICE_CLIENT_HH
