/**
 * @file
 * The sweep-service wire and file codec: one canonical, versioned
 * JSON schema for sweep requests and responses, shared by every way
 * a sweep can be asked for — the tlcd daemon's Unix-domain socket
 * (service/daemon.hh), the tlc_client tool, and the classic CLI
 * drivers' --request=FILE path (design_explorer, figure_runner). A
 * request written for one consumer is valid for all of them, and all
 * of them produce byte-identical response documents for the same
 * request.
 *
 * Requests ("tlc-sweep-request-v1") are STRICT-parsed: a missing or
 * wrong schema tag is a VersionMismatch, an unknown field anywhere in
 * the document is a ParseError naming the field, and every value is
 * type- and range-checked — a daemon fed garbage must say exactly
 * what was wrong, not guess. Encoding is canonical (fixed field
 * order, every field present), so decode(encode(spec)) == spec and
 * encode(decode(text)) is a normal form.
 *
 * Responses ("tlc-sweep-response-v1") carry the priced points,
 * per-benchmark envelopes, optional energy results and the fail-soft
 * failure list — everything a figure needs — and deliberately NOT
 * runtime accounting (cache hits, wall time), which varies between a
 * cold and a warm run of the same request. Accounting travels in a
 * separate stats document ("tlc-sweep-stats-v1"), keeping response
 * bytes identical whenever the sweep results are (the service's
 * core byte-identity guarantee; docs/service.md states it).
 */

#ifndef TLC_SERVICE_SWEEP_CODEC_HH
#define TLC_SERVICE_SWEEP_CODEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hh"
#include "core/explorer.hh"
#include "core/system_config.hh"
#include "trace/workload.hh"
#include "util/envelope.hh"
#include "util/status.hh"

namespace tlc::service {

/** Schema tags pinned by the codec (and by tests). */
inline constexpr const char *kRequestSchema = "tlc-sweep-request-v1";
inline constexpr const char *kResponseSchema = "tlc-sweep-response-v1";
inline constexpr const char *kStatsSchema = "tlc-sweep-stats-v1";

/**
 * One sweep request as a plain value — the decoded form of a
 * "tlc-sweep-request-v1" document. Defaults match the classic CLI
 * drivers' defaults, so an empty-ish request means "the paper's full
 * design space on the chosen benchmarks".
 */
struct SweepRequestSpec
{
    /** Client label echoed verbatim in the response ("" allowed). */
    std::string tag;
    /** Benchmarks to sweep, in order (never empty after decode). */
    std::vector<Benchmark> benchmarks;
    /** Experiment assumptions shared by every configuration. */
    SystemAssumptions assume;
    /** Explicit (l1_bytes, l2_bytes) configurations. Empty (with
     *  explicitConfigs false) => enumerate the design space. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> configs;
    bool explicitConfigs = false;
    /** Design-space halves when enumerating (ignored with explicit
     *  configs). */
    bool spaceSingleLevel = true;
    bool spaceTwoLevel = true;
    /** Evaluator knobs (see EvaluatorOptions). */
    std::uint64_t traceRefs = 0;
    double warmupFraction = 0.1;
    MissBackend backend = MissBackend::Exact;
    double pruneMargin = 0.02;
    /** Benchmarks routed to on-disk trace files. */
    std::map<Benchmark, std::string> traceFiles;
    /** Also price per-reference energy and the TPI-vs-energy
     *  envelope (src/power). */
    bool energy = false;
    /** Worker-team width (0 inherits TLC_THREADS). */
    unsigned threads = 0;

    /** The configuration list this request sweeps (explicit configs
     *  with assumptions applied, or the enumerated space). */
    std::vector<SystemConfig> materializeConfigs() const;
};

/** Canonical encoding: fixed field order, every field present,
 *  2-space indent, no trailing newline. */
std::string sweepRequestToJson(const SweepRequestSpec &spec);

/**
 * Strict decode of one "tlc-sweep-request-v1" document. Fails with
 *  - VersionMismatch when the schema tag is missing or not the
 *    pinned value,
 *  - ParseError for malformed JSON, unknown fields (named), wrong
 *    types, out-of-range values, or configs+space both given,
 *  - UnknownName for benchmark/policy/backend names that do not
 *    exist.
 */
Expected<SweepRequestSpec> sweepRequestFromJson(const std::string &text);

/** Priced results of one benchmark of a served sweep. */
struct ServedBenchmarkSweep
{
    Benchmark benchmark;
    std::vector<DesignPoint> points;
    /** eu/ref per point (parallel to points; empty unless
     *  spec.energy). */
    std::vector<double> energyPerRef;
    Envelope envelope;
    /** TPI-vs-energy envelope (empty unless spec.energy). */
    Envelope energyEnvelope;
};

/** Everything a served sweep produced (the response payload). */
struct SweepOutcome
{
    std::vector<ServedBenchmarkSweep> sweeps;
    std::vector<SweepFailure> failures;
};

/** Runtime accounting of one served sweep — deliberately OUTSIDE
 *  the response document (see file comment). */
struct SweepAccounting
{
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t storeAppends = 0;
    std::uint64_t memoHits = 0;
    std::uint64_t pointsPriced = 0;
    std::uint64_t failures = 0;
    double wallSeconds = 0.0;
};

/** Canonical "tlc-sweep-response-v1" document (no trailing
 *  newline): deterministic for deterministic sweep results. */
std::string sweepResponseJson(const SweepRequestSpec &spec,
                              const SweepOutcome &outcome);

/** "tlc-sweep-stats-v1" accounting document (no trailing newline). */
std::string sweepStatsJson(const SweepAccounting &acct);

} // namespace tlc::service

#endif // TLC_SERVICE_SWEEP_CODEC_HH
