/**
 * @file
 * Sweep-service client implementation.
 */

#include "client.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/json.hh"
#include "util/supervisor.hh"

namespace tlc::service {

namespace {

/** RAII socket close. */
struct Fd
{
    int fd = -1;
    ~Fd()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/** Reverse of statusCodeName: the daemon's error events carry the
 *  code by stable name, and the client surfaces the same code. */
StatusCode
statusCodeByName(const std::string &name)
{
    for (int c = 0; c <= static_cast<int>(StatusCode::WorkerTimeout);
         ++c) {
        StatusCode code = static_cast<StatusCode>(c);
        if (name == statusCodeName(code))
            return code;
    }
    return StatusCode::InternalError;
}

/** One decoded event frame folded into the reply state. */
struct EventState
{
    std::string response;
    std::string stats;
    bool responseDone = false;
    bool statsDone = false;
    Status error;
};

Status
applyEvent(const std::string &payload, EventState &st,
           const std::function<void(const SweepProgress &)> &progress)
{
    Expected<JsonValue> parsed = jsonParse(payload);
    if (!parsed.ok())
        return parsed.status().withContext("daemon event");
    const JsonValue &ev = parsed.value();
    if (!ev.isObject() || !ev.find("event") ||
        !ev.find("event")->isString()) {
        return statusf(StatusCode::ParseError,
                       "daemon event frame has no \"event\" string");
    }
    const std::string &kind = ev.find("event")->str();

    if (kind == "progress") {
        if (progress) {
            SweepProgress p;
            if (const JsonValue *v = ev.find("done"))
                p.done = static_cast<std::size_t>(v->number());
            if (const JsonValue *v = ev.find("total"))
                p.total = static_cast<std::size_t>(v->number());
            if (const JsonValue *v = ev.find("failed"))
                p.failed = static_cast<std::size_t>(v->number());
            if (const JsonValue *v = ev.find("elapsed_seconds"))
                p.elapsedSeconds = v->number();
            if (const JsonValue *v = ev.find("eta_seconds"))
                p.etaSeconds = v->number();
            progress(p);
        }
        return Status{};
    }
    if (kind == "response") {
        const JsonValue *chunk = ev.find("chunk");
        const JsonValue *last = ev.find("last");
        if (!chunk || !chunk->isString() || !last || !last->isBool()) {
            return statusf(StatusCode::ParseError,
                           "malformed response event");
        }
        st.response += chunk->str();
        if (last->boolean())
            st.responseDone = true;
        return Status{};
    }
    if (kind == "stats") {
        const JsonValue *chunk = ev.find("chunk");
        if (!chunk || !chunk->isString()) {
            return statusf(StatusCode::ParseError,
                           "malformed stats event");
        }
        st.stats = chunk->str();
        st.statsDone = true;
        return Status{};
    }
    if (kind == "error") {
        std::string code = "internal-error", message = "unknown";
        if (const JsonValue *v = ev.find("code"))
            if (v->isString())
                code = v->str();
        if (const JsonValue *v = ev.find("message"))
            if (v->isString())
                message = v->str();
        st.error = Status(statusCodeByName(code),
                          "daemon: " + message);
        return Status{};
    }
    return statusf(StatusCode::ParseError,
                   "unknown daemon event '%s'", kind.c_str());
}

} // namespace

Expected<ServiceReply>
submitSweepRequest(
    const std::string &socket_path, const std::string &request_json,
    const std::function<void(const SweepProgress &)> &progress,
    double timeout_seconds)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        return statusf(StatusCode::InvalidConfig,
                       "socket path '%s' exceeds the %zu-byte "
                       "AF_UNIX limit", socket_path.c_str(),
                       sizeof(addr.sun_path) - 1);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    // As on the daemon side: a hangup must be an errno, not a
    // process signal.
    ::signal(SIGPIPE, SIG_IGN);

    Fd sock;
    sock.fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (sock.fd < 0) {
        return statusf(StatusCode::IoError, "socket: %s",
                       std::strerror(errno));
    }
    if (::connect(sock.fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        return statusf(StatusCode::IoError, "connect '%s': %s",
                       socket_path.c_str(), std::strerror(errno));
    }

    Status ws = writeFrame(sock.fd, request_json);
    if (!ws.ok())
        return ws.withContext("sending sweep request");

    FrameReader frames;
    EventState st;
    Status eventError;
    std::vector<std::string> payloads;
    char buf[64 * 1024];
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration<double>(timeout_seconds);

    while (!st.statsDone && st.error.ok()) {
        if (std::chrono::steady_clock::now() >= deadline) {
            return statusf(StatusCode::WorkerTimeout,
                           "no reply from '%s' within %.0f s",
                           socket_path.c_str(), timeout_seconds);
        }
        pollfd p{sock.fd, POLLIN, 0};
        int r = ::poll(&p, 1, 200);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return statusf(StatusCode::IoError, "poll: %s",
                           std::strerror(errno));
        }
        if (r == 0)
            continue;
        ssize_t n = ::read(sock.fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return statusf(StatusCode::IoError, "read: %s",
                           std::strerror(errno));
        }
        if (n == 0) {
            return statusf(StatusCode::IoError,
                           "daemon closed the connection before the "
                           "reply completed");
        }
        bool healthy = frames.feed(
            std::string_view(buf, static_cast<std::size_t>(n)),
            [&](std::string_view payload) {
                payloads.emplace_back(payload);
            });
        for (const std::string &payload : payloads) {
            if (eventError.ok())
                eventError = applyEvent(payload, st, progress);
        }
        payloads.clear();
        if (!eventError.ok())
            return eventError;
        if (!healthy) {
            return statusf(StatusCode::ChecksumMismatch,
                           "frame protocol violation on the reply "
                           "stream");
        }
    }
    if (!st.error.ok())
        return st.error;
    if (!st.responseDone) {
        return statusf(StatusCode::Truncated,
                       "stats event arrived before the response "
                       "completed");
    }
    return ServiceReply{std::move(st.response), std::move(st.stats)};
}

} // namespace tlc::service
