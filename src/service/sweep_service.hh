/**
 * @file
 * The sweep service proper: the engine behind both the tlcd daemon
 * (service/daemon.hh) and the CLI drivers' --request=FILE path. One
 * SweepService owns the resources that make repeated sweeps cheap —
 * a shared persistent SweepCache and a shared TracePool — and runs
 * each decoded SweepRequestSpec through a FRESH MissRateEvaluator +
 * Explorer against them.
 *
 * Why fresh per request: a long-lived evaluator's in-memory memo
 * would absorb repeats silently, making per-request cache accounting
 * meaningless and hiding the persistent store from view. With a
 * fresh evaluator every repeated point resolves in the shared store,
 * so the second client's warm re-sweep is (a) near-free and (b)
 * visibly so in its stats document (store_hits > 0) — the service's
 * headline property, pinned by tests/test_service.cc and
 * bench/service_throughput.cc.
 *
 * Determinism: run() serializes sweep execution under an engine
 * mutex (concurrent CLIENTS are served concurrently at the
 * connection layer; their sweeps execute in arrival order). The
 * engine itself is the classic batched Explorer path, so a served
 * response's points, envelopes and failures are byte-identical to a
 * standalone CLI run of the same request — warm or cold.
 */

#ifndef TLC_SERVICE_SWEEP_SERVICE_HH
#define TLC_SERVICE_SWEEP_SERVICE_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/explorer.hh"
#include "core/sweep_cache.hh"
#include "service/sweep_codec.hh"
#include "util/args.hh"
#include "util/status.hh"

namespace tlc::service {

/** Construction-time configuration of a SweepService. */
struct SweepServiceOptions
{
    /** Persistent result-store path ("" => in-memory only: requests
     *  still share traces, but no cross-request result reuse). */
    std::string resultStorePath;
    /** fsync the store after every append (see ResultStoreOptions). */
    bool storeFsync = false;
};

/** What one served sweep produced, plus its runtime accounting. */
struct ServiceRun
{
    SweepOutcome outcome;
    SweepAccounting accounting;
};

class SweepService
{
  public:
    explicit SweepService(SweepServiceOptions options = {});

    /** Open the persistent store (no-op without a path). Call once
     *  before serving; IoError Status when the store cannot open. */
    Status init();

    /**
     * Run one decoded request to completion. @p progress (optional)
     * receives the engine's throttled SweepProgress updates — from
     * worker threads, so it must be cheap and thread-safe.
     */
    ServiceRun run(const SweepRequestSpec &spec,
                   const std::function<void(const SweepProgress &)>
                       &progress = {});

    /** The shared store (null when no path was configured). */
    SweepCache *store() { return store_.get(); }
    /** The shared trace pool (never null). */
    TracePool &tracePool() { return *pool_; }

  private:
    SweepServiceOptions options_;
    std::shared_ptr<SweepCache> store_;
    std::shared_ptr<TracePool> pool_;
    /** Serializes sweep execution AND the counter-delta accounting
     *  reads around it (the global metrics registry is process-wide;
     *  without the lock two in-flight sweeps would read each other's
     *  ticks). */
    std::mutex engineMu_;
};

/**
 * The CLI drivers' --request=FILE path: read and strict-decode the
 * request document, run it against a one-shot SweepService built
 * from the shared sweep flags (result store, fsync), write the
 * canonical response + '\n' to stdout and, with --stats-out, the
 * accounting document + '\n' there. Exit-code semantics: 0 on a
 * served sweep (fail-soft failures live in the response), 1 on a
 * request that could not be decoded or a store that could not open.
 *
 * Byte-identity contract: for the same request document, the bytes
 * written here equal the bytes tlc_client --out writes when talking
 * to a daemon — one schema, one encoder (docs/service.md).
 */
int runRequestCli(const cli::SweepFlags &flags);

} // namespace tlc::service

#endif // TLC_SERVICE_SWEEP_SERVICE_HH
