/**
 * @file
 * Technology parameters for the analytical SRAM timing model.
 *
 * The paper computes cache access and cycle times with the
 * Wilton–Jouppi enhancement (WRL TR 93/5) of Wada's analytical
 * model, using SPICE-extracted 0.8 µm constants, then scales the
 * results by 0.5 to approximate a high-performance 0.5 µm CMOS
 * process. The original SPICE constants are not reproducible here,
 * so this module defines a reconstructed constant set with the same
 * structure: per-stage delay coefficients whose absolute values are
 * calibrated to the anchors the paper quotes (≈1.8× L1 cycle-time
 * spread from 1 KB to 256 KB; L2-hit penalty of 5 CPU cycles for a
 * 4 KB L1; see DESIGN.md §2).
 */

#ifndef TLC_TIMING_TECHNOLOGY_HH
#define TLC_TIMING_TECHNOLOGY_HH

namespace tlc {

/**
 * Delay coefficients, in ns at the 0.8 µm baseline. Each stage is
 * modelled as fixed + linear (+ small quadratic, for distributed RC
 * lines) terms in its electrical load.
 */
struct TechnologyParams
{
    // Row decoder: predecode NAND/NOR chain + wordline select.
    double decBase = 0.70;       ///< fixed decoder delay
    double decPerAddrBit = 0.13; ///< per decoded address bit (log2 rows)
    double decPerSubarray = 0.016; ///< select-wire RC per subarray

    // Wordline: distributed RC along the columns of one subarray.
    double wlBase = 0.20;
    double wlPerCol = 0.0026;
    double wlPerCol2 = 4.5e-7;

    // Bitline discharge + sense amplifier, RC along the rows.
    double blBase = 0.45;
    double blPerRow = 0.0040;
    double blPerRow2 = 6.5e-7;
    double blPerMuxLog2 = 0.09; ///< column-mux select overhead

    // Tag comparator (dynamic XOR tree).
    double cmpBase = 0.50;
    double cmpPerTagBit = 0.040;

    // Set-associative output multiplexor driver.
    double muxBase = 0.55;
    double muxPerWay = 0.10;

    // Data output driver to the cache boundary.
    double outBase = 0.60;
    double outPerSubarrayLog2 = 0.11;

    // Valid-signal output driver (direct-mapped tag side).
    double validOut = 0.30;

    // Bitline precharge/equalisation: added to access for cycle time.
    double preBase = 0.50;
    double prePerRow = 0.0026;

    // Content-addressable tag path (fully-associative caches, e.g.
    // victim buffers): match-line delay per tag bit plus a wired-OR
    // that grows with the entry count.
    double camBase = 0.90;
    double camPerTagBit = 0.030;
    double camPerEntryLog2 = 0.12;

    /**
     * Final multiplier applied to every time: 0.5 models the shrink
     * from the 0.8 µm baseline to a 0.5 µm process (paper §2.3).
     */
    double processScale = 0.5;

    /** The 0.8 µm baseline constants scaled to 0.5 µm (the default). */
    static const TechnologyParams &scaled05um();
    /** The raw 0.8 µm baseline (processScale = 1). */
    static const TechnologyParams &baseline08um();
};

} // namespace tlc

#endif // TLC_TIMING_TECHNOLOGY_HH
