/**
 * @file
 * Analytical cache access- and cycle-time model with organization
 * search (reconstruction of Wilton–Jouppi, WRL TR 93/5).
 */

#ifndef TLC_TIMING_ACCESS_TIME_HH
#define TLC_TIMING_ACCESS_TIME_HH

#include <string>

#include "timing/organization.hh"
#include "timing/technology.hh"

namespace tlc {

/** Per-stage delay breakdown of one cache access, in ns. */
struct DelayBreakdown
{
    double decoder = 0;
    double wordline = 0;
    double bitline = 0;   ///< includes sense amplifier
    double compare = 0;   ///< tag comparator
    double muxDriver = 0; ///< set-associative select driver
    double output = 0;    ///< data output driver
    double precharge = 0; ///< cycle-time adder
};

/** Result of optimising one cache's array organization. */
struct TimingResult
{
    double accessNs = 0; ///< start of access to data available
    double cycleNs = 0;  ///< minimum time between access starts
    ArrayOrganization dataOrg;
    ArrayOrganization tagOrg;
    SubarrayDims dataDims;
    SubarrayDims tagDims;
    DelayBreakdown breakdown;
    bool valid = false;

    std::string toString() const;
};

/**
 * The timing model proper. Stateless apart from its technology
 * constants; evaluate() prices one organization, optimize() searches
 * the organization space for the minimum cycle time (tie-broken by
 * access time), exactly as the paper picks "the minimum access and
 * cycle times for each cache size".
 */
class AccessTimeModel
{
  public:
    explicit AccessTimeModel(
        const TechnologyParams &tech = TechnologyParams::scaled05um());

    const TechnologyParams &tech() const { return tech_; }

    /**
     * Delay of one cache with a fixed organization; result.valid is
     * false when the organization does not divide the array evenly.
     */
    TimingResult evaluate(const SramGeometry &g,
                          const ArrayOrganization &data_org,
                          const ArrayOrganization &tag_org) const;

    /** Search organizations for the best (minimum-cycle) timing.
     *  Fully-associative geometries take the CAM path. */
    TimingResult optimize(const SramGeometry &g) const;

    /**
     * Timing of a fully-associative (CAM-tagged) array: the match
     * lines replace the decoder and drive the data wordlines
     * directly. Used for victim buffers and small TLBs.
     */
    TimingResult evaluateCam(const SramGeometry &g) const;

    /** Number of tag status bits modelled (valid + dirty). */
    static constexpr std::uint32_t kStatusBits = 2;

  private:
    TechnologyParams tech_;
};

} // namespace tlc

#endif // TLC_TIMING_ACCESS_TIME_HH
