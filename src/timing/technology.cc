/**
 * @file
 * Technology parameter presets.
 */

#include "technology.hh"

namespace tlc {

const TechnologyParams &
TechnologyParams::scaled05um()
{
    static const TechnologyParams p = [] {
        TechnologyParams t;
        t.processScale = 0.5;
        return t;
    }();
    return p;
}

const TechnologyParams &
TechnologyParams::baseline08um()
{
    static const TechnologyParams p = [] {
        TechnologyParams t;
        t.processScale = 1.0;
        return t;
    }();
    return p;
}

} // namespace tlc
