/**
 * @file
 * Memory-array organization parameters (Wada's Ndwl/Ndbl/Nspd).
 */

#ifndef TLC_TIMING_ORGANIZATION_HH
#define TLC_TIMING_ORGANIZATION_HH

#include <cstdint>
#include <string>

namespace tlc {

/**
 * How one memory array (data or tag) is broken into subarrays:
 *  - Nwl: wordline divisions (columns split across Nwl subarrays)
 *  - Nbl: bitline divisions (rows split across Nbl subarrays)
 *  - Nspd: sets mapped to the same wordline (wider, shorter array)
 *
 * A cache of C bytes with B-byte blocks and associativity A then has
 *   rows = C / (B · A · Nbl · Nspd)
 *   cols = 8 · B · A · Nspd / Nwl
 * per subarray, with Nwl · Nbl subarrays (Wada et al., 1992).
 */
struct ArrayOrganization
{
    std::uint32_t nwl = 1;
    std::uint32_t nbl = 1;
    std::uint32_t nspd = 1;

    std::uint32_t numSubarrays() const { return nwl * nbl; }
    std::string toString() const
    {
        return "Nwl=" + std::to_string(nwl) + ",Nbl=" +
            std::to_string(nbl) + ",Nspd=" + std::to_string(nspd);
    }
};

/** The geometry the timing/area models need about one cache array. */
struct SramGeometry
{
    std::uint64_t sizeBytes;  ///< capacity
    std::uint32_t blockBytes; ///< line size
    std::uint32_t assoc;      ///< ways (>= 1; use numLines for FA)
    std::uint32_t addrBits = 32; ///< physical address width
    std::uint32_t outputBits = 64; ///< datapath width (8-byte transfers)

    std::uint64_t numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(blockBytes) * assoc);
    }
    /** One set: every line is a way (CAM tag path). */
    bool fullyAssociative() const { return numSets() == 1; }
    /** Address tag width: addr bits minus set-index and offset bits. */
    std::uint32_t tagBits() const;
};

/** Resolved per-subarray dimensions for a geometry + organization. */
struct SubarrayDims
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    bool valid = false; ///< organization divides the array evenly

    static SubarrayDims dataArray(const SramGeometry &g,
                                  const ArrayOrganization &o);
    static SubarrayDims tagArray(const SramGeometry &g,
                                 const ArrayOrganization &o,
                                 std::uint32_t status_bits);
};

} // namespace tlc

#endif // TLC_TIMING_ORGANIZATION_HH
