/**
 * @file
 * Access-time model implementation.
 *
 * Structure follows the Wilton–Jouppi model: the data side proceeds
 * decoder → wordline → bitline/sense → output driver; the tag side
 * proceeds decoder → wordline → bitline/sense → comparator, then
 * (set-associative) drives the output multiplexor or (direct-mapped)
 * a valid signal. The access completes when both sides are done;
 * the cycle time adds bitline precharge/equalisation.
 */

#include "access_time.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace tlc {

std::string
TimingResult::toString() const
{
    std::ostringstream os;
    os << "access=" << accessNs << "ns cycle=" << cycleNs << "ns data("
       << dataOrg.toString() << " " << dataDims.rows << "x"
       << dataDims.cols << ") tag(" << tagOrg.toString() << " "
       << tagDims.rows << "x" << tagDims.cols << ")";
    return os.str();
}

AccessTimeModel::AccessTimeModel(const TechnologyParams &tech)
    : tech_(tech)
{
}

TimingResult
AccessTimeModel::evaluate(const SramGeometry &g,
                          const ArrayOrganization &data_org,
                          const ArrayOrganization &tag_org) const
{
    TimingResult r;
    SubarrayDims dd = SubarrayDims::dataArray(g, data_org);
    SubarrayDims td = SubarrayDims::tagArray(g, tag_org, kStatusBits);
    if (!dd.valid || !td.valid)
        return r;

    const TechnologyParams &t = tech_;
    DelayBreakdown b;

    // --- data side -----------------------------------------------------
    double dec_d = t.decBase + t.decPerAddrBit * log2i(dd.rows) +
        t.decPerSubarray * data_org.numSubarrays();
    double wl_d = t.wlBase + t.wlPerCol * dd.cols +
        t.wlPerCol2 * static_cast<double>(dd.cols) * dd.cols;
    // Column multiplexing: each subarray outputs outputBits bits, so
    // cols / (outputBits / ways-sharing) columns share a sense amp.
    double colmux = std::max(1.0,
        static_cast<double>(dd.cols) /
        std::max(1u, g.outputBits));
    double bl_d = t.blBase + t.blPerRow * dd.rows +
        t.blPerRow2 * static_cast<double>(dd.rows) * dd.rows +
        t.blPerMuxLog2 * log2i(static_cast<std::uint64_t>(colmux));
    double data_side = dec_d + wl_d + bl_d;

    // --- tag side ------------------------------------------------------
    double dec_t = t.decBase + t.decPerAddrBit * log2i(td.rows) +
        t.decPerSubarray * tag_org.numSubarrays();
    double wl_t = t.wlBase + t.wlPerCol * td.cols +
        t.wlPerCol2 * static_cast<double>(td.cols) * td.cols;
    double bl_t = t.blBase + t.blPerRow * td.rows +
        t.blPerRow2 * static_cast<double>(td.rows) * td.rows;
    double cmp = t.cmpBase + t.cmpPerTagBit * g.tagBits();
    double tag_side = dec_t + wl_t + bl_t + cmp;

    // --- merge ---------------------------------------------------------
    double out = t.outBase +
        t.outPerSubarrayLog2 * log2i(data_org.numSubarrays());
    double access;
    if (g.assoc == 1) {
        // Direct-mapped: data is driven out speculatively while the
        // tag comparison raises the valid signal in parallel.
        access = std::max(data_side + out, tag_side + t.validOut);
    } else {
        // Set-associative: the comparator must drive the output
        // multiplexor before data can leave the array.
        double muxdrv = t.muxBase + t.muxPerWay * g.assoc;
        b.muxDriver = muxdrv;
        access = std::max(data_side, tag_side + muxdrv) + out;
    }

    double pre = t.preBase +
        t.prePerRow * std::max(dd.rows, td.rows);
    double cycle = access + pre;

    b.decoder = std::max(dec_d, dec_t);
    b.wordline = std::max(wl_d, wl_t);
    b.bitline = std::max(bl_d, bl_t);
    b.compare = cmp;
    b.output = out;
    b.precharge = pre;

    double s = t.processScale;
    r.accessNs = access * s;
    r.cycleNs = cycle * s;
    r.dataOrg = data_org;
    r.tagOrg = tag_org;
    r.dataDims = dd;
    r.tagDims = td;
    r.breakdown = b;
    r.valid = true;
    return r;
}

namespace {

/**
 * Rough silicon cost of an organization (padded-cell count). Used
 * only to break near-ties in the cycle-time search: heavy
 * subdivision buys little speed at small sizes but costs real area,
 * and no designer would pay it. The constants mirror the area
 * model's peripheral charges (see area/area_model.hh).
 */
double
organizationAreaProxy(const SubarrayDims &d, std::uint32_t subarrays)
{
    return ((d.rows + 6.0) * (d.cols + 3.0) + 500.0) * subarrays;
}

} // namespace

TimingResult
AccessTimeModel::evaluateCam(const SramGeometry &g) const
{
    const TechnologyParams &t = tech_;
    std::uint64_t entries = g.sizeBytes / g.blockBytes;
    tlc_assert(entries >= 2, "CAM needs at least two entries");

    TimingResult r;
    SubarrayDims dd;
    dd.rows = static_cast<std::uint32_t>(entries);
    dd.cols = 8 * g.blockBytes;
    dd.valid = true;

    DelayBreakdown b;
    // Tag side: broadcast the address on the match lines, compare in
    // every entry, wired-OR into a hit signal that selects the data
    // wordline.
    double cam = t.camBase + t.camPerTagBit * g.tagBits() +
        t.camPerEntryLog2 * log2i(entries);
    // Data side after the match: one wordline + bitline read.
    double wl = t.wlBase + t.wlPerCol * dd.cols +
        t.wlPerCol2 * static_cast<double>(dd.cols) * dd.cols;
    double bl = t.blBase + t.blPerRow * dd.rows +
        t.blPerRow2 * static_cast<double>(dd.rows) * dd.rows;
    double out = t.outBase;
    double access = cam + wl + bl + out;
    double pre = t.preBase + t.prePerRow * dd.rows;

    b.compare = cam;
    b.wordline = wl;
    b.bitline = bl;
    b.output = out;
    b.precharge = pre;

    double sc = t.processScale;
    r.accessNs = access * sc;
    r.cycleNs = (access + pre) * sc;
    r.dataOrg = ArrayOrganization{1, 1, 1};
    r.tagOrg = ArrayOrganization{1, 1, 1};
    r.dataDims = dd;
    SubarrayDims td;
    td.rows = static_cast<std::uint32_t>(entries);
    td.cols = g.tagBits() + kStatusBits;
    td.valid = true;
    r.tagDims = td;
    r.breakdown = b;
    r.valid = true;
    return r;
}

TimingResult
AccessTimeModel::optimize(const SramGeometry &g) const
{
    if (g.fullyAssociative())
        return evaluateCam(g);

    static const std::uint32_t kNwl[] = {1, 2, 4, 8};
    static const std::uint32_t kNbl[] = {1, 2, 4, 8, 16, 32};
    static const std::uint32_t kNspd[] = {1, 2, 4, 8};
    static const std::uint32_t kTwl[] = {1, 2};
    static const std::uint32_t kTbl[] = {1, 2, 4, 8, 16};
    static const std::uint32_t kTspd[] = {1, 2, 4};

    struct Candidate
    {
        TimingResult timing;
        double areaProxy;
    };
    std::vector<Candidate> cands;

    for (auto nwl : kNwl) {
        for (auto nbl : kNbl) {
            for (auto nspd : kNspd) {
                ArrayOrganization d{nwl, nbl, nspd};
                SubarrayDims dd = SubarrayDims::dataArray(g, d);
                if (!dd.valid)
                    continue;
                for (auto twl : kTwl) {
                    for (auto tbl : kTbl) {
                        for (auto tspd : kTspd) {
                            ArrayOrganization to{twl, tbl, tspd};
                            TimingResult r = evaluate(g, d, to);
                            if (!r.valid)
                                continue;
                            double a =
                                organizationAreaProxy(
                                    r.dataDims, d.numSubarrays()) +
                                organizationAreaProxy(
                                    r.tagDims, to.numSubarrays());
                            cands.push_back({r, a});
                        }
                    }
                }
            }
        }
    }
    if (cands.empty()) {
        panic("no valid organization for cache size %llu",
              static_cast<unsigned long long>(g.sizeBytes));
    }

    double min_cycle = cands[0].timing.cycleNs;
    for (const auto &c : cands)
        min_cycle = std::min(min_cycle, c.timing.cycleNs);

    // Among organizations within 3% of the best cycle time, pick the
    // cheapest in silicon; break remaining ties by access time.
    const Candidate *best = nullptr;
    for (const auto &c : cands) {
        if (c.timing.cycleNs > min_cycle * 1.03)
            continue;
        if (!best || c.areaProxy < best->areaProxy ||
            (c.areaProxy == best->areaProxy &&
             c.timing.accessNs < best->timing.accessNs)) {
            best = &c;
        }
    }
    return best->timing;
}

} // namespace tlc
