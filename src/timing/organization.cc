/**
 * @file
 * Array-organization geometry resolution.
 */

#include "organization.hh"

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace tlc {

std::uint32_t
SramGeometry::tagBits() const
{
    std::uint64_t sets = numSets();
    unsigned index_bits = log2i(sets);
    unsigned offset_bits = log2i(blockBytes);
    tlc_assert(addrBits > index_bits + offset_bits,
               "address too narrow for geometry");
    return addrBits - index_bits - offset_bits;
}

SubarrayDims
SubarrayDims::dataArray(const SramGeometry &g, const ArrayOrganization &o)
{
    SubarrayDims d;
    std::uint64_t denom_rows = static_cast<std::uint64_t>(g.blockBytes) *
        g.assoc * o.nbl * o.nspd;
    std::uint64_t cols_num = 8ull * g.blockBytes * g.assoc * o.nspd;
    if (denom_rows == 0 || g.sizeBytes % denom_rows != 0 ||
        cols_num % o.nwl != 0) {
        return d;
    }
    std::uint64_t rows = g.sizeBytes / denom_rows;
    std::uint64_t cols = cols_num / o.nwl;
    if (rows < 4 || cols < 8 || rows > 8192 || cols > 8192)
        return d;
    d.rows = static_cast<std::uint32_t>(rows);
    d.cols = static_cast<std::uint32_t>(cols);
    d.valid = true;
    return d;
}

SubarrayDims
SubarrayDims::tagArray(const SramGeometry &g, const ArrayOrganization &o,
                       std::uint32_t status_bits)
{
    SubarrayDims d;
    std::uint64_t sets = g.numSets();
    std::uint64_t denom_rows = static_cast<std::uint64_t>(o.nbl) * o.nspd;
    if (sets % denom_rows != 0)
        return d;
    std::uint64_t rows = sets / denom_rows;
    std::uint64_t bits_per_entry = g.tagBits() + status_bits;
    std::uint64_t cols_num = bits_per_entry * g.assoc * o.nspd;
    if (cols_num % o.nwl != 0)
        return d;
    std::uint64_t cols = cols_num / o.nwl;
    if (rows < 2 || cols < 4 || rows > 8192 || cols > 8192)
        return d;
    d.rows = static_cast<std::uint32_t>(rows);
    d.cols = static_cast<std::uint32_t>(cols);
    d.valid = true;
    return d;
}

} // namespace tlc
