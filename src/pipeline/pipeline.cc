/**
 * @file
 * Pipeline timing model implementation.
 *
 * Accounting model (in-order, one instruction per cycle baseline):
 *  - every instruction costs one issue cycle;
 *  - an instruction-fetch miss stalls for the full service latency
 *    (blockingIfetch), minus nothing — the front end is in-order;
 *  - a data access needs an MSHR when it misses. If all MSHRs are
 *    busy the pipeline stalls until the earliest one retires.
 *  - a load that the program consumes immediately (probability
 *    loadUseStallProb) stalls until its data is ready: after
 *    l1Cycles - 1 extra cycles on a hit (the multicycle-L1 latency),
 *    or until its miss completes on a miss;
 *  - other loads and all stores retire in the background.
 */

#include "pipeline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tlc {

PipelineSimulator::PipelineSimulator(const PipelineParams &params)
    : params_(params)
{
    tlc_assert(params.mshrs >= 1, "need at least one MSHR");
    tlc_assert(params.l1Cycles >= 1, "L1 latency is at least a cycle");
    tlc_assert(params.loadUseStallProb >= 0.0 &&
               params.loadUseStallProb <= 1.0,
               "load-use probability out of range");
}

PipelineResult
PipelineSimulator::run(Hierarchy &hierarchy, const TraceBuffer &trace,
                       std::uint64_t warmup_refs)
{
    const PipelineParams &p = params_;
    PipelineResult r;
    Pcg32 rng(p.seed, 0x909);

    // Ready times of outstanding misses (small fixed population).
    std::vector<std::uint64_t> mshr_ready(p.mshrs, 0);
    std::vector<std::uint64_t> wb_ready(p.writebackBufferDepth, 0);
    std::uint64_t writebacks_seen = hierarchy.stats().offchipWritebacks;
    std::uint64_t cycle = 0;

    const auto &recs = trace.records();
    for (std::uint64_t i = 0; i < recs.size(); ++i) {
        const TraceRecord &rec = recs[i];
        bool measured = i >= warmup_refs;
        AccessOutcome out = hierarchy.accessClassified(rec);

        if (i == warmup_refs) {
            // Reset accounting at the measurement boundary.
            r = PipelineResult{};
            cycle = 0;
            std::fill(mshr_ready.begin(), mshr_ready.end(), 0);
            std::fill(wb_ready.begin(), wb_ready.end(), 0);
        }

        // Dirty evictions produced by this access enter the
        // write-back buffer; a full buffer stalls the pipeline.
        std::uint64_t wbs = hierarchy.stats().offchipWritebacks;
        for (; writebacks_seen < wbs && !wb_ready.empty();
             ++writebacks_seen) {
            auto slot = std::min_element(wb_ready.begin(),
                                         wb_ready.end());
            if (*slot > cycle) {
                std::uint64_t stall = *slot - cycle;
                cycle = *slot;
                if (measured)
                    r.writebackStallCycles += stall;
            }
            *slot = cycle + p.writebackDrainCycles;
        }
        writebacks_seen = wbs;

        unsigned service = 0;
        if (out == AccessOutcome::L2Hit)
            service = p.l2HitCycles;
        else if (out == AccessOutcome::OffChip)
            service = p.offchipCycles;

        if (rec.type == RefType::Instr) {
            ++cycle;
            if (measured)
                ++r.instructions;
            if (out != AccessOutcome::L1Hit && p.blockingIfetch) {
                cycle += service;
                if (measured)
                    r.ifetchStallCycles += service;
            }
            continue;
        }

        // Data reference. Issue occupies the same cycle as its
        // instruction (split caches), so no base cost here.
        if (out == AccessOutcome::L1Hit) {
            if (rec.type == RefType::Load && p.l1Cycles > 1 &&
                rng.nextDouble() < p.loadUseStallProb) {
                unsigned stall = p.l1Cycles - 1;
                cycle += stall;
                if (measured)
                    r.l1AccessStallCycles += stall;
            }
            continue;
        }

        // Miss: grab an MSHR (stall until one frees if necessary).
        auto slot = std::min_element(mshr_ready.begin(),
                                     mshr_ready.end());
        if (*slot > cycle) {
            std::uint64_t stall = *slot - cycle;
            cycle = *slot;
            if (measured)
                r.mshrFullStallCycles += stall;
        }
        std::uint64_t ready = cycle + service;
        *slot = ready;

        if (rec.type == RefType::Load &&
            rng.nextDouble() < p.loadUseStallProb) {
            // Consumer needs the value now: stall to completion.
            std::uint64_t stall = ready - cycle;
            cycle = ready;
            if (measured)
                r.loadUseStallCycles += stall;
        }
        // Stores and latency-tolerant loads retire in the background.
    }

    r.cycles = cycle;
    return r;
}

} // namespace tlc
