/**
 * @file
 * Multicycle / non-blocking memory pipeline model — the paper's
 * Future Work section (§10), built out.
 *
 * The paper's baseline assumes single-cycle blocking L1 caches whose
 * cycle time sets the processor clock. Section 10 conjectures:
 *
 *  1. With MULTICYCLE (pipelined) first-level caches, a large L1 no
 *     longer stretches the clock — it just adds load latency — so
 *     two-level caching should matter less in baseline systems.
 *  2. With NON-BLOCKING loads, L1 misses overlap with execution, so
 *     a fast on-chip L2 that keeps miss latency short should matter
 *     more.
 *
 * This module models an in-order processor with a fixed datapath
 * cycle, pipelined L1 access of configurable latency, a write
 * buffer, and a configurable number of MSHRs. It is an approximate
 * (not microarchitecturally exact) timing model: traces carry no
 * register dependences, so load-to-use stalls are drawn with a
 * per-workload probability, which is how much load latency the code
 * can tolerate ("applications that can tolerate large load
 * latencies, such as numeric benchmarks", §10).
 */

#ifndef TLC_PIPELINE_PIPELINE_HH
#define TLC_PIPELINE_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "cache/hierarchy.hh"
#include "trace/buffer.hh"
#include "util/random.hh"

namespace tlc {

/** Parameters of the pipeline timing model. */
struct PipelineParams
{
    double cycleNs = 2.0;       ///< datapath clock (decoupled from L1)
    unsigned l1Cycles = 1;      ///< pipelined L1 access latency
    unsigned l2HitCycles = 5;   ///< L1-miss/L2-hit service latency
    unsigned offchipCycles = 26; ///< L1-miss/off-chip service latency
    unsigned mshrs = 1;         ///< outstanding misses; 1 => blocking
    /** Probability a load's value is needed before anything else can
     *  issue (0 = perfectly latency-tolerant, 1 = every load used
     *  immediately). */
    double loadUseStallProb = 0.5;
    bool blockingIfetch = true; ///< I-misses always stall
    /** Write-back buffer entries draining to the off-chip port; a
     *  dirty eviction stalls the pipeline only when the buffer is
     *  full (0 disables modelling write-back cost entirely). */
    unsigned writebackBufferDepth = 4;
    /** Cycles the off-chip port needs per write-back drain. */
    unsigned writebackDrainCycles = 26;
    std::uint64_t seed = 0x91;  ///< load-use draw seed
};

/** Outputs of a pipeline run. */
struct PipelineResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t ifetchStallCycles = 0;
    std::uint64_t loadUseStallCycles = 0;
    std::uint64_t mshrFullStallCycles = 0;
    std::uint64_t l1AccessStallCycles = 0; ///< multicycle load-use
    std::uint64_t writebackStallCycles = 0; ///< write buffer full

    double cpi() const
    {
        return instructions ?
            static_cast<double>(cycles) / instructions : 0.0;
    }
    double tpiNs(double cycle_ns) const { return cpi() * cycle_ns; }
};

/**
 * Drives a trace through a functional hierarchy while accounting
 * cycles per the parameters above.
 */
class PipelineSimulator
{
  public:
    explicit PipelineSimulator(const PipelineParams &params);

    /**
     * Run @p trace through @p hierarchy (which supplies hit/miss
     * outcomes) and return the cycle accounting. The first
     * @p warmup_refs records update the caches but not the result.
     */
    PipelineResult run(Hierarchy &hierarchy, const TraceBuffer &trace,
                       std::uint64_t warmup_refs = 0);

    const PipelineParams &params() const { return params_; }

  private:
    PipelineParams params_;
};

} // namespace tlc

#endif // TLC_PIPELINE_PIPELINE_HH
