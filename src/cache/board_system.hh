/**
 * @file
 * Board-level (third-level) cache system.
 *
 * The paper's two off-chip service times model systems *with* a
 * board-level cache (50 ns) and *without* one (200 ns, §7), and §8
 * closes by noting that even under on-chip exclusive caching,
 * "inclusion between the sum of their contents and a third level of
 * off-chip caching can still be maintained for ease of constructing
 * multiprocessor systems [Baer-Wang]". This module builds that
 * third level: any on-chip hierarchy backed by a large off-chip
 * cache, with optional enforcement of inclusion via back-
 * invalidation of on-chip lines when the board cache evicts.
 */

#ifndef TLC_CACHE_BOARD_SYSTEM_HH
#define TLC_CACHE_BOARD_SYSTEM_HH

#include <memory>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"

namespace tlc {

/** Counters specific to the board level. */
struct BoardStats
{
    std::uint64_t l3Hits = 0;
    std::uint64_t l3Misses = 0;          ///< main-memory accesses
    std::uint64_t backInvalidations = 0; ///< on-chip lines removed
    std::uint64_t linesInvalidated = 0;  ///< arrays hit by those

    double l3LocalMissRate() const
    {
        std::uint64_t a = l3Hits + l3Misses;
        return a ? static_cast<double>(l3Misses) / a : 0.0;
    }
};

/**
 * On-chip hierarchy + off-chip board cache. The board cache sees
 * exactly the on-chip hierarchy's off-chip accesses; with inclusion
 * enabled, every board-cache eviction removes the line from every
 * on-chip array, so the board cache's tags always cover the chip —
 * the property a snooping multiprocessor needs.
 */
class BoardLevelSystem : public Hierarchy
{
  public:
    /**
     * @param onchip        the on-chip hierarchy (owned)
     * @param board_params  board cache geometry (line size must
     *                      match the on-chip caches)
     * @param maintain_inclusion back-invalidate on board evictions
     * @param seed          replacement RNG seed
     */
    BoardLevelSystem(std::unique_ptr<Hierarchy> onchip,
                     const CacheParams &board_params,
                     bool maintain_inclusion = true,
                     std::uint64_t seed = 99);

    AccessOutcome accessClassified(const TraceRecord &rec) override;
    unsigned invalidateLineAll(std::uint64_t line_addr) override;
    void resetStats() override;

    const Hierarchy &onchip() const { return *onchip_; }
    const Cache &boardCache() const { return board_; }
    const BoardStats &boardStats() const { return boardStats_; }
    bool maintainsInclusion() const { return maintainInclusion_; }

    /**
     * Verify the inclusion property right now: every line resident
     * in the given on-chip array is also in the board cache.
     * @return true when inclusion holds for @p onchip_array.
     */
    bool inclusionHolds(const Cache &onchip_array) const;

  private:
    std::unique_ptr<Hierarchy> onchip_;
    Cache board_;
    bool maintainInclusion_;
    BoardStats boardStats_;
};

} // namespace tlc

#endif // TLC_CACHE_BOARD_SYSTEM_HH
