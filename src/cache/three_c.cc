/**
 * @file
 * Three-C analyzer implementation.
 */

#include "three_c.hh"

#include "util/logging.hh"

namespace tlc {

FullyAssocLru::FullyAssocLru(std::uint64_t num_lines)
    : capacity_(num_lines)
{
    tlc_assert(num_lines > 0, "reference cache needs capacity");
    map_.reserve(num_lines * 2);
}

bool
FullyAssocLru::access(std::uint64_t line_addr)
{
    auto it = map_.find(line_addr);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }
    if (map_.size() >= capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(line_addr);
    map_[line_addr] = lru_.begin();
    return false;
}

ThreeCAnalyzer::ThreeCAnalyzer(const CacheParams &target,
                               std::uint64_t repl_seed)
    : target_(target, repl_seed), reference_(target.numLines())
{
}

void
ThreeCAnalyzer::access(std::uint64_t addr)
{
    ++stats_.refs;
    std::uint64_t line = target_.lineAddrOf(addr);

    bool target_hit = target_.lookupAndTouch(addr);
    bool ref_hit = reference_.access(line);
    bool first_touch = touched_.insert(line).second;

    if (target_hit) {
        ++stats_.hits;
        return;
    }
    target_.fill(addr);

    if (first_touch)
        ++stats_.compulsory;
    else if (!ref_hit)
        ++stats_.capacity;
    else
        ++stats_.conflict;
}

} // namespace tlc
