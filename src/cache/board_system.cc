/**
 * @file
 * Board-level system implementation.
 */

#include "board_system.hh"

#include "util/logging.hh"

namespace tlc {

BoardLevelSystem::BoardLevelSystem(std::unique_ptr<Hierarchy> onchip,
                                   const CacheParams &board_params,
                                   bool maintain_inclusion,
                                   std::uint64_t seed)
    : onchip_(std::move(onchip)), board_(board_params, seed),
      maintainInclusion_(maintain_inclusion)
{
    tlc_assert(onchip_ != nullptr, "board system needs a chip");
}

AccessOutcome
BoardLevelSystem::accessClassified(const TraceRecord &rec)
{
    AccessOutcome out = onchip_->accessClassified(rec);
    // Mirror the on-chip statistics so TPI models can keep using
    // this object as a Hierarchy.
    stats_ = onchip_->stats();
    if (out != AccessOutcome::OffChip)
        return out;

    // The chip went off-chip: probe the board cache.
    if (board_.lookupAndTouch(rec.addr)) {
        ++boardStats_.l3Hits;
        return out;
    }
    ++boardStats_.l3Misses;
    Cache::Victim victim = board_.fill(rec.addr);
    if (maintainInclusion_ && victim.valid) {
        unsigned n = onchip_->invalidateLineAll(victim.lineAddr);
        if (n > 0) {
            ++boardStats_.backInvalidations;
            boardStats_.linesInvalidated += n;
        }
    }
    return out;
}

void
BoardLevelSystem::resetStats()
{
    Hierarchy::resetStats();
    onchip_->resetStats();
    boardStats_ = BoardStats{};
}

unsigned
BoardLevelSystem::invalidateLineAll(std::uint64_t line_addr)
{
    unsigned n = onchip_->invalidateLineAll(line_addr);
    n += board_.invalidateLine(line_addr);
    return n;
}

bool
BoardLevelSystem::inclusionHolds(const Cache &onchip_array) const
{
    for (std::uint64_t line : onchip_array.residentLineAddrs()) {
        std::uint64_t byte_addr = line << onchip_array.lineShift();
        if (!board_.contains(byte_addr))
            return false;
    }
    return true;
}

} // namespace tlc
