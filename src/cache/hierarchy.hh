/**
 * @file
 * Cache-hierarchy interface and statistics.
 */

#ifndef TLC_CACHE_HIERARCHY_HH
#define TLC_CACHE_HIERARCHY_HH

#include <cstdint>

#include "trace/buffer.hh"
#include "trace/record.hh"
#include "util/stats.hh"

namespace tlc {

/**
 * Reference and miss counts accumulated by a hierarchy.
 *
 * For a single-level system every L1 miss goes off-chip, so
 * l2Misses counts off-chip accesses and l2Hits is zero; this makes
 * the TPI model a single formula for both system shapes.
 */
struct HierarchyStats
{
    std::uint64_t instrRefs = 0;
    std::uint64_t dataRefs = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Hits = 0;   ///< L1 misses satisfied on-chip
    std::uint64_t l2Misses = 0; ///< L1 misses that went off-chip
    std::uint64_t swaps = 0;    ///< exclusive-policy same-set swaps
    /** Dirty lines leaving the on-chip hierarchy (write-back
     *  traffic; writes are timed as reads per §2.2, but the traffic
     *  itself matters for the write-policy ablation). */
    std::uint64_t offchipWritebacks = 0;

    std::uint64_t totalRefs() const { return instrRefs + dataRefs; }
    std::uint64_t l1Misses() const { return l1iMisses + l1dMisses; }

    /** L1 misses per reference (the paper's "miss rate"). */
    double l1MissRate() const
    {
        return safeRatio(static_cast<double>(l1Misses()),
                         static_cast<double>(totalRefs()));
    }
    /** L2 misses per L2 access (local miss rate). */
    double l2LocalMissRate() const
    {
        return safeRatio(static_cast<double>(l2Misses),
                         static_cast<double>(l2Hits + l2Misses));
    }
    /** Off-chip accesses per reference (global miss rate). */
    double globalMissRate() const
    {
        return safeRatio(static_cast<double>(l2Misses),
                         static_cast<double>(totalRefs()));
    }

    HierarchyStats &operator+=(const HierarchyStats &o);
};

/**
 * Fold one finished simulation's counts into the global metrics
 * registry (cache.l1i.misses, cache.l2.hits, ...), so a run can be
 * audited post-hoc: how many references were actually simulated and
 * what the hierarchy did with them. Called once per simulation by
 * the evaluator — never from the per-reference hot loop, keeping
 * instrumentation out of simulate() entirely.
 */
void recordHierarchyMetrics(const HierarchyStats &s);

/** Where a reference was satisfied (for timing-aware clients). */
enum class AccessOutcome {
    L1Hit,   ///< satisfied by the first level
    L2Hit,   ///< L1 miss satisfied on-chip
    OffChip  ///< went off-chip
};

/**
 * Abstract cache hierarchy driven record-by-record.
 */
class Hierarchy
{
  public:
    virtual ~Hierarchy() = default;

    /**
     * Process one reference, updating caches and statistics, and
     * report where it was satisfied (the hook for timing-aware
     * clients such as the pipeline simulator).
     */
    virtual AccessOutcome accessClassified(const TraceRecord &rec) = 0;

    /** Process one reference (outcome discarded). */
    void access(const TraceRecord &rec) { (void)accessClassified(rec); }

    /**
     * Remove a line (by line address) from every array of this
     * hierarchy — the hook a third-level cache uses to maintain
     * inclusion of the on-chip contents (paper §8, Baer–Wang [1]).
     * @return how many arrays held the line.
     */
    virtual unsigned invalidateLineAll(std::uint64_t line_addr) = 0;

    /** Zero the statistics, keeping cache contents (for warmup). */
    virtual void resetStats() { stats_ = HierarchyStats{}; }

    const HierarchyStats &stats() const { return stats_; }

    /**
     * Drive a whole trace through the hierarchy: the first
     * @p warmup_refs records warm the caches, statistics cover the
     * rest.
     */
    void simulate(const TraceBuffer &trace, std::uint64_t warmup_refs = 0);

  protected:
    HierarchyStats stats_;
};

} // namespace tlc

#endif // TLC_CACHE_HIERARCHY_HH
