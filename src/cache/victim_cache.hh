/**
 * @file
 * Victim cache (Jouppi, ISCA 1990 — reference [4] of the paper).
 *
 * The paper notes that a two-level exclusive configuration with
 * y < x degenerates into a shared direct-mapped victim cache; this
 * module provides the classic form — a small fully-associative
 * buffer holding lines evicted from a direct-mapped L1, with swaps
 * on victim-cache hits — both as a useful extension and as a
 * cross-check for that degenerate case.
 */

#ifndef TLC_CACHE_VICTIM_CACHE_HH
#define TLC_CACHE_VICTIM_CACHE_HH

#include "cache/cache.hh"
#include "cache/hierarchy.hh"

namespace tlc {

/**
 * Split direct-mapped L1s sharing one small fully-associative
 * victim buffer. A reference that misses L1 but hits the victim
 * buffer swaps the two lines (cost-free in this functional model;
 * timing treats it as an L2 hit). Misses fill L1 from off-chip and
 * push the L1 victim into the buffer (LRU replacement).
 */
class VictimCacheHierarchy : public Hierarchy
{
  public:
    /**
     * @param l1_params     geometry of EACH of the I and D caches
     * @param victim_lines  capacity of the shared victim buffer
     * @param seed          replacement RNG seed
     */
    VictimCacheHierarchy(const CacheParams &l1_params,
                         std::uint32_t victim_lines,
                         std::uint64_t seed = 1);

    AccessOutcome accessClassified(const TraceRecord &rec) override;
    unsigned invalidateLineAll(std::uint64_t line_addr) override;

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const Cache &victimBuffer() const { return victim_; }

  private:
    Cache icache_;
    Cache dcache_;
    Cache victim_; ///< fully associative, LRU
};

} // namespace tlc

#endif // TLC_CACHE_VICTIM_CACHE_HH
