/**
 * @file
 * Cache array implementation.
 */

#include "cache.hh"

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace tlc {

Cache::Cache(const CacheParams &params, std::uint64_t repl_seed)
    : params_(params), rng_(repl_seed, 0xcac4e)
{
    params_.validate();
    numSets_ = params_.numSets();
    ways_ = params_.ways();
    lineShift_ = log2i(params_.lineBytes);
    setMask_ = numSets_ - 1;
    lines_.resize(numSets_ * ways_);
}

int
Cache::findWay(std::uint64_t set, std::uint64_t line_addr) const
{
    const Line *base = setBase(set);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line_addr)
            return static_cast<int>(w);
    }
    return -1;
}

bool
Cache::contains(std::uint64_t addr) const
{
    std::uint64_t line = lineAddrOf(addr);
    return findWay(setOf(line), line) >= 0;
}

bool
Cache::lookupAndTouch(std::uint64_t addr, bool is_store)
{
    std::uint64_t line = lineAddrOf(addr);
    std::uint64_t set = setOf(line);
    int way = findWay(set, line);
    if (way < 0)
        return false;
    Line &l = setBase(set)[way];
    if (params_.repl == ReplPolicy::LRU)
        l.stamp = ++tick_;
    if (is_store)
        l.dirty = true;
    return true;
}

std::uint32_t
Cache::chooseVictimWay(std::uint64_t set)
{
    Line *base = setBase(set);
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid)
            return w;
    }
    switch (params_.repl) {
      case ReplPolicy::Random:
        return rng_.nextBounded(ways_);
      case ReplPolicy::LRU:
      case ReplPolicy::FIFO: {
        // Smallest stamp: least recently used / first inserted.
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (base[w].stamp < base[victim].stamp)
                victim = w;
        }
        return victim;
      }
    }
    panic("unreachable replacement policy");
}

Cache::Victim
Cache::installAt(std::uint64_t set, std::uint32_t way,
                 std::uint64_t line_addr, bool dirty)
{
    Line &l = setBase(set)[way];
    Victim v;
    if (l.valid) {
        v.valid = true;
        v.lineAddr = l.tag;
        v.dirty = l.dirty;
    }
    l.valid = true;
    l.tag = line_addr;
    l.dirty = dirty;
    l.stamp = ++tick_;
    return v;
}

Cache::Victim
Cache::fill(std::uint64_t addr, bool dirty)
{
    std::uint64_t line = lineAddrOf(addr);
    std::uint64_t set = setOf(line);
    tlc_assert(findWay(set, line) < 0,
               "fill() of already-resident line %#llx",
               static_cast<unsigned long long>(line));
    return installAt(set, chooseVictimWay(set), line, dirty);
}

Cache::Victim
Cache::insertLinePreferring(std::uint64_t line_addr, bool dirty,
                            std::uint64_t preferred_line,
                            bool use_preferred, bool *swapped)
{
    if (swapped)
        *swapped = false;
    std::uint64_t set = setOf(line_addr);
    int way = findWay(set, line_addr);
    if (way >= 0) {
        // Already resident: write-back update only.
        Line &l = setBase(set)[way];
        l.dirty = l.dirty || dirty;
        return Victim{};
    }
    if (use_preferred && setOf(preferred_line) == set) {
        int pway = findWay(set, preferred_line);
        if (pway >= 0) {
            if (swapped)
                *swapped = true;
            return installAt(set, static_cast<std::uint32_t>(pway),
                             line_addr, dirty);
        }
    }
    return installAt(set, chooseVictimWay(set), line_addr, dirty);
}

bool
Cache::invalidate(std::uint64_t addr)
{
    return invalidateLine(lineAddrOf(addr));
}

bool
Cache::invalidateLine(std::uint64_t line_addr)
{
    std::uint64_t set = setOf(line_addr);
    int way = findWay(set, line_addr);
    if (way < 0)
        return false;
    setBase(set)[way].valid = false;
    return true;
}

void
Cache::setDirty(std::uint64_t addr)
{
    std::uint64_t line = lineAddrOf(addr);
    std::uint64_t set = setOf(line);
    int way = findWay(set, line);
    tlc_assert(way >= 0, "setDirty() on non-resident line");
    setBase(set)[way].dirty = true;
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines_) {
        if (l.valid)
            ++n;
    }
    return n;
}

std::vector<std::uint64_t>
Cache::residentLineAddrs() const
{
    std::vector<std::uint64_t> out;
    for (const auto &l : lines_) {
        if (l.valid)
            out.push_back(l.tag);
    }
    return out;
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    tick_ = 0;
}

} // namespace tlc
