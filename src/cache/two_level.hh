/**
 * @file
 * Two-level hierarchy: split direct-mapped-style L1 caches backed by
 * a mixed (unified) L2, with the baseline replacement scheme or the
 * paper's two-level exclusive caching (Section 8).
 */

#ifndef TLC_CACHE_TWO_LEVEL_HH
#define TLC_CACHE_TWO_LEVEL_HH

#include "cache/cache.hh"
#include "cache/hierarchy.hh"

namespace tlc {

/** Content-management policy between the two levels. */
enum class TwoLevelPolicy {
    /**
     * Baseline: L2 allocates on its own misses; the same line may
     * live in both levels; no back-invalidation ("mostly
     * inclusive", the paper's standard two-level caching).
     */
    Inclusive,
    /**
     * Baseline plus strict inclusion: when L2 evicts a line it is
     * also removed from the L1s (Baer–Wang inclusion, useful for
     * multiprocessors; provided for the ablation study).
     */
    StrictInclusive,
    /**
     * Two-level exclusive caching (the paper's contribution): on an
     * L1 miss/L2 hit the L1 victim is written into L2, taking the
     * promoted line's slot when both map to the same L2 set (a
     * swap); on an L2 miss the off-chip refill bypasses L2 and the
     * L1 victim is sent to L2.
     */
    Exclusive
};

/** Human-readable policy name. */
const char *twoLevelPolicyName(TwoLevelPolicy p);

/**
 * Split L1 (instruction + data, same geometry) with a mixed L2.
 */
class TwoLevelHierarchy : public Hierarchy
{
  public:
    /**
     * @param l1_params geometry of EACH of the I and D caches
     * @param l2_params geometry of the mixed L2
     * @param policy    content-management policy
     * @param seed      replacement RNG seed
     */
    TwoLevelHierarchy(const CacheParams &l1_params,
                      const CacheParams &l2_params, TwoLevelPolicy policy,
                      std::uint64_t seed = 1);

    AccessOutcome accessClassified(const TraceRecord &rec) override;
    unsigned invalidateLineAll(std::uint64_t line_addr) override;

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const Cache &l2cache() const { return l2_; }
    TwoLevelPolicy policy() const { return policy_; }

  private:
    AccessOutcome accessInclusive(Cache &l1, std::uint64_t addr,
                                  bool is_store);
    AccessOutcome accessExclusive(Cache &l1, std::uint64_t addr,
                                  bool is_store);

    Cache icache_;
    Cache dcache_;
    Cache l2_;
    TwoLevelPolicy policy_;
};

} // namespace tlc

#endif // TLC_CACHE_TWO_LEVEL_HH
