/**
 * @file
 * Hierarchy base implementation.
 */

#include "hierarchy.hh"

namespace tlc {

HierarchyStats &
HierarchyStats::operator+=(const HierarchyStats &o)
{
    instrRefs += o.instrRefs;
    dataRefs += o.dataRefs;
    l1iMisses += o.l1iMisses;
    l1dMisses += o.l1dMisses;
    l2Hits += o.l2Hits;
    l2Misses += o.l2Misses;
    swaps += o.swaps;
    offchipWritebacks += o.offchipWritebacks;
    return *this;
}

void
Hierarchy::simulate(const TraceBuffer &trace, std::uint64_t warmup_refs)
{
    const auto &recs = trace.records();
    std::uint64_t n = recs.size();
    std::uint64_t warm = warmup_refs < n ? warmup_refs : n;
    for (std::uint64_t i = 0; i < warm; ++i)
        access(recs[i]);
    resetStats();
    for (std::uint64_t i = warm; i < n; ++i)
        access(recs[i]);
}

} // namespace tlc
