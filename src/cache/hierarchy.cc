/**
 * @file
 * Hierarchy base implementation.
 */

#include "hierarchy.hh"

#include "util/metrics.hh"

namespace tlc {

void
recordHierarchyMetrics(const HierarchyStats &s)
{
    // Registered once, then a handful of relaxed adds per finished
    // simulation (millions of simulated references each) — free.
    struct CacheMetrics
    {
        MetricCounter &simulations;
        MetricCounter &instrRefs;
        MetricCounter &dataRefs;
        MetricCounter &l1Hits;
        MetricCounter &l1iMisses;
        MetricCounter &l1dMisses;
        MetricCounter &l2Hits;
        MetricCounter &l2Misses;
        MetricCounter &swaps;
        MetricCounter &writebacks;
    };
    static CacheMetrics m{
        MetricsRegistry::global().counter("cache.simulations"),
        MetricsRegistry::global().counter("cache.refs.instr"),
        MetricsRegistry::global().counter("cache.refs.data"),
        MetricsRegistry::global().counter("cache.l1.hits"),
        MetricsRegistry::global().counter("cache.l1i.misses"),
        MetricsRegistry::global().counter("cache.l1d.misses"),
        MetricsRegistry::global().counter("cache.l2.hits"),
        MetricsRegistry::global().counter("cache.l2.misses"),
        MetricsRegistry::global().counter("cache.l2.exclusive_swaps"),
        MetricsRegistry::global().counter("cache.offchip.writebacks"),
    };
    m.simulations.inc();
    m.instrRefs.inc(s.instrRefs);
    m.dataRefs.inc(s.dataRefs);
    m.l1Hits.inc(s.totalRefs() - s.l1Misses());
    m.l1iMisses.inc(s.l1iMisses);
    m.l1dMisses.inc(s.l1dMisses);
    m.l2Hits.inc(s.l2Hits);
    m.l2Misses.inc(s.l2Misses);
    m.swaps.inc(s.swaps);
    m.writebacks.inc(s.offchipWritebacks);
}

HierarchyStats &
HierarchyStats::operator+=(const HierarchyStats &o)
{
    instrRefs += o.instrRefs;
    dataRefs += o.dataRefs;
    l1iMisses += o.l1iMisses;
    l1dMisses += o.l1dMisses;
    l2Hits += o.l2Hits;
    l2Misses += o.l2Misses;
    swaps += o.swaps;
    offchipWritebacks += o.offchipWritebacks;
    return *this;
}

void
Hierarchy::simulate(const TraceBuffer &trace, std::uint64_t warmup_refs)
{
    const auto &recs = trace.records();
    std::uint64_t n = recs.size();
    std::uint64_t warm = warmup_refs < n ? warmup_refs : n;
    for (std::uint64_t i = 0; i < warm; ++i)
        access(recs[i]);
    resetStats();
    for (std::uint64_t i = warm; i < n; ++i)
        access(recs[i]);
}

} // namespace tlc
