/**
 * @file
 * Backend-neutral half of the data-oriented lane layer: state
 * construction, the scalar reference FlatCache methods, the LRU/FIFO
 * FSM table builder, and the runtime kernel dispatch.
 */

#include "simd_lanes.hh"

#include <algorithm>
#include <array>

#include "util/bitutil.hh"
#include "util/logging.hh"

namespace tlc {
namespace lanes {

// Kernel tables exported by the per-backend TUs. The scalar set is
// always present; the vector sets exist exactly when the matching
// TLC_SIMD_HAVE_* macro is defined for the whole build (CMake sets it
// globally, so this TU and the kernel TU always agree).
namespace scalar_kernels {
extern const LaneKernels kKernels;
}
#if defined(TLC_SIMD_HAVE_AVX2)
namespace avx2_kernels {
extern const LaneKernels kKernels;
}
#endif
#if defined(TLC_SIMD_HAVE_NEON)
namespace neon_kernels {
extern const LaneKernels kKernels;
}
#endif

// ---------------------------------------------------------------------
// LruFsm
// ---------------------------------------------------------------------

namespace {

/**
 * Build the recency-permutation FSM for one associativity. States are
 * the lexicographic ranks of all permutations of [0, ways); the
 * permutation lists ways most-recent-first.
 */
LruFsm
buildLruFsm(std::uint32_t ways)
{
    LruFsm fsm;
    fsm.ways = ways;
    fsm.states = 1;
    for (std::uint32_t w = 2; w <= ways; ++w)
        fsm.states *= w;

    // Enumerate permutations in lexicographic order; rank == state id.
    std::array<std::uint8_t, kLruFsmMaxWays> perm{};
    for (std::uint32_t w = 0; w < ways; ++w)
        perm[w] = static_cast<std::uint8_t>(w);

    std::vector<std::array<std::uint8_t, kLruFsmMaxWays>> perms;
    perms.reserve(fsm.states);
    do {
        perms.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.begin() + ways));
    tlc_assert(perms.size() == fsm.states, "permutation count mismatch");

    auto rankOf = [&](const std::array<std::uint8_t, kLruFsmMaxWays> &p) {
        for (std::uint32_t s = 0; s < fsm.states; ++s) {
            if (std::equal(p.begin(), p.begin() + ways, perms[s].begin()))
                return s;
        }
        panic("permutation not found");
    };

    fsm.next.resize(static_cast<std::size_t>(fsm.states) * ways);
    fsm.victim.resize(fsm.states);
    for (std::uint32_t s = 0; s < fsm.states; ++s) {
        fsm.victim[s] = perms[s][ways - 1];
        for (std::uint32_t way = 0; way < ways; ++way) {
            // Move `way` to the MRU front, preserving the rest.
            std::array<std::uint8_t, kLruFsmMaxWays> moved{};
            moved[0] = static_cast<std::uint8_t>(way);
            std::uint32_t out = 1;
            for (std::uint32_t i = 0; i < ways; ++i) {
                if (perms[s][i] != way)
                    moved[out++] = perms[s][i];
            }
            fsm.next[static_cast<std::size_t>(s) * ways + way] =
                static_cast<std::uint8_t>(rankOf(moved));
        }
    }
    return fsm;
}

} // namespace

const LruFsm *
lruFsmForWays(std::uint32_t ways)
{
    if (ways < 2 || ways > kLruFsmMaxWays)
        return nullptr;
    static const LruFsm tables[] = {
        buildLruFsm(2),
        buildLruFsm(3),
        buildLruFsm(4),
    };
    static_assert(kLruFsmMaxWays == 4,
                  "table array above covers ways 2..kLruFsmMaxWays");
    return &tables[ways - 2];
}

// ---------------------------------------------------------------------
// FlatCache
// ---------------------------------------------------------------------

FlatCache::FlatCache(const CacheParams &p, std::uint64_t seed)
    : rng(seed, 0xcac4e) // Cache's stream id, for identical draws
{
    p.validate();
    lineShift = log2i(p.lineBytes);
    ways = p.ways();
    std::uint64_t sets = p.numSets();
    setMask = static_cast<std::uint32_t>(sets - 1);
    repl = p.repl;
    entries.resize(sets * ways);
    if (repl != ReplPolicy::Random) {
        fsm = lruFsmForWays(ways);
        if (fsm != nullptr)
            fsmState.resize(sets); // state 0: identity permutation
        else
            stamps.resize(sets * ways);
    }
}

int
FlatCache::findWay(std::uint32_t set, std::uint32_t line) const
{
    std::size_t base = static_cast<std::size_t>(set) * ways;
    std::uint64_t want = (static_cast<std::uint64_t>(line) << 2) | kValid;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if ((entries[base + w] & ~kDirty) == want)
            return static_cast<int>(w);
    }
    return -1;
}

bool
FlatCache::lookupAndTouch(std::uint32_t addr)
{
    std::uint32_t line = addr >> lineShift;
    std::uint32_t set = line & setMask;
    int way = findWay(set, line);
    if (way < 0)
        return false;
    if (repl == ReplPolicy::LRU) {
        if (fsm != nullptr)
            fsmState[set] = fsm->next[fsmState[set] * ways + way];
        else
            stamps[static_cast<std::size_t>(set) * ways + way] = ++tick;
    }
    return true;
}

bool
FlatCache::touchDirtyIfResident(std::uint32_t addr)
{
    std::uint32_t line = addr >> lineShift;
    std::uint32_t set = line & setMask;
    int way = findWay(set, line);
    if (way < 0)
        return false;
    entries[static_cast<std::size_t>(set) * ways + way] |= kDirty;
    return true;
}

std::uint32_t
FlatCache::chooseVictimWay(std::uint32_t set)
{
    std::size_t base = static_cast<std::size_t>(set) * ways;
    // Prefer an invalid way (same scan order as Cache).
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!(entries[base + w] & kValid))
            return w;
    }
    switch (repl) {
      case ReplPolicy::Random:
        return rng.nextBounded(ways);
      case ReplPolicy::LRU:
      case ReplPolicy::FIFO: {
        if (fsm != nullptr)
            return fsm->victim[fsmState[set]];
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < ways; ++w) {
            if (stamps[base + w] < stamps[base + victim])
                victim = w;
        }
        return victim;
      }
    }
    panic("unreachable replacement policy");
}

FlatCache::Victim
FlatCache::fill(std::uint32_t addr)
{
    std::uint32_t line = addr >> lineShift;
    std::uint32_t set = line & setMask;
    std::uint32_t way = chooseVictimWay(set);
    std::size_t slot = static_cast<std::size_t>(set) * ways + way;
    Victim v;
    std::uint64_t e = entries[slot];
    if (e & kValid) {
        v.valid = true;
        v.lineAddr = static_cast<std::uint32_t>(e >> 2);
        v.dirty = (e & kDirty) != 0;
    }
    entries[slot] = (static_cast<std::uint64_t>(line) << 2) | kValid;
    if (repl != ReplPolicy::Random) {
        // Unobservable under Random: skipped. LRU and FIFO both
        // promote the filled way to most-recent.
        if (fsm != nullptr)
            fsmState[set] = fsm->next[fsmState[set] * ways + way];
        else
            stamps[slot] = ++tick;
    }
    return v;
}

// ---------------------------------------------------------------------
// SharedL1Group / StrictLaneBlock
// ---------------------------------------------------------------------

SharedL1Group::SharedL1Group(const CacheParams &p) : l1Params(p)
{
    p.validate();
    tlc_assert(p.ways() == 1,
               "SharedL1Group requires a direct-mapped L1");
    std::uint64_t sets = p.numSets();
    lineShift = log2i(p.lineBytes);
    setMask = static_cast<std::uint32_t>(sets - 1);
    l1Entries.resize(sets * 2); // zero entries carry no kValid bit
}

StrictLaneBlock::StrictLaneBlock(const CacheParams &p) : l1Params(p)
{
    p.validate();
    tlc_assert(p.ways() == 1,
               "StrictLaneBlock requires a direct-mapped L1");
    lineShift = log2i(p.lineBytes);
    setMask = static_cast<std::uint32_t>(p.numSets() - 1);
}

std::uint32_t
StrictLaneBlock::addLane(const CacheParams &l2_params, std::uint64_t seed)
{
    tlc_assert(width() < kMaxBlockLanes, "StrictLaneBlock is full");
    l2s.emplace_back(l2_params, seed);
    stats.emplace_back();
    // Re-stride the interleaved tag array for the new width. All
    // words are still zero (lanes are only added before the first
    // record), so resizing is the whole job.
    std::uint64_t sets = l1Params.numSets();
    l1Entries.assign(sets * 2 * width(), 0);
    return width() - 1;
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

const LaneKernels &
laneKernelsFor(SimdBackend backend)
{
    switch (backend) {
      case SimdBackend::Scalar:
        return scalar_kernels::kKernels;
      case SimdBackend::Avx2:
#if defined(TLC_SIMD_HAVE_AVX2)
        return avx2_kernels::kKernels;
#else
        break;
#endif
      case SimdBackend::Neon:
#if defined(TLC_SIMD_HAVE_NEON)
        return neon_kernels::kKernels;
#else
        break;
#endif
    }
    panic("laneKernelsFor: backend '%s' not compiled into this binary",
          simdBackendName(backend));
}

} // namespace lanes
} // namespace tlc
