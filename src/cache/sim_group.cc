/**
 * @file
 * SimGroup implementation: lane grouping over the data-oriented lane
 * layouts in cache/simd_lanes.hh, generic Hierarchy lanes for the
 * rest, and the blocked lane-major trace loop.
 */

#include "sim_group.hh"

#include "cache/single_level.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace tlc {

namespace {

/**
 * Records per block of the lane-major loop. Large enough to amortize
 * the per-lane dispatch, small enough that a block plus one lane's
 * hot sets stay cache-resident while the block replays — and for
 * SharedL1Groups, that one block's L1 miss queue fits comfortably in
 * the host L2 while it is replayed per member.
 */
constexpr std::size_t kBlockRecords = 4096;

} // namespace

lanes::SharedL1Group &
SimGroup::sharedGroupFor(const CacheParams &l1_params)
{
    // A direct-mapped L1's replacement policy and RNG are
    // unobservable, so the geometry fields are the whole key.
    for (lanes::SharedL1Group &g : sharedGroups_) {
        if (g.l1Params.sizeBytes == l1_params.sizeBytes &&
            g.l1Params.lineBytes == l1_params.lineBytes)
            return g;
    }
    sharedGroups_.emplace_back(l1_params);
    return sharedGroups_.back();
}

std::uint32_t
SimGroup::strictBlockFor(const CacheParams &l1_params)
{
    for (std::uint32_t b = 0; b < strictBlocks_.size(); ++b) {
        const lanes::StrictLaneBlock &blk = strictBlocks_[b];
        if (blk.l1Params.sizeBytes == l1_params.sizeBytes &&
            blk.l1Params.lineBytes == l1_params.lineBytes &&
            blk.width() < lanes::StrictLaneBlock::kMaxBlockLanes)
            return b;
    }
    strictBlocks_.emplace_back(l1_params);
    return static_cast<std::uint32_t>(strictBlocks_.size() - 1);
}

std::size_t
SimGroup::addSingleLevel(const CacheParams &l1_params, std::uint64_t seed)
{
    if (l1_params.ways() == 1 && !accessed_) {
        // Same-geometry direct-mapped L1s are bit-identical (no
        // replacement state), so every such lane shares one group's
        // L1 walk and stats block.
        lanes::SharedL1Group &g = sharedGroupFor(l1_params);
        ++g.singleMembers;
        std::uint32_t group =
            static_cast<std::uint32_t>(&g - sharedGroups_.data());
        lanes_.push_back({LaneKind::SharedSingle, group});
    } else {
        genericLanes_.push_back(
            std::make_unique<SingleLevelHierarchy>(l1_params, seed));
        lanes_.push_back(
            {LaneKind::Generic,
             static_cast<std::uint32_t>(genericLanes_.size() - 1)});
    }
    return lanes_.size() - 1;
}

std::size_t
SimGroup::addTwoLevel(const CacheParams &l1_params,
                      const CacheParams &l2_params, TwoLevelPolicy policy,
                      std::uint64_t seed)
{
    // Lanes added after records have run take the generic path: the
    // flat flavours share or re-stride state in ways that are only
    // equivalent to a solo run when the lane starts cold.
    bool flat = l1_params.ways() == 1 &&
                policy != TwoLevelPolicy::Exclusive &&
                l1_params.lineBytes == l2_params.lineBytes && !accessed_;
    if (flat && policy == TwoLevelPolicy::Inclusive) {
        // Non-strict inclusion: the L2 never writes back into L1
        // state, so lanes sharing an L1 geometry share one simulated
        // L1 and fan out over the recorded miss stream.
        lanes::SharedL1Group &g = sharedGroupFor(l1_params);
        g.subs.emplace_back(l2_params, seed + 2);
        std::uint32_t group =
            static_cast<std::uint32_t>(&g - sharedGroups_.data());
        lanes_.push_back(
            {LaneKind::SharedSub, group,
             static_cast<std::uint32_t>(g.subs.size() - 1)});
    } else if (flat) {
        // Strict inclusion back-invalidates L1 lines, so each lane
        // keeps a private L1 — interleaved with its same-geometry
        // peers for the vectorized probe.
        std::uint32_t block = strictBlockFor(l1_params);
        std::uint32_t lane =
            strictBlocks_[block].addLane(l2_params, seed + 2);
        lanes_.push_back({LaneKind::Strict, block, lane});
    } else {
        genericLanes_.push_back(std::make_unique<TwoLevelHierarchy>(
            l1_params, l2_params, policy, seed));
        lanes_.push_back(
            {LaneKind::Generic,
             static_cast<std::uint32_t>(genericLanes_.size() - 1)});
    }
    return lanes_.size() - 1;
}

std::size_t
SimGroup::addHierarchy(std::unique_ptr<Hierarchy> h)
{
    tlc_assert(h != nullptr, "addHierarchy(nullptr)");
    genericLanes_.push_back(std::move(h));
    lanes_.push_back({LaneKind::Generic,
                      static_cast<std::uint32_t>(genericLanes_.size() - 1)});
    return lanes_.size() - 1;
}

std::size_t
SimGroup::flatLaneCount() const
{
    return lanes_.size() - genericLanes_.size();
}

bool
SimGroup::laneIsFlat(std::size_t lane) const
{
    tlc_assert(lane < lanes_.size(), "lane %zu out of range", lane);
    return lanes_[lane].kind != LaneKind::Generic;
}

void
SimGroup::accessRange(const TraceRecord *recs, std::size_t n)
{
    accessed_ = accessed_ || n > 0;
    const lanes::LaneKernels &k =
        lanes::laneKernelsFor(activeSimdBackend());
    for (std::size_t ofs = 0; ofs < n; ofs += kBlockRecords) {
        std::size_t len = n - ofs;
        if (len > kBlockRecords)
            len = kBlockRecords;
        const TraceRecord *block = recs + ofs;
        if (!sharedGroups_.empty())
            k.runShared(sharedGroups_.data(), sharedGroups_.size(),
                        block, len);
        for (lanes::StrictLaneBlock &blk : strictBlocks_)
            k.runStrict(blk, block, len);
        for (auto &h : genericLanes_) {
            for (std::size_t i = 0; i < len; ++i)
                h->access(block[i]);
        }
    }
}

void
SimGroup::resetStats()
{
    for (lanes::SharedL1Group &group : sharedGroups_) {
        group.singleStats = HierarchyStats{};
        for (lanes::SharedL1Group::Sub &s : group.subs)
            s.stats = HierarchyStats{};
    }
    for (lanes::StrictLaneBlock &blk : strictBlocks_) {
        for (HierarchyStats &s : blk.stats)
            s = HierarchyStats{};
    }
    for (auto &h : genericLanes_)
        h->resetStats();
}

const HierarchyStats &
SimGroup::stats(std::size_t lane) const
{
    tlc_assert(lane < lanes_.size(), "lane %zu out of range", lane);
    const LaneRef &ref = lanes_[lane];
    switch (ref.kind) {
      case LaneKind::SharedSingle:
        return sharedGroups_[ref.index].singleStats;
      case LaneKind::SharedSub:
        return sharedGroups_[ref.index].subs[ref.sub].stats;
      case LaneKind::Strict:
        return strictBlocks_[ref.index].stats[ref.sub];
      case LaneKind::Generic:
        return genericLanes_[ref.index]->stats();
    }
    panic("unreachable lane kind");
}

} // namespace tlc
