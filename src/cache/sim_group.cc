/**
 * @file
 * SimGroup implementation: flat structure-of-arrays lanes for the
 * paper's common hierarchy shapes, generic Hierarchy lanes for the
 * rest, and the blocked lane-major trace loop.
 */

#include "sim_group.hh"

#include "cache/single_level.hh"
#include "util/bitutil.hh"
#include "util/logging.hh"

namespace tlc {

namespace {

/**
 * Records per block of the lane-major loop. Large enough to amortize
 * the per-lane dispatch, small enough that a block plus one lane's
 * hot sets stay cache-resident while the block replays.
 */
constexpr std::size_t kBlockRecords = 4096;

} // namespace

// ---------------------------------------------------------------------
// DmL1
// ---------------------------------------------------------------------

SimGroup::DmL1::DmL1(const CacheParams &p)
{
    p.validate();
    tlc_assert(p.ways() == 1, "DmL1 requires a direct-mapped cache");
    std::uint64_t sets = p.numSets();
    lineShift = log2i(p.lineBytes);
    setMask = static_cast<std::uint32_t>(sets - 1);
    entries.resize(sets * 2); // zero entries carry no kValid bit
}

// ---------------------------------------------------------------------
// FlatCache
// ---------------------------------------------------------------------

SimGroup::FlatCache::FlatCache(const CacheParams &p, std::uint64_t seed)
    : rng(seed, 0xcac4e) // Cache's stream id, for identical draws
{
    p.validate();
    lineShift = log2i(p.lineBytes);
    ways = p.ways();
    std::uint64_t sets = p.numSets();
    setMask = static_cast<std::uint32_t>(sets - 1);
    repl = p.repl;
    entries.resize(sets * ways);
    if (repl != ReplPolicy::Random)
        stamps.resize(sets * ways);
}

int
SimGroup::FlatCache::findWay(std::uint32_t set, std::uint32_t line) const
{
    std::size_t base = static_cast<std::size_t>(set) * ways;
    std::uint64_t want =
        (static_cast<std::uint64_t>(line) << 2) | kValid;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if ((entries[base + w] & ~std::uint64_t(kDirty)) == want)
            return static_cast<int>(w);
    }
    return -1;
}

bool
SimGroup::FlatCache::lookupAndTouch(std::uint32_t addr)
{
    std::uint32_t line = addr >> lineShift;
    std::uint32_t set = line & setMask;
    int way = findWay(set, line);
    if (way < 0)
        return false;
    if (repl == ReplPolicy::LRU)
        stamps[static_cast<std::size_t>(set) * ways + way] = ++tick;
    return true;
}

bool
SimGroup::FlatCache::touchDirtyIfResident(std::uint32_t addr)
{
    std::uint32_t line = addr >> lineShift;
    std::uint32_t set = line & setMask;
    int way = findWay(set, line);
    if (way < 0)
        return false;
    entries[static_cast<std::size_t>(set) * ways + way] |= kDirty;
    return true;
}

std::uint32_t
SimGroup::FlatCache::chooseVictimWay(std::uint32_t set)
{
    std::size_t base = static_cast<std::size_t>(set) * ways;
    // Prefer an invalid way (same scan order as Cache).
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!(entries[base + w] & kValid))
            return w;
    }
    switch (repl) {
      case ReplPolicy::Random:
        return rng.nextBounded(ways);
      case ReplPolicy::LRU:
      case ReplPolicy::FIFO: {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < ways; ++w) {
            if (stamps[base + w] < stamps[base + victim])
                victim = w;
        }
        return victim;
      }
    }
    panic("unreachable replacement policy");
}

SimGroup::FlatCache::Victim
SimGroup::FlatCache::fill(std::uint32_t addr)
{
    std::uint32_t line = addr >> lineShift;
    std::uint32_t set = line & setMask;
    std::uint32_t way = chooseVictimWay(set);
    std::size_t slot = static_cast<std::size_t>(set) * ways + way;
    Victim v;
    std::uint64_t e = entries[slot];
    if (e & kValid) {
        v.valid = true;
        v.lineAddr = static_cast<std::uint32_t>(e >> 2);
        v.dirty = (e & kDirty) != 0;
    }
    entries[slot] = (static_cast<std::uint64_t>(line) << 2) | kValid;
    if (repl != ReplPolicy::Random)
        stamps[slot] = ++tick; // unobservable under Random: skipped
    return v;
}

// ---------------------------------------------------------------------
// DmSingleLane
// ---------------------------------------------------------------------

void
SimGroup::DmSingleLane::run(const TraceRecord *recs, std::size_t n)
{
    // Counters and geometry live in locals for the duration of the
    // loop: the entry stores could alias the stats fields as far as
    // the compiler knows, so counting directly into `stats` would
    // force a reload on every record.
    const std::uint32_t line_shift = l1.lineShift;
    const std::uint32_t set_mask = l1.setMask;
    std::uint64_t *const entries = l1.entries.data();
    std::uint64_t instr = 0, data = 0, imiss = 0, dmiss = 0, wb = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = recs[i];
        bool is_instr = r.type == RefType::Instr;
        bool is_store = r.type == RefType::Store;
        std::uint32_t line = r.addr >> line_shift;
        std::uint32_t set = line & set_mask;
        std::size_t idx =
            (static_cast<std::size_t>(set) << 1) | (is_instr ? 0 : 1);

        if (is_instr)
            ++instr;
        else
            ++data;

        std::uint64_t e = entries[idx];
        std::uint64_t want =
            (static_cast<std::uint64_t>(line) << 2) | kValid;
        if ((e & ~std::uint64_t(kDirty)) == want) {
            if (is_store)
                entries[idx] = e | kDirty;
            continue;
        }

        if (is_instr)
            ++imiss;
        else
            ++dmiss;

        if ((e & (kValid | kDirty)) == (kValid | kDirty))
            ++wb;
        entries[idx] = is_store ? (want | kDirty) : want;
    }

    stats.instrRefs += instr;
    stats.dataRefs += data;
    stats.l1iMisses += imiss;
    stats.l1dMisses += dmiss;
    stats.l2Misses += imiss + dmiss; // off-chip (no L2 level exists)
    stats.offchipWritebacks += wb;
}

// ---------------------------------------------------------------------
// FlatTwoLevelLane
// ---------------------------------------------------------------------

void
SimGroup::FlatTwoLevelLane::run(const TraceRecord *recs, std::size_t n)
{
    // Same aliasing dance as DmSingleLane::run: the entry stores
    // could alias the stats fields, so the hot-path counters
    // accumulate in locals and fold into stats once per block.
    const std::uint32_t line_shift = l1.lineShift;
    const std::uint32_t set_mask = l1.setMask;
    std::uint64_t *const entries = l1.entries.data();
    std::uint64_t instr = 0, data = 0, imiss = 0, dmiss = 0;
    std::uint64_t l2hit = 0, l2miss = 0, wb = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = recs[i];
        bool is_instr = r.type == RefType::Instr;
        bool is_store = r.type == RefType::Store;
        std::uint32_t line = r.addr >> line_shift;
        std::uint32_t set = line & set_mask;
        std::size_t idx =
            (static_cast<std::size_t>(set) << 1) | (is_instr ? 0 : 1);

        if (is_instr)
            ++instr;
        else
            ++data;

        std::uint64_t e = entries[idx];
        std::uint64_t want =
            (static_cast<std::uint64_t>(line) << 2) | kValid;
        if ((e & ~std::uint64_t(kDirty)) == want) {
            if (is_store)
                entries[idx] = e | kDirty;
            continue;
        }

        if (is_instr)
            ++imiss;
        else
            ++dmiss;

        // Refill L1 first, as accessInclusive does; the dirty victim
        // updates L2 in place when its line is still there, else the
        // write-back goes off-chip.
        std::uint32_t victim_line = static_cast<std::uint32_t>(e >> 2);
        bool victim_dirty =
            (e & (kValid | kDirty)) == (kValid | kDirty);
        entries[idx] = is_store ? (want | kDirty) : want;
        if (victim_dirty) {
            std::uint32_t victim_addr = victim_line << line_shift;
            if (!l2.touchDirtyIfResident(victim_addr))
                ++wb;
        }

        if (l2.lookupAndTouch(r.addr)) {
            ++l2hit;
            continue;
        }
        ++l2miss;
        FlatCache::Victim l2v = l2.fill(r.addr);
        if (l2v.valid && l2v.dirty)
            ++wb;
        if (l2v.valid) {
            // Maintain inclusion: a line leaving L2 may not stay in
            // L1. Line sizes match, so the victim's line address is
            // directly comparable against the L1 entries.
            std::size_t vbase =
                static_cast<std::size_t>(l2v.lineAddr & set_mask) << 1;
            std::uint64_t vtag =
                static_cast<std::uint64_t>(l2v.lineAddr) << 2;
            for (std::size_t vi = vbase; vi < vbase + 2; ++vi) {
                std::uint64_t ve = entries[vi];
                if ((ve & kValid) && (ve >> 2) == (vtag >> 2))
                    entries[vi] =
                        ve & ~static_cast<std::uint64_t>(kValid);
            }
        }
    }

    stats.instrRefs += instr;
    stats.dataRefs += data;
    stats.l1iMisses += imiss;
    stats.l1dMisses += dmiss;
    stats.l2Hits += l2hit;
    stats.l2Misses += l2miss;
    stats.offchipWritebacks += wb;
}

// ---------------------------------------------------------------------
// SharedL1TwoLevelLanes
// ---------------------------------------------------------------------

void
SimGroup::SharedL1TwoLevelLanes::run(const TraceRecord *recs,
                                     std::size_t n)
{
    // The L1 runs once; its shared counters accumulate in locals
    // (same aliasing reasoning as DmSingleLane::run) and fold into
    // every member's stats at the end. The colder miss path updates
    // each member's L2 counters directly.
    const std::uint32_t line_shift = l1.lineShift;
    const std::uint32_t set_mask = l1.setMask;
    std::uint64_t *const entries = l1.entries.data();
    Sub *const sub_begin = subs.data();
    Sub *const sub_end = sub_begin + subs.size();
    std::uint64_t instr = 0, data = 0, imiss = 0, dmiss = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &r = recs[i];
        bool is_instr = r.type == RefType::Instr;
        bool is_store = r.type == RefType::Store;
        std::uint32_t line = r.addr >> line_shift;
        std::uint32_t set = line & set_mask;
        std::size_t idx =
            (static_cast<std::size_t>(set) << 1) | (is_instr ? 0 : 1);

        if (is_instr)
            ++instr;
        else
            ++data;

        std::uint64_t e = entries[idx];
        std::uint64_t want =
            (static_cast<std::uint64_t>(line) << 2) | kValid;
        if ((e & ~std::uint64_t(kDirty)) == want) {
            if (is_store)
                entries[idx] = e | kDirty;
            continue;
        }

        if (is_instr)
            ++imiss;
        else
            ++dmiss;

        std::uint32_t victim_line = static_cast<std::uint32_t>(e >> 2);
        bool victim_dirty =
            (e & (kValid | kDirty)) == (kValid | kDirty);
        entries[idx] = is_store ? (want | kDirty) : want;
        std::uint32_t victim_addr = victim_line << line_shift;

        for (Sub *s = sub_begin; s != sub_end; ++s) {
            if (victim_dirty && !s->l2.touchDirtyIfResident(victim_addr))
                ++s->stats.offchipWritebacks;
            if (s->l2.lookupAndTouch(r.addr)) {
                ++s->stats.l2Hits;
                continue;
            }
            ++s->stats.l2Misses;
            FlatCache::Victim l2v = s->l2.fill(r.addr);
            if (l2v.valid && l2v.dirty)
                ++s->stats.offchipWritebacks;
        }
    }

    for (Sub &s : subs) {
        s.stats.instrRefs += instr;
        s.stats.dataRefs += data;
        s.stats.l1iMisses += imiss;
        s.stats.l1dMisses += dmiss;
    }
}

// ---------------------------------------------------------------------
// SimGroup
// ---------------------------------------------------------------------

std::size_t
SimGroup::addSingleLevel(const CacheParams &l1_params, std::uint64_t seed)
{
    if (l1_params.ways() == 1) {
        dmLanes_.emplace_back(l1_params);
        lanes_.push_back({LaneKind::DmSingle,
                          static_cast<std::uint32_t>(dmLanes_.size() - 1)});
    } else {
        genericLanes_.push_back(
            std::make_unique<SingleLevelHierarchy>(l1_params, seed));
        lanes_.push_back(
            {LaneKind::Generic,
             static_cast<std::uint32_t>(genericLanes_.size() - 1)});
    }
    return lanes_.size() - 1;
}

std::size_t
SimGroup::addTwoLevel(const CacheParams &l1_params,
                      const CacheParams &l2_params, TwoLevelPolicy policy,
                      std::uint64_t seed)
{
    bool flat = l1_params.ways() == 1 &&
                policy != TwoLevelPolicy::Exclusive &&
                l1_params.lineBytes == l2_params.lineBytes;
    if (flat && policy == TwoLevelPolicy::Inclusive) {
        // Non-strict inclusion: the L2 never writes back into L1
        // state, so lanes sharing an L1 geometry share one simulated
        // L1. (A direct-mapped L1's replacement policy and RNG are
        // unobservable, so the geometry fields are the whole key.)
        std::uint32_t group = 0;
        for (; group < sharedLanes_.size(); ++group) {
            const CacheParams &k = sharedLanes_[group].l1Params;
            if (k.sizeBytes == l1_params.sizeBytes &&
                k.lineBytes == l1_params.lineBytes)
                break;
        }
        if (group == sharedLanes_.size())
            sharedLanes_.emplace_back(l1_params);
        sharedLanes_[group].subs.emplace_back(l2_params, seed + 2);
        lanes_.push_back(
            {LaneKind::SharedTwoLevel, group,
             static_cast<std::uint32_t>(
                 sharedLanes_[group].subs.size() - 1)});
    } else if (flat) {
        flatLanes_.emplace_back(l1_params, l2_params, seed);
        lanes_.push_back(
            {LaneKind::FlatTwoLevel,
             static_cast<std::uint32_t>(flatLanes_.size() - 1)});
    } else {
        genericLanes_.push_back(std::make_unique<TwoLevelHierarchy>(
            l1_params, l2_params, policy, seed));
        lanes_.push_back(
            {LaneKind::Generic,
             static_cast<std::uint32_t>(genericLanes_.size() - 1)});
    }
    return lanes_.size() - 1;
}

std::size_t
SimGroup::addHierarchy(std::unique_ptr<Hierarchy> h)
{
    tlc_assert(h != nullptr, "addHierarchy(nullptr)");
    genericLanes_.push_back(std::move(h));
    lanes_.push_back({LaneKind::Generic,
                      static_cast<std::uint32_t>(genericLanes_.size() - 1)});
    return lanes_.size() - 1;
}

std::size_t
SimGroup::flatLaneCount() const
{
    std::size_t shared = 0;
    for (const SharedL1TwoLevelLanes &g : sharedLanes_)
        shared += g.subs.size();
    return dmLanes_.size() + flatLanes_.size() + shared;
}

bool
SimGroup::laneIsFlat(std::size_t lane) const
{
    tlc_assert(lane < lanes_.size(), "lane %zu out of range", lane);
    return lanes_[lane].kind != LaneKind::Generic;
}

void
SimGroup::accessRange(const TraceRecord *recs, std::size_t n)
{
    for (std::size_t ofs = 0; ofs < n; ofs += kBlockRecords) {
        std::size_t len = n - ofs;
        if (len > kBlockRecords)
            len = kBlockRecords;
        const TraceRecord *block = recs + ofs;
        for (DmSingleLane &lane : dmLanes_)
            lane.run(block, len);
        for (FlatTwoLevelLane &lane : flatLanes_)
            lane.run(block, len);
        for (SharedL1TwoLevelLanes &group : sharedLanes_)
            group.run(block, len);
        for (auto &h : genericLanes_) {
            for (std::size_t i = 0; i < len; ++i)
                h->access(block[i]);
        }
    }
}

void
SimGroup::resetStats()
{
    for (DmSingleLane &lane : dmLanes_)
        lane.stats = HierarchyStats{};
    for (FlatTwoLevelLane &lane : flatLanes_)
        lane.stats = HierarchyStats{};
    for (SharedL1TwoLevelLanes &group : sharedLanes_)
        for (SharedL1TwoLevelLanes::Sub &s : group.subs)
            s.stats = HierarchyStats{};
    for (auto &h : genericLanes_)
        h->resetStats();
}

const HierarchyStats &
SimGroup::stats(std::size_t lane) const
{
    tlc_assert(lane < lanes_.size(), "lane %zu out of range", lane);
    const LaneRef &ref = lanes_[lane];
    switch (ref.kind) {
      case LaneKind::DmSingle:
        return dmLanes_[ref.index].stats;
      case LaneKind::FlatTwoLevel:
        return flatLanes_[ref.index].stats;
      case LaneKind::SharedTwoLevel:
        return sharedLanes_[ref.index].subs[ref.sub].stats;
      case LaneKind::Generic:
        return genericLanes_[ref.index]->stats();
    }
    panic("unreachable lane kind");
}

} // namespace tlc
