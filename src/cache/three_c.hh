/**
 * @file
 * Three-C miss classification (Hill's compulsory / capacity /
 * conflict taxonomy — reference [3] of the paper).
 *
 * The paper's third motivation for two-level caching is that a
 * set-associative L2 absorbs the *conflict* misses of the
 * direct-mapped L1s, and two-level exclusive caching adds "a limited
 * form of associativity" for the same reason. This analyzer
 * quantifies that: each miss of a target cache is classified as
 *
 *   compulsory — first reference to the line ever;
 *   capacity   — also misses in a fully-associative LRU cache of the
 *                same capacity;
 *   conflict   — hits in the fully-associative cache but misses in
 *                the target (a mapping artifact).
 */

#ifndef TLC_CACHE_THREE_C_HH
#define TLC_CACHE_THREE_C_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "cache/cache.hh"

namespace tlc {

/** Classification counts. */
struct ThreeCStats
{
    std::uint64_t refs = 0;
    std::uint64_t hits = 0;
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    std::uint64_t conflict = 0;

    std::uint64_t misses() const
    {
        return compulsory + capacity + conflict;
    }
    double missRate() const
    {
        return refs ? static_cast<double>(misses()) / refs : 0.0;
    }
    double conflictFraction() const
    {
        return misses() ?
            static_cast<double>(conflict) / misses() : 0.0;
    }
};

/**
 * O(1)-per-access fully-associative LRU cache over line addresses,
 * used as the capacity reference model. (The general Cache class
 * scans ways linearly, which is fine for real set sizes but not for
 * a 16K-way reference model.)
 */
class FullyAssocLru
{
  public:
    explicit FullyAssocLru(std::uint64_t num_lines);

    /** Touch a line; @return true on hit. Allocates on miss. */
    bool access(std::uint64_t line_addr);

    std::uint64_t size() const { return map_.size(); }
    std::uint64_t capacity() const { return capacity_; }

  private:
    std::uint64_t capacity_;
    std::list<std::uint64_t> lru_; ///< MRU at front
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        map_;
};

/**
 * Classifies the misses of one target cache array.
 */
class ThreeCAnalyzer
{
  public:
    explicit ThreeCAnalyzer(const CacheParams &target,
                            std::uint64_t repl_seed = 0x3c);

    /** Process one byte address. */
    void access(std::uint64_t addr);

    const ThreeCStats &stats() const { return stats_; }
    const Cache &target() const { return target_; }

  private:
    Cache target_;
    FullyAssocLru reference_;
    std::unordered_set<std::uint64_t> touched_;
    ThreeCStats stats_;
};

} // namespace tlc

#endif // TLC_CACHE_THREE_C_HH
