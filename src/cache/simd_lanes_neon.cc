/**
 * @file
 * NEON lane kernels for aarch64, where NEON is architectural — no
 * special flags needed, the TU exists whenever TLC_SIMD_HAVE_NEON is
 * defined (see the top-level CMakeLists.txt) and util/simd.hh's
 * wrapper intrinsics resolve to the 2-x-u64 NEON variant.
 */

#include "cache/simd_lanes.hh"

#if defined(TLC_SIMD_HAVE_NEON)

#include "util/logging.hh"

namespace tlc {
namespace lanes {
namespace neon_kernels {

#include "cache/simd_lanes_body.inc"

} // namespace neon_kernels
} // namespace lanes
} // namespace tlc

#endif // TLC_SIMD_HAVE_NEON
