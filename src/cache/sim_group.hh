/**
 * @file
 * SimGroup: N independent cache hierarchies driven in lock-step over
 * one decoded trace — the cache-layer half of the single-pass
 * multi-configuration simulation engine (src/core/batch_engine.hh is
 * the config-mapping half).
 *
 * Sweeping the paper's design space the obvious way re-walks the
 * same multi-million-reference trace once per configuration, and on
 * this machine the trace walk dominates wall clock. SimGroup inverts
 * the loop: the trace is decoded once and each reference is applied
 * to every registered lane, block by block, so the trace data
 * streams through the L1 of the *host* once per block instead of
 * once per configuration.
 *
 * Lanes come in two flavours:
 *  - Flat lanes for the paper's common shapes — split direct-mapped
 *    L1s alone, or backed by an inclusive/strict-inclusive L2 of the
 *    same line size. These keep their tag state in structure-of-
 *    arrays form and run a branch-lean inner loop with no virtual
 *    dispatch.
 *  - Generic lanes wrapping any Hierarchy (exclusive two-level,
 *    victim cache, stream buffer, associative L1s) accessed
 *    record-by-record through the virtual interface.
 *
 * Equivalence contract: every lane produces HierarchyStats
 * byte-identical to running the corresponding Hierarchy alone over
 * the same records — including replacement RNG draw sequences,
 * LRU/FIFO stamp ordering and write-back accounting. Flat lanes
 * re-implement Cache/SingleLevelHierarchy/TwoLevelHierarchy
 * semantics operation for operation (tests/test_batch_engine.cc
 * enforces this differentially across every hierarchy shape).
 *
 * Thread safety: none — a SimGroup is built, run and read by one
 * thread. Batched sweeps get their parallelism by giving each worker
 * its own SimGroup over the shared read-only trace.
 */

#ifndef TLC_CACHE_SIM_GROUP_HH
#define TLC_CACHE_SIM_GROUP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/params.hh"
#include "cache/two_level.hh"
#include "trace/record.hh"
#include "util/random.hh"

namespace tlc {

/**
 * A group of independent cache hierarchies simulated in one trace
 * pass. Add lanes, then drive records through accessRange(); stats
 * are read back per lane by the index add*() returned.
 */
class SimGroup
{
  public:
    /**
     * Add a split-L1-only system (SingleLevelHierarchy semantics).
     * Uses the flat fast path when the L1 is direct-mapped.
     * @return the new lane's index.
     */
    std::size_t addSingleLevel(const CacheParams &l1_params,
                               std::uint64_t seed = 1);

    /**
     * Add a two-level system (TwoLevelHierarchy semantics). Uses the
     * flat fast path for inclusive/strict-inclusive policies over a
     * direct-mapped L1; exclusive caching takes the generic path.
     * @return the new lane's index.
     */
    std::size_t addTwoLevel(const CacheParams &l1_params,
                            const CacheParams &l2_params,
                            TwoLevelPolicy policy, std::uint64_t seed = 1);

    /**
     * Add an arbitrary hierarchy (victim cache, stream buffer, ...)
     * as a generic lane. @return the new lane's index.
     */
    std::size_t addHierarchy(std::unique_ptr<Hierarchy> h);

    std::size_t laneCount() const { return lanes_.size(); }

    /** Lanes on the structure-of-arrays fast path (for metrics). */
    std::size_t flatLaneCount() const;

    /** Does @p lane run on the flat fast path? */
    bool laneIsFlat(std::size_t lane) const;

    /**
     * Apply @p n records to every lane. Records are processed in
     * blocks, lane-major within a block, so each lane's tag state
     * stays hot while the block is replayed against it.
     */
    void accessRange(const TraceRecord *recs, std::size_t n);

    /** Zero every lane's statistics, keeping cache contents. */
    void resetStats();

    /** Statistics of one lane. */
    const HierarchyStats &stats(std::size_t lane) const;

  private:
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kDirty = 2;

    /**
     * Split direct-mapped L1 tag state, flattened: one 64-bit entry
     * per set packing the line address and the valid/dirty bits
     * ((line << 2) | flags), instruction and data entries interleaved
     * ([set*2] = I, [set*2+1] = D) so a lookup costs one load and a
     * refill one store. Stamps are unnecessary — a one-way set has a
     * forced victim, so replacement state can never be observed.
     */
    struct DmL1
    {
        std::uint32_t lineShift = 0;
        std::uint32_t setMask = 0;
        std::vector<std::uint64_t> entries;

        explicit DmL1(const CacheParams &p);
    };

    /**
     * Flat replica of Cache for the shared L2: same victim-selection
     * order (invalid scan, then policy), same LRU/FIFO stamp and
     * tick behaviour, same Pcg32 stream — so the stats it produces
     * match a real Cache draw for draw. Entries pack the line
     * address and valid/dirty bits like DmL1 ((line << 2) | flags),
     * [set][way] row-major; stamps are kept in a side array that is
     * only touched under LRU/FIFO — under Random replacement the
     * stamps and the tick can never influence an outcome, so the
     * miss path skips them entirely.
     */
    struct FlatCache
    {
        std::uint32_t lineShift = 0;
        std::uint32_t ways = 1;
        std::uint32_t setMask = 0;
        ReplPolicy repl = ReplPolicy::Random;
        std::vector<std::uint64_t> entries; ///< (line << 2) | flags
        std::vector<std::uint64_t> stamps;  ///< LRU/FIFO ordering
        std::uint64_t tick = 0;
        Pcg32 rng;

        FlatCache(const CacheParams &p, std::uint64_t seed);

        struct Victim
        {
            bool valid = false;
            std::uint32_t lineAddr = 0;
            bool dirty = false;
        };

        int findWay(std::uint32_t set, std::uint32_t line) const;
        bool lookupAndTouch(std::uint32_t addr);
        /** contains() + setDirty() fused: dirty the line if resident. */
        bool touchDirtyIfResident(std::uint32_t addr);
        std::uint32_t chooseVictimWay(std::uint32_t set);
        Victim fill(std::uint32_t addr);
    };

    /** SingleLevelHierarchy over direct-mapped L1s, flattened. */
    struct DmSingleLane
    {
        DmL1 l1;
        HierarchyStats stats;

        explicit DmSingleLane(const CacheParams &p) : l1(p) {}
        void run(const TraceRecord *recs, std::size_t n);
    };

    /**
     * TwoLevelHierarchy (strict-inclusive) over direct-mapped L1s,
     * flattened. Strict inclusion back-invalidates L1 lines when
     * their L2 copy is evicted, so each strict lane needs a private
     * L1 — non-strict lanes go through SharedL1TwoLevelLanes instead.
     */
    struct FlatTwoLevelLane
    {
        DmL1 l1;
        FlatCache l2;
        HierarchyStats stats;

        FlatTwoLevelLane(const CacheParams &l1_params,
                         const CacheParams &l2_params, std::uint64_t seed)
            : l1(l1_params), l2(l2_params, seed + 2)
        {
        }
        void run(const TraceRecord *recs, std::size_t n);
    };

    /**
     * All non-strict inclusive two-level lanes that share one
     * direct-mapped L1 geometry. Plain inclusion never modifies L1
     * state from the L2 side, so every such lane sees the exact same
     * L1 access/miss/victim stream — the group simulates the L1 once
     * per record and fans its misses out to each member's private
     * L2. This is where the single-pass engine's biggest win comes
     * from: an L2-capacity sweep over a fixed L1 costs one L1
     * simulation instead of N.
     */
    struct SharedL1TwoLevelLanes
    {
        CacheParams l1Params; ///< grouping key
        DmL1 l1;
        struct Sub
        {
            FlatCache l2;
            HierarchyStats stats;

            Sub(const CacheParams &l2_params, std::uint64_t seed)
                : l2(l2_params, seed)
            {
            }
        };
        std::vector<Sub> subs;

        explicit SharedL1TwoLevelLanes(const CacheParams &p)
            : l1Params(p), l1(p)
        {
        }
        void run(const TraceRecord *recs, std::size_t n);
    };

    enum class LaneKind : std::uint8_t {
        DmSingle,
        FlatTwoLevel,
        SharedTwoLevel,
        Generic
    };
    struct LaneRef
    {
        LaneKind kind;
        std::uint32_t index; ///< into the kind's own vector
        std::uint32_t sub = 0; ///< SharedTwoLevel: index into subs
    };

    std::vector<LaneRef> lanes_;
    std::vector<DmSingleLane> dmLanes_;
    std::vector<FlatTwoLevelLane> flatLanes_;
    std::vector<SharedL1TwoLevelLanes> sharedLanes_;
    std::vector<std::unique_ptr<Hierarchy>> genericLanes_;
};

} // namespace tlc

#endif // TLC_CACHE_SIM_GROUP_HH
