/**
 * @file
 * SimGroup: N independent cache hierarchies driven in lock-step over
 * one decoded trace — the cache-layer half of the single-pass
 * multi-configuration simulation engine (src/core/batch_engine.hh is
 * the config-mapping half).
 *
 * Sweeping the paper's design space the obvious way re-walks the
 * same multi-million-reference trace once per configuration, and on
 * this machine the trace walk dominates wall clock. SimGroup inverts
 * the loop: the trace is decoded once and each reference is applied
 * to every registered lane, block by block, so the trace data
 * streams through the L1 of the *host* once per block instead of
 * once per configuration.
 *
 * SimGroup itself is the grouping layer: it decides which lanes can
 * share simulated state and which structure-of-arrays flavour each
 * one runs on. The lane layouts and their vectorized kernels live in
 * cache/simd_lanes.hh (dispatched at runtime over the SIMD backends
 * compiled into the binary — scalar always, AVX2/NEON per
 * architecture, forced with TLC_SIMD or setSimdBackend()):
 *
 *  - SharedL1Group — all lanes over one direct-mapped L1 geometry
 *    whose L2 side never reaches back into the L1: plain-inclusive
 *    two-level lanes (private L2s replayed from a shared miss
 *    queue) and L1-only lanes (bit-identical, one shared stats
 *    block). An L2-capacity sweep over a fixed L1 costs one L1
 *    simulation instead of N.
 *  - StrictLaneBlock — strict-inclusive lanes, which need private
 *    L1s (back-invalidation), interleaved so one vector probe per
 *    record answers every lane's L1 lookup at once.
 *  - Generic lanes wrapping any Hierarchy (exclusive two-level,
 *    victim cache, stream buffer, associative L1s) accessed
 *    record-by-record through the virtual interface.
 *
 * Equivalence contract: every lane produces HierarchyStats
 * byte-identical to running the corresponding Hierarchy alone over
 * the same records — including replacement RNG draw sequences,
 * LRU/FIFO ordering and write-back accounting, on every SIMD
 * backend (tests/test_batch_engine.cc enforces this differentially
 * across every hierarchy shape and backend).
 *
 * Thread safety: none — a SimGroup is built, run and read by one
 * thread. Batched sweeps get their parallelism by giving each worker
 * its own SimGroup over the shared read-only trace.
 */

#ifndef TLC_CACHE_SIM_GROUP_HH
#define TLC_CACHE_SIM_GROUP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/params.hh"
#include "cache/simd_lanes.hh"
#include "cache/two_level.hh"
#include "trace/record.hh"

namespace tlc {

/**
 * A group of independent cache hierarchies simulated in one trace
 * pass. Add lanes, then drive records through accessRange(); stats
 * are read back per lane by the index add*() returned.
 */
class SimGroup
{
  public:
    /**
     * Add a split-L1-only system (SingleLevelHierarchy semantics).
     * Uses the flat fast path when the L1 is direct-mapped.
     * @return the new lane's index.
     */
    std::size_t addSingleLevel(const CacheParams &l1_params,
                               std::uint64_t seed = 1);

    /**
     * Add a two-level system (TwoLevelHierarchy semantics). Uses the
     * flat fast path for inclusive/strict-inclusive policies over a
     * direct-mapped L1; exclusive caching takes the generic path.
     * @return the new lane's index.
     */
    std::size_t addTwoLevel(const CacheParams &l1_params,
                            const CacheParams &l2_params,
                            TwoLevelPolicy policy, std::uint64_t seed = 1);

    /**
     * Add an arbitrary hierarchy (victim cache, stream buffer, ...)
     * as a generic lane. @return the new lane's index.
     */
    std::size_t addHierarchy(std::unique_ptr<Hierarchy> h);

    std::size_t laneCount() const { return lanes_.size(); }

    /** Lanes on the structure-of-arrays fast path (for metrics). */
    std::size_t flatLaneCount() const;

    /** Does @p lane run on the flat fast path? */
    bool laneIsFlat(std::size_t lane) const;

    /**
     * Apply @p n records to every lane. Records are processed in
     * blocks, lane-major within a block, so each lane's tag state
     * stays hot while the block is replayed against it. The flat
     * flavours run through the kernel set of the active SIMD backend
     * (util/simd.hh), resolved per call.
     */
    void accessRange(const TraceRecord *recs, std::size_t n);

    /** Zero every lane's statistics, keeping cache contents. */
    void resetStats();

    /** Statistics of one lane. */
    const HierarchyStats &stats(std::size_t lane) const;

  private:
    enum class LaneKind : std::uint8_t {
        SharedSingle, ///< L1-only member of a SharedL1Group
        SharedSub,    ///< plain-inclusive member of a SharedL1Group
        Strict,       ///< lane inside a StrictLaneBlock
        Generic
    };
    struct LaneRef
    {
        LaneKind kind;
        std::uint32_t index;   ///< group/block/hierarchy index
        std::uint32_t sub = 0; ///< sub in group / lane in block
    };

    /** Group with a matching L1 geometry, created on first use. */
    lanes::SharedL1Group &sharedGroupFor(const CacheParams &l1_params);

    /**
     * Strict block with a matching L1 geometry and a free lane slot,
     * created on first use or when every match is full.
     */
    std::uint32_t strictBlockFor(const CacheParams &l1_params);

    std::vector<LaneRef> lanes_;
    std::vector<lanes::SharedL1Group> sharedGroups_;
    std::vector<lanes::StrictLaneBlock> strictBlocks_;
    std::vector<std::unique_ptr<Hierarchy>> genericLanes_;
    /**
     * Set once records have been driven; strict lanes added after
     * that point fall back to the generic path, because growing a
     * StrictLaneBlock re-strides tag state that is no longer zero.
     */
    bool accessed_ = false;
};

} // namespace tlc

#endif // TLC_CACHE_SIM_GROUP_HH
