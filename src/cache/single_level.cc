/**
 * @file
 * Single-level hierarchy implementation.
 */

#include "single_level.hh"

namespace tlc {

SingleLevelHierarchy::SingleLevelHierarchy(const CacheParams &l1_params,
                                           std::uint64_t seed)
    : icache_(l1_params, seed), dcache_(l1_params, seed + 1)
{
}

AccessOutcome
SingleLevelHierarchy::accessClassified(const TraceRecord &rec)
{
    bool is_instr = rec.type == RefType::Instr;
    bool is_store = rec.type == RefType::Store;
    Cache &c = is_instr ? icache_ : dcache_;

    if (is_instr)
        ++stats_.instrRefs;
    else
        ++stats_.dataRefs;

    if (c.lookupAndTouch(rec.addr, is_store))
        return AccessOutcome::L1Hit;

    if (is_instr)
        ++stats_.l1iMisses;
    else
        ++stats_.l1dMisses;
    ++stats_.l2Misses; // off-chip access (no L2 level exists)

    Cache::Victim victim = c.fill(rec.addr, is_store);
    if (victim.valid && victim.dirty)
        ++stats_.offchipWritebacks;
    return AccessOutcome::OffChip;
}

unsigned
SingleLevelHierarchy::invalidateLineAll(std::uint64_t line_addr)
{
    unsigned n = 0;
    n += icache_.invalidateLine(line_addr);
    n += dcache_.invalidateLine(line_addr);
    return n;
}

} // namespace tlc
