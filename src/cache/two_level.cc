/**
 * @file
 * Two-level hierarchy implementation.
 */

#include "two_level.hh"

#include "util/logging.hh"

namespace tlc {

const char *
twoLevelPolicyName(TwoLevelPolicy p)
{
    switch (p) {
      case TwoLevelPolicy::Inclusive:
        return "inclusive";
      case TwoLevelPolicy::StrictInclusive:
        return "strict-inclusive";
      case TwoLevelPolicy::Exclusive:
        return "exclusive";
    }
    return "?";
}

TwoLevelHierarchy::TwoLevelHierarchy(const CacheParams &l1_params,
                                     const CacheParams &l2_params,
                                     TwoLevelPolicy policy,
                                     std::uint64_t seed)
    : icache_(l1_params, seed), dcache_(l1_params, seed + 1),
      l2_(l2_params, seed + 2), policy_(policy)
{
    if (l2_params.lineBytes != l1_params.lineBytes)
        fatal("L1 and L2 line sizes must match (%u vs %u)",
              l1_params.lineBytes, l2_params.lineBytes);
}

AccessOutcome
TwoLevelHierarchy::accessClassified(const TraceRecord &rec)
{
    bool is_instr = rec.type == RefType::Instr;
    bool is_store = rec.type == RefType::Store;
    Cache &l1 = is_instr ? icache_ : dcache_;

    if (is_instr)
        ++stats_.instrRefs;
    else
        ++stats_.dataRefs;

    if (l1.lookupAndTouch(rec.addr, is_store))
        return AccessOutcome::L1Hit;

    if (is_instr)
        ++stats_.l1iMisses;
    else
        ++stats_.l1dMisses;

    if (policy_ == TwoLevelPolicy::Exclusive)
        return accessExclusive(l1, rec.addr, is_store);
    return accessInclusive(l1, rec.addr, is_store);
}

AccessOutcome
TwoLevelHierarchy::accessInclusive(Cache &l1, std::uint64_t addr,
                                   bool is_store)
{
    // Refill L1; the victim's data is written back into L2 if its
    // line is still there (address mapping unchanged, paper Fig.
    // 21-b discussion).
    Cache::Victim l1_victim = l1.fill(addr, is_store);
    if (l1_victim.valid && l1_victim.dirty) {
        std::uint64_t victim_byte_addr = l1_victim.lineAddr
            << l1.lineShift();
        if (l2_.contains(victim_byte_addr))
            l2_.setDirty(victim_byte_addr);
        else
            ++stats_.offchipWritebacks; // write-back bypasses L2
    }

    if (l2_.lookupAndTouch(addr)) {
        ++stats_.l2Hits;
        return AccessOutcome::L2Hit;
    }
    ++stats_.l2Misses;
    Cache::Victim l2_victim = l2_.fill(addr);
    if (l2_victim.valid && l2_victim.dirty)
        ++stats_.offchipWritebacks;
    if (policy_ == TwoLevelPolicy::StrictInclusive && l2_victim.valid) {
        // Maintain inclusion: a line leaving L2 may not stay in L1.
        icache_.invalidateLine(l2_victim.lineAddr);
        dcache_.invalidateLine(l2_victim.lineAddr);
    }
    return AccessOutcome::OffChip;
}

AccessOutcome
TwoLevelHierarchy::accessExclusive(Cache &l1, std::uint64_t addr,
                                   bool is_store)
{
    // Probe L2 first so we know whether the promoted line is there;
    // the line is NOT removed from L2 on a hit — it is displaced
    // only if the L1 victim lands on it (the swap).
    bool l2_hit = l2_.lookupAndTouch(addr);
    if (l2_hit)
        ++stats_.l2Hits;
    else
        ++stats_.l2Misses; // refill comes straight from off-chip

    Cache::Victim l1_victim = l1.fill(addr, is_store);
    if (l1_victim.valid) {
        bool swapped = false;
        Cache::Victim l2_victim = l2_.insertLinePreferring(
            l1_victim.lineAddr, l1_victim.dirty, l2_.lineAddrOf(addr),
            l2_hit, &swapped);
        if (swapped)
            ++stats_.swaps;
        if (l2_victim.valid && l2_victim.dirty)
            ++stats_.offchipWritebacks;
    }
    return l2_hit ? AccessOutcome::L2Hit : AccessOutcome::OffChip;
}

unsigned
TwoLevelHierarchy::invalidateLineAll(std::uint64_t line_addr)
{
    unsigned n = 0;
    n += icache_.invalidateLine(line_addr);
    n += dcache_.invalidateLine(line_addr);
    n += l2_.invalidateLine(line_addr);
    return n;
}

} // namespace tlc
