/**
 * @file
 * Stream-buffer implementation.
 */

#include "stream_buffer.hh"

#include "util/logging.hh"

namespace tlc {

StreamBuffer::StreamBuffer(unsigned depth)
    : depth_(depth)
{
    tlc_assert(depth >= 1, "stream buffer needs depth >= 1");
}

bool
StreamBuffer::headMatches(std::uint64_t line_addr) const
{
    return valid_ && head_ == line_addr;
}

void
StreamBuffer::advance()
{
    tlc_assert(valid_, "advance() on an idle stream buffer");
    ++head_;
}

void
StreamBuffer::reallocate(std::uint64_t line_addr)
{
    // The missing line itself goes to the cache; the buffer starts
    // prefetching at the next sequential line.
    head_ = line_addr + 1;
    valid_ = true;
}

StreamBufferHierarchy::StreamBufferHierarchy(const CacheParams &l1_params,
                                             unsigned num_buffers,
                                             unsigned depth,
                                             std::uint64_t seed)
    : icache_(l1_params, seed), dcache_(l1_params, seed + 1)
{
    tlc_assert(num_buffers >= 1, "need at least one stream buffer");
    buffers_.reserve(num_buffers);
    for (unsigned i = 0; i < num_buffers; ++i)
        buffers_.emplace_back(depth);
}

StreamBuffer *
StreamBufferHierarchy::findHeadHit(std::uint64_t line_addr)
{
    for (auto &b : buffers_) {
        if (b.headMatches(line_addr))
            return &b;
    }
    return nullptr;
}

StreamBuffer &
StreamBufferHierarchy::lruBuffer()
{
    StreamBuffer *victim = &buffers_.front();
    for (auto &b : buffers_) {
        if (!b.valid())
            return b;
        if (b.lastUse() < victim->lastUse())
            victim = &b;
    }
    return *victim;
}

AccessOutcome
StreamBufferHierarchy::accessClassified(const TraceRecord &rec)
{
    bool is_instr = rec.type == RefType::Instr;
    bool is_store = rec.type == RefType::Store;
    Cache &l1 = is_instr ? icache_ : dcache_;

    if (is_instr)
        ++stats_.instrRefs;
    else
        ++stats_.dataRefs;

    if (l1.lookupAndTouch(rec.addr, is_store))
        return AccessOutcome::L1Hit;

    if (is_instr)
        ++stats_.l1iMisses;
    else
        ++stats_.l1dMisses;

    std::uint64_t line = l1.lineAddrOf(rec.addr);
    Cache::Victim victim = l1.fill(rec.addr, is_store);
    if (victim.valid && victim.dirty)
        ++stats_.offchipWritebacks;

    if (StreamBuffer *b = findHeadHit(line)) {
        ++stats_.l2Hits; // serviced from the buffer, on-chip
        b->advance();
        b->setLastUse(++tick_);
        return AccessOutcome::L2Hit;
    }

    ++stats_.l2Misses;
    StreamBuffer &b = lruBuffer();
    b.reallocate(line);
    b.setLastUse(++tick_);
    return AccessOutcome::OffChip;
}

unsigned
StreamBufferHierarchy::invalidateLineAll(std::uint64_t line_addr)
{
    unsigned n = 0;
    n += icache_.invalidateLine(line_addr);
    n += dcache_.invalidateLine(line_addr);
    return n;
}

} // namespace tlc
