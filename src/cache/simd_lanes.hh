/**
 * @file
 * Data-oriented lane state for the single-pass batch engine, plus the
 * per-backend kernel dispatch that runs it.
 *
 * SimGroup (cache/sim_group.hh) owns the lane *grouping* decisions;
 * this header owns the lane *layout* and the hot loops. The state is
 * arranged structure-of-arrays so the kernels can vectorize:
 *
 *  - SharedL1Group: every lane sharing one direct-mapped L1 geometry
 *    — plain-inclusive two-level lanes AND L1-only lanes — walks the
 *    trace through ONE simulated L1. L1-only members are bit-identical
 *    to each other (a direct-mapped cache has no replacement state),
 *    so they share a single stats block. Two-level members differ only
 *    below the L1, so the kernel records each L1 miss once (address,
 *    victim address, victim-dirty) in a miss queue and replays the
 *    queue per member L2, sub-major: each L2's tag state stays hot
 *    across a whole block of misses instead of being re-fetched per
 *    record, and the replay loop is where the vectorized L2 tag
 *    compare runs. Replaying in record order per sub keeps every
 *    member's operation (and RNG draw) sequence identical to a solo
 *    run — subs are independent, so inter-sub order is unobservable.
 *
 *  - StrictLaneBlock: strict-inclusive lanes back-invalidate their L1
 *    on L2 eviction, so each needs a *private* L1 — but lanes with the
 *    same L1 geometry still probe the same (set, I/D) slot for every
 *    record. The block interleaves up to kMaxBlockLanes lanes' L1 tag
 *    words per slot (entries[slot * width + lane]), and one vector
 *    probe answers "which lanes missed?" as a bitmask; only the
 *    missing lanes fall into the scalar per-lane L2 path.
 *
 *  - FlatCache: the scalar-replica of Cache used for member L2s, as
 *    before, now with precomputed LRU/FIFO FSM transition tables
 *    (permutation-coded recency state, one table lookup per touch or
 *    fill instead of a stamp array scan) for 2..kLruFsmMaxWays ways.
 *
 * The kernels themselves are compiled once per SIMD backend in
 * dedicated translation units (simd_lanes_{scalar,avx2,neon}.cc, each
 * including simd_lanes_body.inc inside its own namespace) so a binary
 * carries all of them and laneKernelsFor() dispatches at runtime on
 * util/simd.hh's activeSimdBackend(). The equivalence contract is
 * unchanged from sim_group.hh and backend-independent: every lane's
 * HierarchyStats must be byte-identical to a solo Hierarchy run,
 * including RNG victim draw sequences (tests/test_batch_engine.cc
 * enforces this differentially for every backend the host supports).
 */

#ifndef TLC_CACHE_SIMD_LANES_HH
#define TLC_CACHE_SIMD_LANES_HH

#include <cstdint>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define TLC_TAG_ALLOC_HAVE_MMAP 1
#endif

#include "cache/hierarchy.hh"
#include "cache/params.hh"
#include "trace/record.hh"
#include "util/random.hh"
#include "util/simd.hh"

namespace tlc {
namespace lanes {

/** Packed tag-word flag bits: entry = (line << 2) | flags. */
constexpr std::uint64_t kValid = 1;
constexpr std::uint64_t kDirty = 2;

/**
 * Allocator for packed tag arrays, tuned two ways:
 *
 *  - Alignment: a 4-way set's row is 32 bytes, so a merely
 *    16-byte-aligned allocation would make half the rows straddle
 *    two host cache lines and cost the probe loop a second load.
 *    Every path here returns at least 64-byte-aligned memory.
 *
 *  - Lazy zeroing: every fresh allocation arrives already zero (all
 *    tag words invalid), and the default-construct hook is a no-op,
 *    so sizing a big L2's tag array (megabytes for the large design
 *    points) does not touch its pages up front — large arrays come
 *    straight from anonymous mmap and fault in zero-filled only for
 *    the sets the trace actually reaches. Sizing whole sweep grids
 *    was measurably memset-bound before this.
 *
 * The zero-on-arrival contract holds only for FRESH allocations;
 * growing a vector inside existing capacity would expose stale
 * bytes. The tag-array owners below only ever size their vectors
 * once from empty (StrictLaneBlock's re-stride uses assign(), an
 * explicit value-fill), which is exactly the pattern this supports.
 */
template <typename T>
struct TagAllocator
{
    using value_type = T;
    static constexpr std::size_t kAlign = 64;
    /** Allocations at least this big come from anonymous mmap. */
    static constexpr std::size_t kMmapBytes = std::size_t{1} << 20;
    /** mmap allocations are 2 MiB-aligned and MADV_HUGEPAGE'd: a
     *  random-probed multi-megabyte tag array on 4 KiB pages is
     *  TLB-miss-bound, and faulting it in page by page costs more
     *  than the memset this allocator avoids. */
    static constexpr std::size_t kHugeBytes = std::size_t{2} << 20;

    TagAllocator() = default;
    template <typename U>
    TagAllocator(const TagAllocator<U> &) // NOLINT(runtime/explicit)
    {
    }

    T *allocate(std::size_t n)
    {
        std::size_t bytes = n * sizeof(T);
#if defined(TLC_TAG_ALLOC_HAVE_MMAP)
        if (bytes >= kMmapBytes) {
            // Over-map by one huge page, then trim to a 2 MiB-aligned
            // block of the rounded length — deallocate() recomputes
            // the same rounded length from n.
            std::size_t len = roundToHuge(bytes);
            void *raw =
                ::mmap(nullptr, len + kHugeBytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
            if (raw == MAP_FAILED)
                throw std::bad_alloc();
            std::uintptr_t base = reinterpret_cast<std::uintptr_t>(raw);
            std::uintptr_t aligned =
                (base + kHugeBytes - 1) & ~(kHugeBytes - 1);
            if (aligned != base)
                ::munmap(raw, aligned - base);
            std::uintptr_t end = base + len + kHugeBytes;
            if (end != aligned + len)
                ::munmap(reinterpret_cast<void *>(aligned + len),
                         end - (aligned + len));
#if defined(MADV_HUGEPAGE)
            ::madvise(reinterpret_cast<void *>(aligned), len,
                      MADV_HUGEPAGE);
#endif
            return reinterpret_cast<T *>(aligned);
        }
#endif
        void *p = ::operator new(bytes, std::align_val_t{kAlign});
        std::memset(p, 0, bytes);
        return static_cast<T *>(p);
    }
    void deallocate(T *p, std::size_t n)
    {
        std::size_t bytes = n * sizeof(T);
#if defined(TLC_TAG_ALLOC_HAVE_MMAP)
        if (bytes >= kMmapBytes) {
            ::munmap(p, roundToHuge(bytes));
            return;
        }
#endif
        ::operator delete(p, bytes, std::align_val_t{kAlign});
    }

    static constexpr std::size_t roundToHuge(std::size_t bytes)
    {
        return (bytes + kHugeBytes - 1) & ~(kHugeBytes - 1);
    }

    /** Default construction is a no-op: fresh memory is already
     *  zero, and touching it would defeat the lazy mmap path. */
    template <typename U>
    void construct(U *) noexcept
    {
    }
    template <typename U, typename... Args>
    void construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }

    bool operator==(const TagAllocator &) const { return true; }
};

/** Cache-line-aligned storage for packed tag words. */
using TagVector = std::vector<std::uint64_t, TagAllocator<std::uint64_t>>;

/** Widest set-associativity covered by the LRU/FIFO FSM tables. */
constexpr std::uint32_t kLruFsmMaxWays = 4;

/**
 * Precomputed recency-permutation FSM for one associativity, in the
 * style of cavatools' lru_fsm_Nway tables. A state encodes the ways
 * of one set ordered most-recent-first; next[state * ways + way]
 * moves @p way to the front, victim[state] is the back of the
 * ordering. LRU transitions on every touch and fill; FIFO transitions
 * on fill only — the same tables serve both, callers choose when to
 * step. Equivalent to the stamp-array argmin it replaces: the victim
 * is only ever consulted once every way holds a valid line, by which
 * point every way has been filled at least once, so the permutation
 * is fully determined by the same touch/fill history the stamps
 * recorded (stamps are unique and monotone, making argmin exactly
 * the least-recently-moved way).
 */
struct LruFsm
{
    std::uint32_t ways = 0;
    std::uint32_t states = 0;          ///< ways!
    std::vector<std::uint8_t> next;    ///< [state * ways + way]
    std::vector<std::uint8_t> victim;  ///< [state]
};

/**
 * The FSM table for @p ways, built once per process; nullptr when
 * @p ways is 1 (no replacement state to track) or beyond
 * kLruFsmMaxWays (stamp arrays remain the fallback).
 */
const LruFsm *lruFsmForWays(std::uint32_t ways);

/**
 * Flat replica of Cache used for member L2s: same victim-selection
 * order (invalid scan, then policy), same Pcg32 stream, same LRU/FIFO
 * ordering — so the stats it produces match a real Cache draw for
 * draw. Entries pack (line << 2) | flags, [set][way] row-major.
 * Replacement state is, in preference order: nothing under Random
 * (unobservable), the FSM state byte per set when the associativity
 * has a table, else the stamp array.
 *
 * The methods here are the scalar reference implementation; the
 * per-backend kernel TUs re-implement the probe loops locally over
 * the same public state so each backend's vector width applies
 * (header-inline vector code would ODR-merge across TUs compiled for
 * different ISAs — see util/simd.hh).
 */
struct FlatCache
{
    std::uint32_t lineShift = 0;
    std::uint32_t ways = 1;
    std::uint32_t setMask = 0;
    ReplPolicy repl = ReplPolicy::Random;
    const LruFsm *fsm = nullptr;        ///< non-null: fsmState in use
    TagVector entries;                  ///< (line << 2) | flags
    std::vector<std::uint64_t> stamps;  ///< LRU/FIFO fallback ordering
    std::vector<std::uint8_t> fsmState; ///< per-set recency permutation
    std::uint64_t tick = 0;
    Pcg32 rng;

    FlatCache(const CacheParams &p, std::uint64_t seed);

    struct Victim
    {
        bool valid = false;
        std::uint32_t lineAddr = 0;
        bool dirty = false;
    };

    int findWay(std::uint32_t set, std::uint32_t line) const;
    bool lookupAndTouch(std::uint32_t addr);
    /** contains() + setDirty() fused: dirty the line if resident. */
    bool touchDirtyIfResident(std::uint32_t addr);
    std::uint32_t chooseVictimWay(std::uint32_t set);
    Victim fill(std::uint32_t addr);
};

/**
 * One L1 miss recorded by a SharedL1Group walk, replayed against each
 * member L2 in record order.
 */
struct L1Miss
{
    /** Line numbers, not byte addresses: flat grouping guarantees L1
     *  and every member L2 share one line size (sim_group.cc), so
     *  the walk shifts once and the replay never shifts at all. */
    std::uint32_t line = 0;       ///< the missing reference's line
    std::uint32_t victimLine = 0; ///< evicted L1 line
    std::uint32_t victimDirty = 0;
};

/**
 * All lanes sharing one direct-mapped L1 geometry whose L2 side (if
 * any) never reaches back into the L1: plain-inclusive two-level
 * lanes as subs, L1-only lanes as a shared member count. The L1 tag
 * state is split-interleaved ([set*2] = I, [set*2+1] = D) exactly as
 * the solo hierarchies see it.
 */
struct SharedL1Group
{
    CacheParams l1Params; ///< grouping key (sizeBytes, lineBytes)
    std::uint32_t lineShift = 0;
    std::uint32_t setMask = 0;
    TagVector l1Entries;

    /** One plain-inclusive two-level member: a private L2 + stats. */
    struct Sub
    {
        FlatCache l2;
        HierarchyStats stats;

        Sub(const CacheParams &l2_params, std::uint64_t seed)
            : l2(l2_params, seed)
        {
        }
    };
    std::vector<Sub> subs;

    /**
     * L1-only members. Same geometry + no replacement state means
     * they are bit-identical, so one stats block serves all of them
     * (l2Misses counts the off-chip fetches, as SingleLevelHierarchy
     * reports them).
     */
    std::size_t singleMembers = 0;
    HierarchyStats singleStats;

    /** Per-block L1 miss queue, reused across blocks. */
    std::vector<L1Miss> missQueue;

    explicit SharedL1Group(const CacheParams &p);
};

/**
 * Up to kMaxBlockLanes strict-inclusive lanes sharing one
 * direct-mapped L1 geometry and line size, their L1 tag words
 * interleaved per (set, I/D) slot: l1Entries[slot * width() + lane].
 * One vector probe over a slot's row yields the miss bitmask for all
 * lanes at once; L2 state and stats stay per lane.
 */
struct StrictLaneBlock
{
    /** Row width cap — miss masks are single 64-bit words. */
    static constexpr std::uint32_t kMaxBlockLanes = 64;

    CacheParams l1Params; ///< grouping key (sizeBytes, lineBytes)
    std::uint32_t lineShift = 0;
    std::uint32_t setMask = 0;
    TagVector l1Entries;                  ///< [slot * width() + lane]
    std::vector<FlatCache> l2s;           ///< per lane
    std::vector<HierarchyStats> stats;    ///< per lane

    explicit StrictLaneBlock(const CacheParams &p);

    std::uint32_t width() const
    {
        return static_cast<std::uint32_t>(l2s.size());
    }

    /**
     * Append a lane. Must happen before any records are driven: the
     * interleaved layout is re-strided on growth, which is only
     * equivalent while every tag word is still zero (SimGroup
     * enforces this).
     */
    std::uint32_t addLane(const CacheParams &l2_params,
                          std::uint64_t seed);
};

/**
 * The kernel entry points one backend TU exports. runShared applies
 * @p n records to an ARRAY of groups — the record stream is decoded
 * once per fused bundle of groups instead of once per group, then
 * each group's miss queue is replayed in turn — and runStrict applies
 * them to one interleaved block; both accumulate stats exactly as the
 * solo hierarchies would.
 */
struct LaneKernels
{
    SimdBackend backend;
    void (*runShared)(SharedL1Group *, std::size_t, const TraceRecord *,
                      std::size_t);
    void (*runStrict)(StrictLaneBlock &, const TraceRecord *, std::size_t);
};

/**
 * The kernel table for @p backend. Asks for a backend that is not
 * compiled into this binary are a caller bug (activeSimdBackend()
 * never returns one) and fatal.
 */
const LaneKernels &laneKernelsFor(SimdBackend backend);

} // namespace lanes
} // namespace tlc

#endif // TLC_CACHE_SIMD_LANES_HH
