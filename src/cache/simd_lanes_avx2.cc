/**
 * @file
 * AVX2 lane kernels. This TU is the only one compiled with -mavx2
 * (see src/cache/CMakeLists.txt), which makes util/simd.hh's wrapper
 * intrinsics resolve to the 4-x-u64 AVX2 variant here and nowhere
 * else; callers reach these kernels only through laneKernelsFor(),
 * which never hands them out unless the CPU reports AVX2.
 */

#include "cache/simd_lanes.hh"

#if defined(TLC_SIMD_HAVE_AVX2)

#include "util/logging.hh"

namespace tlc {
namespace lanes {
namespace avx2_kernels {

#include "cache/simd_lanes_body.inc"

} // namespace avx2_kernels
} // namespace lanes
} // namespace tlc

#endif // TLC_SIMD_HAVE_AVX2
