/**
 * @file
 * Single-level hierarchy: split instruction/data L1 caches, misses
 * serviced off-chip (Section 3 of the paper).
 */

#ifndef TLC_CACHE_SINGLE_LEVEL_HH
#define TLC_CACHE_SINGLE_LEVEL_HH

#include "cache/cache.hh"
#include "cache/hierarchy.hh"

namespace tlc {

/**
 * Split L1-only system. Writes are write-allocate/fetch-on-write
 * and counted like reads (paper Section 2.2).
 */
class SingleLevelHierarchy : public Hierarchy
{
  public:
    /**
     * @param l1_params geometry of EACH of the I and D caches
     * @param seed      replacement RNG seed
     */
    explicit SingleLevelHierarchy(const CacheParams &l1_params,
                                  std::uint64_t seed = 1);

    AccessOutcome accessClassified(const TraceRecord &rec) override;
    unsigned invalidateLineAll(std::uint64_t line_addr) override;

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }

  private:
    Cache icache_;
    Cache dcache_;
};

} // namespace tlc

#endif // TLC_CACHE_SINGLE_LEVEL_HH
