/**
 * @file
 * Stream buffers (Jouppi, ISCA 1990 — the paper's reference [4]
 * proposes both victim caches and prefetch stream buffers).
 *
 * A stream buffer is a small FIFO of sequentially-prefetched lines
 * attached to a direct-mapped cache: a miss that hits the head of a
 * buffer is serviced on-chip and the buffer prefetches the next
 * sequential line; a miss that hits no buffer reallocates the
 * least-recently-used buffer to the new stream. Stream buffers
 * recover sequential (compulsory/capacity) misses — complementary
 * to victim caches and exclusive L2s, which recover conflict misses
 * — so this module completes the reference-[4] mechanism set next
 * to VictimCacheHierarchy.
 *
 * Functional model (miss-rate semantics, as elsewhere in this
 * library): buffers are considered filled as soon as allocated;
 * only head hits count (Jouppi's simple, non-quasi-sequential
 * variant).
 */

#ifndef TLC_CACHE_STREAM_BUFFER_HH
#define TLC_CACHE_STREAM_BUFFER_HH

#include <vector>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"

namespace tlc {

/** One sequential prefetch FIFO. */
class StreamBuffer
{
  public:
    explicit StreamBuffer(unsigned depth);

    /** Is @p line_addr at the head of this buffer? */
    bool headMatches(std::uint64_t line_addr) const;

    /** Consume the head and prefetch the next sequential line. */
    void advance();

    /** Restart the buffer at the stream beginning at @p line_addr. */
    void reallocate(std::uint64_t line_addr);

    bool valid() const { return valid_; }
    std::uint64_t headLine() const { return head_; }
    unsigned depth() const { return depth_; }
    std::uint64_t lastUse() const { return lastUse_; }
    void setLastUse(std::uint64_t t) { lastUse_ = t; }

  private:
    unsigned depth_;
    std::uint64_t head_ = 0; ///< line address at the FIFO head
    bool valid_ = false;
    std::uint64_t lastUse_ = 0;
};

/**
 * Split direct-mapped L1s backed by a set of shared stream buffers.
 * l2Hits counts stream-buffer head hits (serviced on-chip),
 * l2Misses counts true off-chip fetches.
 */
class StreamBufferHierarchy : public Hierarchy
{
  public:
    /**
     * @param l1_params   geometry of EACH of the I and D caches
     * @param num_buffers stream buffers shared by I and D misses
     * @param depth       lines per buffer
     * @param seed        replacement RNG seed
     */
    StreamBufferHierarchy(const CacheParams &l1_params,
                          unsigned num_buffers, unsigned depth,
                          std::uint64_t seed = 1);

    AccessOutcome accessClassified(const TraceRecord &rec) override;
    unsigned invalidateLineAll(std::uint64_t line_addr) override;

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }
    const std::vector<StreamBuffer> &buffers() const { return buffers_; }

    /** Stream-buffer head hits (same counter as stats().l2Hits). */
    std::uint64_t bufferHits() const { return stats_.l2Hits; }

  private:
    StreamBuffer *findHeadHit(std::uint64_t line_addr);
    StreamBuffer &lruBuffer();

    Cache icache_;
    Cache dcache_;
    std::vector<StreamBuffer> buffers_;
    std::uint64_t tick_ = 0;
};

} // namespace tlc

#endif // TLC_CACHE_STREAM_BUFFER_HH
