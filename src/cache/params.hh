/**
 * @file
 * Cache configuration parameters.
 */

#ifndef TLC_CACHE_PARAMS_HH
#define TLC_CACHE_PARAMS_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace tlc {

/** Replacement policy for set-associative caches. */
enum class ReplPolicy {
    Random, ///< pseudo-random (the paper's L2 policy)
    LRU,    ///< least recently used
    FIFO    ///< first in, first out
};

/** Human-readable policy name. */
const char *replPolicyName(ReplPolicy p);

/**
 * Geometry and policy of a single cache array.
 *
 * The paper's design space uses 16-byte lines throughout, split
 * direct-mapped L1s and direct-mapped or 4-way L2s with
 * pseudo-random replacement; the model itself accepts any
 * power-of-two geometry (assoc == 0 requests full associativity).
 */
struct CacheParams
{
    std::uint64_t sizeBytes = 8 * 1024;
    std::uint32_t lineBytes = 16;
    std::uint32_t assoc = 1;             ///< ways; 0 => fully associative
    ReplPolicy repl = ReplPolicy::Random;

    /** Number of lines in the cache. */
    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    /** Number of sets after resolving assoc==0. */
    std::uint64_t numSets() const
    {
        std::uint64_t ways = (assoc == 0) ? numLines() : assoc;
        return numLines() / ways;
    }
    /** Resolved ways per set. */
    std::uint32_t ways() const
    {
        return assoc == 0 ? static_cast<std::uint32_t>(numLines()) : assoc;
    }

    /**
     * Check invariants and return a descriptive InvalidConfig Status
     * on violations (non-power-of-two sizes, line larger than the
     * cache, associativity that does not divide the lines, ...).
     * This is the fail-soft entry point used by design-space sweeps
     * to skip a bad point instead of aborting the run.
     */
    Status check() const;

    /** Validate invariants; fatal() on violations (CLI-style). */
    void validate() const;

    std::string toString() const;
};

} // namespace tlc

#endif // TLC_CACHE_PARAMS_HH
