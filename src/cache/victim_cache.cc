/**
 * @file
 * Victim cache implementation.
 */

#include "victim_cache.hh"

#include "util/logging.hh"

namespace tlc {

namespace {

CacheParams
victimParams(const CacheParams &l1, std::uint32_t victim_lines)
{
    tlc_assert(victim_lines >= 1, "victim buffer needs >= 1 line");
    CacheParams p;
    p.sizeBytes = static_cast<std::uint64_t>(victim_lines) * l1.lineBytes;
    p.lineBytes = l1.lineBytes;
    p.assoc = 0; // fully associative
    p.repl = ReplPolicy::LRU;
    return p;
}

} // namespace

VictimCacheHierarchy::VictimCacheHierarchy(const CacheParams &l1_params,
                                           std::uint32_t victim_lines,
                                           std::uint64_t seed)
    : icache_(l1_params, seed), dcache_(l1_params, seed + 1),
      victim_(victimParams(l1_params, victim_lines), seed + 2)
{
}

AccessOutcome
VictimCacheHierarchy::accessClassified(const TraceRecord &rec)
{
    bool is_instr = rec.type == RefType::Instr;
    bool is_store = rec.type == RefType::Store;
    Cache &l1 = is_instr ? icache_ : dcache_;

    if (is_instr)
        ++stats_.instrRefs;
    else
        ++stats_.dataRefs;

    if (l1.lookupAndTouch(rec.addr, is_store))
        return AccessOutcome::L1Hit;

    if (is_instr)
        ++stats_.l1iMisses;
    else
        ++stats_.l1dMisses;

    bool vhit = victim_.contains(rec.addr);
    if (vhit) {
        ++stats_.l2Hits;
        ++stats_.swaps;
        victim_.invalidate(rec.addr);
    } else {
        ++stats_.l2Misses;
    }

    Cache::Victim l1_victim = l1.fill(rec.addr, is_store);
    if (l1_victim.valid) {
        Cache::Victim displaced = victim_.insertLinePreferring(
            l1_victim.lineAddr, l1_victim.dirty, 0, false);
        if (displaced.valid && displaced.dirty)
            ++stats_.offchipWritebacks;
    }
    return vhit ? AccessOutcome::L2Hit : AccessOutcome::OffChip;
}

unsigned
VictimCacheHierarchy::invalidateLineAll(std::uint64_t line_addr)
{
    unsigned n = 0;
    n += icache_.invalidateLine(line_addr);
    n += dcache_.invalidateLine(line_addr);
    n += victim_.invalidateLine(line_addr);
    return n;
}

} // namespace tlc
