/**
 * @file
 * A single cache array: tag store plus replacement state.
 *
 * This is the building block used by the hierarchy models. It is a
 * functional (miss-rate) model: it tracks which lines are resident
 * and which are dirty, but carries no data and no timing — timing is
 * layered on by src/timing and src/core.
 */

#ifndef TLC_CACHE_CACHE_HH
#define TLC_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/params.hh"
#include "util/random.hh"

namespace tlc {

/**
 * A physically-addressed, write-back cache array with LRU, FIFO or
 * pseudo-random replacement.
 *
 * Addresses are byte addresses; a "line address" is addr >> lineShift.
 * All mutating operations are explicit (lookupAndTouch vs fill vs
 * insertPreferring) so hierarchy policies — in particular two-level
 * exclusive caching — can express exactly the movement they need.
 */
class Cache
{
  public:
    /** Result of an eviction: the displaced line, if any. */
    struct Victim
    {
        bool valid = false;       ///< a line was displaced
        std::uint64_t lineAddr = 0; ///< its line address
        bool dirty = false;       ///< it held unwritten-back data
    };

    explicit Cache(const CacheParams &params,
                   std::uint64_t repl_seed = 0x7ef1);

    const CacheParams &params() const { return params_; }
    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t ways() const { return ways_; }
    std::uint32_t lineShift() const { return lineShift_; }

    /** Line address of a byte address. */
    std::uint64_t lineAddrOf(std::uint64_t addr) const
    {
        return addr >> lineShift_;
    }
    /** Set index of a line address. */
    std::uint64_t setOf(std::uint64_t line_addr) const
    {
        return line_addr & setMask_;
    }

    /** Is the line holding @p addr resident? (no state change) */
    bool contains(std::uint64_t addr) const;

    /**
     * Probe for @p addr; on a hit, update replacement state (and the
     * dirty bit when @p is_store). Does NOT allocate on a miss.
     * @return true on hit.
     */
    bool lookupAndTouch(std::uint64_t addr, bool is_store = false);

    /**
     * Allocate the line of @p addr (which must not be resident),
     * displacing a line chosen by the replacement policy.
     * @return the displaced line, if any.
     */
    Victim fill(std::uint64_t addr, bool dirty = false);

    /**
     * Insert line @p line_addr, preferring to displace
     * @p preferred_line if (and only if) it is resident in the same
     * set — the "swap" step of two-level exclusive caching. When the
     * line is already resident this is a write-back update (dirty
     * accumulates, replacement state untouched) and nothing is
     * displaced.
     *
     * @param line_addr      line to insert (line address, not byte)
     * @param dirty          dirty state of the inserted line
     * @param preferred_line line whose slot to take when co-resident
     * @param use_preferred  whether a preferred victim is supplied
     * @param[out] swapped   set true when the preferred slot was used
     * @return the displaced line, if any.
     */
    Victim insertLinePreferring(std::uint64_t line_addr, bool dirty,
                                std::uint64_t preferred_line,
                                bool use_preferred, bool *swapped = nullptr);

    /** Remove the line of @p addr. @return true if it was resident. */
    bool invalidate(std::uint64_t addr);

    /** Remove a line by line address. @return true if resident. */
    bool invalidateLine(std::uint64_t line_addr);

    /** Mark the (resident) line of @p addr dirty. */
    void setDirty(std::uint64_t addr);

    /** Number of valid lines (O(capacity); for tests/invariants). */
    std::uint64_t residentLines() const;

    /** All resident line addresses (for tests/invariants). */
    std::vector<std::uint64_t> residentLineAddrs() const;

    /** Invalidate everything and reset replacement state. */
    void reset();

  private:
    struct Line
    {
        std::uint64_t tag = 0;   ///< full line address
        std::uint64_t stamp = 0; ///< LRU timestamp / FIFO sequence
        bool valid = false;
        bool dirty = false;
    };

    Line *setBase(std::uint64_t set)
    {
        return lines_.data() + set * ways_;
    }
    const Line *setBase(std::uint64_t set) const
    {
        return lines_.data() + set * ways_;
    }

    /** Find the resident way of @p line_addr in @p set, or -1. */
    int findWay(std::uint64_t set, std::uint64_t line_addr) const;

    /** Pick a victim way in @p set per the replacement policy. */
    std::uint32_t chooseVictimWay(std::uint64_t set);

    /** Install a line into a way, returning what it displaced. */
    Victim installAt(std::uint64_t set, std::uint32_t way,
                     std::uint64_t line_addr, bool dirty);

    CacheParams params_;
    std::uint64_t numSets_;
    std::uint32_t ways_;
    std::uint32_t lineShift_;
    std::uint64_t setMask_;
    std::vector<Line> lines_; ///< [set][way], row-major
    std::uint64_t tick_ = 0;  ///< LRU clock / FIFO sequence source
    Pcg32 rng_;
};

} // namespace tlc

#endif // TLC_CACHE_CACHE_HH
