/**
 * @file
 * Scalar lane kernels — the always-present reference backend.
 * TLC_SIMD_FORCE_SCALAR pins util/simd.hh's wrapper intrinsics to the
 * plain-C++ variant even when the build's base flags enable a vector
 * ISA, so TLC_SIMD=scalar genuinely runs scalar code.
 */

#define TLC_SIMD_FORCE_SCALAR 1

#include "cache/simd_lanes.hh"

#include "util/logging.hh"

namespace tlc {
namespace lanes {
namespace scalar_kernels {

#include "cache/simd_lanes_body.inc"

} // namespace scalar_kernels
} // namespace lanes
} // namespace tlc
