/**
 * @file
 * Cache parameter validation.
 */

#include "params.hh"

#include <sstream>

#include "util/bitutil.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace tlc {

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::Random:
        return "random";
      case ReplPolicy::LRU:
        return "lru";
      case ReplPolicy::FIFO:
        return "fifo";
    }
    return "?";
}

Status
CacheParams::check() const
{
    if (lineBytes < 4 || !isPowerOfTwo(lineBytes)) {
        return statusf(StatusCode::InvalidConfig,
                       "line size %u must be a power of two >= 4",
                       lineBytes);
    }
    if (sizeBytes < lineBytes || !isPowerOfTwo(sizeBytes)) {
        return statusf(StatusCode::InvalidConfig,
                       "cache size %llu must be a power of two >= line "
                       "size %u",
                       static_cast<unsigned long long>(sizeBytes),
                       lineBytes);
    }
    std::uint64_t lines = numLines();
    std::uint32_t w = ways();
    if (w == 0 || lines % w != 0) {
        return statusf(StatusCode::InvalidConfig,
                       "associativity %u does not divide %llu lines",
                       assoc, static_cast<unsigned long long>(lines));
    }
    if (!isPowerOfTwo(numSets())) {
        return statusf(StatusCode::InvalidConfig,
                       "number of sets must be a power of two (%s gives "
                       "%llu sets)",
                       toString().c_str(),
                       static_cast<unsigned long long>(numSets()));
    }
    return Status();
}

void
CacheParams::validate() const
{
    Status s = check();
    if (!s.ok())
        fatal("%s", s.message().c_str());
}

std::string
CacheParams::toString() const
{
    std::ostringstream os;
    os << formatSize(sizeBytes) << "/" << lineBytes << "B/";
    if (assoc == 0)
        os << "full";
    else
        os << assoc << "-way";
    os << "/" << replPolicyName(repl);
    return os.str();
}

} // namespace tlc
