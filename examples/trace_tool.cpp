/**
 * @file
 * Trace utility: generate synthetic benchmark traces to files,
 * inspect trace files, convert between the binary and text formats,
 * and run a quick cache simulation over any trace — the entry point
 * for users who capture their own traces (e.g. with a Pin or
 * Valgrind tool emitting this repository's formats).
 *
 * Usage:
 *   trace_tool generate --bench=gcc1 --refs=1000000 --out=gcc1.trc
 *   trace_tool info <file>
 *   trace_tool convert <in> <out> [--text]
 *   trace_tool simulate <file> [--l1=8192] [--l2=65536] [--assoc=4]
 *                       [--policy=exclusive]
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>

#include "cache/single_level.hh"
#include "cache/two_level.hh"
#include "trace/io.hh"
#include "trace/workload.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace tlc;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_tool generate --bench=NAME --refs=N "
                 "--out=FILE\n"
                 "       trace_tool info FILE\n"
                 "       trace_tool convert IN OUT [--text]\n"
                 "       trace_tool simulate FILE [--l1=BYTES] "
                 "[--l2=BYTES] [--assoc=N] [--policy=inclusive|"
                 "exclusive|strict]\n");
    return 2;
}

int
cmdGenerate(const ArgParser &args)
{
    Benchmark b = Workloads::byName(args.getString("bench", "gcc1"));
    std::uint64_t refs =
        static_cast<std::uint64_t>(args.getInt("refs", 1000000));
    std::string out = args.getString("out", "");
    if (out.empty())
        fatal("generate requires --out=FILE");
    TraceBuffer buf = Workloads::generate(b, refs);
    if (Status st = saveTraceFile(out, buf); !st)
        fatal("%s", st.toString().c_str());
    std::printf("wrote %llu refs (%llu instr, %llu data) to %s\n",
                static_cast<unsigned long long>(buf.totalRefs()),
                static_cast<unsigned long long>(buf.instrRefs()),
                static_cast<unsigned long long>(buf.dataRefs()),
                out.c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    TraceBuffer buf;
    if (Status st = loadTraceFile(path, buf); !st)
        fatal("%s", st.toString().c_str());
    std::printf("file          : %s\n", path.c_str());
    std::printf("total refs    : %llu\n",
                static_cast<unsigned long long>(buf.totalRefs()));
    std::printf("instruction   : %llu\n",
                static_cast<unsigned long long>(buf.instrRefs()));
    std::printf("loads         : %llu\n",
                static_cast<unsigned long long>(buf.loadRefs()));
    std::printf("stores        : %llu\n",
                static_cast<unsigned long long>(buf.storeRefs()));
    std::printf("data/instr    : %.3f\n",
                safeRatio(static_cast<double>(buf.dataRefs()),
                          static_cast<double>(buf.instrRefs())));
    // Footprint at 16-byte granularity.
    std::set<std::uint32_t> lines;
    for (const auto &r : buf)
        lines.insert(r.addr >> 4);
    std::printf("footprint     : %zu lines (%.1f KB at 16B lines)\n",
                lines.size(), lines.size() * 16.0 / 1024.0);
    return 0;
}

int
cmdConvert(const ArgParser &args)
{
    if (args.positional().size() < 3)
        return usage();
    const std::string &in = args.positional()[1];
    const std::string &out = args.positional()[2];
    TraceBuffer buf;
    if (Status st = loadTraceFile(in, buf); !st)
        fatal("%s", st.toString().c_str());
    if (args.getBool("text")) {
        std::ofstream os(out);
        if (!os)
            fatal("could not open '%s'", out.c_str());
        writeTextTrace(os, buf);
    } else if (Status st = saveTraceFile(out, buf); !st) {
        fatal("%s", st.toString().c_str());
    }
    std::printf("converted %llu refs: %s -> %s\n",
                static_cast<unsigned long long>(buf.totalRefs()),
                in.c_str(), out.c_str());
    return 0;
}

int
cmdSimulate(const ArgParser &args)
{
    if (args.positional().size() < 2)
        return usage();
    TraceBuffer buf;
    if (Status st = loadTraceFile(args.positional()[1], buf); !st)
        fatal("%s", st.toString().c_str());

    CacheParams l1;
    l1.sizeBytes = static_cast<std::uint64_t>(args.getInt("l1", 8192));
    l1.lineBytes = 16;
    l1.assoc = 1;

    std::uint64_t l2_bytes =
        static_cast<std::uint64_t>(args.getInt("l2", 65536));

    std::unique_ptr<Hierarchy> h;
    if (l2_bytes == 0) {
        h = std::make_unique<SingleLevelHierarchy>(l1);
    } else {
        CacheParams l2;
        l2.sizeBytes = l2_bytes;
        l2.lineBytes = 16;
        l2.assoc = static_cast<std::uint32_t>(args.getInt("assoc", 4));
        l2.repl = ReplPolicy::Random;
        std::string pol = args.getString("policy", "inclusive");
        TwoLevelPolicy policy;
        if (pol == "inclusive")
            policy = TwoLevelPolicy::Inclusive;
        else if (pol == "exclusive")
            policy = TwoLevelPolicy::Exclusive;
        else if (pol == "strict")
            policy = TwoLevelPolicy::StrictInclusive;
        else
            fatal("unknown policy '%s'", pol.c_str());
        h = std::make_unique<TwoLevelHierarchy>(l1, l2, policy);
    }
    h->simulate(buf, buf.size() / 10);
    const HierarchyStats &s = h->stats();
    std::printf("refs (measured) : %llu\n",
                static_cast<unsigned long long>(s.totalRefs()));
    std::printf("L1 miss rate    : %.4f (%llu I + %llu D misses)\n",
                s.l1MissRate(),
                static_cast<unsigned long long>(s.l1iMisses),
                static_cast<unsigned long long>(s.l1dMisses));
    std::printf("L2 hits/misses  : %llu / %llu (local miss %.4f)\n",
                static_cast<unsigned long long>(s.l2Hits),
                static_cast<unsigned long long>(s.l2Misses),
                s.l2LocalMissRate());
    std::printf("global missrate : %.4f\n", s.globalMissRate());
    if (s.swaps)
        std::printf("exclusive swaps : %llu\n",
                    static_cast<unsigned long long>(s.swaps));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    if (args.positional().empty())
        return usage();
    const std::string &cmd = args.positional()[0];
    if (cmd == "generate")
        return cmdGenerate(args);
    if (cmd == "info" && args.positional().size() >= 2)
        return cmdInfo(args.positional()[1]);
    if (cmd == "convert")
        return cmdConvert(args);
    if (cmd == "simulate")
        return cmdSimulate(args);
    return usage();
}
