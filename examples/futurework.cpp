/**
 * @file
 * Future-work demo (paper §10): drive the multicycle/non-blocking
 * pipeline model over one workload and sweep MSHR count and L1
 * latency, showing how the two conjectures interact.
 *
 * Usage: futurework [--bench=tomcatv] [--refs=1000000]
 *                   [--loaduse=0.4] [--quiet|--verbose]
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "cache/single_level.hh"
#include "cache/two_level.hh"
#include "pipeline/pipeline.hh"
#include "trace/workload.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace tlc;

namespace {

CacheParams
dm(std::uint64_t size)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = 1;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    Benchmark bench = Workloads::byName(args.getString("bench",
                                                       "tomcatv"));
    std::uint64_t refs =
        static_cast<std::uint64_t>(args.getInt("refs", 1000000));
    double loaduse = args.getDouble("loaduse", 0.4);

    std::printf("pipeline study on %s (%llu refs, load-use prob "
                "%.2f, 2ns clock)\n\n",
                Workloads::info(bench).name,
                static_cast<unsigned long long>(refs), loaduse);
    TraceBuffer trace = Workloads::generate(bench, refs);

    Table t({"system", "l1_cycles", "mshrs", "cpi",
             "ifetch_stall_pct", "load_stall_pct", "mshr_stall_pct"});
    for (unsigned l1_cycles : {1u, 2u, 3u}) {
        for (unsigned mshrs : {1u, 2u, 8u}) {
            PipelineParams p;
            p.cycleNs = 2.0;
            p.l1Cycles = l1_cycles;
            p.l2HitCycles = 5;
            p.offchipCycles = 26;
            p.mshrs = mshrs;
            p.loadUseStallProb = loaduse;

            TwoLevelHierarchy h(dm(8 * 1024),
                                CacheParams{64 * 1024, 16, 4,
                                            ReplPolicy::Random},
                                TwoLevelPolicy::Exclusive);
            PipelineSimulator sim(p);
            PipelineResult r = sim.run(h, trace, refs / 10);
            double cyc = static_cast<double>(r.cycles);
            t.beginRow();
            t.cell("8:64 exclusive");
            t.cell(l1_cycles);
            t.cell(mshrs);
            t.cell(r.cpi(), 3);
            t.cell(100.0 * static_cast<double>(r.ifetchStallCycles) /
                       cyc, 1);
            t.cell(100.0 *
                       static_cast<double>(r.loadUseStallCycles +
                                           r.l1AccessStallCycles) /
                       cyc, 1);
            t.cell(100.0 * static_cast<double>(r.mshrFullStallCycles) /
                       cyc, 1);
        }
    }
    t.printAscii(std::cout);
    std::printf("\nPaper Section 10's two effects: rows with "
                "l1_cycles>1 show the multicycle-L1 load-use cost; "
                "columns with more MSHRs show non-blocking loads "
                "hiding miss latency.\n");
    return 0;
}
