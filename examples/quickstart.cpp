/**
 * @file
 * Quickstart: build a two-level exclusive cache system, run a
 * synthetic gcc1 trace through it, and price it with the paper's
 * TPI / area / timing models.
 *
 * Usage: quickstart [--bench=gcc1] [--refs=1000000]
 *        [--quiet|--verbose]
 */

#include <cstdio>

#include "core/explorer.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    Benchmark bench = Workloads::byName(args.getString("bench", "gcc1"));
    std::uint64_t refs =
        static_cast<std::uint64_t>(args.getInt("refs", 1000000));

    // 1. A miss-rate evaluator generates (and caches) the synthetic
    //    benchmark trace.
    MissRateEvaluator evaluator(refs);

    // 2. The explorer fuses miss rates with the analytical timing
    //    and area models.
    Explorer explorer(evaluator);

    // 3. Price one configuration: 8KB split L1s + 128KB 4-way L2
    //    with the paper's two-level exclusive caching.
    SystemConfig cfg;
    cfg.l1Bytes = 8 * 1024;
    cfg.l2Bytes = 128 * 1024;
    cfg.assume.offchipNs = 50.0;
    cfg.assume.l2Assoc = 4;
    cfg.assume.policy = TwoLevelPolicy::Exclusive;

    DesignPoint p = explorer.evaluate(bench, cfg);

    std::printf("benchmark        : %s (%llu refs)\n",
                Workloads::info(bench).name,
                static_cast<unsigned long long>(refs));
    std::printf("configuration    : %s (%s)\n", cfg.label().c_str(),
                cfg.assume.toString().c_str());
    std::printf("chip area        : %.0f rbe\n", p.areaRbe);
    std::printf("L1 cycle time    : %.3f ns\n", p.l1Timing.cycleNs);
    std::printf("L2 cycle time    : %.3f ns raw, %u CPU cycles\n",
                p.l2Timing.cycleNs, p.tpi.l2CycleCpu);
    std::printf("L1 miss rate     : %.4f\n", p.miss.l1MissRate());
    std::printf("L2 local miss    : %.4f\n", p.miss.l2LocalMissRate());
    std::printf("exclusive swaps  : %llu\n",
                static_cast<unsigned long long>(p.miss.swaps));
    std::printf("TPI              : %.3f ns/instruction\n", p.tpi.tpi);

    // 4. Compare against the same area spent on a single-level
    //    system, the paper's core question.
    SystemConfig single;
    single.l1Bytes = 32 * 1024;
    single.l2Bytes = 0;
    single.assume = cfg.assume;
    DesignPoint s = explorer.evaluate(bench, single);
    std::printf("\nfor comparison, single-level %s: area %.0f rbe, "
                "TPI %.3f ns\n",
                single.label().c_str(), s.areaRbe, s.tpi.tpi);
    return 0;
}
