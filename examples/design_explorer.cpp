/**
 * @file
 * Design explorer: the paper's core use case as a tool. Given an
 * on-chip area budget (rbe) and a workload, report the best cache
 * configuration under each set of system assumptions — single vs
 * two-level, inclusive vs exclusive, 50 vs 200 ns off-chip.
 *
 * Usage:
 *   design_explorer [--budget=1000000] [--bench=gcc1]
 *                   [--offchip=50] [--refs=2000000] [--threads=N]
 *                   [--backend=exact|analytic|analytic-prune]
 *                   [--quiet|--verbose] [--profile] [--progress]
 *                   [--trace-out=FILE] [--manifest=FILE]
 *                   [--metrics-out=FILE]
 *                   [--result-store=FILE] [--resume]
 *                   [--isolate=process] [--shard-points=N]
 *                   [--shard-timeout=SECS] [--max-retries=N]
 *                   [--store-fsync]
 *   design_explorer --request=FILE [--stats-out=FILE]
 *
 * Backends (docs/analytic_model.md):
 *   --backend=exact           simulate every point (default)
 *   --backend=analytic        one reuse-distance profiling pass per
 *                             benchmark answers every point; exact
 *                             for the paper's design space, modeled
 *                             outside it
 *   --backend=analytic-prune  rank analytically, simulate only the
 *                             likely-envelope survivors exactly
 *
 * Persistence (docs/parallelism.md):
 *   --result-store=FILE  persistent sweep cache: points already in
 *                        FILE are served from disk, fresh ones are
 *                        appended, so a killed run continues where
 *                        it stopped
 *   --resume             require FILE to exist (guards against a
 *                        typo silently starting a cold run)
 *
 * Fault isolation (docs/robustness.md):
 *   --isolate=process  simulate each shard of the sweep in a forked
 *                      worker subprocess: a crashing or hanging
 *                      design point is retried, bisected and
 *                      quarantined instead of killing the run. The
 *                      remaining flags (--shard-points,
 *                      --shard-timeout, --max-retries, --store-fsync,
 *                      --inject-*) tune and drill the supervisor;
 *                      see supervisorOptionsFromArgs().
 *
 * Observability (docs/observability.md):
 *   --progress        live per-sweep progress lines on stderr (in
 *                     isolate mode, streamed as worker results
 *                     arrive, not just per resolved shard)
 *   --trace-out=FILE  chrome://tracing / Perfetto timeline of the
 *                     worker team (one track per worker; in isolate
 *                     mode, one pid track per worker attempt)
 *   --manifest=FILE   JSON run manifest: command, thread count,
 *                     metrics dump, per-phase wall-clock, and in
 *                     isolate mode the per-shard attempt timelines
 *   --metrics-out=FILE  JSON dump of the metrics registry (includes
 *                     the worker.<id>.* namespaces in isolate mode)
 *   --profile         per-phase wall-clock table on stderr at exit
 *
 * Service mode (docs/service.md):
 *   --request=FILE    run a canonical "tlc-sweep-request-v1"
 *                     document and print the canonical response to
 *                     stdout — the same schema (and the same bytes)
 *                     the tlcd daemon serves; --stats-out=FILE
 *                     writes the run's cache-hit accounting
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/explorer.hh"
#include "core/shard_runner.hh"
#include "core/sweep_cache.hh"
#include "service/sweep_service.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/table.hh"

using namespace tlc;

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    cli::SweepFlags flags = cli::sweepFlagsFromArgs(args, 2000000);
    // Service mode: the whole run is described by the request
    // document; none of the classic flags below apply.
    if (!flags.requestFile.empty())
        return service::runRequestCli(flags);

    double budget = args.getDouble("budget", 1000000.0);
    Benchmark bench = Workloads::byName(args.getString("bench", "gcc1"));
    double offchip = args.getDouble("offchip", 50.0);
    std::uint64_t refs = flags.refs;
    bool progress = flags.progress;
    cli::TelemetrySession telemetry(flags);

    SupervisorOptions sopts;
    const bool isolate = supervisorOptionsFromArgs(args, &sopts);

    std::shared_ptr<SweepCache> store;
    if (!flags.resultStore.empty() && !isolate) {
        // In isolate mode the worker subprocesses own the store —
        // the parent must not hold a second write handle on it.
        store = std::make_shared<SweepCache>();
        Status s = store->open(flags.resultStore);
        if (!s.ok())
            fatal("result store: %s", s.message().c_str());
    }

    EvaluatorOptions evopts;
    evopts.traceRefs = refs;
    evopts.resultStore = store;
    if (!missBackendFromName(flags.backend, evopts.backend))
        fatal("--backend=%s: unknown backend (exact, analytic, "
              "analytic-prune)", flags.backend.c_str());
    if (isolate && evopts.backend == MissBackend::AnalyticPrune) {
        // Supervised shards price points out of process and never
        // enter Explorer::evaluateAll's pruning path; run pruning
        // in-process or drop it rather than silently not pruning.
        warn("--isolate=process ignores --backend=analytic-prune's "
             "pruning; shards simulate every point exactly");
    }
    MissRateEvaluator ev(evopts);
    Explorer ex(ev);
    if (progress)
        ex.setProgressCallback(stderrProgressPrinter(
            Workloads::info(bench).name));
    if (isolate) {
        sopts.evaluator = evopts;
        sopts.evaluator.resultStore.reset();
        sopts.resultStorePath = flags.resultStore;
        if (progress) {
            sopts.progress =
                stderrProgressPrinter(Workloads::info(bench).name);
        }
    }

    std::printf("workload: %s    area budget: %.0f rbe    off-chip: "
                "%.0f ns\n\n",
                Workloads::info(bench).name, budget, offchip);

    struct Scenario
    {
        const char *name;
        bool two_level;
        std::uint32_t assoc;
        TwoLevelPolicy policy;
    };
    const Scenario scenarios[] = {
        {"single-level only", false, 4, TwoLevelPolicy::Inclusive},
        {"2-level, DM L2, inclusive", true, 1, TwoLevelPolicy::Inclusive},
        {"2-level, 4-way L2, inclusive", true, 4,
         TwoLevelPolicy::Inclusive},
        {"2-level, DM L2, exclusive", true, 1, TwoLevelPolicy::Exclusive},
        {"2-level, 4-way L2, exclusive", true, 4,
         TwoLevelPolicy::Exclusive},
    };

    auto runStart = std::chrono::steady_clock::now();
    std::size_t pointsPriced = 0;
    SupervisionStats supStats;
    std::vector<ShardTimeline> supTimeline;
    FailureReport report;
    Table t({"scenario", "best_config", "area_rbe", "l1_cycle_ns",
             "tpi_ns"});
    double best_tpi = 0;
    std::string best_label, best_scenario;
    for (const auto &sc : scenarios) {
        SystemAssumptions a;
        a.offchipNs = offchip;
        a.l2Assoc = sc.assoc;
        a.policy = sc.policy;
        std::vector<DesignPoint> points;
        if (isolate) {
            SupervisedSweep sw = supervisedSweepSpace(
                ex, bench, a, true, sc.two_level, &report, sopts);
            supStats.accumulate(sw.stats);
            supTimeline.insert(
                supTimeline.end(),
                std::make_move_iterator(sw.timeline.begin()),
                std::make_move_iterator(sw.timeline.end()));
            points = std::move(sw.points);
        } else {
            points = ex.sweep(bench, a, true, sc.two_level, &report);
        }
        pointsPriced += points.size();
        Envelope env = Explorer::envelopeOf(points);
        const EnvelopePoint *p = env.bestPointWithin(budget);
        t.beginRow();
        t.cell(sc.name);
        if (!p) {
            t.cell("(nothing fits)");
            t.cell("-");
            t.cell("-");
            t.cell("-");
            continue;
        }
        // Recover the full design point for the cycle time.
        const DesignPoint *dp = nullptr;
        for (const auto &q : points) {
            if (q.config.label() == p->label)
                dp = &q;
        }
        t.cell(p->label);
        t.cell(p->area, 0);
        t.cell(dp ? dp->l1Timing.cycleNs : 0.0, 3);
        t.cell(p->tpi, 3);
        if (best_label.empty() || p->tpi < best_tpi) {
            best_tpi = p->tpi;
            best_label = p->label;
            best_scenario = sc.name;
        }
    }
    t.printAscii(std::cout);
    std::printf("\nrecommendation: %s as '%s' (%.3f ns/instruction)\n",
                best_label.c_str(), best_scenario.c_str(), best_tpi);
    if (!report.empty())
        std::fputs(report.summary().c_str(), stderr);

    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - runStart)
                      .count();

    cli::TelemetrySession::RunSummary summary;
    summary.workload = Workloads::info(bench).name;
    summary.traceRefs = refs;
    summary.pointsPriced = pointsPriced;
    summary.failures = report.size();
    summary.wallSeconds = wall;
    if (isolate)
        summary.supervisorJson =
            supervisorTimelinesJson(supStats, supTimeline);
    telemetry.finish(argc, argv, summary);
    return 0; // --profile dumps via applyStandardFlags's exit hook
}
