/**
 * @file
 * Generic figure runner: regenerate ANY of the paper's exhibits by
 * id from the catalog, without knowing which bench driver implements
 * it.
 *
 * Usage:
 *   figure_runner --list
 *   figure_runner --figure=fig05 [--refs=2000000] [--csv]
 *                 [--threads=N] [--quiet|--verbose] [--profile]
 *                 [--backend=exact|analytic|analytic-prune]
 *                 [--progress] [--trace-out=FILE] [--manifest=FILE]
 *                 [--metrics-out=FILE]
 *                 [--result-store=FILE] [--resume]
 *                 [--isolate=process] [--shard-points=N]
 *                 [--shard-timeout=SECS] [--max-retries=N]
 *                 [--store-fsync]
 *   figure_runner --request=FILE [--stats-out=FILE]
 *
 * Persistence (docs/parallelism.md): --result-store=FILE keeps every
 * simulated point in FILE and serves repeated points from it, so a
 * killed run --resume's where it stopped and regenerating a figure
 * with the same refs is nearly free.
 *
 * Fault isolation (docs/robustness.md): --isolate=process simulates
 * each shard of the sweep in a forked worker subprocess, so a
 * crashing or hanging design point is retried, bisected and
 * quarantined instead of killing the figure run.
 *
 * Observability (docs/observability.md): --progress prints live
 * sweep progress to stderr (streamed per worker result under
 * --isolate=process), --trace-out writes a chrome://tracing
 * timeline of the worker team (one pid track per worker attempt in
 * isolate mode), --manifest writes a JSON run manifest (metrics dump
 * + per-phase times + supervisor attempt timelines in isolate mode),
 * --metrics-out dumps the metrics registry as JSON, --profile prints
 * the phase table at exit.
 *
 * Service mode (docs/service.md): --request=FILE runs a canonical
 * "tlc-sweep-request-v1" document and prints the canonical response
 * to stdout — the same schema (and the same bytes) the tlcd daemon
 * serves; --stats-out=FILE writes the run's cache-hit accounting.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/explorer.hh"
#include "core/figures.hh"
#include "core/shard_runner.hh"
#include "core/sweep_cache.hh"
#include "service/sweep_service.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/plot.hh"
#include "util/table.hh"

using namespace tlc;

namespace {

void
listCatalog()
{
    Table t({"id", "kind", "title", "bench_driver"});
    for (const auto &f : figureCatalog()) {
        const char *kind = "";
        switch (f.kind) {
          case ExhibitKind::Table:
            kind = "table";
            break;
          case ExhibitKind::TimingCurve:
            kind = "timing";
            break;
          case ExhibitKind::TpiScatter:
            kind = "tpi-scatter";
            break;
          case ExhibitKind::Mechanism:
            kind = "mechanism";
            break;
        }
        t.beginRow();
        t.cell(f.id);
        t.cell(kind);
        t.cell(f.title);
        t.cell(f.benchTarget);
    }
    t.printAscii(std::cout);
}

int
runScatter(const FigureSpec &f, std::uint64_t refs, bool csv,
           bool progress, MissBackend backend,
           std::shared_ptr<SweepCache> store,
           const SupervisorOptions *sopts, std::size_t *points_priced,
           SupervisionStats *sup_stats,
           std::vector<ShardTimeline> *sup_timeline)
{
    EvaluatorOptions evopts;
    evopts.traceRefs = refs;
    evopts.resultStore = std::move(store);
    evopts.backend = backend;
    MissRateEvaluator ev(evopts);
    Explorer ex(ev);
    // The supervisor is inherently fail-soft, so the isolated path
    // collects skips in a report and summarises them at the end; the
    // in-process path keeps its classic fatal-on-failure behaviour.
    FailureReport report;
    std::printf("%s: %s\n", f.id.c_str(), f.title.c_str());
    std::printf("assumptions: %s\n\n", f.assume.toString().c_str());

    auto sweepSpace = [&](Benchmark b, bool two_level) {
        if (!sopts)
            return ex.sweep(b, f.assume, true, two_level);
        SupervisorOptions so = *sopts;
        if (progress) {
            so.progress = stderrProgressPrinter(
                f.id + " " + Workloads::info(b).name);
        }
        SupervisedSweep sw = supervisedSweepSpace(
            ex, b, f.assume, true, two_level, &report, so);
        sup_stats->accumulate(sw.stats);
        sup_timeline->insert(
            sup_timeline->end(),
            std::make_move_iterator(sw.timeline.begin()),
            std::make_move_iterator(sw.timeline.end()));
        return std::move(sw.points);
    };

    for (Benchmark b : f.workloads) {
        const char *name = Workloads::info(b).name;
        if (progress)
            ex.setProgressCallback(
                stderrProgressPrinter(f.id + " " + name));
        // Figures 3-4 are single-level only; everything else sweeps
        // the full space.
        bool single_only = f.benchTarget == "bench_fig03_04_single_level";
        auto points = sweepSpace(b, !single_only);
        *points_priced += points.size();
        Table t({"workload", "config", "area_rbe", "tpi_ns"});
        for (const auto &p : points) {
            t.beginRow();
            t.cell(name);
            t.cell(p.config.label());
            t.cell(p.areaRbe, 0);
            t.cell(p.tpi.tpi, 3);
        }
        if (csv)
            t.printCsv(std::cout);
        else
            t.printAscii(std::cout);

        Envelope best = Explorer::envelopeOf(points);
        if (f.compareSingleLevel && !single_only && !csv) {
            Envelope single =
                Explorer::envelopeOf(sweepSpace(b, false));
            ScatterPlot plot(72, 18, true, true);
            plot.setYLabel(std::string(name) + "  [TPI ns, log]");
            plot.setXLabel("area (rbe, log)");
            plot.addSeries("1-level", '.');
            plot.addSeries("best", 'o');
            for (const auto &p : single.points())
                plot.addPoint("1-level", p.area, p.tpi);
            for (const auto &p : best.points())
                plot.addPoint("best", p.area, p.tpi);
            plot.render(std::cout);
        }
        std::printf("\n");
    }
    if (!report.empty())
        std::fputs(report.summary().c_str(), stderr);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    cli::SweepFlags flags = cli::sweepFlagsFromArgs(args, 1000000);
    // Service mode: the whole run is described by the request
    // document; the figure catalog does not apply.
    if (!flags.requestFile.empty())
        return service::runRequestCli(flags);

    if (args.has("list") || !args.has("figure")) {
        listCatalog();
        return args.has("list") ? 0 : 2;
    }
    const FigureSpec &f = figureById(args.getString("figure"));
    std::uint64_t refs = flags.refs;
    bool csv = args.getBool("csv", false);
    bool progress = flags.progress;
    MissBackend backend = MissBackend::Exact;
    if (!missBackendFromName(flags.backend, backend))
        fatal("--backend=%s: unknown backend (exact, analytic, "
              "analytic-prune)", flags.backend.c_str());
    SupervisorOptions sopts;
    const bool isolate = supervisorOptionsFromArgs(args, &sopts);
    if (isolate && backend == MissBackend::AnalyticPrune) {
        // Supervised shards price points out of process and never
        // enter Explorer::evaluateAll's pruning path.
        warn("--isolate=process ignores --backend=analytic-prune's "
             "pruning; shards simulate every point exactly");
    }
    std::shared_ptr<SweepCache> store;
    if (!flags.resultStore.empty() && !isolate) {
        // In isolate mode the worker subprocesses own the store —
        // the parent must not hold a second write handle on it.
        store = std::make_shared<SweepCache>();
        Status s = store->open(flags.resultStore);
        if (!s.ok())
            fatal("result store: %s", s.message().c_str());
    }
    if (isolate) {
        EvaluatorOptions evopts;
        evopts.traceRefs = refs;
        sopts.evaluator = evopts;
        sopts.resultStorePath = flags.resultStore;
    }
    cli::TelemetrySession telemetry(flags);

    auto runStart = std::chrono::steady_clock::now();
    std::size_t pointsPriced = 0;
    SupervisionStats supStats;
    std::vector<ShardTimeline> supTimeline;
    int rc = 0;
    switch (f.kind) {
      case ExhibitKind::TpiScatter:
        rc = runScatter(f, refs, csv, progress, backend, store,
                        isolate ? &sopts : nullptr, &pointsPriced,
                        &supStats, &supTimeline);
        break;
      case ExhibitKind::Table:
      case ExhibitKind::TimingCurve:
      case ExhibitKind::Mechanism:
        std::printf("%s (%s) has a dedicated driver: run %s\n",
                    f.id.c_str(), f.title.c_str(),
                    f.benchTarget.c_str());
        break;
    }

    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - runStart)
                      .count();
    cli::TelemetrySession::RunSummary summary;
    summary.workload = f.id;
    summary.traceRefs = refs;
    summary.pointsPriced = pointsPriced;
    summary.wallSeconds = wall;
    if (isolate)
        summary.supervisorJson =
            supervisorTimelinesJson(supStats, supTimeline);
    telemetry.finish(argc, argv, summary);
    return rc; // --profile dumps via applyStandardFlags's exit hook
}
