/**
 * @file
 * Walk-through of two-level exclusive caching (paper Section 8 and
 * Figure 21): shows the swap mechanics line by line on the paper's
 * didactic geometry, then measures the policies head-to-head on a
 * real workload model.
 *
 * Usage: exclusive_vs_inclusive [--bench=gcc1] [--refs=1000000]
 *        [--quiet|--verbose]
 */

#include <cstdio>

#include "cache/two_level.hh"
#include "trace/workload.hh"
#include "util/args.hh"
#include "util/table.hh"

#include <iostream>

using namespace tlc;

namespace {

CacheParams
params(std::uint64_t size, std::uint32_t assoc)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = assoc;
    return p;
}

void
step(TwoLevelHierarchy &h, std::uint32_t addr, const char *what)
{
    h.access({addr, RefType::Load});
    std::printf("  %-22s L1d = {", what);
    bool first = true;
    for (auto l : h.dcache().residentLineAddrs()) {
        std::printf("%s%llu", first ? "" : ",",
                    static_cast<unsigned long long>(l));
        first = false;
    }
    std::printf("}  L2 = {");
    first = true;
    for (auto l : h.l2cache().residentLineAddrs()) {
        std::printf("%s%llu", first ? "" : ",",
                    static_cast<unsigned long long>(l));
        first = false;
    }
    std::printf("}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);
    applyStandardFlags(args);
    Benchmark bench = Workloads::byName(args.getString("bench", "gcc1"));
    std::uint64_t refs =
        static_cast<std::uint64_t>(args.getInt("refs", 1000000));

    std::printf("== The swap mechanics (Figure 21-a geometry) ==\n");
    std::printf("4-line L1s, 16-line DM L2. Lines 13 and 29 conflict "
                "in BOTH levels.\n");
    TwoLevelHierarchy demo(params(64, 1), params(256, 1),
                           TwoLevelPolicy::Exclusive);
    step(demo, 13 * 16, "ref line 13 (cold)");
    step(demo, 29 * 16, "ref line 29 (cold)");
    step(demo, 13 * 16, "ref line 13 (swap!)");
    step(demo, 29 * 16, "ref line 29 (swap!)");
    std::printf("Both lines stay on-chip: %llu swaps, no further "
                "off-chip traffic.\n\n",
                static_cast<unsigned long long>(demo.stats().swaps));

    std::printf("== Head-to-head on %s (%llu refs) ==\n",
                Workloads::info(bench).name,
                static_cast<unsigned long long>(refs));
    TraceBuffer trace = Workloads::generate(bench, refs);

    Table t({"policy", "l2_config", "l1_missrate", "l2_local_miss",
             "offchip_per_1k_instr", "swaps"});
    for (std::uint32_t assoc : {1u, 4u}) {
        for (TwoLevelPolicy pol :
             {TwoLevelPolicy::Inclusive, TwoLevelPolicy::Exclusive}) {
            TwoLevelHierarchy h(params(8 * 1024, 1),
                                params(64 * 1024, assoc), pol);
            h.simulate(trace, refs / 10);
            const HierarchyStats &s = h.stats();
            t.beginRow();
            t.cell(twoLevelPolicyName(pol));
            t.cell(assoc == 1 ? "64K DM" : "64K 4-way");
            t.cell(s.l1MissRate(), 4);
            t.cell(s.l2LocalMissRate(), 4);
            t.cell(1000.0 * static_cast<double>(s.l2Misses) /
                       static_cast<double>(s.instrRefs),
                   2);
            t.cell(s.swaps);
        }
    }
    t.printAscii(std::cout);
    std::printf("\nExclusive caching reduces off-chip traffic by "
                "eliminating L1/L2 duplication and adding effective "
                "associativity (paper Section 8).\n");
    return 0;
}
