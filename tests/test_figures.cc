/**
 * @file
 * Tests for the figure catalog: complete coverage of the paper's
 * exhibits and internally-consistent specifications.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/figures.hh"

using namespace tlc;

TEST(FigureCatalog, CoversEveryExhibit)
{
    std::set<std::string> ids;
    for (const auto &f : figureCatalog())
        ids.insert(f.id);
    EXPECT_TRUE(ids.count("table1"));
    for (int i = 1; i <= 26; ++i) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "fig%02d", i);
        EXPECT_TRUE(ids.count(buf)) << buf;
    }
    EXPECT_EQ(ids.size(), 27u);
}

TEST(FigureCatalog, LookupById)
{
    const FigureSpec &f = figureById("fig23");
    EXPECT_EQ(f.assume.policy, TwoLevelPolicy::Exclusive);
    EXPECT_EQ(f.assume.l2Assoc, 4u);
    ASSERT_EQ(f.workloads.size(), 1u);
    EXPECT_EQ(f.workloads[0], Benchmark::Gcc1);
}

TEST(FigureCatalog, UnknownIdIsFatal)
{
    EXPECT_EXIT(figureById("fig99"), ::testing::ExitedWithCode(1),
                "unknown exhibit");
}

TEST(FigureCatalog, AssumptionsMatchThePaper)
{
    EXPECT_DOUBLE_EQ(figureById("fig05").assume.offchipNs, 50.0);
    EXPECT_DOUBLE_EQ(figureById("fig17").assume.offchipNs, 200.0);
    EXPECT_EQ(figureById("fig09").assume.l2Assoc, 1u);
    EXPECT_TRUE(figureById("fig10").assume.dualPortedL1);
    EXPECT_FALSE(figureById("fig05").assume.dualPortedL1);
    EXPECT_EQ(figureById("fig22").assume.l2Assoc, 1u);
    EXPECT_EQ(figureById("fig22").assume.policy,
              TwoLevelPolicy::Exclusive);
}

TEST(FigureCatalog, EveryTpiExhibitHasWorkloadsAndDriver)
{
    for (const auto &f : figureCatalog()) {
        EXPECT_FALSE(f.benchTarget.empty()) << f.id;
        if (f.kind == ExhibitKind::TpiScatter) {
            EXPECT_FALSE(f.workloads.empty()) << f.id;
        }
    }
}

TEST(FigureCatalog, WorkloadsCoverAllSevenAcrossFigures3to4)
{
    std::set<Benchmark> seen;
    for (const auto &f : {figureById("fig03"), figureById("fig04")})
        for (Benchmark b : f.workloads)
            seen.insert(b);
    EXPECT_EQ(seen.size(), 7u);
}

TEST(FigureCatalog, DualPortFiguresCoverAllSeven)
{
    std::set<Benchmark> seen;
    for (int i = 10; i <= 16; ++i) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "fig%02d", i);
        for (Benchmark b : figureById(buf).workloads)
            seen.insert(b);
    }
    EXPECT_EQ(seen.size(), 7u);
}
