/**
 * @file
 * Unit tests for the CLI argument parser.
 */

#include <gtest/gtest.h>

#include "util/args.hh"

using namespace tlc;

namespace {

ArgParser
parse(std::initializer_list<const char *> argv)
{
    std::vector<const char *> v(argv);
    return ArgParser(static_cast<int>(v.size()), v.data());
}

} // namespace

TEST(ArgParser, EqualsSyntax)
{
    auto a = parse({"prog", "--refs=1000", "--bench=gcc1"});
    EXPECT_EQ(a.getInt("refs"), 1000);
    EXPECT_EQ(a.getString("bench"), "gcc1");
}

TEST(ArgParser, SpaceSyntax)
{
    auto a = parse({"prog", "--refs", "1000"});
    EXPECT_EQ(a.getInt("refs"), 1000);
}

TEST(ArgParser, BareFlagIsTrue)
{
    auto a = parse({"prog", "--verbose"});
    EXPECT_TRUE(a.getBool("verbose"));
    EXPECT_TRUE(a.has("verbose"));
    EXPECT_FALSE(a.has("quiet"));
}

TEST(ArgParser, Defaults)
{
    auto a = parse({"prog"});
    EXPECT_EQ(a.getInt("refs", 77), 77);
    EXPECT_EQ(a.getString("bench", "li"), "li");
    EXPECT_FALSE(a.getBool("verbose", false));
    EXPECT_TRUE(a.getBool("verbose", true));
    EXPECT_DOUBLE_EQ(a.getDouble("scale", 2.5), 2.5);
}

TEST(ArgParser, Positional)
{
    auto a = parse({"prog", "file1", "--k=v", "file2"});
    ASSERT_EQ(a.positional().size(), 2u);
    EXPECT_EQ(a.positional()[0], "file1");
    EXPECT_EQ(a.positional()[1], "file2");
    EXPECT_EQ(a.programName(), "prog");
}

TEST(ArgParser, BooleanSpellings)
{
    auto a = parse({"prog", "--x=true", "--y=0", "--z=yes"});
    EXPECT_TRUE(a.getBool("x"));
    EXPECT_FALSE(a.getBool("y"));
    EXPECT_TRUE(a.getBool("z"));
}

TEST(ArgParser, KeysListsOptions)
{
    auto a = parse({"prog", "--b=1", "--a=2"});
    auto keys = a.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a"); // map ordering
    EXPECT_EQ(keys[1], "b");
}

TEST(ArgParser, DoubleParsing)
{
    auto a = parse({"prog", "--scale=0.25"});
    EXPECT_DOUBLE_EQ(a.getDouble("scale"), 0.25);
}
