/**
 * @file
 * Locality-structure checks on the workload models: the properties
 * that make synthetic traces behave like program traces (sequential
 * fetch, spatial locality, bounded footprints) hold for every
 * benchmark — not just the miss-rate anchors.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "trace/workload.hh"

using namespace tlc;

namespace {

constexpr std::uint64_t kRefs = 120000;

} // namespace

class WorkloadLocality : public ::testing::TestWithParam<Benchmark>
{
  protected:
    static const TraceBuffer &trace(Benchmark b)
    {
        static std::map<Benchmark, TraceBuffer> cache;
        auto it = cache.find(b);
        if (it == cache.end())
            it = cache.emplace(b, Workloads::generate(b, kRefs)).first;
        return it->second;
    }
};

TEST_P(WorkloadLocality, InstructionFetchMostlySequential)
{
    const TraceBuffer &t = trace(GetParam());
    std::uint32_t prev = 0;
    bool have_prev = false;
    std::uint64_t seq = 0, total = 0;
    for (const auto &rec : t) {
        if (rec.type != RefType::Instr)
            continue;
        if (have_prev) {
            ++total;
            seq += (rec.addr == prev + 4);
        }
        prev = rec.addr;
        have_prev = true;
    }
    double frac = static_cast<double>(seq) / static_cast<double>(total);
    // Real instruction streams are 60-90% sequential; fpppp's
    // straight-line giant basic blocks push it above 99%.
    EXPECT_GT(frac, 0.55) << Workloads::info(GetParam()).name;
    EXPECT_LT(frac, 0.999) << Workloads::info(GetParam()).name;
}

TEST_P(WorkloadLocality, SpatialLocalityAtLineGranularity)
{
    // A meaningful share of references lands on a recently-touched
    // 16-byte line (what makes line-based caching work at all).
    const TraceBuffer &t = trace(GetParam());
    std::set<std::uint32_t> recent;
    std::vector<std::uint32_t> fifo;
    std::uint64_t hits = 0;
    for (const auto &rec : t) {
        std::uint32_t line = rec.addr >> 4;
        if (recent.count(line))
            ++hits;
        else {
            fifo.push_back(line);
            recent.insert(line);
            if (fifo.size() > 256) {
                recent.erase(fifo.front());
                fifo.erase(fifo.begin());
            }
        }
    }
    double frac = static_cast<double>(hits) /
                  static_cast<double>(t.size());
    EXPECT_GT(frac, 0.5) << Workloads::info(GetParam()).name;
}

TEST_P(WorkloadLocality, FootprintWithinModeledRegions)
{
    // Touched lines must stay within a few MB (32-bit layout) and
    // exceed the smallest caches (otherwise nothing would miss).
    const TraceBuffer &t = trace(GetParam());
    std::set<std::uint32_t> lines;
    for (const auto &rec : t)
        lines.insert(rec.addr >> 4);
    double footprint_kb = lines.size() * 16.0 / 1024.0;
    EXPECT_GT(footprint_kb, 16.0) << Workloads::info(GetParam()).name;
    EXPECT_LT(footprint_kb, 4096.0) << Workloads::info(GetParam()).name;
}

TEST_P(WorkloadLocality, StoresAreMinorityOfDataRefs)
{
    const TraceBuffer &t = trace(GetParam());
    EXPECT_LT(t.storeRefs(), t.loadRefs())
        << Workloads::info(GetParam()).name;
    EXPECT_GT(t.storeRefs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadLocality,
    ::testing::ValuesIn(Workloads::all()),
    [](const ::testing::TestParamInfo<Benchmark> &info) {
        return Workloads::info(info.param).name;
    });
