/**
 * @file
 * Unit tests for unit helpers, especially the cycle rounding the
 * paper applies to L2 and off-chip times.
 */

#include <gtest/gtest.h>

#include "util/units.hh"

using namespace tlc;

TEST(Units, Literals)
{
    EXPECT_EQ(32_KiB, 32768u);
    EXPECT_EQ(1_MiB, 1048576u);
}

TEST(RoundUpToMultiple, ExactMultipleUnchanged)
{
    EXPECT_DOUBLE_EQ(roundUpToMultiple(10.0, 2.5), 10.0);
    EXPECT_DOUBLE_EQ(roundUpToMultiple(2.5, 2.5), 2.5);
}

TEST(RoundUpToMultiple, RoundsUp)
{
    EXPECT_DOUBLE_EQ(roundUpToMultiple(10.1, 2.5), 12.5);
    EXPECT_DOUBLE_EQ(roundUpToMultiple(0.1, 2.5), 2.5);
}

TEST(RoundUpToMultiple, ZeroTimeBecomesOneQuantum)
{
    // The paper charges at least one cycle for anything nonzero.
    EXPECT_DOUBLE_EQ(roundUpToMultiple(0.0, 2.5), 2.5);
}

TEST(RoundUpToMultiple, ToleratesFloatNoise)
{
    // 3 * 1.1 = 3.3000000000000003 in binary; must not round to 4.4.
    EXPECT_DOUBLE_EQ(roundUpToMultiple(3 * 1.1, 1.1), 3 * 1.1);
}

TEST(CyclesCeil, PaperExample)
{
    // Fig. 2 example: L2 cycle rounds to 2 CPU cycles, so the L2-hit
    // penalty is 2*2 + 1 = 5 cycles.
    EXPECT_EQ(cyclesCeil(4.2, 2.5), 2u);
    EXPECT_EQ(2 * cyclesCeil(4.2, 2.5) + 1, 5u);
}

TEST(CyclesCeil, FiftyNsAt2_5)
{
    EXPECT_EQ(cyclesCeil(50.0, 2.5), 20u);
    EXPECT_EQ(cyclesCeil(50.1, 2.5), 21u);
}
