/**
 * @file
 * Tests for the multicycle / non-blocking pipeline model (§10).
 */

#include <gtest/gtest.h>

#include "cache/single_level.hh"
#include "cache/two_level.hh"
#include "pipeline/pipeline.hh"
#include "trace/workload.hh"

using namespace tlc;

namespace {

CacheParams
dm(std::uint64_t size)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = 1;
    return p;
}

TraceBuffer
instrOnlyTrace(int n, std::uint32_t stride = 0)
{
    TraceBuffer t;
    for (int i = 0; i < n; ++i)
        t.append(0x1000 + i * stride, RefType::Instr);
    return t;
}

PipelineParams
baseParams()
{
    PipelineParams p;
    p.cycleNs = 2.0;
    p.l1Cycles = 1;
    p.l2HitCycles = 5;
    p.offchipCycles = 26;
    p.mshrs = 1;
    p.loadUseStallProb = 1.0; // deterministic unless a test says so
    return p;
}

} // namespace

TEST(Pipeline, AllHitsIsOneCpi)
{
    TraceBuffer t = instrOnlyTrace(1000, 0); // same line every time
    SingleLevelHierarchy h(dm(1024));
    PipelineSimulator sim(baseParams());
    PipelineResult r = sim.run(h, t, /*warmup=*/1);
    EXPECT_EQ(r.instructions, 999u);
    EXPECT_DOUBLE_EQ(r.cpi(), 1.0);
    EXPECT_DOUBLE_EQ(r.tpiNs(2.0), 2.0);
}

TEST(Pipeline, IfetchMissStallsFullLatency)
{
    // Two instructions on different lines, never seen before:
    // 2 issue cycles + 2 off-chip stalls.
    TraceBuffer t = instrOnlyTrace(2, 4096);
    SingleLevelHierarchy h(dm(1024));
    PipelineSimulator sim(baseParams());
    PipelineResult r = sim.run(h, t);
    EXPECT_EQ(r.cycles, 2u + 2u * 26u);
    EXPECT_EQ(r.ifetchStallCycles, 52u);
}

TEST(Pipeline, BlockingLoadMissStalls)
{
    TraceBuffer t;
    t.append(0x1000, RefType::Instr);
    t.append(0x8000, RefType::Load); // cold miss
    SingleLevelHierarchy h(dm(1024));
    PipelineSimulator sim(baseParams()); // loadUseStallProb = 1
    PipelineResult r = sim.run(h, t);
    // 1 ifetch-miss stall + issue + load miss stall.
    EXPECT_EQ(r.loadUseStallCycles, 26u);
}

TEST(Pipeline, LatencyTolerantLoadsDontStall)
{
    TraceBuffer t;
    for (int i = 0; i < 100; ++i) {
        t.append(0x1000, RefType::Instr);
        t.append(0x8000 + i * 4096, RefType::Load); // all miss
    }
    SingleLevelHierarchy h(dm(1024));
    PipelineParams p = baseParams();
    p.loadUseStallProb = 0.0;
    p.mshrs = 64; // plenty
    PipelineSimulator sim(p);
    PipelineResult r = sim.run(h, t);
    EXPECT_EQ(r.loadUseStallCycles, 0u);
    // Only the first ifetch misses; all loads retire in background.
    EXPECT_EQ(r.cycles, 100u + 26u);
}

TEST(Pipeline, SingleMshrSerializesMisses)
{
    // Back-to-back tolerant load misses with ONE MSHR: the second
    // must wait for the first to retire.
    TraceBuffer t;
    t.append(0x1000, RefType::Instr);
    t.append(0x8000, RefType::Load);
    t.append(0x1000, RefType::Instr);
    t.append(0x10000, RefType::Load);
    SingleLevelHierarchy h(dm(1024));
    PipelineParams p = baseParams();
    p.loadUseStallProb = 0.0;
    p.mshrs = 1;
    PipelineSimulator sim(p);
    PipelineResult r1 = sim.run(h, t);
    EXPECT_GT(r1.mshrFullStallCycles, 0u);

    SingleLevelHierarchy h2(dm(1024));
    p.mshrs = 2;
    PipelineSimulator sim2(p);
    PipelineResult r2 = sim2.run(h2, t);
    EXPECT_EQ(r2.mshrFullStallCycles, 0u);
    EXPECT_LT(r2.cycles, r1.cycles);
}

TEST(Pipeline, MulticycleL1AddsLoadUseStalls)
{
    TraceBuffer t;
    for (int i = 0; i < 100; ++i) {
        t.append(0x1000, RefType::Instr);
        t.append(0x2000, RefType::Load); // always hits after first
    }
    PipelineParams p = baseParams();
    p.l1Cycles = 3;
    p.loadUseStallProb = 1.0;
    SingleLevelHierarchy h(dm(8192));
    PipelineSimulator sim(p);
    PipelineResult r = sim.run(h, t, /*warmup=*/4);
    EXPECT_GT(r.l1AccessStallCycles, 0u);
    // Every measured load hits and stalls l1Cycles-1 = 2 cycles, one
    // load per instruction.
    EXPECT_EQ(r.l1AccessStallCycles, 2 * r.instructions);
}

TEST(Pipeline, WarmupResetsAccounting)
{
    TraceBuffer t = instrOnlyTrace(100, 4096); // all miss
    SingleLevelHierarchy h(dm(1024));
    PipelineSimulator sim(baseParams());
    PipelineResult r = sim.run(h, t, 50);
    EXPECT_EQ(r.instructions, 50u);
    EXPECT_EQ(r.cycles, 50u + 50u * 26u);
}

TEST(Pipeline, NonBlockingHelpsOnRealWorkload)
{
    TraceBuffer t = Workloads::generate(Benchmark::Tomcatv, 150000);
    PipelineParams p = baseParams();
    p.loadUseStallProb = 0.3; // numeric code tolerates latency (§10)

    auto run = [&](unsigned mshrs) {
        p.mshrs = mshrs;
        TwoLevelHierarchy h(dm(8192), CacheParams{65536, 16, 4,
                                                  ReplPolicy::Random},
                            TwoLevelPolicy::Inclusive);
        PipelineSimulator sim(p);
        return sim.run(h, t, 15000).cpi();
    };
    double blocking = run(1);
    double nonblocking = run(8);
    EXPECT_LT(nonblocking, blocking);
}

TEST(Pipeline, WritebackBufferAbsorbsDirtyEvictions)
{
    // A store-heavy thrash pattern generates a dirty eviction per
    // access; a deep write buffer must stall less than a single-slot
    // one.
    TraceBuffer t;
    for (int i = 0; i < 500; ++i) {
        t.append({0x1000, RefType::Instr});
        // Two conflicting lines, always stores: each miss evicts a
        // dirty line.
        t.append({i % 2 ? 0x8000u : 0x8400u, RefType::Store});
    }
    PipelineParams p = baseParams();
    p.loadUseStallProb = 0.0;
    p.mshrs = 8;

    auto run = [&](unsigned depth) {
        p.writebackBufferDepth = depth;
        SingleLevelHierarchy h(dm(1024));
        PipelineSimulator sim(p);
        return sim.run(h, t);
    };
    PipelineResult shallow = run(1);
    PipelineResult deep = run(16);
    EXPECT_GT(shallow.writebackStallCycles, 0u);
    EXPECT_LT(deep.writebackStallCycles, shallow.writebackStallCycles);
    EXPECT_LE(deep.cycles, shallow.cycles);
}

TEST(Pipeline, ZeroDepthWritebackBufferIsFree)
{
    TraceBuffer t;
    for (int i = 0; i < 100; ++i) {
        t.append({0x1000, RefType::Instr});
        t.append({i % 2 ? 0x8000u : 0x8400u, RefType::Store});
    }
    PipelineParams p = baseParams();
    p.loadUseStallProb = 0.0;
    p.writebackBufferDepth = 0; // disables write-back modelling
    SingleLevelHierarchy h(dm(1024));
    PipelineSimulator sim(p);
    PipelineResult r = sim.run(h, t);
    EXPECT_EQ(r.writebackStallCycles, 0u);
}

TEST(Pipeline, FasterL2ReducesCpi)
{
    TraceBuffer t = Workloads::generate(Benchmark::Gcc1, 150000);
    PipelineParams p = baseParams();
    p.loadUseStallProb = 0.6;

    auto run = [&](unsigned l2_cycles) {
        p.l2HitCycles = l2_cycles;
        TwoLevelHierarchy h(dm(8192), CacheParams{65536, 16, 4,
                                                  ReplPolicy::Random},
                            TwoLevelPolicy::Inclusive);
        PipelineSimulator sim(p);
        return sim.run(h, t, 15000).cpi();
    };
    EXPECT_LT(run(5), run(15));
}
