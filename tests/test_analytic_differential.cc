/**
 * @file
 * Differential accuracy harness for the analytic backend
 * (core/reuse_profile.hh): pins, per workload, how far the analytic
 * model may drift from exact simulation — ZERO on the paper's design
 * space (the profiler's exact ladders cover it), bounded on the
 * approximate fallback space — and checks the corrupt-input corpus
 * fails soft with exactly the Status codes and FailureReport entries
 * the exact backend produces. docs/analytic_model.md records the
 * measured errors these bounds were pinned from.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/evaluator.hh"
#include "core/explorer.hh"
#include "trace/workload.hh"

using namespace tlc;

namespace {

/** Trace length shared by every differential test: long enough to
 *  exercise every ladder level, short enough to keep the exact
 *  reference sweeps cheap. The pinned bounds below were measured at
 *  exactly this length. */
constexpr std::uint64_t kRefs = 40000;

constexpr Benchmark kAllBenchmarks[] = {
    Benchmark::Gcc1, Benchmark::Espresso, Benchmark::Fpppp,
    Benchmark::Doduc, Benchmark::Li, Benchmark::Eqntott,
    Benchmark::Tomcatv,
};

/**
 * Pinned per-workload ceiling on |analytic - exact| global miss rate
 * over the OFF-LADDER fallback space (2-way L1s: binomial L1 model,
 * geometric L2 model). Measured maxima at kRefs were 0.010..0.046;
 * pinned with ~1.5x headroom so trace-model tweaks that degrade the
 * fallback fit get flagged here.
 */
double
fallbackErrorBound(Benchmark b)
{
    switch (b) {
      case Benchmark::Gcc1:
        return 0.065;
      case Benchmark::Espresso:
        return 0.030;
      case Benchmark::Fpppp:
        return 0.065;
      case Benchmark::Doduc:
        return 0.060;
      case Benchmark::Li:
        return 0.070;
      case Benchmark::Eqntott:
        return 0.020;
      case Benchmark::Tomcatv:
        return 0.055;
    }
    return 0.0;
}

} // namespace

// ---------------------------------------------------------------------
// Accuracy: exact on the reference space, bounded on the fallback.
// ---------------------------------------------------------------------

TEST(AnalyticDifferential, ReferenceSpaceIsBitExactPerWorkload)
{
    MissRateEvaluator ev(kRefs);
    auto configs = DesignSpace::enumerate(SystemAssumptions{});
    ASSERT_EQ(configs.size(), 45u);

    for (Benchmark b : kAllBenchmarks) {
        auto exact = ev.tryMissStatsBatch(b, configs);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            auto analytic = ev.tryAnalyticStats(b, configs[i]);
            ASSERT_TRUE(exact[i].ok());
            ASSERT_TRUE(analytic.ok());
            const HierarchyStats &e = exact[i].value();
            const HierarchyStats &a = analytic.value();
            const char *name = Workloads::info(b).name;
            // Bit-exact counts, not just close rates: the paper's
            // whole space is covered by the profiler's exact
            // direct-mapped and hierarchy ladders.
            EXPECT_EQ(a.instrRefs, e.instrRefs)
                << name << " " << configs[i].label();
            EXPECT_EQ(a.dataRefs, e.dataRefs)
                << name << " " << configs[i].label();
            EXPECT_EQ(a.l1iMisses, e.l1iMisses)
                << name << " " << configs[i].label();
            EXPECT_EQ(a.l1dMisses, e.l1dMisses)
                << name << " " << configs[i].label();
            EXPECT_EQ(a.l2Misses, e.l2Misses)
                << name << " " << configs[i].label();
            EXPECT_EQ(a.l2Hits, e.l2Hits)
                << name << " " << configs[i].label();
        }
    }
}

TEST(AnalyticDifferential, FallbackSpaceErrorWithinPinnedBounds)
{
    MissRateEvaluator ev(kRefs);
    SystemAssumptions assume;
    assume.l1Assoc = 2; // off both ladders: approximate models only
    auto configs = DesignSpace::enumerate(assume);

    for (Benchmark b : kAllBenchmarks) {
        auto exact = ev.tryMissStatsBatch(b, configs);
        double worst = 0.0;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            auto analytic = ev.tryAnalyticStats(b, configs[i]);
            ASSERT_TRUE(exact[i].ok());
            ASSERT_TRUE(analytic.ok());
            worst = std::max(
                worst, std::fabs(analytic.value().globalMissRate() -
                                 exact[i].value().globalMissRate()));
        }
        EXPECT_LE(worst, fallbackErrorBound(b))
            << Workloads::info(b).name
            << ": fallback model drifted past its pinned bound";
    }
}

// ---------------------------------------------------------------------
// Corrupt-input corpus: identical fail-soft behaviour per backend.
// ---------------------------------------------------------------------

namespace {

/** The corrupt-input corpus of test_fault_injection.cc, as evaluator
 *  options: one benchmark routed to a missing file, one to a file of
 *  garbage bytes. */
EvaluatorOptions
corruptCorpusOptions(const std::string &garbage_path,
                     MissBackend backend)
{
    std::ofstream out(garbage_path, std::ios::binary);
    out << "TLCT garbage that is certainly not a valid trace file";
    out.close();

    EvaluatorOptions opts;
    opts.traceRefs = 5000;
    opts.backend = backend;
    opts.traceFiles[Benchmark::Espresso] =
        "/nonexistent/dir/espresso.trace";
    opts.traceFiles[Benchmark::Li] = garbage_path;
    return opts;
}

} // namespace

TEST(AnalyticDifferential, CorruptCorpusFailsSoftIdentically)
{
    const std::string garbage =
        testing::TempDir() + "/analytic_diff_garbage.trace";

    MissRateEvaluator exact(
        corruptCorpusOptions(garbage, MissBackend::Exact));
    MissRateEvaluator analytic(
        corruptCorpusOptions(garbage, MissBackend::Analytic));

    SystemConfig good;
    good.l1Bytes = 4096;
    good.l2Bytes = 16384;
    SystemConfig bad;
    bad.l1Bytes = 3 * 1024; // not a power of two
    bad.l2Bytes = 0;

    struct Case
    {
        Benchmark b;
        const SystemConfig *config;
    };
    const Case corpus[] = {
        {Benchmark::Espresso, &good}, // missing trace file
        {Benchmark::Li, &good},       // garbage trace file
        {Benchmark::Gcc1, &bad},      // invalid configuration
        {Benchmark::Gcc1, &good},     // healthy control
    };

    for (const Case &c : corpus) {
        auto e = exact.tryMissStats(c.b, *c.config);
        auto a = analytic.tryMissStats(c.b, *c.config);
        const char *name = Workloads::info(c.b).name;
        ASSERT_EQ(e.ok(), a.ok()) << name;
        if (!e.ok()) {
            // Same failure class AND same message: callers branch on
            // both, so the backends must be indistinguishable here.
            EXPECT_EQ(e.status().code(), a.status().code()) << name;
            EXPECT_EQ(e.status().message(), a.status().message())
                << name;
        }
    }
    EXPECT_FALSE(
        exact.tryMissStats(Benchmark::Espresso, good).ok());
    EXPECT_EQ(exact.tryMissStats(Benchmark::Espresso, good)
                  .status()
                  .code(),
              StatusCode::IoError);

    std::remove(garbage.c_str());
}

TEST(AnalyticDifferential, SweepReportsMatchAcrossBackends)
{
    const std::string garbage =
        testing::TempDir() + "/analytic_diff_sweep_garbage.trace";

    SweepRequest req;
    SystemConfig bad;
    bad.l1Bytes = 3 * 1024;
    bad.l2Bytes = 0;
    req.configs = DesignSpace::enumerate(SystemAssumptions{});
    req.configs.push_back(bad);
    req.benchmarks = {Benchmark::Gcc1, Benchmark::Espresso};
    req.threads = 1;

    auto runWith = [&](MissBackend backend) {
        MissRateEvaluator ev(
            corruptCorpusOptions(garbage, backend));
        Explorer ex(ev);
        FailureReport report;
        SweepRequest r = req;
        r.report = &report;
        auto sweeps = ex.evaluateAll(r);
        struct Outcome
        {
            std::size_t pricedPoints;
            std::vector<std::string> subjects;
            std::vector<StatusCode> codes;
        } out;
        out.pricedPoints = 0;
        for (const auto &s : sweeps)
            out.pricedPoints += s.points.size();
        for (const auto &f : report.failures()) {
            out.subjects.push_back(f.subject);
            out.codes.push_back(f.status.code());
        }
        return out;
    };

    auto exact = runWith(MissBackend::Exact);
    auto analytic = runWith(MissBackend::Analytic);

    EXPECT_EQ(exact.pricedPoints, analytic.pricedPoints);
    ASSERT_EQ(exact.subjects.size(), analytic.subjects.size());
    for (std::size_t i = 0; i < exact.subjects.size(); ++i) {
        EXPECT_EQ(exact.subjects[i], analytic.subjects[i]);
        EXPECT_EQ(exact.codes[i], analytic.codes[i]);
    }
    // The corpus tripped something: the whole Espresso benchmark
    // (unreadable trace) plus the invalid config on Gcc1.
    EXPECT_GE(exact.subjects.size(), 2u);

    std::remove(garbage.c_str());
}

// ---------------------------------------------------------------------
// Determinism: repeated and threaded analytic sweeps are
// byte-identical.
// ---------------------------------------------------------------------

namespace {

std::vector<DesignPoint>
analyticSweep(MissBackend backend, unsigned threads)
{
    EvaluatorOptions opts;
    opts.traceRefs = kRefs;
    opts.backend = backend;
    MissRateEvaluator ev(opts);
    Explorer ex(ev);
    SweepRequest req;
    req.configs = DesignSpace::enumerate(SystemAssumptions{});
    req.benchmarks = {Benchmark::Doduc};
    req.threads = threads;
    auto sweeps = ex.evaluateAll(req);
    return sweeps.empty() ? std::vector<DesignPoint>{}
                          : sweeps.front().points;
}

void
expectPointsByteIdentical(const std::vector<DesignPoint> &a,
                          const std::vector<DesignPoint> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].config.label(), b[i].config.label());
        // Exact double equality on purpose: the contract is
        // byte-identical output, not approximately equal output.
        ASSERT_EQ(a[i].areaRbe, b[i].areaRbe);
        ASSERT_EQ(a[i].tpi.tpi, b[i].tpi.tpi);
        ASSERT_EQ(a[i].miss.l1iMisses, b[i].miss.l1iMisses);
        ASSERT_EQ(a[i].miss.l1dMisses, b[i].miss.l1dMisses);
        ASSERT_EQ(a[i].miss.l2Misses, b[i].miss.l2Misses);
        ASSERT_EQ(a[i].miss.l2Hits, b[i].miss.l2Hits);
    }
}

} // namespace

TEST(AnalyticDifferential, AnalyticSweepsAreDeterministic)
{
    auto first = analyticSweep(MissBackend::Analytic, 1);
    auto second = analyticSweep(MissBackend::Analytic, 1);
    ASSERT_FALSE(first.empty());
    expectPointsByteIdentical(first, second);
}

TEST(AnalyticDifferential, ThreadedAnalyticSweepMatchesSerial)
{
    auto serial = analyticSweep(MissBackend::Analytic, 1);
    auto threaded = analyticSweep(MissBackend::Analytic, 4);
    expectPointsByteIdentical(serial, threaded);

    auto prunedSerial = analyticSweep(MissBackend::AnalyticPrune, 1);
    auto prunedThreaded = analyticSweep(MissBackend::AnalyticPrune, 4);
    expectPointsByteIdentical(prunedSerial, prunedThreaded);
}
