/**
 * @file
 * End-to-end integration tests: the paper's section-level claims
 * checked through the full pipeline (trace -> misses -> timing ->
 * area -> TPI -> envelope) at reduced trace length.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/explorer.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/** Shared evaluator/explorer so traces and sims are reused. */
class IntegrationTest : public ::testing::Test
{
  protected:
    static MissRateEvaluator &ev()
    {
        static MissRateEvaluator e(600000);
        return e;
    }
    static Explorer &ex()
    {
        static Explorer x(ev());
        return x;
    }

    static SystemAssumptions
    assume(double offchip, std::uint32_t assoc, TwoLevelPolicy policy)
    {
        SystemAssumptions a;
        a.offchipNs = offchip;
        a.l2Assoc = assoc;
        a.policy = policy;
        return a;
    }
};

/** Area of the TPI-minimising single-level configuration. */
std::uint64_t
bestSingleLevelL1(Explorer &ex, Benchmark b, double offchip)
{
    SystemAssumptions a;
    a.offchipNs = offchip;
    auto points = ex.sweep(b, a, true, false);
    const DesignPoint *best = &points.front();
    for (const auto &p : points)
        if (p.tpi.tpi < best->tpi.tpi)
            best = &p;
    return best->config.l1Bytes;
}

} // namespace

// §3: "All seven workloads exhibit a minimum TPI between 8KB and
// 128KB" for single-level systems at 50 ns.
TEST_F(IntegrationTest, SingleLevelMinimaBetween8KAnd128K)
{
    for (Benchmark b : Workloads::all()) {
        std::uint64_t best = bestSingleLevelL1(ex(), b, 50.0);
        EXPECT_GE(best, 8_KiB) << Workloads::info(b).name;
        EXPECT_LE(best, 128_KiB) << Workloads::info(b).name;
    }
}

// §3: espresso, eqntott and tomcatv favor SMALL caches; gcc and
// fpppp favor larger ones.
TEST_F(IntegrationTest, SmallVsLargeCachePreference)
{
    std::uint64_t esp = bestSingleLevelL1(ex(), Benchmark::Espresso, 50.0);
    std::uint64_t tom = bestSingleLevelL1(ex(), Benchmark::Tomcatv, 50.0);
    std::uint64_t gcc = bestSingleLevelL1(ex(), Benchmark::Gcc1, 50.0);
    std::uint64_t fpp = bestSingleLevelL1(ex(), Benchmark::Fpppp, 50.0);
    EXPECT_LE(esp, 32_KiB);
    EXPECT_LE(tom, 32_KiB);
    EXPECT_GE(gcc, 32_KiB);
    EXPECT_GE(fpp, 64_KiB);
}

// §4's worked example for gcc1: the "1:2" two-level configuration is
// dominated by the "2:0" single-level one at about the same area.
TEST_F(IntegrationTest, Gcc1OneTwoDominatedByTwoZero)
{
    SystemAssumptions a = assume(50, 4, TwoLevelPolicy::Inclusive);
    SystemConfig c12;
    c12.l1Bytes = 1_KiB;
    c12.l2Bytes = 2_KiB;
    c12.assume = a;
    SystemConfig c20;
    c20.l1Bytes = 2_KiB;
    c20.l2Bytes = 0;
    c20.assume = a;
    DesignPoint p12 = ex().evaluate(Benchmark::Gcc1, c12);
    DesignPoint p20 = ex().evaluate(Benchmark::Gcc1, c20);
    // Comparable area...
    EXPECT_LT(std::abs(p12.areaRbe - p20.areaRbe) / p20.areaRbe, 0.5);
    // ...but the tiny L2 mostly duplicates L1 and just gets in the
    // way.
    EXPECT_GT(p12.tpi.tpi, p20.tpi.tpi);
}

// §7: moving off-chip service from 50 ns to 200 ns raises TPI
// sharply for small caches and much less for big hierarchies.
TEST_F(IntegrationTest, LongMissServiceHurtsSmallCachesMost)
{
    SystemConfig small;
    small.l1Bytes = 1_KiB;
    small.l2Bytes = 0;
    SystemConfig big;
    big.l1Bytes = 32_KiB;
    big.l2Bytes = 256_KiB;

    auto ratio = [&](SystemConfig c) {
        c.assume.offchipNs = 50;
        double t50 = ex().evaluate(Benchmark::Gcc1, c).tpi.tpi;
        c.assume.offchipNs = 200;
        double t200 = ex().evaluate(Benchmark::Gcc1, c).tpi.tpi;
        return t200 / t50;
    };
    double r_small = ratio(small);
    double r_big = ratio(big);
    EXPECT_GT(r_small, 2.0); // paper: "about 3X" at 1 KB
    EXPECT_LT(r_big, r_small);
}

// §7: two-level caching is a bigger win at 200 ns than at 50 ns
// (the envelope gap grows for every workload).
TEST_F(IntegrationTest, TwoLevelGapGrowsWithOffchipTime)
{
    for (Benchmark b : {Benchmark::Gcc1, Benchmark::Li}) {
        auto gap = [&](double offchip) {
            SystemAssumptions a =
                assume(offchip, 4, TwoLevelPolicy::Inclusive);
            Envelope single =
                Explorer::envelopeOf(ex().sweep(b, a, true, false));
            Envelope both = Explorer::envelopeOf(ex().sweep(b, a));
            // Positive when the single-level envelope sits above the
            // unrestricted one.
            return single.meanGapAgainst(both);
        };
        double g50 = gap(50);
        double g200 = gap(200);
        EXPECT_GE(g50, -1e-9);
        EXPECT_GT(g200, g50) << Workloads::info(b).name;
    }
}

// §8: exclusive caching never loses to the inclusive baseline in
// off-chip misses for matched configurations (it strictly reduces
// duplication), and helps most when L2/L1 capacity ratio is small.
TEST_F(IntegrationTest, ExclusiveReducesOffchipMisses)
{
    for (Benchmark b : {Benchmark::Gcc1, Benchmark::Doduc}) {
        SystemConfig inc;
        inc.l1Bytes = 8_KiB;
        inc.l2Bytes = 32_KiB;
        inc.assume = assume(50, 4, TwoLevelPolicy::Inclusive);
        SystemConfig exc = inc;
        exc.assume.policy = TwoLevelPolicy::Exclusive;
        HierarchyStats si = ev().tryMissStats(b, inc).value();
        HierarchyStats se = ev().tryMissStats(b, exc).value();
        EXPECT_LE(se.l2Misses, si.l2Misses) << Workloads::info(b).name;
    }
}

// §8: a direct-mapped exclusive L2 performs about as well as a
// 4-way inclusive L2 (for gcc1), and a 4-way exclusive L2 beats
// both.
TEST_F(IntegrationTest, ExclusiveDmComparableToInclusiveFourWay)
{
    Benchmark b = Benchmark::Gcc1;
    SystemConfig cfg;
    cfg.l1Bytes = 8_KiB;
    cfg.l2Bytes = 64_KiB;

    cfg.assume = assume(50, 1, TwoLevelPolicy::Exclusive);
    double ex_dm = ex().evaluate(b, cfg).tpi.tpi;
    cfg.assume = assume(50, 4, TwoLevelPolicy::Inclusive);
    double in_4w = ex().evaluate(b, cfg).tpi.tpi;
    cfg.assume = assume(50, 4, TwoLevelPolicy::Exclusive);
    double ex_4w = ex().evaluate(b, cfg).tpi.tpi;

    // "about as well": within 10%.
    EXPECT_NEAR(ex_dm / in_4w, 1.0, 0.10);
    // Combining beats either alone.
    EXPECT_LE(ex_4w, ex_dm + 1e-9);
    EXPECT_LE(ex_4w, in_4w + 1e-9);
}

// §8: exclusive caching's envelope is never worse than the
// baseline's over the shared area range.
TEST_F(IntegrationTest, ExclusiveEnvelopeAtOrBelowInclusive)
{
    Benchmark b = Benchmark::Gcc1;
    SystemAssumptions inc = assume(50, 4, TwoLevelPolicy::Inclusive);
    SystemAssumptions exc = assume(50, 4, TwoLevelPolicy::Exclusive);
    Envelope e_inc = Explorer::envelopeOf(ex().sweep(b, inc));
    Envelope e_exc = Explorer::envelopeOf(ex().sweep(b, exc));
    // Mean gap of exclusive against inclusive must not be positive.
    EXPECT_LE(e_exc.meanGapAgainst(e_inc), 1e-3);
}

// §6: doubling L1 cell area for 2x issue helps big-cache systems
// and hurts tiny-cache ones (the dotted/dashed crossover in Figures
// 10-16).
TEST_F(IntegrationTest, DualPortCrossover)
{
    Benchmark b = Benchmark::Gcc1;
    auto tpi_area = [&](std::uint64_t l1, bool dual) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = 0;
        c.assume.dualPortedL1 = dual;
        DesignPoint p = ex().evaluate(b, c);
        return std::pair<double, double>(p.tpi.tpi, p.areaRbe);
    };
    // Same capacity: dual-ported is strictly faster (2x issue).
    EXPECT_LT(tpi_area(32_KiB, true).first, tpi_area(32_KiB, false).first);
    // Fixed area comparison at the small end: a 1K dual-ported pair
    // costs about a 2K single-ported pair but performs worse,
    // because misses dominate.
    auto [t_dual_1k, a_dual_1k] = tpi_area(1_KiB, true);
    auto [t_sp_2k, a_sp_2k] = tpi_area(2_KiB, false);
    EXPECT_NEAR(a_dual_1k / a_sp_2k, 1.0, 0.35);
    EXPECT_GT(t_dual_1k, t_sp_2k);
    // At the large end the tradeoff flips: 64K dual-ported beats
    // 128K single-ported in TPI at comparable area.
    auto [t_dual_64k, a_dual_64k] = tpi_area(64_KiB, true);
    auto [t_sp_128k, a_sp_128k] = tpi_area(128_KiB, false);
    EXPECT_NEAR(a_dual_64k / a_sp_128k, 1.0, 0.35);
    EXPECT_LT(t_dual_64k, t_sp_128k);
}

// The quickstart path: pricing a configuration works end to end and
// produces internally-consistent numbers.
TEST_F(IntegrationTest, FullPipelineConsistency)
{
    SystemConfig c;
    c.l1Bytes = 8_KiB;
    c.l2Bytes = 128_KiB;
    c.assume = assume(50, 4, TwoLevelPolicy::Exclusive);
    DesignPoint p = ex().evaluate(Benchmark::Gcc1, c);
    EXPECT_EQ(p.miss.l2Hits + p.miss.l2Misses, p.miss.l1Misses());
    EXPECT_GE(p.tpi.tpi, p.l1Timing.cycleNs);
    EXPECT_GT(p.miss.swaps, 0u);
    double manual = (p.tpi.baseTimeNs + p.tpi.l2HitTimeNs +
                     p.tpi.l2MissTimeNs) /
                    static_cast<double>(p.miss.instrRefs);
    EXPECT_NEAR(p.tpi.tpi, manual, 1e-9);
}
