/**
 * @file
 * The persistent result store and the sweep cache on top of it.
 *
 * Three layers of guarantees:
 *
 *  - ResultStore (util/result_store.hh): records round-trip across
 *    reopen, later appends supersede, and a damaged file degrades
 *    fail-soft — a flipped byte drops only its record, a torn tail
 *    is truncated back to the last intact record, and only an alien
 *    header refuses to open.
 *
 *  - SweepCache (core/sweep_cache.hh): statistics round-trip
 *    bit-exactly, and a record whose embedded key text disagrees
 *    (hash collision, schema drift) reads as stale, never as wrong
 *    numbers.
 *
 *  - The differential tentpole: over the 64-point reference grid, a
 *    store-backed sweep is byte-identical to an uncached one, a WARM
 *    re-sweep is byte-identical AND >= 10x faster than the cold run
 *    that filled the store, a killed-and-resumed sweep matches an
 *    uninterrupted one, and a corrupted store entry is silently
 *    re-simulated while the sweep completes.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/explorer.hh"
#include "core/sweep_cache.hh"
#include "util/result_store.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/// Long enough that a cold 64-config batch sweep costs real time
/// (hundreds of ms) while a warm one is pricing-only (ms) — the
/// >= 10x requirement then has an order of magnitude of slack.
constexpr std::uint64_t kRefs = 1000000;

std::string
tempPath(const std::string &name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** The 64-point reference grid of bench/batch_sweep_timing.cc. */
std::vector<SystemConfig>
makeGrid()
{
    std::vector<SystemConfig> configs;
    for (std::uint64_t l1 = 1_KiB; l1 <= 128_KiB; l1 *= 2) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = 0;
        configs.push_back(c);
        for (std::uint64_t ratio = 2; ratio <= 128; ratio *= 2) {
            c.l2Bytes = l1 * ratio;
            configs.push_back(c);
        }
    }
    return configs;
}

struct SweepResult
{
    std::vector<DesignPoint> points;
    std::vector<SweepFailure> failures;
    double wallSeconds = 0;
};

/**
 * One complete fail-soft sweep on a fresh evaluator/explorer pair
 * (so the in-memory memo cannot leak between the runs compared),
 * optionally backed by the store at @p store_path.
 */
SweepResult
runSweep(Benchmark b, const std::vector<SystemConfig> &configs,
         const std::string &store_path = "")
{
    EvaluatorOptions opts;
    opts.traceRefs = kRefs;
    if (!store_path.empty()) {
        auto store = std::make_shared<SweepCache>();
        Status s = store->open(store_path);
        EXPECT_TRUE(s.ok()) << s.toString();
        opts.resultStore = std::move(store);
    }
    MissRateEvaluator ev(std::move(opts));
    Explorer ex(ev);
    FailureReport report;
    SweepResult r;
    auto t0 = std::chrono::steady_clock::now();
    r.points = ex.evaluateAll(b, configs, &report);
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    r.failures = report.failures();
    return r;
}

/** Bitwise equality of every priced field of two design points. */
void
expectIdenticalPoint(const DesignPoint &a, const DesignPoint &b,
                     std::size_t i)
{
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(a.config.label(), b.config.label());
    EXPECT_EQ(a.areaRbe, b.areaRbe);
    EXPECT_EQ(a.l1Timing.accessNs, b.l1Timing.accessNs);
    EXPECT_EQ(a.l1Timing.cycleNs, b.l1Timing.cycleNs);
    EXPECT_EQ(a.l2Timing.accessNs, b.l2Timing.accessNs);
    EXPECT_EQ(a.miss.instrRefs, b.miss.instrRefs);
    EXPECT_EQ(a.miss.dataRefs, b.miss.dataRefs);
    EXPECT_EQ(a.miss.l1iMisses, b.miss.l1iMisses);
    EXPECT_EQ(a.miss.l1dMisses, b.miss.l1dMisses);
    EXPECT_EQ(a.miss.l2Hits, b.miss.l2Hits);
    EXPECT_EQ(a.miss.l2Misses, b.miss.l2Misses);
    EXPECT_EQ(a.miss.swaps, b.miss.swaps);
    EXPECT_EQ(a.miss.offchipWritebacks, b.miss.offchipWritebacks);
    EXPECT_EQ(a.tpi.tpi, b.tpi.tpi);
}

/** Points, failure report and derived envelope all byte-identical. */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i)
        expectIdenticalPoint(a.points[i], b.points[i], i);

    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (std::size_t i = 0; i < a.failures.size(); ++i) {
        SCOPED_TRACE("failure " + std::to_string(i));
        EXPECT_EQ(a.failures[i].subject, b.failures[i].subject);
        EXPECT_EQ(a.failures[i].status.code(),
                  b.failures[i].status.code());
        EXPECT_EQ(a.failures[i].status.message(),
                  b.failures[i].status.message());
    }

    Envelope ea = Explorer::envelopeOf(a.points);
    Envelope eb = Explorer::envelopeOf(b.points);
    ASSERT_EQ(ea.points().size(), eb.points().size());
    for (std::size_t i = 0; i < ea.points().size(); ++i) {
        EXPECT_EQ(ea.points()[i].area, eb.points()[i].area);
        EXPECT_EQ(ea.points()[i].tpi, eb.points()[i].tpi);
        EXPECT_EQ(ea.points()[i].label, eb.points()[i].label);
    }
}

} // namespace

// ---------------------------------------------------------------
// ResultStore: the generic append-only file.
// ---------------------------------------------------------------

TEST(ResultStore, RoundTripsAcrossReopen)
{
    std::string path = tempPath("tlc_store_roundtrip.tlrs");
    {
        ResultStore store;
        ASSERT_TRUE(store.open(path).ok());
        EXPECT_EQ(store.size(), 0u);
        ASSERT_TRUE(store.append("alpha", "payload-a").ok());
        ASSERT_TRUE(store.append("beta", std::string("b\0c", 3)).ok());
        std::string got;
        ASSERT_TRUE(store.lookup("alpha", &got));
        EXPECT_EQ(got, "payload-a");
    }
    ResultStore store;
    ASSERT_TRUE(store.open(path).ok());
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.droppedRecords(), 0u);
    std::string got;
    ASSERT_TRUE(store.lookup("beta", &got));
    EXPECT_EQ(got, std::string("b\0c", 3));
    EXPECT_FALSE(store.lookup("gamma", &got));
}

TEST(ResultStore, LaterAppendSupersedesEarlier)
{
    std::string path = tempPath("tlc_store_supersede.tlrs");
    {
        ResultStore store;
        ASSERT_TRUE(store.open(path).ok());
        ASSERT_TRUE(store.append("k", "old").ok());
        ASSERT_TRUE(store.append("k", "new").ok());
    }
    ResultStore store;
    ASSERT_TRUE(store.open(path).ok());
    EXPECT_EQ(store.size(), 1u);
    std::string got;
    ASSERT_TRUE(store.lookup("k", &got));
    EXPECT_EQ(got, "new");
}

TEST(ResultStore, FlippedByteDropsOnlyThatRecord)
{
    std::string path = tempPath("tlc_store_bitflip.tlrs");
    long firstPayloadAt = 0;
    {
        ResultStore store;
        ASSERT_TRUE(store.open(path).ok());
        ASSERT_TRUE(store.append("victim", "payload-one").ok());
        ASSERT_TRUE(store.append("survivor", "payload-two").ok());
    }
    // Header (8) + lengths (8) + key ("victim") puts the first
    // record's payload at byte 22; flip one bit inside it.
    firstPayloadAt = 8 + 8 + 6 + 2;
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), static_cast<std::size_t>(firstPayloadAt));
    bytes[firstPayloadAt] ^= 0x40;
    writeFile(path, bytes);

    ResultStore store;
    ASSERT_TRUE(store.open(path).ok());
    EXPECT_EQ(store.droppedRecords(), 1u);
    EXPECT_EQ(store.size(), 1u);
    std::string got;
    EXPECT_FALSE(store.lookup("victim", &got));
    ASSERT_TRUE(store.lookup("survivor", &got));
    EXPECT_EQ(got, "payload-two");
}

TEST(ResultStore, TornTailIsTruncatedAndAppendsContinue)
{
    std::string path = tempPath("tlc_store_torn.tlrs");
    {
        ResultStore store;
        ASSERT_TRUE(store.open(path).ok());
        ASSERT_TRUE(store.append("intact", "kept").ok());
    }
    std::string bytes = readFile(path);
    std::size_t intactSize = bytes.size();
    // A record cut off mid-write: plausible lengths, missing data.
    writeFile(path, bytes + std::string("\x05\x00\x00\x00\x09\x00", 6));

    ResultStore store;
    ASSERT_TRUE(store.open(path).ok());
    EXPECT_EQ(store.droppedRecords(), 1u);
    std::string got;
    ASSERT_TRUE(store.lookup("intact", &got));
    EXPECT_EQ(got, "kept");
    // The torn bytes are gone and the file grows cleanly again.
    ASSERT_TRUE(store.append("after", "recovery").ok());
    store.close();

    ResultStore reopened;
    ASSERT_TRUE(reopened.open(path).ok());
    EXPECT_EQ(reopened.droppedRecords(), 0u);
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_GE(readFile(path).size(), intactSize);
}

TEST(ResultStore, ZeroRecordFileOpensEmpty)
{
    std::string path = tempPath("tlc_store_empty.tlrs");
    { // Header only: a store created and closed without appends.
        ResultStore store;
        ASSERT_TRUE(store.open(path).ok());
    }
    ResultStore store;
    ASSERT_TRUE(store.open(path).ok());
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.droppedRecords(), 0u);
}

TEST(ResultStore, AlienHeaderRefusesToOpen)
{
    std::string path = tempPath("tlc_store_alien.tlrs");
    writeFile(path, std::string("NOPE\x01\x00\x00\x00", 8));
    ResultStore store;
    Status s = store.open(path);
    EXPECT_EQ(s.code(), StatusCode::BadMagic);
    EXPECT_FALSE(store.isOpen());

    writeFile(path, std::string("TLRS\x63\x00\x00\x00", 8));
    Status v = store.open(path);
    EXPECT_EQ(v.code(), StatusCode::VersionMismatch);
    EXPECT_FALSE(store.isOpen());
}

// ---------------------------------------------------------------
// SweepCache: domain serialization and collision safety.
// ---------------------------------------------------------------

TEST(SweepCache, StatsRoundTripBitExactly)
{
    std::string path = tempPath("tlc_cache_roundtrip.tlrs");
    SystemConfig c;
    c.l1Bytes = 8_KiB;
    c.l2Bytes = 256_KiB;
    std::string key = SweepCache::keyText("synthetic:test", 1000, c);

    HierarchyStats s;
    s.instrRefs = 0x0123456789abcdefull;
    s.dataRefs = 42;
    s.l1iMisses = 7;
    s.l1dMisses = 0xffffffffffffffffull;
    s.l2Hits = 1;
    s.l2Misses = 2;
    s.swaps = 3;
    s.offchipWritebacks = 4;

    SweepCache cache;
    ASSERT_TRUE(cache.open(path).ok());
    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.store(key, s);

    SweepCacheOutcome outcome = SweepCacheOutcome::Miss;
    std::optional<HierarchyStats> got = cache.lookup(key, &outcome);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(outcome, SweepCacheOutcome::Hit);
    EXPECT_EQ(got->instrRefs, s.instrRefs);
    EXPECT_EQ(got->dataRefs, s.dataRefs);
    EXPECT_EQ(got->l1iMisses, s.l1iMisses);
    EXPECT_EQ(got->l1dMisses, s.l1dMisses);
    EXPECT_EQ(got->l2Hits, s.l2Hits);
    EXPECT_EQ(got->l2Misses, s.l2Misses);
    EXPECT_EQ(got->swaps, s.swaps);
    EXPECT_EQ(got->offchipWritebacks, s.offchipWritebacks);
}

TEST(SweepCache, KeyTextMismatchReadsAsStaleNotWrongStats)
{
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    std::string key = SweepCache::keyText("synthetic:real", 500, c);
    std::string other = SweepCache::keyText("synthetic:other", 500, c);
    std::string keyHash = SweepCache::hashKey(key);
    std::string otherHash = SweepCache::hashKey(other);
    ASSERT_NE(keyHash, otherHash);

    HierarchyStats s;
    s.instrRefs = 99;

    // Capture OTHER's serialized payload (which embeds OTHER's key
    // text) by writing it to a scratch store and reading it back
    // through the generic layer.
    std::string payload;
    {
        std::string scratch = tempPath("tlc_cache_stale_src.tlrs");
        SweepCache writer;
        ASSERT_TRUE(writer.open(scratch).ok());
        writer.store(other, s);
        writer.close();
        ResultStore reader;
        ASSERT_TRUE(reader.open(scratch).ok());
        ASSERT_TRUE(reader.lookup(otherHash, &payload));
    }

    // Simulate a hash collision: plant that payload under KEY's
    // store hash. The record is CRC-intact, so the generic layer
    // serves it — only the embedded key text disagrees.
    std::string path = tempPath("tlc_cache_stale.tlrs");
    {
        ResultStore planter;
        ASSERT_TRUE(planter.open(path).ok());
        ASSERT_TRUE(planter.append(keyHash, payload).ok());
    }

    SweepCache cache;
    ASSERT_TRUE(cache.open(path).ok());
    SweepCacheOutcome outcome = SweepCacheOutcome::Hit;
    EXPECT_FALSE(cache.lookup(key, &outcome).has_value());
    EXPECT_EQ(outcome, SweepCacheOutcome::Stale);
    // The honest key simply misses (its hash is absent here).
    EXPECT_FALSE(cache.lookup(other, &outcome).has_value());
    EXPECT_EQ(outcome, SweepCacheOutcome::Miss);
}

// ---------------------------------------------------------------
// The differential tentpole: store-backed sweeps over the 64-point
// reference grid.
// ---------------------------------------------------------------

TEST(ResultStoreDifferential, WarmResweepIsByteIdenticalAndTenTimesFaster)
{
    std::vector<SystemConfig> grid = makeGrid();
    ASSERT_EQ(grid.size(), 64u);
    std::string path = tempPath("tlc_diff_warm.tlrs");

    SweepResult uncached = runSweep(Benchmark::Gcc1, grid);
    SweepResult cold = runSweep(Benchmark::Gcc1, grid, path);
    SweepResult warm = runSweep(Benchmark::Gcc1, grid, path);

    EXPECT_EQ(uncached.points.size(), 64u);
    EXPECT_TRUE(uncached.failures.empty());
    expectIdentical(uncached, cold);
    expectIdentical(uncached, warm);

    // The store answered every point, so the warm run never touched
    // the trace — it should beat the cold run by far more than the
    // promised order of magnitude.
    EXPECT_GE(cold.wallSeconds, warm.wallSeconds * 10)
        << "cold " << cold.wallSeconds << "s vs warm "
        << warm.wallSeconds << "s";
}

TEST(ResultStoreDifferential, KilledAndResumedSweepMatchesUninterrupted)
{
    std::vector<SystemConfig> grid = makeGrid();
    std::string path = tempPath("tlc_diff_resume.tlrs");

    // "Kill" a sweep after 23 of 64 points: run only a prefix, then
    // drop the evaluator (as a killed process would).
    std::vector<SystemConfig> prefix(grid.begin(), grid.begin() + 23);
    SweepResult partial = runSweep(Benchmark::Gcc1, prefix, path);
    ASSERT_EQ(partial.points.size(), 23u);
    {
        SweepCache probe;
        ASSERT_TRUE(probe.open(path).ok());
        EXPECT_GT(probe.entries(), 0u);
    }

    // The resumed run serves the prefix from the store and simulates
    // only the tail; it must match an uninterrupted uncached run
    // byte for byte.
    SweepResult resumed = runSweep(Benchmark::Gcc1, grid, path);
    SweepResult uninterrupted = runSweep(Benchmark::Gcc1, grid);
    expectIdentical(uninterrupted, resumed);
}

TEST(ResultStoreDifferential, CorruptedEntryIsResimulatedAndSweepCompletes)
{
    std::vector<SystemConfig> grid = makeGrid();
    std::string path = tempPath("tlc_diff_corrupt.tlrs");

    SweepResult baseline = runSweep(Benchmark::Gcc1, grid);
    SweepResult cold = runSweep(Benchmark::Gcc1, grid, path);
    expectIdentical(baseline, cold);

    // Flip one byte in the middle of the store: some record's CRC
    // now disagrees and that entry is dropped at open.
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() / 2] ^= 0x10;
    writeFile(path, bytes);
    {
        SweepCache probe;
        ASSERT_TRUE(probe.open(path).ok());
        EXPECT_GE(probe.droppedRecords(), 1u);
        EXPECT_LT(probe.entries(), 64u);
    }

    // The sweep completes, re-simulating the lost point(s), and
    // still matches the uncached baseline byte for byte.
    SweepResult repaired = runSweep(Benchmark::Gcc1, grid, path);
    expectIdentical(baseline, repaired);

    // The re-simulated points were appended back: a further run is
    // fully warm again.
    SweepCache probe;
    ASSERT_TRUE(probe.open(path).ok());
    EXPECT_EQ(probe.entries(), 64u);
}
