/**
 * @file
 * Tests for system configuration, design-space enumeration, the
 * evaluator's memoization, and the explorer's pricing.
 */

#include <gtest/gtest.h>

#include "core/explorer.hh"
#include "util/units.hh"

using namespace tlc;

TEST(SystemConfig, LabelsMatchPaperNotation)
{
    SystemConfig c;
    c.l1Bytes = 32_KiB;
    c.l2Bytes = 256_KiB;
    EXPECT_EQ(c.label(), "32:256");
    c.l2Bytes = 0;
    EXPECT_EQ(c.label(), "32:0");
}

TEST(SystemConfig, ParamsReflectAssumptions)
{
    SystemConfig c;
    c.l1Bytes = 8_KiB;
    c.l2Bytes = 64_KiB;
    c.assume.l2Assoc = 4;
    EXPECT_EQ(c.l1Params().assoc, 1u);
    EXPECT_EQ(c.l1Params().sizeBytes, 8_KiB);
    EXPECT_EQ(c.l2Params().assoc, 4u);
    EXPECT_EQ(c.l2Params().repl, ReplPolicy::Random);
}

TEST(SystemAssumptions, ToStringIsDescriptive)
{
    SystemAssumptions a;
    a.offchipNs = 200;
    a.l2Assoc = 1;
    a.policy = TwoLevelPolicy::Exclusive;
    a.dualPortedL1 = true;
    std::string s = a.toString();
    EXPECT_NE(s.find("200"), std::string::npos);
    EXPECT_NE(s.find("direct-mapped"), std::string::npos);
    EXPECT_NE(s.find("exclusive"), std::string::npos);
    EXPECT_NE(s.find("dual-ported"), std::string::npos);
}

TEST(DesignSpace, L1SizesSpanPaperRange)
{
    const auto &sizes = DesignSpace::l1Sizes();
    ASSERT_EQ(sizes.size(), 9u);
    EXPECT_EQ(sizes.front(), 1_KiB);
    EXPECT_EQ(sizes.back(), 256_KiB);
}

TEST(DesignSpace, L2AtLeastTwiceL1)
{
    auto l2s = DesignSpace::l2SizesFor(8_KiB);
    ASSERT_FALSE(l2s.empty());
    EXPECT_EQ(l2s.front(), 16_KiB);
    EXPECT_EQ(l2s.back(), 256_KiB);
    // 256K L1 -> no valid (larger) L2.
    EXPECT_TRUE(DesignSpace::l2SizesFor(256_KiB).empty());
}

TEST(DesignSpace, EnumerateContainsPaperConfigs)
{
    SystemAssumptions a;
    auto configs = DesignSpace::enumerate(a);
    auto find = [&](const std::string &label) {
        for (const auto &c : configs)
            if (c.label() == label)
                return true;
        return false;
    };
    // Labels that appear in Figure 5.
    EXPECT_TRUE(find("1:0"));
    EXPECT_TRUE(find("1:2"));
    EXPECT_TRUE(find("32:256"));
    EXPECT_TRUE(find("256:0"));
    EXPECT_TRUE(find("128:256"));
    EXPECT_FALSE(find("256:256")); // L2 must exceed L1
    EXPECT_FALSE(find("32:32"));
}

TEST(DesignSpace, SingleAndTwoLevelToggles)
{
    SystemAssumptions a;
    auto single = DesignSpace::enumerate(a, true, false);
    auto two = DesignSpace::enumerate(a, false, true);
    EXPECT_EQ(single.size(), 9u);
    for (const auto &c : single)
        EXPECT_FALSE(c.hasL2());
    for (const auto &c : two)
        EXPECT_TRUE(c.hasL2());
}

TEST(Evaluator, MemoizesResults)
{
    MissRateEvaluator ev(50000);
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    c.l2Bytes = 0;
    HierarchyStats a = ev.tryMissStats(Benchmark::Espresso, c).value();
    EXPECT_EQ(ev.memoSize(), 1u);
    HierarchyStats b = ev.tryMissStats(Benchmark::Espresso, c).value();
    EXPECT_EQ(ev.memoSize(), 1u); // second call answered from cache
    EXPECT_EQ(a.totalRefs(), b.totalRefs());
    EXPECT_EQ(a.l1Misses(), b.l1Misses());
}

TEST(Evaluator, KeyDistinguishesPolicies)
{
    MissRateEvaluator ev(50000);
    SystemConfig inc;
    inc.l1Bytes = 1_KiB;
    inc.l2Bytes = 8_KiB;
    inc.assume.policy = TwoLevelPolicy::Inclusive;
    SystemConfig exc = inc;
    exc.assume.policy = TwoLevelPolicy::Exclusive;
    (void)ev.tryMissStats(Benchmark::Gcc1, inc).value();
    EXPECT_EQ(ev.memoSize(), 1u);
    (void)ev.tryMissStats(Benchmark::Gcc1, exc).value();
    EXPECT_EQ(ev.memoSize(), 2u); // distinct memo entries
}

TEST(Evaluator, TimingOnlyKnobsShareMissResults)
{
    MissRateEvaluator ev(50000);
    SystemConfig a;
    a.l1Bytes = 4_KiB;
    a.l2Bytes = 32_KiB;
    SystemConfig b = a;
    b.assume.offchipNs = 200;
    b.assume.dualPortedL1 = true;
    HierarchyStats sa = ev.tryMissStats(Benchmark::Li, a).value();
    HierarchyStats sb = ev.tryMissStats(Benchmark::Li, b).value();
    EXPECT_EQ(ev.memoSize(), 1u); // one shared memo entry
    EXPECT_EQ(sa.l1Misses(), sb.l1Misses());
    EXPECT_EQ(sa.l2Misses, sb.l2Misses);
}

TEST(Evaluator, WarmupExcluded)
{
    MissRateEvaluator ev(100000, 0.1);
    EXPECT_EQ(ev.warmupRefs(), 10000u);
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    c.l2Bytes = 0;
    HierarchyStats s = ev.tryMissStats(Benchmark::Doduc, c).value();
    EXPECT_EQ(s.totalRefs(), 90000u);
}

TEST(Explorer, DesignPointIsConsistent)
{
    MissRateEvaluator ev(100000);
    Explorer ex(ev);
    SystemConfig c;
    c.l1Bytes = 4_KiB;
    c.l2Bytes = 32_KiB;
    DesignPoint p = ex.evaluate(Benchmark::Gcc1, c);
    EXPECT_GT(p.areaRbe, 0);
    EXPECT_GT(p.l1Timing.cycleNs, 0);
    EXPECT_GT(p.l2Timing.cycleNs, p.l1Timing.cycleNs * 0.5);
    EXPECT_GT(p.tpi.tpi, p.l1Timing.cycleNs); // misses cost something
    EXPECT_EQ(p.miss.l2Hits + p.miss.l2Misses, p.miss.l1Misses());
}

TEST(Explorer, AreaAddsL2)
{
    MissRateEvaluator ev(50000);
    Explorer ex(ev);
    SystemConfig single;
    single.l1Bytes = 8_KiB;
    single.l2Bytes = 0;
    SystemConfig two = single;
    two.l2Bytes = 64_KiB;
    EXPECT_GT(ex.areaOf(two), ex.areaOf(single));
}

TEST(Explorer, DualPortedDoublesL1AreaOnly)
{
    MissRateEvaluator ev(50000);
    Explorer ex(ev);
    SystemConfig base;
    base.l1Bytes = 8_KiB;
    base.l2Bytes = 64_KiB;
    SystemConfig dual = base;
    dual.assume.dualPortedL1 = true;
    double a_base = ex.areaOf(base);
    double a_dual = ex.areaOf(dual);
    SystemConfig l1only = base;
    l1only.l2Bytes = 0;
    double l1_area = ex.areaOf(l1only);
    EXPECT_NEAR(a_dual - a_base, l1_area, 1.0);
}

TEST(Explorer, SweepCoversWholeSpace)
{
    MissRateEvaluator ev(50000);
    Explorer ex(ev);
    SystemAssumptions a;
    auto points = ex.sweep(Benchmark::Espresso, a);
    EXPECT_EQ(points.size(), DesignSpace::enumerate(a).size());
}

TEST(Explorer, EnvelopeIsPareto)
{
    MissRateEvaluator ev(100000);
    Explorer ex(ev);
    SystemAssumptions a;
    auto points = ex.sweep(Benchmark::Gcc1, a);
    Envelope env = Explorer::envelopeOf(points);
    ASSERT_FALSE(env.empty());
    for (const auto &p : points)
        EXPECT_GE(p.tpi.tpi + 1e-12, env.bestTpiWithin(p.areaRbe));
}
