/**
 * @file
 * Tests for the synthetic reference-stream generators: determinism,
 * range containment, and the locality structure each is meant to
 * produce.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "trace/streams.hh"

using namespace tlc;

namespace {

template <typename S>
std::vector<std::uint32_t>
take(S &s, int n)
{
    std::vector<std::uint32_t> v;
    v.reserve(n);
    for (int i = 0; i < n; ++i)
        v.push_back(s.next());
    return v;
}

} // namespace

TEST(SequentialStream, Deterministic)
{
    SequentialStream a(0x1000, 4096, 2, 8, 0.2, 4, 42);
    SequentialStream b(0x1000, 4096, 2, 8, 0.2, 4, 42);
    EXPECT_EQ(take(a, 500), take(b, 500));
}

TEST(SequentialStream, PureSweepIsUnitStride)
{
    SequentialStream s(0x1000, 256, 1, 8, 0.0, 1, 1);
    auto v = take(s, 32); // one full pass of 256/8 = 32 elements
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(v[i], 0x1000u + 8 * i);
    // Wraps to the start.
    EXPECT_EQ(s.next(), 0x1000u);
}

TEST(SequentialStream, RoundRobinsArrays)
{
    SequentialStream s(0x1000, 64, 3, 8, 0.0, 1, 1);
    auto v = take(s, 24); // 8 elements per array, 3 arrays
    EXPECT_EQ(v[0], 0x1000u);
    EXPECT_EQ(v[8], 0x1000u + 64);  // second array
    EXPECT_EQ(v[16], 0x1000u + 128); // third array
}

TEST(SequentialStream, StaysInRegion)
{
    SequentialStream s(0x1000, 4096, 2, 8, 0.3, 8, 7);
    for (auto a : take(s, 5000)) {
        EXPECT_GE(a, 0x1000u);
        EXPECT_LT(a, 0x1000u + 2 * 4096u);
    }
}

TEST(SequentialStream, ReuseRevisitsRecentAddresses)
{
    SequentialStream s(0x1000, 1 << 20, 1, 8, 0.5, 4, 3);
    auto v = take(s, 10000);
    // With 50% reuse the stream must revisit addresses; a pure sweep
    // over 1 MB would never repeat within 10k refs.
    std::set<std::uint32_t> uniq(v.begin(), v.end());
    EXPECT_LT(uniq.size(), v.size());
}

TEST(StackDistStream, Deterministic)
{
    StackDistStream a(0x0, 1 << 20, 32, 0.01, 0.1, 0.7, 1.0, 9);
    StackDistStream b(0x0, 1 << 20, 32, 0.01, 0.1, 0.7, 1.0, 9);
    EXPECT_EQ(take(a, 2000), take(b, 2000));
}

TEST(StackDistStream, StaysInRegion)
{
    const std::uint32_t base = 0x10000000, bytes = 1 << 16;
    StackDistStream s(base, bytes, 32, 0.05, 0.1, 0.7, 1.0, 9);
    for (auto a : take(s, 20000)) {
        EXPECT_GE(a, base);
        EXPECT_LT(a, base + bytes);
    }
}

TEST(StackDistStream, StackBoundedByRegion)
{
    const std::uint32_t bytes = 1 << 12; // 128 objects at 32 B
    StackDistStream s(0x0, bytes, 32, 0.5, 0.1, 0.5, 1.0, 9);
    take(s, 10000);
    EXPECT_LE(s.stackSize(), 128u);
}

TEST(StackDistStream, TemporalLocalityDominates)
{
    StackDistStream s(0x0, 1 << 22, 32, 0.002, 0.1, 0.7, 1.0, 9);
    auto v = take(s, 50000);
    // Count re-references within a short window: with a geometric
    // near-top component they must be frequent.
    std::set<std::uint32_t> recent;
    std::vector<std::uint32_t> window;
    int close_reuse = 0;
    for (auto a : v) {
        std::uint32_t obj = a / 32;
        if (recent.count(obj))
            ++close_reuse;
        window.push_back(obj);
        recent.insert(obj);
        if (window.size() > 64) {
            recent.erase(window.front());
            window.erase(window.begin());
        }
    }
    EXPECT_GT(close_reuse, 50000 / 4);
}

TEST(ZipfStream, Deterministic)
{
    ZipfStream a(0x0, 1 << 16, 16, 1.1, 5);
    ZipfStream b(0x0, 1 << 16, 16, 1.1, 5);
    EXPECT_EQ(take(a, 1000), take(b, 1000));
}

TEST(ZipfStream, StaysInRegion)
{
    const std::uint32_t base = 0x30000000, bytes = 1 << 16;
    ZipfStream s(base, bytes, 16, 1.1, 5);
    for (auto a : take(s, 10000)) {
        EXPECT_GE(a, base);
        EXPECT_LT(a, base + bytes);
    }
}

TEST(ZipfStream, HotSetIsScattered)
{
    // The most popular object must not be at the region start
    // (ranks are scattered by a fixed multiplier).
    ZipfStream s(0x0, 1 << 16, 16, 1.4, 5);
    std::map<std::uint32_t, int> freq;
    for (int i = 0; i < 20000; ++i)
        ++freq[s.next() / 16];
    auto hottest = std::max_element(
        freq.begin(), freq.end(),
        [](auto &a, auto &b) { return a.second < b.second; });
    EXPECT_NE(hottest->first, 0u);
}

TEST(PointerChaseStream, VisitsEveryLineBeforeRepeating)
{
    const std::uint32_t bytes = 1 << 10; // 64 lines at 16 B
    PointerChaseStream s(0x0, bytes, 16, 3);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 64; ++i)
        seen.insert(s.next());
    EXPECT_EQ(seen.size(), 64u); // full cycle: all distinct
}

TEST(PointerChaseStream, Deterministic)
{
    PointerChaseStream a(0x0, 1 << 12, 16, 3);
    PointerChaseStream b(0x0, 1 << 12, 16, 3);
    EXPECT_EQ(take(a, 1000), take(b, 1000));
}

TEST(LoopCodeStream, Deterministic)
{
    LoopCodeParams p;
    LoopCodeStream a(p, 17), b(p, 17);
    EXPECT_EQ(take(a, 5000), take(b, 5000));
}

TEST(LoopCodeStream, StaysInCodeSegment)
{
    LoopCodeParams p;
    p.base = 0x00400000;
    p.codeBytes = 64 * 1024;
    LoopCodeStream s(p, 17);
    for (auto a : take(s, 20000)) {
        EXPECT_GE(a, p.base);
        EXPECT_LT(a, p.base + p.codeBytes);
    }
}

TEST(LoopCodeStream, AddressesAreInstructionAligned)
{
    LoopCodeParams p;
    LoopCodeStream s(p, 17);
    for (auto a : take(s, 5000))
        EXPECT_EQ(a % 4, 0u);
}

TEST(LoopCodeStream, MostlySequentialFetch)
{
    LoopCodeParams p;
    p.loopStartProb = 0.01;
    p.callProb = 0.002;
    LoopCodeStream s(p, 17);
    auto v = take(s, 20000);
    int sequential = 0;
    for (std::size_t i = 1; i < v.size(); ++i)
        sequential += (v[i] == v[i - 1] + 4);
    // Instruction fetch is overwhelmingly sequential.
    EXPECT_GT(sequential, 18000);
}

TEST(LoopCodeStream, LoopsReexecuteCode)
{
    LoopCodeParams p;
    p.loopStartProb = 0.05;
    p.avgLoopIters = 20;
    LoopCodeStream s(p, 17);
    auto v = take(s, 20000);
    std::set<std::uint32_t> uniq(v.begin(), v.end());
    // Heavy looping means far fewer unique addresses than fetches.
    EXPECT_LT(uniq.size() * 3, v.size());
}

TEST(LoopCodeStream, SkewConcentratesFunctions)
{
    auto unique_lines = [](double zipf_s) {
        LoopCodeParams p;
        p.codeBytes = 128 * 1024;
        p.numFuncs = 128;
        p.zipfS = zipf_s;
        LoopCodeStream s(p, 23);
        std::set<std::uint32_t> lines;
        for (int i = 0; i < 50000; ++i)
            lines.insert(s.next() / 16);
        return lines.size();
    };
    // Stronger skew => smaller instruction working set.
    EXPECT_LT(unique_lines(1.4), unique_lines(0.3));
}
