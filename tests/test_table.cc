/**
 * @file
 * Unit tests for the table printer and label formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

using namespace tlc;

TEST(Table, AsciiLayout)
{
    Table t({"name", "value"});
    t.beginRow();
    t.cell("alpha");
    t.cell(std::uint64_t{42});
    t.beginRow();
    t.cell("b");
    t.cell(7);
    std::ostringstream os;
    t.printAscii(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvLayout)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"x", "y"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\nx,y\n");
}

TEST(Table, NumericFormatting)
{
    Table t({"v"});
    t.beginRow();
    t.cell(3.14159, 2);
    EXPECT_EQ(t.at(0, 0), "3.14");
}

TEST(Table, CountsRowsAndCols)
{
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.numCols(), 3u);
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(FormatSize, HumanReadable)
{
    EXPECT_EQ(formatSize(0), "0");
    EXPECT_EQ(formatSize(512), "512");
    EXPECT_EQ(formatSize(1024), "1K");
    EXPECT_EQ(formatSize(32 * 1024), "32K");
    EXPECT_EQ(formatSize(1024 * 1024), "1M");
}

TEST(FormatConfigLabel, MatchesPaperNotation)
{
    EXPECT_EQ(formatConfigLabel(1024, 0), "1:0");
    EXPECT_EQ(formatConfigLabel(32 * 1024, 256 * 1024), "32:256");
    EXPECT_EQ(formatConfigLabel(8 * 1024, 64 * 1024), "8:64");
}
