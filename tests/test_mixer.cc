/**
 * @file
 * Tests for the workload mixer: interleaving, weights, and edge
 * cases not covered by the per-benchmark workload tests.
 */

#include <gtest/gtest.h>

#include "trace/streams.hh"
#include "trace/workload.hh"

using namespace tlc;

namespace {

/** A stream that returns a fixed address, for composition checks. */
class ConstStream : public RefStream
{
  public:
    explicit ConstStream(std::uint32_t addr) : addr_(addr) {}
    std::uint32_t next() override { return addr_; }

  private:
    std::uint32_t addr_;
};

std::unique_ptr<RefStream>
code()
{
    LoopCodeParams p;
    return std::make_unique<LoopCodeStream>(p, 3);
}

} // namespace

TEST(Mixer, ZeroDataRatioGivesInstructionOnlyTrace)
{
    WorkloadMixer m(code(), 0.0, 0.0, 9);
    TraceBuffer buf;
    m.generate(buf, 5000);
    EXPECT_EQ(buf.totalRefs(), 5000u);
    EXPECT_EQ(buf.dataRefs(), 0u);
}

TEST(Mixer, DataRatioApproximatelyHonoured)
{
    WorkloadMixer m(code(), 0.5, 0.3, 9);
    m.addDataStream(std::make_unique<ConstStream>(0x10000000), 1.0);
    TraceBuffer buf;
    m.generate(buf, 60000);
    double ratio = static_cast<double>(buf.dataRefs()) /
                   static_cast<double>(buf.instrRefs());
    EXPECT_NEAR(ratio, 0.5, 0.03);
}

TEST(Mixer, StoreFractionApproximatelyHonoured)
{
    WorkloadMixer m(code(), 0.5, 0.3, 9);
    m.addDataStream(std::make_unique<ConstStream>(0x10000000), 1.0);
    TraceBuffer buf;
    m.generate(buf, 60000);
    double frac = static_cast<double>(buf.storeRefs()) /
                  static_cast<double>(buf.dataRefs());
    EXPECT_NEAR(frac, 0.3, 0.03);
}

TEST(Mixer, WeightsSelectStreamsProportionally)
{
    WorkloadMixer m(code(), 1.0, 0.0, 9);
    m.addDataStream(std::make_unique<ConstStream>(0x10000000), 3.0);
    m.addDataStream(std::make_unique<ConstStream>(0x20000000), 1.0);
    TraceBuffer buf;
    m.generate(buf, 80000);
    std::uint64_t a = 0, b = 0;
    for (const auto &rec : buf) {
        if (rec.type == RefType::Instr)
            continue;
        if (rec.addr == 0x10000000)
            ++a;
        else if (rec.addr == 0x20000000)
            ++b;
    }
    ASSERT_GT(b, 0u);
    EXPECT_NEAR(static_cast<double>(a) / static_cast<double>(b), 3.0,
                0.3);
}

TEST(Mixer, ExactRequestedLength)
{
    // Regardless of interleaving, the buffer ends at exactly the
    // requested length (the last record may be an instruction).
    WorkloadMixer m(code(), 0.9, 0.5, 9);
    m.addDataStream(std::make_unique<ConstStream>(0x10000000), 1.0);
    for (std::uint64_t n : {1u, 2u, 3u, 1001u}) {
        TraceBuffer buf;
        m.generate(buf, n);
        EXPECT_EQ(buf.totalRefs(), n);
    }
}

TEST(Mixer, AppendsToExistingBuffer)
{
    WorkloadMixer m(code(), 0.0, 0.0, 9);
    TraceBuffer buf;
    buf.append(0xdead0000, RefType::Load);
    m.generate(buf, 10);
    EXPECT_EQ(buf.totalRefs(), 11u);
    EXPECT_EQ(buf[0].addr, 0xdead0000u);
}

TEST(Mixer, FirstRecordIsInstruction)
{
    WorkloadMixer m(code(), 1.0, 0.0, 9);
    m.addDataStream(std::make_unique<ConstStream>(0x10000000), 1.0);
    TraceBuffer buf;
    m.generate(buf, 100);
    EXPECT_EQ(buf[0].type, RefType::Instr);
}
