/**
 * @file
 * Tests for the per-access energy model and the paper's §1 claim
 * that two-level configurations use less power at equal area.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "timing/access_time.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

SramGeometry
geom(std::uint64_t size, std::uint32_t assoc)
{
    return SramGeometry{size, 16, assoc, 32, 64};
}

double
optimalEnergy(std::uint64_t size, std::uint32_t assoc,
              bool dual = false)
{
    static AccessTimeModel timing;
    static EnergyModel energy;
    TimingResult t = timing.optimize(geom(size, assoc));
    return energy.accessEnergy(geom(size, assoc), t.dataOrg, t.tagOrg,
                               dual).total();
}

} // namespace

TEST(EnergyModel, BreakdownComponentsPositive)
{
    EnergyModel m;
    AccessTimeModel timing;
    TimingResult t = timing.optimize(geom(32_KiB, 4));
    EnergyBreakdown e =
        m.accessEnergy(geom(32_KiB, 4), t.dataOrg, t.tagOrg);
    EXPECT_GT(e.decoder, 0);
    EXPECT_GT(e.wordline, 0);
    EXPECT_GT(e.bitline, 0);
    EXPECT_GT(e.sense, 0);
    EXPECT_GT(e.compare, 0);
    EXPECT_GT(e.output, 0);
    EXPECT_GT(e.routing, 0);
    EXPECT_NEAR(e.total(),
                e.decoder + e.wordline + e.bitline + e.sense +
                    e.compare + e.output + e.routing,
                1e-12);
}

TEST(EnergyModel, GrowsWithCacheSize)
{
    // §1: bigger arrays switch more capacitance per access. Start
    // at 2 KB: the 1 KB timing-optimal organization happens to be a
    // wide flat array whose sense-amp row costs slightly more than
    // the 2 KB organization — an organization quirk, not a trend.
    double prev = 0;
    for (std::uint64_t s = 2_KiB; s <= 256_KiB; s *= 4) {
        double e = optimalEnergy(s, 1);
        EXPECT_GT(e, prev) << s;
        prev = e;
    }
}

TEST(EnergyModel, BigCacheSubstantiallyMoreExpensive)
{
    // The claim needs a real gap, not epsilon.
    EXPECT_GT(optimalEnergy(256_KiB, 1), 1.5 * optimalEnergy(4_KiB, 1));
}

TEST(EnergyModel, DualPortedCostsDouble)
{
    EXPECT_NEAR(optimalEnergy(8_KiB, 1, true),
                2.0 * optimalEnergy(8_KiB, 1, false), 1e-9);
}

TEST(EnergyModel, PerReferenceArithmetic)
{
    EnergyModel m;
    HierarchyStats s;
    s.instrRefs = 80;
    s.dataRefs = 20;
    s.l1iMisses = 8;
    s.l1dMisses = 2;
    s.l2Hits = 6;
    s.l2Misses = 4;
    // E = (100*10 + 10*50 + 4*4000)/100.
    double e = m.energyPerReference(s, 10.0, 50.0);
    EXPECT_NEAR(e, (1000.0 + 500.0 + 16000.0) / 100.0, 1e-9);
}

TEST(EnergyModel, PerReferenceEmptyStatsIsZero)
{
    EnergyModel m;
    EXPECT_EQ(m.energyPerReference(HierarchyStats{}, 10, 50), 0.0);
}

TEST(EnergyModel, TwoLevelBeatsSingleLevelAtEqualArea)
{
    // §1 advantage five: "a chip with a two-level cache will usually
    // use less power than one with a single-level organization"
    // when most accesses hit the small L1. Compare a 64K single
    // level against 8K L1 + 64K L2 with a 5% L1 miss rate.
    EnergyModel m;
    double e_64k = optimalEnergy(64_KiB, 1);
    double e_8k = optimalEnergy(8_KiB, 1);
    double e_l2 = optimalEnergy(64_KiB, 4);

    HierarchyStats s;
    s.instrRefs = 1000;
    s.l1iMisses = 50; // 5% miss
    s.l2Hits = 45;
    s.l2Misses = 5;

    HierarchyStats single = s;
    single.l1iMisses = 40; // the bigger cache misses a little less
    single.l2Hits = 0;
    single.l2Misses = 40;

    double two_level = m.energyPerReference(s, e_8k, e_l2);
    double one_level = m.energyPerReference(single, e_64k, 0.0);
    EXPECT_LT(two_level, one_level);
}
