/**
 * @file
 * Tests for stream buffers (Jouppi 1990 prefetch FIFOs).
 */

#include <gtest/gtest.h>

#include "cache/single_level.hh"
#include "cache/stream_buffer.hh"
#include "trace/workload.hh"

using namespace tlc;

namespace {

CacheParams
dm(std::uint64_t size)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = 1;
    return p;
}

TraceRecord
iref(std::uint32_t a)
{
    return {a, RefType::Instr};
}

} // namespace

TEST(StreamBuffer, ReallocateStartsAtNextLine)
{
    StreamBuffer b(4);
    EXPECT_FALSE(b.valid());
    b.reallocate(100);
    EXPECT_TRUE(b.valid());
    EXPECT_TRUE(b.headMatches(101));
    EXPECT_FALSE(b.headMatches(100));
    b.advance();
    EXPECT_TRUE(b.headMatches(102));
}

TEST(StreamBufferHierarchy, SequentialStreamCaughtAfterFirstMiss)
{
    // A long sequential sweep: the first line misses off-chip, every
    // subsequent line hits the stream buffer.
    StreamBufferHierarchy h(dm(1024), 1, 4);
    for (std::uint32_t line = 1000; line < 1200; ++line) {
        for (int w = 0; w < 4; ++w) // 4 words per 16B line
            h.access(iref(line * 16 + w * 4));
    }
    const auto &s = h.stats();
    EXPECT_EQ(s.l1iMisses, 200u);
    EXPECT_EQ(s.l2Misses, 1u);
    EXPECT_EQ(s.l2Hits, 199u);
}

TEST(StreamBufferHierarchy, MultipleStreamsNeedMultipleBuffers)
{
    // Two interleaved streams thrash a single buffer...
    auto run = [](unsigned buffers) {
        StreamBufferHierarchy h(dm(1024), buffers, 4);
        for (std::uint32_t i = 0; i < 200; ++i) {
            h.access(iref((0x100000 + i * 16)));
            h.access({0x800000 + i * 16, RefType::Load});
        }
        return h.stats().l2Misses;
    };
    std::uint64_t one = run(1);
    std::uint64_t two = run(2);
    EXPECT_GT(one, 300u); // nearly everything misses
    EXPECT_LE(two, 4u);   // both streams captured
}

TEST(StreamBufferHierarchy, NonSequentialTrafficGainsNothing)
{
    // Conflict ping-pong (the victim-cache case) defeats stream
    // buffers: the next-line prefetch never matches.
    StreamBufferHierarchy h(dm(1024), 4, 4);
    for (int i = 0; i < 20; ++i) {
        h.access({0x0000, RefType::Load});
        h.access({0x0400, RefType::Load});
    }
    EXPECT_EQ(h.stats().l2Hits, 0u);
    EXPECT_EQ(h.stats().l2Misses, 40u);
}

TEST(StreamBufferHierarchy, LruBufferReallocation)
{
    // Three streams, two buffers: the least-recently-allocated
    // stream gets stolen.
    StreamBufferHierarchy h(dm(1024), 2, 4);
    h.access(iref(0x100000)); // buffer A -> stream 1
    h.access(iref(0x200000)); // buffer B -> stream 2
    h.access(iref(0x300000)); // steals buffer A (LRU)
    // Stream 2's next line still hits; stream 1's does not.
    h.access(iref(0x200010));
    EXPECT_EQ(h.stats().l2Hits, 1u);
    h.access(iref(0x100010));
    EXPECT_EQ(h.stats().l2Hits, 1u);
    EXPECT_EQ(h.stats().l2Misses, 4u);
}

TEST(StreamBufferHierarchy, HelpsSequentialWorkload)
{
    // tomcatv is stride-8 sequential: stream buffers must recover a
    // large share of its off-chip misses.
    TraceBuffer t = Workloads::generate(Benchmark::Tomcatv, 150000);
    StreamBufferHierarchy with(dm(8192), 8, 4);
    with.simulate(t, 15000);
    SingleLevelHierarchy without(dm(8192));
    without.simulate(t, 15000);
    EXPECT_LT(with.stats().l2Misses, without.stats().l2Misses / 2);
}

TEST(StreamBufferHierarchy, StatsPartitionHolds)
{
    TraceBuffer t = Workloads::generate(Benchmark::Gcc1, 60000);
    StreamBufferHierarchy h(dm(4096), 4, 4);
    h.simulate(t);
    const auto &s = h.stats();
    EXPECT_EQ(s.l2Hits + s.l2Misses, s.l1Misses());
}
