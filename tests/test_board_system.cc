/**
 * @file
 * Tests for the board-level (L3) cache system and the inclusion
 * property the paper's §8 closing remark relies on.
 */

#include <gtest/gtest.h>

#include "cache/board_system.hh"
#include "cache/single_level.hh"
#include "cache/two_level.hh"
#include "trace/workload.hh"
#include "util/random.hh"

using namespace tlc;

namespace {

CacheParams
params(std::uint64_t size, std::uint32_t assoc)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = assoc;
    p.repl = ReplPolicy::Random;
    return p;
}

std::unique_ptr<Hierarchy>
chip(std::uint64_t l1, std::uint64_t l2,
     TwoLevelPolicy pol = TwoLevelPolicy::Inclusive)
{
    if (l2 == 0)
        return std::make_unique<SingleLevelHierarchy>(params(l1, 1));
    return std::make_unique<TwoLevelHierarchy>(params(l1, 1),
                                               params(l2, 4), pol);
}

TraceRecord
dref(std::uint32_t a)
{
    return {a, RefType::Load};
}

} // namespace

TEST(BoardSystem, BoardCatchesChipMisses)
{
    BoardLevelSystem sys(chip(1024, 0), params(64 * 1024, 1));
    sys.access(dref(0x0000)); // memory
    sys.access(dref(0x0400)); // conflicts in 1K L1, hits board? no:
                              // first touch -> memory
    sys.access(dref(0x0000)); // L1 conflict miss -> board HIT
    EXPECT_EQ(sys.boardStats().l3Misses, 2u);
    EXPECT_EQ(sys.boardStats().l3Hits, 1u);
}

TEST(BoardSystem, L1HitsNeverReachBoard)
{
    BoardLevelSystem sys(chip(1024, 0), params(64 * 1024, 1));
    sys.access(dref(0x0000));
    for (int i = 0; i < 10; ++i)
        sys.access(dref(0x0004));
    EXPECT_EQ(sys.boardStats().l3Hits + sys.boardStats().l3Misses, 1u);
}

TEST(BoardSystem, MirrorsOnchipStats)
{
    BoardLevelSystem sys(chip(1024, 8192), params(64 * 1024, 1));
    sys.access(dref(0x0000));
    sys.access(dref(0x0000));
    EXPECT_EQ(sys.stats().dataRefs, 2u);
    EXPECT_EQ(sys.stats().l1dMisses, 1u);
}

TEST(BoardSystem, BackInvalidationEnforcesInclusion)
{
    // Board cache smaller than L1 forces evictions of lines that
    // are still resident on-chip: lines 0 and 64 conflict in the
    // 64-set board but live in different sets of the 128-set L1.
    BoardLevelSystem sys(chip(2048, 0), params(1024, 1),
                         /*maintain_inclusion=*/true);
    sys.access(dref(0x0000)); // board set 0, L1 set 0
    sys.access(dref(0x0400)); // board set 0 (evicts line 0), L1 set 64
    auto *single =
        dynamic_cast<const SingleLevelHierarchy *>(&sys.onchip());
    ASSERT_NE(single, nullptr);
    EXPECT_FALSE(single->dcache().contains(0x0000));
    EXPECT_TRUE(single->dcache().contains(0x0400));
    EXPECT_GE(sys.boardStats().backInvalidations, 1u);
}

TEST(BoardSystem, NoBackInvalidationWhenDisabled)
{
    BoardLevelSystem sys(chip(2048, 0), params(1024, 1),
                         /*maintain_inclusion=*/false);
    sys.access(dref(0x0000));
    sys.access(dref(0x0400)); // evicts board line 0
    auto *single =
        dynamic_cast<const SingleLevelHierarchy *>(&sys.onchip());
    EXPECT_TRUE(single->dcache().contains(0x0000));
    EXPECT_EQ(sys.boardStats().backInvalidations, 0u);
}

// Property (paper §8): with inclusion maintained, every on-chip line
// — in L1s AND L2, under the EXCLUSIVE on-chip policy — is covered
// by the board cache at all times.
TEST(BoardSystem, InclusionPropertyUnderExclusiveOnchip)
{
    auto two = std::make_unique<TwoLevelHierarchy>(
        params(512, 1), params(2048, 4), TwoLevelPolicy::Exclusive);
    TwoLevelHierarchy *raw = two.get();
    BoardLevelSystem sys(std::move(two), params(16 * 1024, 4), true);

    Pcg32 rng(31);
    for (int i = 0; i < 20000; ++i) {
        sys.access(dref(rng.nextBounded(1 << 16)));
        if (i % 200 == 0) {
            ASSERT_TRUE(sys.inclusionHolds(raw->icache()));
            ASSERT_TRUE(sys.inclusionHolds(raw->dcache()));
            ASSERT_TRUE(sys.inclusionHolds(raw->l2cache()));
        }
    }
}

// Without back-invalidation, inclusion is eventually violated on the
// same traffic (the control for the property above).
TEST(BoardSystem, InclusionViolatedWithoutMaintenance)
{
    auto two = std::make_unique<TwoLevelHierarchy>(
        params(512, 1), params(2048, 4), TwoLevelPolicy::Exclusive);
    TwoLevelHierarchy *raw = two.get();
    BoardLevelSystem sys(std::move(two), params(16 * 1024, 4), false);

    Pcg32 rng(31);
    bool violated = false;
    for (int i = 0; i < 20000 && !violated; ++i) {
        sys.access(dref(rng.nextBounded(1 << 16)));
        violated = !sys.inclusionHolds(raw->dcache()) ||
                   !sys.inclusionHolds(raw->l2cache());
    }
    EXPECT_TRUE(violated);
}

TEST(BoardSystem, WarmupResetsBoardStats)
{
    TraceBuffer t = Workloads::generate(Benchmark::Espresso, 50000);
    BoardLevelSystem sys(chip(4096, 0), params(256 * 1024, 4));
    sys.simulate(t, 25000);
    // Stats cover only the measured half.
    EXPECT_EQ(sys.stats().totalRefs(), 25000u);
    EXPECT_LE(sys.boardStats().l3Hits + sys.boardStats().l3Misses,
              sys.stats().l2Misses);
}

TEST(BoardSystem, BackInvalidationCostsOnchipMisses)
{
    // Inclusion maintenance must not reduce off-chip traffic; it can
    // only add on-chip misses. Compare measured chip misses.
    TraceBuffer t = Workloads::generate(Benchmark::Gcc1, 100000);
    auto run = [&](bool incl) {
        BoardLevelSystem sys(chip(4096, 32768), params(65536, 1), incl);
        sys.simulate(t, 10000);
        return sys.stats().l1Misses();
    };
    EXPECT_GE(run(true), run(false));
}
