/**
 * @file
 * Tests for the three-C miss classifier and the fully-associative
 * LRU reference model.
 */

#include <gtest/gtest.h>

#include "cache/three_c.hh"
#include "trace/workload.hh"
#include "util/random.hh"

using namespace tlc;

namespace {

CacheParams
dm(std::uint64_t size)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = 1;
    return p;
}

} // namespace

TEST(FullyAssocLru, BasicHitMiss)
{
    FullyAssocLru c(2);
    EXPECT_FALSE(c.access(1));
    EXPECT_FALSE(c.access(2));
    EXPECT_TRUE(c.access(1));
    EXPECT_FALSE(c.access(3)); // evicts 2 (LRU)
    EXPECT_TRUE(c.access(1));
    EXPECT_FALSE(c.access(2));
}

TEST(FullyAssocLru, CapacityNeverExceeded)
{
    FullyAssocLru c(8);
    Pcg32 rng(5);
    for (int i = 0; i < 1000; ++i) {
        c.access(rng.nextBounded(100));
        ASSERT_LE(c.size(), 8u);
    }
}

TEST(FullyAssocLru, ExactLruOrder)
{
    FullyAssocLru c(3);
    c.access(1);
    c.access(2);
    c.access(3);
    c.access(1);       // order now (MRU) 1 3 2
    c.access(4);       // evicts 2
    EXPECT_TRUE(c.access(1));
    EXPECT_TRUE(c.access(3));
    EXPECT_FALSE(c.access(2));
}

TEST(ThreeC, FirstTouchIsCompulsory)
{
    ThreeCAnalyzer a(dm(1024));
    a.access(0x100);
    a.access(0x200);
    EXPECT_EQ(a.stats().compulsory, 2u);
    EXPECT_EQ(a.stats().capacity, 0u);
    EXPECT_EQ(a.stats().conflict, 0u);
}

TEST(ThreeC, RepeatIsHit)
{
    ThreeCAnalyzer a(dm(1024));
    a.access(0x100);
    a.access(0x100);
    a.access(0x104);
    EXPECT_EQ(a.stats().hits, 2u);
    EXPECT_EQ(a.stats().misses(), 1u);
}

TEST(ThreeC, PingPongIsConflict)
{
    // Two lines 1 KB apart thrash a 1 KB DM cache but fit easily in
    // the 64-line fully-associative reference: pure conflict misses.
    ThreeCAnalyzer a(dm(1024));
    for (int i = 0; i < 10; ++i) {
        a.access(0x0000);
        a.access(0x0400);
    }
    EXPECT_EQ(a.stats().compulsory, 2u);
    EXPECT_EQ(a.stats().conflict, 18u);
    EXPECT_EQ(a.stats().capacity, 0u);
}

TEST(ThreeC, SweepIsCapacity)
{
    // Sweeping 4x the cache size repeatedly: after the compulsory
    // pass, every miss is a capacity miss (FA-LRU misses too).
    ThreeCAnalyzer a(dm(1024));
    const std::uint32_t lines = 4 * 64;
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint32_t l = 0; l < lines; ++l)
            a.access(l * 16);
    EXPECT_EQ(a.stats().compulsory, lines);
    EXPECT_EQ(a.stats().capacity, 2u * lines);
    EXPECT_EQ(a.stats().conflict, 0u);
}

TEST(ThreeC, CountsAreConsistent)
{
    ThreeCAnalyzer a(dm(4096));
    Pcg32 rng(9);
    for (int i = 0; i < 20000; ++i)
        a.access(rng.nextBounded(1 << 16));
    const ThreeCStats &s = a.stats();
    EXPECT_EQ(s.refs, 20000u);
    EXPECT_EQ(s.hits + s.misses(), s.refs);
    EXPECT_GT(s.conflictFraction(), 0.0);
    EXPECT_LT(s.conflictFraction(), 1.0);
}

TEST(ThreeC, MissRateMatchesPlainCache)
{
    // The classifier's total misses must equal an identically-seeded
    // plain cache's misses on the same stream.
    ThreeCAnalyzer a(dm(2048), /*repl_seed=*/77);
    Cache plain(dm(2048), 77);
    Pcg32 rng(13);
    std::uint64_t plain_misses = 0;
    for (int i = 0; i < 30000; ++i) {
        std::uint64_t addr = rng.nextBounded(1 << 15);
        a.access(addr);
        if (!plain.lookupAndTouch(addr)) {
            ++plain_misses;
            plain.fill(addr);
        }
    }
    EXPECT_EQ(a.stats().misses(), plain_misses);
}

TEST(ThreeC, SetAssociativityRemovesConflicts)
{
    // A 4-way target of the same size should show (nearly) no
    // conflict misses on a conflict-heavy stream.
    CacheParams sa = dm(1024);
    sa.assoc = 4;
    sa.repl = ReplPolicy::LRU;
    ThreeCAnalyzer a(sa);
    for (int i = 0; i < 10; ++i) {
        a.access(0x0000);
        a.access(0x0400);
    }
    EXPECT_EQ(a.stats().conflict, 0u);
}

TEST(ThreeC, WorkloadConflictShareReasonable)
{
    // Direct-mapped caches on gcc1 must show a real conflict
    // component (the motivation for set-associative L2s and for
    // exclusive caching's "limited form of associativity").
    TraceBuffer t = Workloads::generate(Benchmark::Gcc1, 200000);
    ThreeCAnalyzer a(dm(8192));
    for (const auto &rec : t) {
        if (rec.type != RefType::Instr)
            a.access(rec.addr);
    }
    EXPECT_GT(a.stats().conflictFraction(), 0.03);
    EXPECT_LT(a.stats().conflictFraction(), 0.9);
}
