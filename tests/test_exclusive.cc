/**
 * @file
 * Tests for two-level exclusive caching (Section 8 of the paper),
 * including the Figure 21 walk-throughs and the capacity/exclusion
 * invariants the section states.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cache/two_level.hh"
#include "trace/workload.hh"
#include "util/random.hh"

using namespace tlc;

namespace {

CacheParams
l1p(std::uint64_t size)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = 1;
    return p;
}

CacheParams
l2p(std::uint64_t size, std::uint32_t assoc)
{
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = 16;
    p.assoc = assoc;
    p.repl = ReplPolicy::Random;
    return p;
}

TraceRecord
dref(std::uint32_t a)
{
    return {a, RefType::Load};
}

/**
 * The Figure 21 setup: 4-line first-level caches (64 B), 16-line
 * direct-mapped second level (256 B), 16 B lines.
 */
TwoLevelHierarchy
fig21(TwoLevelPolicy policy)
{
    return TwoLevelHierarchy(l1p(64), l2p(256, 1), policy);
}

} // namespace

// Figure 21-a: A and E conflict in the second level (same L2 line)
// but map to the same L1 line too; alternating references swap them
// between levels, so both stay on-chip (exclusion).
TEST(ExclusiveFig21, SecondLevelConflictGivesExclusion)
{
    TwoLevelHierarchy h = fig21(TwoLevelPolicy::Exclusive);
    // L2 has 16 lines; A = line 13, E = line 13 + 16 = 29 maps to
    // L2 line 13 as well; both map to L1 line 13 & 3 = 1.
    const std::uint32_t A = 13 * 16;
    const std::uint32_t E = (13 + 16) * 16;

    h.access(dref(A)); // cold: off-chip -> L1
    h.access(dref(E)); // cold: off-chip -> L1, A -> L2 line 13
    EXPECT_TRUE(h.dcache().contains(E));
    EXPECT_TRUE(h.l2cache().contains(A));
    EXPECT_FALSE(h.l2cache().contains(E));

    // From now on, every access swaps A and E; nothing goes
    // off-chip again.
    auto misses_before = h.stats().l2Misses;
    for (int i = 0; i < 20; ++i) {
        h.access(dref(i % 2 ? E : A));
        // Exactly one of the two is in L1, the other in L2.
        std::uint32_t in_l1 = (i % 2) ? E : A;
        std::uint32_t in_l2 = (i % 2) ? A : E;
        EXPECT_TRUE(h.dcache().contains(in_l1));
        EXPECT_TRUE(h.l2cache().contains(in_l2));
        EXPECT_FALSE(h.l2cache().contains(in_l1));
    }
    EXPECT_EQ(h.stats().l2Misses, misses_before);
    EXPECT_EQ(h.stats().l2Hits, 20u);
    EXPECT_EQ(h.stats().swaps, 20u);
}

// A conventional (inclusive) hierarchy cannot hold both A and E
// on-chip in Figure 21-a's geometry: the ping-pong keeps missing.
TEST(ExclusiveFig21, InclusiveBaselineKeepsMissingOffChip)
{
    TwoLevelHierarchy h = fig21(TwoLevelPolicy::Inclusive);
    const std::uint32_t A = 13 * 16;
    const std::uint32_t E = (13 + 16) * 16;
    h.access(dref(A));
    h.access(dref(E));
    auto misses_before = h.stats().l2Misses;
    for (int i = 0; i < 20; ++i)
        h.access(dref(i % 2 ? E : A));
    // Every alternation misses both levels (the L2 line ping-pongs).
    EXPECT_EQ(h.stats().l2Misses - misses_before, 20u);
}

// Figure 21-b: A and B conflict only in the first level; sending A
// back to the second level leaves L2 unchanged (A's copy is already
// there) and inclusion persists.
TEST(ExclusiveFig21, FirstLevelConflictGivesInclusion)
{
    TwoLevelHierarchy h = fig21(TwoLevelPolicy::Exclusive);
    // L1 has 4 lines: A = line 1, B = line 5 -> both L1 line 1;
    // L2 lines 1 and 5 (different).
    const std::uint32_t A = 1 * 16;
    const std::uint32_t B = 5 * 16;

    h.access(dref(A));
    h.access(dref(B)); // A -> L2 line 1
    EXPECT_TRUE(h.l2cache().contains(A));

    h.access(dref(A)); // L2 hit; B -> L2 line 5
    EXPECT_TRUE(h.l2cache().contains(B));
    // A remains in L2 as well: inclusion, not exclusion (the swap
    // only happens when both map to the same L2 line).
    EXPECT_TRUE(h.l2cache().contains(A));
    EXPECT_TRUE(h.dcache().contains(A));

    // The ping-pong is now serviced entirely from on-chip.
    auto misses_before = h.stats().l2Misses;
    for (int i = 0; i < 20; ++i)
        h.access(dref(i % 2 ? B : A));
    EXPECT_EQ(h.stats().l2Misses, misses_before);
}

// On an L2 miss the refill bypasses L2: the line appears in L1 only.
TEST(Exclusive, OffChipRefillBypassesL2)
{
    TwoLevelHierarchy h = fig21(TwoLevelPolicy::Exclusive);
    h.access(dref(0x100));
    EXPECT_TRUE(h.dcache().contains(0x100));
    EXPECT_FALSE(h.l2cache().contains(0x100));
    EXPECT_EQ(h.stats().l2Misses, 1u);
}

// The L1 victim always lands in L2, even on an L2 miss.
TEST(Exclusive, VictimAlwaysWrittenToL2)
{
    TwoLevelHierarchy h = fig21(TwoLevelPolicy::Exclusive);
    const std::uint32_t A = 1 * 16;
    const std::uint32_t B = 5 * 16; // conflicts with A in L1 only
    h.access(dref(A));
    h.access(dref(B));
    EXPECT_TRUE(h.l2cache().contains(A));
    EXPECT_TRUE(h.dcache().contains(B));
}

// Section 8: "In the limiting case with the number of L2 sets equal
// to the number of lines in the L1 cache, exactly 2x+y unique lines
// will always be held on-chip." With aligned sets, L1 and L2 are
// disjoint after every reference (property test over random and
// real workload traffic).
TEST(Exclusive, LimitingCaseDisjointnessProperty)
{
    // L1: 64 B = 4 lines; L2: 4 sets x 4 ways = 256 B. The paper's
    // limiting case: L2 sets == L1 lines.
    TwoLevelHierarchy h(l1p(64), l2p(256, 4), TwoLevelPolicy::Exclusive);
    Pcg32 rng(7);
    for (int i = 0; i < 5000; ++i) {
        std::uint32_t addr = rng.nextBounded(64) * 16;
        h.access(dref(addr));
        if (i % 50 == 0) {
            for (std::uint64_t line : h.dcache().residentLineAddrs()) {
                ASSERT_FALSE(h.l2cache().contains(line * 16))
                    << "line " << line << " in both L1d and L2";
            }
        }
    }
    // And on-chip capacity is used fully once warm: 2x + y lines.
    std::set<std::uint64_t> unique;
    for (std::uint64_t l : h.icache().residentLineAddrs())
        unique.insert(l);
    for (std::uint64_t l : h.dcache().residentLineAddrs())
        unique.insert(l);
    for (std::uint64_t l : h.l2cache().residentLineAddrs())
        unique.insert(l);
    // Data-only traffic: x (d-cache) + y (L2) = 4 + 16 lines.
    EXPECT_EQ(unique.size(), 20u);
}

// Exclusive caching must never lose the currently-referenced line.
TEST(Exclusive, ReferencedLineAlwaysInL1Afterwards)
{
    TwoLevelHierarchy h(l1p(128), l2p(512, 2), TwoLevelPolicy::Exclusive);
    Pcg32 rng(11);
    for (int i = 0; i < 5000; ++i) {
        std::uint32_t addr = rng.nextBounded(256) * 16;
        h.access(dref(addr));
        ASSERT_TRUE(h.dcache().contains(addr));
    }
}

// Dirty data must survive the swap path: a dirty L1 victim written
// into L2 and later promoted back must still be dirty when it
// finally leaves.
TEST(Exclusive, DirtyBitSurvivesSwaps)
{
    TwoLevelHierarchy h = fig21(TwoLevelPolicy::Exclusive);
    const std::uint32_t A = 13 * 16;
    const std::uint32_t E = (13 + 16) * 16;
    h.access({A, RefType::Store}); // A dirty in L1
    h.access(dref(E));             // A -> L2 (dirty), E -> L1
    h.access(dref(A));             // swap back: A must still be dirty
    // Evict A from L1 via E again and check the victim's state
    // through the public L2 dirty propagation: promote A's line into
    // L2 and verify a subsequent L2 eviction sees it dirty. We
    // can't observe dirtiness directly through Hierarchy, so probe
    // the cache model.
    EXPECT_TRUE(h.dcache().contains(A));
}

// Exclusive two-level caching on conflict-heavy real traffic should
// beat the inclusive baseline in off-chip misses (the paper's
// headline claim, checked end-to-end on a workload model).
TEST(Exclusive, BeatsInclusiveOnRealWorkload)
{
    TraceBuffer trace = Workloads::generate(Benchmark::Gcc1, 300000);

    auto run = [&](TwoLevelPolicy policy) {
        TwoLevelHierarchy h(l1p(4 * 1024), l2p(16 * 1024, 1), policy);
        h.simulate(trace, 30000);
        return h.stats();
    };
    HierarchyStats ex = run(TwoLevelPolicy::Exclusive);
    HierarchyStats in = run(TwoLevelPolicy::Inclusive);
    EXPECT_LT(ex.l2Misses, in.l2Misses);
    EXPECT_GT(ex.swaps, 0u);
}

// With an L2 much larger than L1, exclusive and inclusive converge
// (duplication is negligible); sanity-check they are within a few
// percent rather than diverging.
TEST(Exclusive, ConvergesToInclusiveForHugeL2)
{
    TraceBuffer trace = Workloads::generate(Benchmark::Espresso, 200000);
    auto run = [&](TwoLevelPolicy policy) {
        TwoLevelHierarchy h(l1p(1024), l2p(256 * 1024, 4), policy);
        h.simulate(trace, 20000);
        return h.stats();
    };
    HierarchyStats ex = run(TwoLevelPolicy::Exclusive);
    HierarchyStats in = run(TwoLevelPolicy::Inclusive);
    double ratio = static_cast<double>(ex.l2Misses + 1) /
                   static_cast<double>(in.l2Misses + 1);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 1.5);
}

// The y < x degenerate case acts as a shared victim cache: L1
// conflict ping-pong is caught on-chip.
TEST(Exclusive, DegeneratesToVictimCacheWhenL2Smaller)
{
    // L1 1 KB each, L2 256 B (16 lines, 4 sets x 4 ways).
    TwoLevelHierarchy h(l1p(1024), l2p(256, 4),
                        TwoLevelPolicy::Exclusive);
    const std::uint32_t A = 0x0000;
    const std::uint32_t B = 0x0400; // same L1 set as A
    h.access(dref(A));
    h.access(dref(B));
    auto misses_before = h.stats().l2Misses;
    for (int i = 0; i < 20; ++i)
        h.access(dref(i % 2 ? B : A));
    EXPECT_EQ(h.stats().l2Misses, misses_before);
    EXPECT_EQ(h.stats().l2Hits, 20u);
}
