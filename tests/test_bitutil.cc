/**
 * @file
 * Unit tests for util/bitutil.hh.
 */

#include <gtest/gtest.h>

#include "util/bitutil.hh"

using namespace tlc;

TEST(BitUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(1025));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
}

TEST(BitUtil, Log2Floor)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(3), 1u);
    EXPECT_EQ(log2i(4), 2u);
    EXPECT_EQ(log2i(1023), 9u);
    EXPECT_EQ(log2i(1024), 10u);
}

TEST(BitUtil, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(BitUtil, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(0), 1u);
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(2), 2u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(0xffffffffffffffffULL, 0, 64), 0xffffffffffffffffULL);
}

TEST(BitUtil, Align)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1230, 16), 0x1230u);
    EXPECT_EQ(alignDown(0x1230, 16), 0x1230u);
}

// Property: for all powers of two, log2Ceil == log2i, and
// nextPowerOfTwo is the identity.
TEST(BitUtil, PowerOfTwoFixpoints)
{
    for (unsigned s = 0; s < 63; ++s) {
        std::uint64_t v = std::uint64_t{1} << s;
        EXPECT_EQ(log2Ceil(v), log2i(v));
        EXPECT_EQ(nextPowerOfTwo(v), v);
    }
}
