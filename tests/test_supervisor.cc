/**
 * @file
 * The fault-isolated sweep supervisor (util/supervisor.hh +
 * core/shard_runner.hh).
 *
 * The contract under test is graceful degradation with byte-exact
 * accounting:
 *
 *  - a supervised sweep with NO faults is byte-identical to the
 *    in-process engine — points, failure report, envelope;
 *  - an injected worker crash/hang/torn stream at a known design
 *    point completes the sweep, quarantines EXACTLY that point, and
 *    leaves every other point byte-identical;
 *  - transient faults (times=1) are absorbed by the retry loop with
 *    zero effect on the output;
 *  - FailureReport aggregation across retries and bisection loses
 *    nothing and duplicates nothing, and keeps the in-process
 *    input-index ordering;
 *  - a SIGKILLed *supervisor* (and its orphaned workers) resumed
 *    against the same result store reproduces the uninterrupted
 *    output byte-for-byte;
 *  - the result store surfaces the ENOSPC class as
 *    ResourceExhausted at write time and repairs the torn tail
 *    immediately, so the file stays intact for the next opener.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/explorer.hh"
#include "core/shard_runner.hh"
#include "core/sweep_cache.hh"
#include "util/result_store.hh"
#include "util/supervisor.hh"
#include "util/units.hh"

using namespace tlc;

namespace {

/// Short traces: a supervised differential run simulates the grid
/// several times over in subprocesses, and the properties under
/// test are structural, not statistical.
constexpr std::uint64_t kRefs = 50000;

std::string
tempPath(const std::string &name)
{
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

/** The 64-point reference grid of bench/batch_sweep_timing.cc. */
std::vector<SystemConfig>
makeGrid()
{
    std::vector<SystemConfig> configs;
    for (std::uint64_t l1 = 1_KiB; l1 <= 128_KiB; l1 *= 2) {
        SystemConfig c;
        c.l1Bytes = l1;
        c.l2Bytes = 0;
        configs.push_back(c);
        for (std::uint64_t ratio = 2; ratio <= 128; ratio *= 2) {
            c.l2Bytes = l1 * ratio;
            configs.push_back(c);
        }
    }
    return configs;
}

struct SweepResult
{
    std::vector<DesignPoint> points;
    std::vector<SweepFailure> failures;
    SupervisionStats stats;
};

/** Supervisor options tuned for tests: small shards so one grid
 *  spans several workers, fast watchdog, near-zero backoff. */
SupervisorOptions
testOptions()
{
    SupervisorOptions o;
    o.pointsPerShard = 16;
    o.watchdog.timeoutSeconds = 20.0;
    o.watchdog.killGraceSeconds = 0.2;
    o.retry.maxRetries = 2;
    o.retry.backoffBaseSeconds = 0.001;
    o.retry.backoffMaxSeconds = 0.01;
    o.evaluator.traceRefs = kRefs;
    return o;
}

/** In-process reference sweep on a fresh evaluator/explorer pair. */
SweepResult
runInProcess(const std::vector<SystemConfig> &configs)
{
    EvaluatorOptions opts;
    opts.traceRefs = kRefs;
    MissRateEvaluator ev(std::move(opts));
    Explorer ex(ev);
    FailureReport report;
    SweepResult r;
    r.points = ex.evaluateAll(Benchmark::Gcc1, configs, &report);
    r.failures = report.failures();
    return r;
}

/** Supervised sweep on a fresh evaluator/explorer pair. */
SweepResult
runSupervised(const std::vector<SystemConfig> &configs,
              const SupervisorOptions &opts)
{
    EvaluatorOptions evopts;
    evopts.traceRefs = kRefs;
    MissRateEvaluator ev(std::move(evopts));
    Explorer ex(ev);
    FailureReport report;
    SweepResult r;
    SupervisedSweep ss = supervisedEvaluateAll(ex, Benchmark::Gcc1,
                                               configs, &report, opts);
    r.points = std::move(ss.points);
    r.stats = ss.stats;
    r.failures = report.failures();
    return r;
}

/** Bitwise equality of every priced field of two design points. */
void
expectIdenticalPoint(const DesignPoint &a, const DesignPoint &b,
                     std::size_t i)
{
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(a.config.label(), b.config.label());
    EXPECT_EQ(a.areaRbe, b.areaRbe);
    EXPECT_EQ(a.l1Timing.accessNs, b.l1Timing.accessNs);
    EXPECT_EQ(a.l1Timing.cycleNs, b.l1Timing.cycleNs);
    EXPECT_EQ(a.l2Timing.accessNs, b.l2Timing.accessNs);
    EXPECT_EQ(a.miss.instrRefs, b.miss.instrRefs);
    EXPECT_EQ(a.miss.dataRefs, b.miss.dataRefs);
    EXPECT_EQ(a.miss.l1iMisses, b.miss.l1iMisses);
    EXPECT_EQ(a.miss.l1dMisses, b.miss.l1dMisses);
    EXPECT_EQ(a.miss.l2Hits, b.miss.l2Hits);
    EXPECT_EQ(a.miss.l2Misses, b.miss.l2Misses);
    EXPECT_EQ(a.miss.swaps, b.miss.swaps);
    EXPECT_EQ(a.miss.offchipWritebacks, b.miss.offchipWritebacks);
    EXPECT_EQ(a.tpi.tpi, b.tpi.tpi);
}

/** Points, failure report and derived envelope all byte-identical. */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i)
        expectIdenticalPoint(a.points[i], b.points[i], i);

    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (std::size_t i = 0; i < a.failures.size(); ++i) {
        SCOPED_TRACE("failure " + std::to_string(i));
        EXPECT_EQ(a.failures[i].subject, b.failures[i].subject);
        EXPECT_EQ(a.failures[i].status.code(),
                  b.failures[i].status.code());
        EXPECT_EQ(a.failures[i].status.message(),
                  b.failures[i].status.message());
    }

    Envelope ea = Explorer::envelopeOf(a.points);
    Envelope eb = Explorer::envelopeOf(b.points);
    ASSERT_EQ(ea.points().size(), eb.points().size());
    for (std::size_t i = 0; i < ea.points().size(); ++i) {
        EXPECT_EQ(ea.points()[i].area, eb.points()[i].area);
        EXPECT_EQ(ea.points()[i].tpi, eb.points()[i].tpi);
        EXPECT_EQ(ea.points()[i].label, eb.points()[i].label);
    }
}

ShardFault
fault(ShardFault::Kind kind, std::uint32_t at, int times)
{
    ShardFault f;
    f.kind = kind;
    f.atIndex = at;
    f.times = times;
    return f;
}

} // namespace

// ---------------------------------------------------------------
// util/supervisor.hh: the generic worker-supervision layer.
// ---------------------------------------------------------------

TEST(Supervisor, FramesRoundTripInOrder)
{
    std::vector<std::string> got;
    WorkerOutcome out = superviseWorker(
        [](int fd) {
            ASSERT_TRUE(writeFrame(fd, "alpha").ok());
            ASSERT_TRUE(writeFrame(fd, "").ok());
            ASSERT_TRUE(writeFrame(fd, std::string(70000, 'x')).ok());
        },
        WatchdogSpec{}, [&](std::string_view p) {
            got.emplace_back(p);
        });
    EXPECT_TRUE(out.ok()) << out.detail;
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], "alpha");
    EXPECT_EQ(got[1], "");
    EXPECT_EQ(got[2], std::string(70000, 'x'));
}

TEST(Supervisor, CrashIsClassifiedAndEarlierFramesSurvive)
{
    std::vector<std::string> got;
    WorkerOutcome out = superviseWorker(
        [](int fd) {
            (void)writeFrame(fd, "before-the-crash");
            raise(SIGSEGV);
        },
        WatchdogSpec{}, [&](std::string_view p) {
            got.emplace_back(p);
        });
    EXPECT_EQ(out.kind, WorkerOutcome::Kind::Crash);
    EXPECT_EQ(out.termSignal, SIGSEGV);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], "before-the-crash");
    Status s = out.toStatus("shard 0");
    EXPECT_EQ(s.code(), StatusCode::WorkerCrash);
    EXPECT_NE(s.message().find("shard 0"), std::string::npos);
}

TEST(Supervisor, HangHitsWatchdogDespiteIgnoredSigterm)
{
    WatchdogSpec wd;
    wd.timeoutSeconds = 0.2;
    wd.killGraceSeconds = 0.1;
    WorkerOutcome out = superviseWorker(
        [](int) {
            signal(SIGTERM, SIG_IGN);
            for (;;)
                pause();
        },
        wd, [](std::string_view) {});
    EXPECT_EQ(out.kind, WorkerOutcome::Kind::Timeout);
    EXPECT_EQ(out.toStatus("shard").code(), StatusCode::WorkerTimeout);
}

TEST(Supervisor, TornTrailingFrameIsAProtocolError)
{
    WorkerOutcome out = superviseWorker(
        [](int fd) {
            // A header promising 64 payload bytes, then silence.
            const unsigned char torn[8] = {64, 0, 0, 0, 0xef, 0xbe,
                                           0xad, 0xde};
            (void)::write(fd, torn, sizeof torn);
        },
        WatchdogSpec{}, [](std::string_view) {});
    EXPECT_EQ(out.kind, WorkerOutcome::Kind::Protocol);
}

TEST(Supervisor, NonzeroExitIsClassified)
{
    WorkerOutcome out = superviseWorker([](int) { _exit(7); },
                                        WatchdogSpec{},
                                        [](std::string_view) {});
    EXPECT_EQ(out.kind, WorkerOutcome::Kind::Exit);
    EXPECT_EQ(out.exitStatus, 7);
}

TEST(Supervisor, BackoffIsDeterministicBoundedAndJittered)
{
    RetryPolicy p;
    p.backoffBaseSeconds = 0.05;
    p.backoffMaxSeconds = 2.0;
    for (int a = 0; a < 8; ++a) {
        double d1 = p.backoffSeconds(a, 17);
        double d2 = p.backoffSeconds(a, 17);
        EXPECT_EQ(d1, d2); // same (seed, key, attempt) => same wait
        EXPECT_GE(d1, 0.5 * p.backoffBaseSeconds);
        EXPECT_LE(d1, p.backoffMaxSeconds);
    }
    // Different shards desynchronize.
    EXPECT_NE(p.backoffSeconds(3, 17), p.backoffSeconds(3, 18));
}

// ---------------------------------------------------------------
// core/shard_runner.hh: supervised sweeps.
// ---------------------------------------------------------------

TEST(ShardRunner, CleanSupervisedSweepMatchesInProcess)
{
    const auto grid = makeGrid();
    SweepResult clean = runInProcess(grid);
    SweepResult sup = runSupervised(grid, testOptions());
    expectIdentical(clean, sup);
    EXPECT_EQ(sup.stats.quarantined, 0u);
    EXPECT_EQ(sup.stats.retries, 0u);
    EXPECT_EQ(sup.stats.shards, (grid.size() + 15) / 16);
}

TEST(ShardRunner, PermanentCrashQuarantinesExactlyThatPoint)
{
    const auto grid = makeGrid();
    const std::uint32_t poisoned = 12;
    SweepResult clean = runInProcess(grid);

    SupervisorOptions opts = testOptions();
    opts.retry.maxRetries = 1; // keep the bisection cascade short
    opts.faults.faults.push_back(
        fault(ShardFault::Kind::Crash, poisoned, -1));
    SweepResult sup = runSupervised(grid, opts);

    // Exactly the poisoned point is missing; everything else is
    // byte-identical and in order.
    ASSERT_EQ(sup.points.size(), clean.points.size() - 1);
    std::size_t si = 0;
    for (std::size_t i = 0; i < clean.points.size(); ++i) {
        if (i == poisoned)
            continue;
        expectIdenticalPoint(clean.points[i], sup.points[si], i);
        ++si;
    }
    ASSERT_EQ(sup.failures.size(), 1u);
    EXPECT_EQ(sup.failures[0].subject, grid[poisoned].label());
    EXPECT_EQ(sup.failures[0].status.code(), StatusCode::WorkerCrash);
    EXPECT_NE(sup.failures[0].status.message().find("quarantined"),
              std::string::npos);
    EXPECT_EQ(sup.stats.quarantined, 1u);
    EXPECT_GE(sup.stats.bisections, 1u);
    EXPECT_GE(sup.stats.crashes, 2u);
}

TEST(ShardRunner, TransientCrashIsAbsorbedByRetry)
{
    const auto grid = makeGrid();
    SweepResult clean = runInProcess(grid);

    SupervisorOptions opts = testOptions();
    opts.faults.faults.push_back(
        fault(ShardFault::Kind::Crash, 12, /*times=*/1));
    SweepResult sup = runSupervised(grid, opts);

    expectIdentical(clean, sup);
    EXPECT_EQ(sup.stats.quarantined, 0u);
    EXPECT_EQ(sup.stats.crashes, 1u);
    EXPECT_EQ(sup.stats.retries, 1u);
    EXPECT_EQ(sup.stats.backoffWaits, 1u);
}

TEST(ShardRunner, TransientHangIsKilledAndRetried)
{
    const auto grid = makeGrid();
    SweepResult clean = runInProcess(grid);

    SupervisorOptions opts = testOptions();
    opts.watchdog.timeoutSeconds = 0.3;
    opts.faults.faults.push_back(
        fault(ShardFault::Kind::Hang, 12, /*times=*/1));
    SweepResult sup = runSupervised(grid, opts);

    expectIdentical(clean, sup);
    EXPECT_EQ(sup.stats.timeouts, 1u);
    EXPECT_EQ(sup.stats.retries, 1u);
    EXPECT_EQ(sup.stats.quarantined, 0u);
}

TEST(ShardRunner, TornStreamKeepsDeliveredResultsAndRetriesTheRest)
{
    const auto grid = makeGrid();
    SweepResult clean = runInProcess(grid);

    SupervisorOptions opts = testOptions();
    opts.faults.faults.push_back(
        fault(ShardFault::Kind::PartialWrite, 12, /*times=*/1));
    SweepResult sup = runSupervised(grid, opts);

    expectIdentical(clean, sup);
    // The partial attempt exited nonzero after tearing its stream;
    // results it did deliver were kept, the rest re-ran.
    EXPECT_EQ(sup.stats.exits, 1u);
    EXPECT_EQ(sup.stats.retries, 1u);
    EXPECT_EQ(sup.stats.quarantined, 0u);
}

TEST(ShardRunner, ReportAggregationAcrossRetriesAndBisection)
{
    // A grid salted with invalid configurations (a non-power-of-two
    // L1) surrounding a poisoned point: the supervised report must
    // keep the in-process entries — same subjects, same codes, same
    // input-index order — with exactly one quarantine entry
    // inserted at the poisoned point's position, however many
    // retries and bisections it took to isolate it.
    auto grid = makeGrid();
    SystemConfig bad;
    bad.l1Bytes = 3000; // not a power of two: fails check()
    bad.l2Bytes = 0;
    grid.insert(grid.begin() + 5, bad);
    bad.l1Bytes = 5000; // distinct, so duplicates below mean bugs
    grid.insert(grid.begin() + 20, bad);
    const std::uint32_t poisoned = 13;

    SweepResult clean = runInProcess(grid);
    ASSERT_EQ(clean.failures.size(), 2u);

    SupervisorOptions opts = testOptions();
    opts.retry.maxRetries = 1;
    opts.faults.faults.push_back(
        fault(ShardFault::Kind::Crash, poisoned, -1));
    SweepResult sup = runSupervised(grid, opts);

    ASSERT_EQ(sup.failures.size(), clean.failures.size() + 1);
    std::size_t quarantineEntries = 0;
    std::vector<SweepFailure> rest;
    for (const auto &f : sup.failures) {
        if (f.status.code() == StatusCode::WorkerCrash) {
            ++quarantineEntries;
            EXPECT_EQ(f.subject, grid[poisoned].label());
        } else {
            rest.push_back(f);
        }
    }
    EXPECT_EQ(quarantineEntries, 1u);
    ASSERT_EQ(rest.size(), clean.failures.size());
    for (std::size_t i = 0; i < rest.size(); ++i) {
        EXPECT_EQ(rest[i].subject, clean.failures[i].subject);
        EXPECT_EQ(rest[i].status.code(), clean.failures[i].status.code());
        EXPECT_EQ(rest[i].status.message(),
                  clean.failures[i].status.message());
    }
    // The quarantine entry sits at the poisoned point's input
    // position: after the index-5 invalid config, before index 20's.
    EXPECT_EQ(sup.failures[1].subject, grid[poisoned].label());

    // No duplicates anywhere, despite every attempt re-reporting
    // frames for the healthy points of the poisoned shard.
    for (std::size_t i = 0; i < sup.failures.size(); ++i)
        for (std::size_t j = i + 1; j < sup.failures.size(); ++j)
            EXPECT_FALSE(sup.failures[i].subject ==
                             sup.failures[j].subject &&
                         sup.failures[i].status.message() ==
                             sup.failures[j].status.message());
}

TEST(ShardRunner, SigkilledSupervisorResumesByteIdentical)
{
    const auto grid = makeGrid();
    const std::string storePath =
        tempPath("tlc_supervisor_resume.tlrs");
    SweepResult clean = runInProcess(grid);

    // Phase 1: run a supervised sweep in a forked child (its own
    // process group, so killing it also kills any in-flight worker
    // it orphans), and SIGKILL the whole group after the first
    // shard has committed to the store.
    int progressPipe[2];
    ASSERT_EQ(pipe(progressPipe), 0);
    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        setpgid(0, 0);
        close(progressPipe[0]);
        const int wfd = progressPipe[1];
        SupervisorOptions opts = testOptions();
        opts.resultStorePath = storePath;
        opts.progress = [wfd](const SweepProgress &) {
            char b = '.';
            (void)::write(wfd, &b, 1);
        };
        EvaluatorOptions evopts;
        evopts.traceRefs = kRefs;
        MissRateEvaluator ev(std::move(evopts));
        Explorer ex(ev);
        FailureReport report;
        (void)supervisedEvaluateAll(ex, Benchmark::Gcc1, grid, &report,
                                    opts);
        _exit(0);
    }
    close(progressPipe[1]);
    char b = 0;
    ASSERT_EQ(::read(progressPipe[0], &b, 1), 1); // 1st shard done
    kill(-child, SIGKILL);
    close(progressPipe[0]);
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFSIGNALED(wstatus)); // it did not finish on its own

    // Phase 2: resume against the same store. Finished shards answer
    // from disk; the tail simulates; output is byte-identical.
    SupervisorOptions opts = testOptions();
    opts.resultStorePath = storePath;
    SweepResult resumed = runSupervised(grid, opts);
    expectIdentical(clean, resumed);
    EXPECT_EQ(resumed.stats.quarantined, 0u);
    std::remove(storePath.c_str());
}

// ---------------------------------------------------------------
// Result store durability: the ENOSPC class at write time.
// ---------------------------------------------------------------

TEST(ResultStoreDurability, EnospcClassSurfacesAndTailStaysIntact)
{
    const std::string path = tempPath("tlc_store_enospc.tlrs");

    // The file-size rlimit makes writes past the cap fail with
    // EFBIG — same ResourceExhausted class as a full disk, minus
    // the need for one. Run in a child so the rlimit (and the
    // ignored SIGXFSZ) cannot leak into other tests.
    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        signal(SIGXFSZ, SIG_IGN); // take EFBIG, not a fatal signal
        struct rlimit rl = {4096, 4096};
        if (setrlimit(RLIMIT_FSIZE, &rl) != 0)
            _exit(10);
        ResultStore store;
        ResultStoreOptions ro;
        ro.fsyncOnCommit = true;
        if (!store.open(path, ro).ok())
            _exit(11);
        const std::string payload(512, 'p');
        for (int i = 0; i < 64; ++i) {
            Status s = store.append("key" + std::to_string(i), payload);
            if (!s.ok()) {
                // Failure must carry the resource-exhausted class
                // and leave the store usable for further queries.
                if (s.code() != StatusCode::ResourceExhausted)
                    _exit(12);
                std::string back;
                if (!store.lookup("key0", &back) || back != payload)
                    _exit(13);
                _exit(0);
            }
        }
        _exit(14); // the cap never bit: test setup is wrong
    }
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    ASSERT_TRUE(WIFEXITED(wstatus));
    EXPECT_EQ(WEXITSTATUS(wstatus), 0)
        << "child exit " << WEXITSTATUS(wstatus);

    // The write-time repair truncated the torn record, so a fresh
    // open sees only intact records and drops nothing.
    ResultStore reopened;
    ASSERT_TRUE(reopened.open(path).ok());
    EXPECT_EQ(reopened.droppedRecords(), 0u);
    EXPECT_GT(reopened.size(), 0u);
    std::string back;
    EXPECT_TRUE(reopened.lookup("key0", &back));
    std::remove(path.c_str());
}

TEST(ResultStoreDurability, FsyncOnCommitRoundTrips)
{
    const std::string path = tempPath("tlc_store_fsync.tlrs");
    {
        ResultStore store;
        ResultStoreOptions ro;
        ro.fsyncOnCommit = true;
        ASSERT_TRUE(store.open(path, ro).ok());
        ASSERT_TRUE(store.append("k", "v").ok());
        ASSERT_TRUE(store.append("k2", "v2").ok());
    }
    ResultStore reopened;
    ASSERT_TRUE(reopened.open(path).ok());
    EXPECT_EQ(reopened.size(), 2u);
    std::string v;
    EXPECT_TRUE(reopened.lookup("k2", &v));
    EXPECT_EQ(v, "v2");
    std::remove(path.c_str());
}
