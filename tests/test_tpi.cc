/**
 * @file
 * Tests for the TPI execution-time model (§2.5) against
 * hand-computed values and the paper's worked penalty example.
 */

#include <gtest/gtest.h>

#include "core/tpi.hh"

using namespace tlc;

namespace {

HierarchyStats
stats(std::uint64_t instr, std::uint64_t data, std::uint64_t l2hits,
      std::uint64_t l2misses)
{
    HierarchyStats s;
    s.instrRefs = instr;
    s.dataRefs = data;
    s.l2Hits = l2hits;
    s.l2Misses = l2misses;
    return s;
}

} // namespace

TEST(Tpi, PerfectCacheIsOneCyclePerInstruction)
{
    TpiParams p;
    p.l1CycleNs = 2.5;
    p.offchipNs = 50;
    p.hasL2 = false;
    TpiResult r = computeTpi(stats(1000, 300, 0, 0), p);
    EXPECT_DOUBLE_EQ(r.tpi, 2.5);
}

TEST(Tpi, SingleLevelMissPenalty)
{
    // 100 instructions, 10 off-chip misses at (50 + 2.5) ns each.
    TpiParams p;
    p.l1CycleNs = 2.5;
    p.offchipNs = 50;
    p.hasL2 = false;
    TpiResult r = computeTpi(stats(100, 0, 0, 10), p);
    EXPECT_DOUBLE_EQ(r.offchipNsRounded, 50.0);
    EXPECT_DOUBLE_EQ(r.tpi, 2.5 + 10 * 52.5 / 100);
}

TEST(Tpi, OffchipTimeRoundsUpToCycleMultiple)
{
    // 50 ns at a 2.6 ns cycle -> 20 cycles -> 52 ns.
    TpiParams p;
    p.l1CycleNs = 2.6;
    p.offchipNs = 50;
    p.hasL2 = false;
    TpiResult r = computeTpi(stats(100, 0, 0, 1), p);
    EXPECT_NEAR(r.offchipNsRounded, 52.0, 1e-9);
}

TEST(Tpi, PaperL2HitPenaltyExample)
{
    // §2.5: with the Fig. 2 parameters the L2-hit penalty is
    // (2x2)+1 = 5 CPU cycles.
    TpiParams p;
    p.l1CycleNs = 2.5;
    p.l2CycleNsRaw = 4.2; // rounds to 2 cycles = 5.0 ns
    p.offchipNs = 50;
    p.hasL2 = true;
    TpiResult r = computeTpi(stats(100, 0, 10, 0), p);
    EXPECT_EQ(r.l2CycleCpu, 2u);
    EXPECT_EQ(r.l2HitPenaltyCpu, 5u);
    EXPECT_DOUBLE_EQ(r.l2CycleNs, 5.0);
    // TPI = base + hits*(2*5.0 + 2.5)/instr.
    EXPECT_DOUBLE_EQ(r.tpi, 2.5 + 10 * 12.5 / 100);
}

TEST(Tpi, L2MissPenaltyFormula)
{
    // Penalty = offchip(rounded) + 3*L2 + L1.
    TpiParams p;
    p.l1CycleNs = 2.5;
    p.l2CycleNsRaw = 4.2;
    p.offchipNs = 50;
    p.hasL2 = true;
    TpiResult r = computeTpi(stats(100, 0, 0, 10), p);
    EXPECT_EQ(r.l2MissPenaltyCpu, 20u + 3 * 2 + 1);
    EXPECT_DOUBLE_EQ(r.tpi, 2.5 + 10 * (50.0 + 15.0 + 2.5) / 100);
}

TEST(Tpi, DataRefsRideFreeOnInstructionTime)
{
    // §2.5: split L1 issues I and D in the same cycle, so data hits
    // cost nothing beyond the instruction stream.
    TpiParams p;
    p.l1CycleNs = 2.0;
    p.offchipNs = 50;
    p.hasL2 = false;
    TpiResult with_data = computeTpi(stats(100, 90, 0, 0), p);
    TpiResult without = computeTpi(stats(100, 0, 0, 0), p);
    EXPECT_DOUBLE_EQ(with_data.tpi, without.tpi);
}

TEST(Tpi, DualIssueHalvesBaseTime)
{
    TpiParams p;
    p.l1CycleNs = 2.0;
    p.offchipNs = 50;
    p.hasL2 = false;
    p.issuePerCycle = 2.0;
    TpiResult r = computeTpi(stats(1000, 0, 0, 0), p);
    EXPECT_DOUBLE_EQ(r.tpi, 1.0);
}

TEST(Tpi, DualIssueDoesNotScaleMissTime)
{
    TpiParams p;
    p.l1CycleNs = 2.0;
    p.offchipNs = 50;
    p.hasL2 = false;
    TpiParams p2 = p;
    p2.issuePerCycle = 2.0;
    HierarchyStats s = stats(100, 0, 0, 10);
    double t1 = computeTpi(s, p).tpi;
    double t2 = computeTpi(s, p2).tpi;
    // Only the 2.0 ns/instr base halves; the 52 ns misses remain.
    EXPECT_DOUBLE_EQ(t1 - t2, 1.0);
}

TEST(Tpi, TwoLevelBeatsSingleLevelWhenL2HitsDominate)
{
    TpiParams single;
    single.l1CycleNs = 2.5;
    single.offchipNs = 50;
    single.hasL2 = false;

    TpiParams two = single;
    two.hasL2 = true;
    two.l2CycleNsRaw = 4.0;

    // Same L1 misses; in the two-level system 90% hit on-chip.
    double t_single = computeTpi(stats(100, 0, 0, 20), single).tpi;
    double t_two = computeTpi(stats(100, 0, 18, 2), two).tpi;
    EXPECT_LT(t_two, t_single);
}

TEST(Tpi, GettingInTheWay)
{
    // §1: when nearly every L2 probe misses, the second level only
    // adds latency (the paper's "get in the way" effect).
    TpiParams single;
    single.l1CycleNs = 2.5;
    single.offchipNs = 50;
    single.hasL2 = false;

    TpiParams two = single;
    two.hasL2 = true;
    two.l2CycleNsRaw = 4.0;

    double t_single = computeTpi(stats(100, 0, 0, 20), single).tpi;
    double t_two = computeTpi(stats(100, 0, 1, 19), two).tpi;
    EXPECT_GT(t_two, t_single);
}

TEST(Tpi, DecompositionSumsToTotal)
{
    TpiParams p;
    p.l1CycleNs = 2.5;
    p.l2CycleNsRaw = 4.2;
    p.offchipNs = 50;
    p.hasL2 = true;
    HierarchyStats s = stats(1000, 400, 30, 7);
    TpiResult r = computeTpi(s, p);
    EXPECT_NEAR(r.tpi * 1000,
                r.baseTimeNs + r.l2HitTimeNs + r.l2MissTimeNs, 1e-6);
}
