/**
 * @file
 * Unit and property tests for the Pcg32 generator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/random.hh"

using namespace tlc;

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(42, 7), b(42, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(42), b(43);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BoundedStaysInBounds)
{
    Pcg32 rng(1);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u, 1u << 30}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Pcg32, BoundedZeroIsZero)
{
    Pcg32 rng(1);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(3);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Pcg32, DoubleMeanIsHalf)
{
    Pcg32 rng(4);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, BoundedIsRoughlyUniform)
{
    Pcg32 rng(5);
    const std::uint32_t bound = 10;
    std::vector<int> hist(bound, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++hist[rng.nextBounded(bound)];
    for (auto h : hist) {
        EXPECT_GT(h, n / bound * 0.9);
        EXPECT_LT(h, n / bound * 1.1);
    }
}

TEST(Pcg32, GeometricMeanMatches)
{
    Pcg32 rng(6);
    const double p = 0.2;
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextGeometric(p);
    // Mean of failures-before-success geometric is (1-p)/p = 4.
    EXPECT_NEAR(sum / n, (1 - p) / p, 0.15);
}

TEST(Pcg32, ExponentialMeanMatches)
{
    Pcg32 rng(7);
    const double mean = 5.0;
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(mean);
    EXPECT_NEAR(sum / n, mean, 0.2);
}

TEST(Pcg32, ZipfStaysInRange)
{
    Pcg32 rng(8);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextZipf(100, 1.0), 100u);
}

TEST(Pcg32, ZipfSingleElement)
{
    Pcg32 rng(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextZipf(1, 1.2), 0u);
}

TEST(Pcg32, ZipfIsSkewedTowardLowRanks)
{
    Pcg32 rng(10);
    const int n = 100000;
    int rank0 = 0, upper_half = 0;
    for (int i = 0; i < n; ++i) {
        std::uint32_t r = rng.nextZipf(1000, 1.2);
        rank0 += (r == 0);
        upper_half += (r >= 500);
    }
    // Rank 0 must dominate any individual high rank, and the whole
    // upper half should receive a small share.
    EXPECT_GT(rank0, n / 20);
    EXPECT_LT(upper_half, n / 10);
}

// Property: skew increases with s.
TEST(Pcg32, ZipfSkewGrowsWithS)
{
    auto top10_share = [](double s) {
        Pcg32 rng(11);
        const int n = 50000;
        int top = 0;
        for (int i = 0; i < n; ++i)
            top += (rng.nextZipf(1000, s) < 10);
        return static_cast<double>(top) / n;
    };
    double s08 = top10_share(0.8);
    double s12 = top10_share(1.2);
    double s16 = top10_share(1.6);
    EXPECT_LT(s08, s12);
    EXPECT_LT(s12, s16);
}
